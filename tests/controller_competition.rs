//! The regret harness: Greedy, Hysteresis and Oracle competing on
//! identical traffic.
//!
//! Every policy replays the **same** recorded trace, so the cost
//! differences (L2 misses plus repartition flush write-backs) are
//! attributable to the control decisions alone. The oracle — the better
//! of the offline static-best and phase-scheduled runs — anchors the
//! scale: its regret is zero by construction, and its measured cost in
//! the competition reproduces its planning replay exactly. Each run's
//! totals must also reconcile exactly with its `RepartitionRecord`
//! segmentation, and the whole competition must be invariant under the
//! trace filter's parallelism (`jobs = 1` vs `jobs = 4`).

use std::sync::Arc;

use compmem::controller::{
    compete, ControlledOutcome, ControllerConfig, ControllerPolicy, Greedy, Hysteresis, Oracle,
    RegretReport,
};
use compmem::experiment::{Experiment, ExperimentConfig};
use compmem_cache::{CacheConfig, CacheSizeLattice, CurveResolution};
use compmem_platform::{PlatformConfig, PreparedTrace, SystemReport};
use compmem_workloads::apps::{
    jpeg_canny_app, mpeg2_app, Application, JpegCannyParams, Mpeg2Params,
};

const SETS_PER_UNIT: u32 = 2;
const PHASE_THRESHOLD: f64 = 0.1;
const SWITCH_MARGIN: f64 = 1.0;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        l2: CacheConfig::with_size_bytes(32 * 1024, 4).unwrap(),
        sets_per_unit: SETS_PER_UNIT,
        ..ExperimentConfig::default()
    }
}

struct Arena {
    trace: Arc<PreparedTrace>,
    l2: CacheConfig,
    platform: PlatformConfig,
    lattice: CacheSizeLattice,
    config: ControllerConfig,
}

fn arena<F: Fn() -> Application>(app: F, jobs: usize) -> Arena {
    let experiment = Experiment::new(tiny_config(), app);
    let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let l2 = experiment.config().l2;
    let platform = experiment.config().platform;
    // Warm the shared L1-filter cache with the requested parallelism;
    // every replay below reads this one filtered trace.
    trace.filtered_for_jobs(&platform, jobs).unwrap();
    let resolution = CurveResolution::for_geometry(l2.geometry(), SETS_PER_UNIT).unwrap();
    let window_cycles = (live.report.makespan_cycles / 5).max(1);
    Arena {
        trace,
        l2,
        platform,
        lattice: CacheSizeLattice::new(l2.geometry(), SETS_PER_UNIT),
        config: ControllerConfig::cycles(window_cycles, resolution).unwrap(),
    }
}

fn run_competition(a: &Arena) -> (Vec<ControlledOutcome>, RegretReport) {
    let mut greedy = Greedy;
    let mut hysteresis = Hysteresis::new(PHASE_THRESHOLD, SWITCH_MARGIN);
    let mut oracle = Oracle::plan(
        &a.platform,
        a.l2,
        &a.lattice,
        &a.trace,
        PHASE_THRESHOLD,
        &a.config,
    )
    .unwrap();
    let mut policies: Vec<&mut dyn ControllerPolicy> =
        vec![&mut greedy, &mut hysteresis, &mut oracle];
    let (outcomes, report) = compete(
        &a.platform,
        a.l2,
        &a.lattice,
        &a.trace,
        &mut policies,
        &a.config,
    )
    .unwrap();
    // The oracle's competition replay reproduces its planning replay.
    let oracle_outcome = outcomes.iter().find(|o| o.policy == "oracle").unwrap();
    assert_eq!(oracle_outcome.cost(), oracle.planned_cost);
    (outcomes, report)
}

/// Splits a report's total L2 misses and accesses at the fired
/// repartition boundaries and asserts the segments sum back exactly.
fn assert_segments_reconcile(report: &SystemReport) {
    let mut prev_misses = 0u64;
    let mut prev_accesses = 0u64;
    let mut prev_cycle = 0u64;
    for record in &report.repartitions {
        assert!(
            record.at_cycle > prev_cycle || prev_cycle == 0,
            "boundaries must advance: {} after {}",
            record.at_cycle,
            prev_cycle
        );
        assert!(
            record.l2_misses_before >= prev_misses && record.l2_accesses_before >= prev_accesses,
            "per-switch counters must be monotone"
        );
        prev_misses = record.l2_misses_before;
        prev_accesses = record.l2_accesses_before;
        prev_cycle = record.at_cycle;
    }
    // The tail segment closes the books: totals are exactly the last
    // boundary snapshot plus what came after.
    assert!(report.l2.misses >= prev_misses);
    assert!(report.l2.accesses >= prev_accesses);
    let segments: u64 = report
        .repartitions
        .iter()
        .scan(0u64, |prev, r| {
            let seg = r.l2_misses_before - *prev;
            *prev = r.l2_misses_before;
            Some(seg)
        })
        .sum::<u64>()
        + (report.l2.misses - prev_misses);
    assert_eq!(
        segments, report.l2.misses,
        "segment misses must sum to the measured total"
    );
}

fn check_competition(a: &Arena) -> (Vec<ControlledOutcome>, RegretReport) {
    let (outcomes, report) = run_competition(a);
    assert_eq!(outcomes.len(), 3);
    assert_eq!(report.baseline, "oracle");

    let row = |name: &str| report.entries.iter().find(|e| e.policy == name).unwrap();
    assert_eq!(
        row("oracle").regret,
        0,
        "oracle regret is zero by construction"
    );
    for entry in &report.entries {
        let outcome = outcomes.iter().find(|o| o.policy == entry.policy).unwrap();
        assert_eq!(entry.cost, outcome.cost());
        assert_eq!(entry.misses, outcome.outcome.report.l2.misses);
        assert_eq!(entry.flush_written_back, outcome.total_flush().written_back);
        assert_eq!(entry.switches, outcome.switches());
        assert_eq!(entry.regret, entry.cost as i64 - report.oracle_cost as i64);
        assert_segments_reconcile(&outcome.outcome.report);
    }

    // Greedy switches every window; hysteresis is gated, so it can only
    // switch less often.
    let greedy = outcomes.iter().find(|o| o.policy == "greedy").unwrap();
    let hysteresis = outcomes.iter().find(|o| o.policy == "hysteresis").unwrap();
    assert!(greedy.switches() >= 2, "greedy must actually repartition");
    assert!(
        hysteresis.switches() <= greedy.switches(),
        "the detector gate must not add switches: {} > {}",
        hysteresis.switches(),
        greedy.switches()
    );
    (outcomes, report)
}

#[test]
fn competition_on_tiny_mpeg2() {
    let params = Mpeg2Params::tiny();
    let a = arena(move || mpeg2_app(&params).expect("valid params"), 1);
    check_competition(&a);
}

#[test]
fn competition_on_tiny_jpeg_canny() {
    let params = JpegCannyParams::tiny();
    let a = arena(move || jpeg_canny_app(&params).expect("valid params"), 1);
    check_competition(&a);
}

/// The whole competition — every outcome, every regret row — is
/// invariant under the trace-filter parallelism: `jobs = 4` warms the
/// same filtered trace the serial pass produces, byte for byte.
#[test]
fn competition_is_deterministic_across_filter_jobs() {
    let serial = {
        let params = Mpeg2Params::tiny();
        let a = arena(move || mpeg2_app(&params).expect("valid params"), 1);
        check_competition(&a)
    };
    let parallel = {
        let params = Mpeg2Params::tiny();
        let a = arena(move || mpeg2_app(&params).expect("valid params"), 4);
        check_competition(&a)
    };
    assert_eq!(
        serial.0, parallel.0,
        "outcomes must not depend on filter jobs"
    );
    assert_eq!(
        serial.1, parallel.1,
        "regret must not depend on filter jobs"
    );
}
