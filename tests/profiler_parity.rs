//! Cross-validation of the single-pass stack-distance profiler against
//! the shadow-cache simulation it replaced.
//!
//! Three properties pin the new profile source down:
//!
//! * **Point-for-point parity**: curve-derived `MissProfiles` equal the
//!   `ProfilingCache`'s per-size shadow simulation at every lattice point,
//!   on tiny MPEG-2 and tiny JPEG+Canny (the acceptance criterion of the
//!   profiler issue).
//! * **All four organisations**: parity is not a property of shared-cache
//!   traffic — a trace recorded under *any* of the four organisations
//!   (whose timing shifts the recorded interleaving) profiles to the same
//!   numbers whether the single-pass profiler or the shadow bank consumes
//!   it; and per-key access/cold totals are organisation-invariant.
//! * **Optimizer agreement**: `solve_exact`, `solve_greedy` and the
//!   brute-force `solve_exhaustive` produce identical allocations whether
//!   the problem is built from curve-derived or simulated profiles.

use compmem::experiment::{Experiment, ExperimentConfig, ScenarioSpec};
use compmem::optimizer::{solve_exact, solve_exhaustive, solve_greedy};
use compmem_cache::{CacheConfig, CacheSizeLattice, OrganizationSpec, PartitionKey, PartitionMap};
use compmem_platform::{profile_trace, ReplaySystem};
use compmem_workloads::apps::{
    jpeg_canny_app, mpeg2_app, Application, JpegCannyParams, Mpeg2Params,
};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        l2: CacheConfig::with_size_bytes(64 * 1024, 4).unwrap(),
        sets_per_unit: 4,
        ..ExperimentConfig::default()
    }
}

fn mpeg2_experiment() -> Experiment<impl Fn() -> Application> {
    let params = Mpeg2Params::tiny();
    Experiment::new(tiny_config(), move || {
        mpeg2_app(&params).expect("valid parameters")
    })
}

fn jpeg_experiment() -> Experiment<impl Fn() -> Application> {
    let params = JpegCannyParams::tiny();
    Experiment::new(tiny_config(), move || {
        jpeg_canny_app(&params).expect("valid parameters")
    })
}

fn assert_parity(experiment: &Experiment<impl Fn() -> Application>, app_name: &str) {
    let (curve_outcome, curve_profiles) = experiment.run_profiled().expect("curve run succeeds");
    let (shadow_outcome, shadow_profiles) = experiment
        .run_profiled_simulated()
        .expect("shadow run succeeds");
    // The acceptance criterion: identical misses at every lattice point,
    // for every entity.
    assert_eq!(
        curve_profiles, shadow_profiles,
        "{app_name}: single-pass and per-size simulation diverged"
    );
    assert!(
        !curve_profiles.profiles.is_empty(),
        "{app_name}: no entities profiled"
    );
    // The profiling main cache *is* the shared baseline, so both runs see
    // identical traffic and L2 behaviour; only the organisation label
    // differs.
    assert_eq!(curve_outcome.report, shadow_outcome.report);
    assert_eq!(curve_outcome.by_key, shadow_outcome.by_key);
    assert_eq!(curve_outcome.l2_snapshot.organization, "shared");
    assert_eq!(shadow_outcome.l2_snapshot.organization, "profiling");
}

#[test]
fn curve_profiles_match_shadow_simulation_on_tiny_mpeg2() {
    assert_parity(&mpeg2_experiment(), "mpeg2");
}

#[test]
fn curve_profiles_match_shadow_simulation_on_tiny_jpeg_canny() {
    assert_parity(&jpeg_experiment(), "jpeg_canny");
}

#[test]
fn traces_from_all_four_organisations_profile_identically() {
    let experiment = mpeg2_experiment();
    let config = tiny_config();
    let geometry = config.l2.geometry();
    let app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
    let keys = PartitionKey::distinct_keys(app.space.table());

    let specs: Vec<(&str, ScenarioSpec)> = vec![
        ("shared", experiment.shared_spec()),
        (
            "set-partitioned",
            ScenarioSpec::live(
                config.l2,
                OrganizationSpec::SetPartitioned(
                    PartitionMap::equal_split(geometry, &keys).unwrap(),
                ),
            ),
        ),
        ("way-partitioned", experiment.way_partitioned_spec()),
        ("profiling", experiment.profiling_spec()),
    ];

    let lattice = CacheSizeLattice::new(geometry, config.sets_per_unit);
    let mut totals = None;
    for (label, spec) in specs {
        let (_, trace) = experiment.record_trace(&spec).expect("recording succeeds");
        let curves = profile_trace(
            &experiment.config().platform,
            &trace,
            experiment.curve_resolution(),
        )
        .expect("profiling succeeds");

        // Single-pass vs per-size shadow simulation of the *same* trace:
        // identical at every lattice point, whichever organisation's
        // timing shaped the recording.
        let single_pass = curves
            .to_profiles(&lattice, geometry.ways())
            .expect("lattice within resolution");
        let l2 = OrganizationSpec::Profiling(lattice.clone())
            .build(config.l2, trace.table())
            .expect("profiling organisation builds");
        let mut replay = ReplaySystem::new(&experiment.config().platform, l2, &trace)
            .expect("replay system builds");
        replay.run();
        let shadow = replay
            .into_l2()
            .into_any()
            .downcast::<compmem::ProfilingCache>()
            .expect("profiling organisation downcasts")
            .into_profiles();
        assert_eq!(
            single_pass, shadow,
            "`{label}` recording: single-pass and shadow bank diverged"
        );

        // Per-key access and cold-miss totals do not depend on the
        // recorded organisation (the L2-bound access multiset is fixed by
        // the workload and the L1s; only its interleaving shifts).
        let observed: Vec<(PartitionKey, u64, u64)> = curves
            .curves
            .iter()
            .map(|(k, c)| (*k, c.accesses, c.cold))
            .collect();
        match &totals {
            None => totals = Some(observed),
            Some(expected) => assert_eq!(
                &observed, expected,
                "`{label}` recording changed per-key access/cold totals"
            ),
        }
    }
}

type Solver = fn(&compmem::AllocationProblem) -> Result<compmem::Allocation, compmem::CoreError>;

fn assert_optimizer_agreement(experiment: &Experiment<impl Fn() -> Application>, app_name: &str) {
    let table_app = match app_name {
        "mpeg2" => mpeg2_app(&Mpeg2Params::tiny()).unwrap(),
        _ => jpeg_canny_app(&JpegCannyParams::tiny()).unwrap(),
    };
    let (_, curve_profiles) = experiment.run_profiled().expect("curve run succeeds");
    let (_, shadow_profiles) = experiment
        .run_profiled_simulated()
        .expect("shadow run succeeds");
    let curve_problem =
        experiment.build_allocation_problem(table_app.space.table(), curve_profiles);
    let shadow_problem =
        experiment.build_allocation_problem(table_app.space.table(), shadow_profiles);

    // The polynomial solvers run on the full problem; the brute-force
    // reference is exponential in the entity count, so it gets a trimmed
    // problem (the busiest entities, proportionally fewer units) — built
    // from both profile sources identically.
    let solvers: [(&str, Solver, bool); 3] = [
        ("exact", solve_exact, false),
        ("greedy", solve_greedy, false),
        ("exhaustive", solve_exhaustive, true),
    ];
    for (name, solver, trim) in solvers {
        let (curves, shadow) = if trim {
            (trimmed(&curve_problem, 6), trimmed(&shadow_problem, 6))
        } else {
            (curve_problem.clone(), shadow_problem.clone())
        };
        let from_curves = solver(&curves).expect("feasible");
        let from_shadow = solver(&shadow).expect("feasible");
        assert_eq!(
            from_curves.units, from_shadow.units,
            "{app_name}/{name}: allocations diverged between profile sources"
        );
        assert_eq!(
            from_curves.predicted_misses, from_shadow.predicted_misses,
            "{app_name}/{name}: predictions diverged between profile sources"
        );
    }
    // And the exact DP still matches the brute-force optimum on the
    // curve-derived trimmed problem.
    let small = trimmed(&curve_problem, 6);
    assert_eq!(
        solve_exact(&small).unwrap().predicted_misses,
        solve_exhaustive(&small).unwrap().predicted_misses
    );
}

/// Restricts a problem to its `keep` busiest entities (by profiled
/// accesses), shrinking the capacity proportionally so the choice stays
/// non-trivial.
fn trimmed(problem: &compmem::AllocationProblem, keep: usize) -> compmem::AllocationProblem {
    let mut entities = problem.entities.clone();
    entities.sort_by_key(|e| {
        std::cmp::Reverse(problem.profiles.profile(e.key).map_or(0, |p| p.accesses))
    });
    entities.truncate(keep);
    entities.sort_by_key(|e| e.key);
    // Keep the trimmed problem feasible whatever sizes the kept FIFOs are
    // pinned to.
    let minimum: u32 = entities
        .iter()
        .map(|e| e.candidates.iter().copied().min().unwrap_or(1))
        .sum();
    let scaled = problem.total_units * keep as u32 / problem.entities.len().max(1) as u32;
    compmem::AllocationProblem {
        entities,
        profiles: problem.profiles.clone(),
        total_units: scaled.max(minimum + 2),
    }
}

#[test]
fn optimizers_agree_across_profile_sources_on_tiny_mpeg2() {
    assert_optimizer_agreement(&mpeg2_experiment(), "mpeg2");
}

#[test]
fn optimizers_agree_across_profile_sources_on_tiny_jpeg_canny() {
    assert_optimizer_agreement(&jpeg_experiment(), "jpeg_canny");
}

#[test]
fn curves_convert_to_any_lattice_within_resolution() {
    // Pay the pass once, sweep many lattices: converting the same curves
    // on a coarser lattice equals re-simulating the shadow bank on it.
    let experiment = mpeg2_experiment();
    let config = tiny_config();
    let (_, curves) = experiment.profile_curves().expect("curve run succeeds");
    for sets_per_unit in [4u32, 8, 16] {
        let lattice = CacheSizeLattice::new(config.l2.geometry(), sets_per_unit);
        let profiles = curves
            .to_profiles(&lattice, config.l2.geometry().ways())
            .expect("lattice within resolution");
        assert_eq!(profiles.lattice_units, lattice.candidate_units);
        for profile in profiles.profiles.values() {
            // Miss counts are monotonically non-increasing in size.
            let misses: Vec<u64> = profile.misses_by_units.values().copied().collect();
            assert!(misses.windows(2).all(|w| w[0] >= w[1]));
        }
    }
}
