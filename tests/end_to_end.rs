//! Cross-crate integration tests: the full paper flow on miniature
//! instances of both applications.

use compmem::experiment::{Experiment, ExperimentConfig};
use compmem::optimizer::OptimizerKind;
use compmem::report;
use compmem_cache::CacheConfig;
use compmem_platform::PlatformConfig;
use compmem_workloads::apps::{jpeg_canny_app, mpeg2_app, JpegCannyParams, Mpeg2Params};

fn small_config() -> ExperimentConfig {
    ExperimentConfig {
        platform: PlatformConfig::default(),
        l2: CacheConfig::with_size_bytes(64 * 1024, 4).expect("valid geometry"),
        sets_per_unit: 4,
        optimizer: OptimizerKind::ExactIlp,
    }
}

#[test]
fn jpeg_canny_flow_reduces_misses_and_is_compositional() {
    let params = JpegCannyParams::tiny();
    let experiment = Experiment::new(small_config(), move || {
        jpeg_canny_app(&params).expect("valid parameters")
    });
    let outcome = experiment.run_paper_flow().expect("flow runs");

    // The partitioned system must be compositional: per-entity misses match
    // the stand-alone expectation within a few percent of the total.
    assert!(
        outcome.compositionality.max_relative_difference() < 0.05,
        "compositionality error {:.3}",
        outcome.compositionality.max_relative_difference()
    );
    // The optimiser never allocates more than the cache.
    assert!(outcome.allocation.total_units <= 64);
    // Every one of the 15 tasks appears in the allocation table.
    let table = report::format_allocation_table(&outcome);
    for name in [
        "FrontEnd1",
        "IDCT1",
        "Raster1",
        "BackEnd1",
        "FrontEnd2",
        "IDCT2",
        "Raster2",
        "BackEnd2",
        "Fr.canny",
        "LowPass",
        "HorizSobel",
        "VertSobel",
        "HorizNMS",
        "VertNMS",
        "MaxTreshold",
        "appl data",
        "rt data",
    ] {
        assert!(table.contains(name), "missing `{name}` in:\n{table}");
    }
    // Both runs execute the same application, so the instruction counts of
    // the two runs match (timing differs, functional work does not).
    assert_eq!(
        outcome.shared.report.total_instructions(),
        outcome.partitioned.report.total_instructions()
    );
}

#[test]
fn mpeg2_flow_produces_all_figures() {
    let params = Mpeg2Params::tiny();
    let experiment = Experiment::new(small_config(), move || {
        mpeg2_app(&params).expect("valid parameters")
    });
    let outcome = experiment.run_paper_flow().expect("flow runs");
    assert!(outcome.compositionality.max_relative_difference() < 0.08);
    assert_eq!(
        outcome.figure2_rows().len(),
        outcome.allocation.units.len(),
        "figure 2 covers every entity"
    );
    assert!(!report::format_figure3(&outcome).is_empty());
    assert!(!report::format_headline(&outcome).is_empty());
    // The 13 task names of Table 2 are all present.
    let table = report::format_allocation_table(&outcome);
    for name in [
        "input",
        "vld",
        "hdr",
        "isiq",
        "memMan",
        "idct",
        "add",
        "decMV",
        "predict",
        "predictRD",
        "writeMB",
        "store",
        "output",
    ] {
        assert!(table.contains(name), "missing `{name}` in:\n{table}");
    }
}

#[test]
fn runs_are_deterministic() {
    let params = Mpeg2Params::tiny();
    let experiment = Experiment::new(small_config(), move || {
        mpeg2_app(&params).expect("valid parameters")
    });
    let (a, _) = experiment.run_profiled().expect("first run");
    let (b, _) = experiment.run_profiled().expect("second run");
    assert_eq!(a.report.l2.misses, b.report.l2.misses);
    assert_eq!(a.report.total_instructions(), b.report.total_instructions());
    assert_eq!(a.report.makespan_cycles, b.report.makespan_cycles);
    assert_eq!(a.by_key, b.by_key);
}

#[test]
fn larger_shared_cache_reduces_misses() {
    // The paper's extra data point: MPEG-2 with a twice-as-large shared L2.
    let params = Mpeg2Params::tiny();
    let experiment = Experiment::new(small_config(), move || {
        mpeg2_app(&params).expect("valid parameters")
    });
    // The two shared runs are independent: execute them in parallel.
    let specs = vec![
        experiment.shared_spec_with_l2(CacheConfig::with_size_bytes(32 * 1024, 4).unwrap()),
        experiment.shared_spec_with_l2(CacheConfig::with_size_bytes(128 * 1024, 4).unwrap()),
    ];
    let mut results = experiment.run_all(&specs).into_iter();
    let small = results
        .next()
        .expect("two specs")
        .expect("small shared run");
    let large = results
        .next()
        .expect("two specs")
        .expect("large shared run");
    assert!(large.report.l2.misses < small.report.l2.misses);
}
