//! Parity of every parallel execution layer against its serial reference,
//! on real recorded traces of both bundled applications.
//!
//! The parallelism issue's acceptance criterion: lane- and
//! segment-parallel execution must be **proven identical** to the serial
//! pass — curves point for point, sidecars byte for byte, replay counters
//! field for field — not merely statistically close. Four claims are
//! pinned here, each on tiny MPEG-2 *and* tiny JPEG+Canny:
//!
//! * **Profiling lanes**: [`profile_trace_windowed_lanes`] on four
//!   workers equals the serial [`profile_trace_windowed`] for the
//!   whole-run curves and for access-count windows, point for point.
//! * **Sidecar byte-identity**: the sidecar written by the lane-parallel
//!   pass is byte-identical to the serially written one.
//! * **Segment-parallel L1 filtering composes**: a trace filtered on
//!   three per-processor workers profiles (serially and on lanes) to
//!   exactly the serial filter's curves.
//! * **Replay lanes under all four organisations**: laned replays match
//!   the serial replay on every cache-side counter, with the documented
//!   [`LaneDecision`] per organisation — a real split for the
//!   set-partitioned scenario, a reported fallback for the other three —
//!   and *requiring* lanes on an ineligible scenario is a typed error.

use std::fs;
use std::sync::Arc;

use compmem::experiment::{
    run_replay, Experiment, ExperimentConfig, ReplayParallelism, ScenarioSpec,
};
use compmem::{CoreError, WindowConfig};
use compmem_cache::{
    CacheConfig, CacheSizeLattice, OrganizationSpec, PartitionKey, PartitionMap, WayAllocation,
};
use compmem_platform::{
    profile_trace, profile_trace_windowed, profile_trace_windowed_lanes,
    profile_trace_with_sidecar, profile_trace_with_sidecar_lanes, LaneIneligibility, PlatformError,
    PreparedTrace, SidecarOutcome,
};
use compmem_trace::RegionTable;
use compmem_workloads::apps::{
    jpeg_canny_app, mpeg2_app, Application, JpegCannyParams, Mpeg2Params,
};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        l2: CacheConfig::with_size_bytes(64 * 1024, 4).unwrap(),
        sets_per_unit: 4,
        ..ExperimentConfig::default()
    }
}

fn mpeg2_experiment() -> Experiment<impl Fn() -> Application> {
    let params = Mpeg2Params::tiny();
    Experiment::new(tiny_config(), move || {
        mpeg2_app(&params).expect("valid parameters")
    })
}

fn jpeg_experiment() -> Experiment<impl Fn() -> Application> {
    let params = JpegCannyParams::tiny();
    Experiment::new(tiny_config(), move || {
        jpeg_canny_app(&params).expect("valid parameters")
    })
}

fn recorded_shared_trace(experiment: &Experiment<impl Fn() -> Application>) -> Arc<PreparedTrace> {
    let (_, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording the shared baseline succeeds");
    trace
}

/// The four organisations exactly as the CLI builds them, each with the
/// lane fallback a four-worker request must resolve to. Way partitioning
/// is ineligible here because an equal split of more keys than ways
/// necessarily shares ways between keys — asserted, not assumed.
fn four_organisations(
    l2: CacheConfig,
    table: &RegionTable,
) -> Vec<(&'static str, OrganizationSpec, Option<LaneIneligibility>)> {
    let keys = PartitionKey::distinct_keys(table);
    assert!(
        keys.len() > l2.geometry().ways() as usize,
        "expected more partition keys than ways so the equal way split overlaps"
    );
    vec![
        (
            "shared",
            OrganizationSpec::Shared,
            Some(LaneIneligibility::SharedOrganization),
        ),
        (
            "set-partitioned",
            OrganizationSpec::SetPartitioned(
                PartitionMap::equal_split(l2.geometry(), &keys).unwrap(),
            ),
            None,
        ),
        (
            "way-partitioned",
            OrganizationSpec::WayPartitioned(WayAllocation::equal_split(l2.geometry(), &keys)),
            Some(LaneIneligibility::OverlappingWayMasks),
        ),
        (
            "profiling",
            OrganizationSpec::Profiling(CacheSizeLattice::new(l2.geometry(), 4)),
            Some(LaneIneligibility::ProfilingOrganization),
        ),
    ]
}

fn assert_lane_profiling_parity(experiment: &Experiment<impl Fn() -> Application>, app_name: &str) {
    let trace = recorded_shared_trace(experiment);
    let platform = &experiment.config().platform;
    let resolution = experiment.curve_resolution();

    // Whole-run curves and access-count windows: the lane merge must
    // reproduce the serial pass point for point, not approximately.
    for (window_name, window) in [
        ("whole-run", WindowConfig::whole_run()),
        ("400-access windows", WindowConfig::accesses(400).unwrap()),
    ] {
        let serial = profile_trace_windowed(platform, &trace, resolution, window)
            .expect("serial profiling succeeds");
        let laned = profile_trace_windowed_lanes(platform, &trace, resolution, window, 4)
            .expect("lane profiling succeeds");
        assert_eq!(
            serial, laned,
            "{app_name}: lane-parallel {window_name} curves diverged from serial"
        );
    }

    // Sidecar byte-identity: the lane-measured sidecar encodes to exactly
    // the bytes of the serially measured one.
    let dir = std::env::temp_dir();
    let serial_path = dir.join(format!(
        "compmem-parity-{}-{app_name}-serial.curves",
        std::process::id()
    ));
    let laned_path = dir.join(format!(
        "compmem-parity-{}-{app_name}-lanes.curves",
        std::process::id()
    ));
    for path in [&serial_path, &laned_path] {
        let _ = fs::remove_file(path);
    }
    let window = WindowConfig::accesses(400).unwrap();
    let (_, serial_outcome) =
        profile_trace_with_sidecar(platform, &trace, resolution, window, &serial_path)
            .expect("serial sidecar write succeeds");
    let (_, laned_outcome) =
        profile_trace_with_sidecar_lanes(platform, &trace, resolution, window, &laned_path, 4)
            .expect("laned sidecar write succeeds");
    assert!(matches!(serial_outcome, SidecarOutcome::Written));
    assert!(matches!(laned_outcome, SidecarOutcome::Written));
    let serial_bytes = fs::read(&serial_path).expect("serial sidecar readable");
    let laned_bytes = fs::read(&laned_path).expect("laned sidecar readable");
    assert_eq!(
        serial_bytes, laned_bytes,
        "{app_name}: lane-written sidecar is not byte-identical to the serial one"
    );
    for path in [&serial_path, &laned_path] {
        let _ = fs::remove_file(path);
    }
}

#[test]
fn lane_profiling_matches_serial_on_tiny_mpeg2() {
    assert_lane_profiling_parity(&mpeg2_experiment(), "mpeg2");
}

#[test]
fn lane_profiling_matches_serial_on_tiny_jpeg_canny() {
    assert_lane_profiling_parity(&jpeg_experiment(), "jpeg_canny");
}

fn assert_filter_compose_parity(experiment: &Experiment<impl Fn() -> Application>, app_name: &str) {
    let trace = recorded_shared_trace(experiment);
    let platform = &experiment.config().platform;
    let resolution = experiment.curve_resolution();

    // Two independent PreparedTraces of the same recording, so each owns
    // an empty filter cache: one filters serially, the other on three
    // per-processor workers. Everything downstream — the serial profile
    // and the lane-parallel profile — must be identical on top of either.
    let serial_prep = PreparedTrace::from(trace.trace().clone());
    let parallel_prep = PreparedTrace::from(trace.trace().clone());
    parallel_prep
        .filtered_for_jobs(platform, 3)
        .expect("parallel L1 filtering succeeds");

    let serial_curves =
        profile_trace(platform, &serial_prep, resolution).expect("profiling succeeds");
    let composed_curves =
        profile_trace(platform, &parallel_prep, resolution).expect("profiling succeeds");
    assert_eq!(
        serial_curves, composed_curves,
        "{app_name}: curves behind the parallel L1 filter diverged from serial"
    );

    let window = WindowConfig::accesses(400).unwrap();
    let serial_windows = profile_trace_windowed(platform, &serial_prep, resolution, window)
        .expect("serial windowed profiling succeeds");
    let composed_windows =
        profile_trace_windowed_lanes(platform, &parallel_prep, resolution, window, 4)
            .expect("laned windowed profiling succeeds");
    assert_eq!(
        serial_windows, composed_windows,
        "{app_name}: lane profiling composed with the parallel filter diverged from serial"
    );
}

#[test]
fn parallel_l1_filter_composes_with_lane_profiling_on_tiny_mpeg2() {
    assert_filter_compose_parity(&mpeg2_experiment(), "mpeg2");
}

#[test]
fn parallel_l1_filter_composes_with_lane_profiling_on_tiny_jpeg_canny() {
    assert_filter_compose_parity(&jpeg_experiment(), "jpeg_canny");
}

fn assert_laned_replay_parity(experiment: &Experiment<impl Fn() -> Application>, app_name: &str) {
    let trace = recorded_shared_trace(experiment);
    let platform = &experiment.config().platform;
    let l2 = experiment.config().l2;
    let keys = PartitionKey::distinct_keys(trace.table());

    for (org_name, organization, expected_fallback) in four_organisations(l2, trace.table()) {
        let serial_spec = ScenarioSpec::replay(l2, organization.clone(), trace.clone());
        let laned_spec = ScenarioSpec::replay(l2, organization, trace.clone())
            .with_parallelism(ReplayParallelism::lanes(4).with_segment_jobs(2));

        let serial = run_replay(platform, &serial_spec).expect("serial replay succeeds");
        let laned = run_replay(platform, &laned_spec).expect("laned replay succeeds");

        // Cache-side counters are lane-exact under every organisation —
        // a real split where eligible, a reported serial lane otherwise.
        assert_eq!(
            serial.report.l1, laned.report.l1,
            "{app_name}/{org_name}: L1"
        );
        assert_eq!(
            serial.report.l2, laned.report.l2,
            "{app_name}/{org_name}: L2"
        );
        assert_eq!(
            serial.report.l2_by_task, laned.report.l2_by_task,
            "{app_name}/{org_name}: per-task L2"
        );
        assert_eq!(
            serial.report.l2_by_region, laned.report.l2_by_region,
            "{app_name}/{org_name}: per-region L2"
        );
        assert_eq!(
            serial.report.dram_accesses, laned.report.dram_accesses,
            "{app_name}/{org_name}: DRAM accesses"
        );
        assert_eq!(
            serial.report.dram_writebacks, laned.report.dram_writebacks,
            "{app_name}/{org_name}: DRAM writebacks"
        );
        assert_eq!(
            serial.report.bus_bytes, laned.report.bus_bytes,
            "{app_name}/{org_name}: bus bytes"
        );
        assert_eq!(
            serial.by_key, laned.by_key,
            "{app_name}/{org_name}: per-key attribution"
        );

        // Lanes do not reconstruct the global timing interleaving.
        assert_eq!(laned.report.makespan_cycles, 0, "{app_name}/{org_name}");
        assert!(serial.report.makespan_cycles > 0, "{app_name}/{org_name}");

        // The decision is reported, never silent: serial replays carry
        // none, laned replays say what was requested, what ran, and why
        // a fallback happened when it did.
        assert_eq!(serial.lane_decision, None, "{app_name}/{org_name}");
        let decision = laned
            .lane_decision
            .unwrap_or_else(|| panic!("{app_name}/{org_name}: laned replay reported no decision"));
        assert_eq!(decision.requested, 4, "{app_name}/{org_name}");
        assert_eq!(
            decision.fallback, expected_fallback,
            "{app_name}/{org_name}"
        );
        let expected_lanes = if expected_fallback.is_none() {
            keys.len()
        } else {
            1
        };
        assert_eq!(decision.lanes, expected_lanes, "{app_name}/{org_name}");
    }
}

#[test]
fn laned_replays_match_serial_under_all_four_organisations_on_tiny_mpeg2() {
    assert_laned_replay_parity(&mpeg2_experiment(), "mpeg2");
}

#[test]
fn laned_replays_match_serial_under_all_four_organisations_on_tiny_jpeg_canny() {
    assert_laned_replay_parity(&jpeg_experiment(), "jpeg_canny");
}

#[test]
fn requiring_lanes_on_an_ineligible_scenario_is_a_typed_error() {
    let experiment = mpeg2_experiment();
    let trace = recorded_shared_trace(&experiment);
    let l2 = experiment.config().l2;

    let spec = ScenarioSpec::replay(l2, OrganizationSpec::Shared, trace)
        .with_parallelism(ReplayParallelism::required_lanes(4));
    match run_replay(&experiment.config().platform, &spec) {
        Err(CoreError::Platform(PlatformError::LanesIneligible { requested, reason })) => {
            assert_eq!(requested, 4);
            assert!(
                reason.contains("shared organisation"),
                "unexpected ineligibility reason: {reason}"
            );
        }
        other => panic!("expected a LanesIneligible error, got {other:?}"),
    }
}
