//! Property-based tests of the core invariants of the memory system.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use compmem::controller::{
    replay_controlled, ControllerConfig, ControllerPolicy, ControllerTick, SolverContext,
};
use compmem::experiment::{run_replay, Experiment, ExperimentConfig, RunOutcome, ScenarioSpec};
use compmem::optimizer::{
    solve_equal_split, solve_exact, solve_exhaustive, solve_greedy, AllocationEntity,
    AllocationProblem,
};
use compmem::profile::{MissProfile, MissProfiles};
use compmem::{CoreError, OptimizerKind};
use compmem_cache::{
    CacheConfig, CacheGeometry, CacheModel, CacheSizeLattice, CurveResolution, OrganizationSpec,
    PartitionKey, PartitionMap, PartitionSchedule, SetPartitionedCache, SharedCache, WindowConfig,
    WindowedProfiler,
};
use compmem_platform::{PlatformConfig, PreparedTrace};
use compmem_trace::stats::ReuseDistanceHistogram;
use compmem_trace::{Access, Addr, RegionKind, RegionTable, TaskId};
use compmem_workloads::apps::{mpeg2_app, Mpeg2Params};

/// Strategy: a short trace of line-aligned accesses of one task inside a
/// bounded working set.
fn trace_strategy(lines: u64, len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..lines, 1..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single-set (fully associative) LRU cache must agree exactly with
    /// the reuse-distance stack oracle, whatever the trace.
    #[test]
    fn lru_cache_matches_stack_distance_oracle(
        lines in trace_strategy(48, 200),
        ways in prop::sample::select(vec![1u32, 2, 4, 8, 16]),
    ) {
        let accesses: Vec<Access> = lines
            .iter()
            .map(|&l| Access::load(Addr::new(l * 64), 4, TaskId::new(0), compmem_trace::RegionId::new(0)))
            .collect();
        let oracle = ReuseDistanceHistogram::from_accesses(&accesses);
        let mut cache = compmem_cache::SetAssocCache::new(CacheConfig::new(1, ways).unwrap());
        for a in &accesses {
            cache.access(a);
        }
        prop_assert_eq!(cache.stats().misses, oracle.lru_misses(u64::from(ways)));
    }

    /// Compositionality invariant of the set-partitioned cache: a task's
    /// miss count is completely independent of what any other task does.
    #[test]
    fn partitioned_cache_isolates_tasks(
        task_a in trace_strategy(256, 300),
        task_b in trace_strategy(256, 300),
    ) {
        let mut table = RegionTable::new();
        let ra = table
            .insert("a.data", RegionKind::TaskData { task: TaskId::new(0) }, 256 * 64)
            .unwrap();
        let rb = table
            .insert("b.data", RegionKind::TaskData { task: TaskId::new(1) }, 256 * 64)
            .unwrap();
        let base_a = table.region(ra).base;
        let base_b = table.region(rb).base;
        let config = CacheConfig::new(64, 4).unwrap();
        let map = PartitionMap::pack(
            config.geometry(),
            &[
                (PartitionKey::Task(TaskId::new(0)), 16),
                (PartitionKey::Task(TaskId::new(1)), 16),
            ],
        )
        .unwrap();

        let a_accesses: Vec<Access> = task_a
            .iter()
            .map(|&l| Access::load(base_a.offset(l * 64), 4, TaskId::new(0), ra))
            .collect();
        let b_accesses: Vec<Access> = task_b
            .iter()
            .map(|&l| Access::load(base_b.offset(l * 64), 4, TaskId::new(1), rb))
            .collect();

        // Run task A alone.
        let mut alone = SetPartitionedCache::new(config, &table, &map).unwrap();
        for a in &a_accesses {
            alone.access(a);
        }
        let alone_misses = alone.stats_by_task().get(&TaskId::new(0)).misses;

        // Run task A interleaved with arbitrary traffic from task B.
        let mut together = SetPartitionedCache::new(config, &table, &map).unwrap();
        let mut ai = a_accesses.iter();
        let mut bi = b_accesses.iter();
        loop {
            let a = ai.next();
            let b = bi.next();
            if let Some(a) = a {
                together.access(a);
            }
            if let Some(b) = b {
                together.access(b);
                together.access(b);
            }
            if a.is_none() && b.is_none() {
                break;
            }
        }
        let together_misses = together.stats_by_task().get(&TaskId::new(0)).misses;
        prop_assert_eq!(alone_misses, together_misses);
    }

    /// In a conventional shared cache the same co-run may inflate a task's
    /// misses, but it can never reduce them below the stand-alone count when
    /// the tasks touch disjoint data.
    #[test]
    fn shared_cache_never_reduces_misses_of_disjoint_tasks(
        task_a in trace_strategy(128, 200),
        task_b in trace_strategy(128, 200),
    ) {
        let mut table = RegionTable::new();
        let ra = table
            .insert("a.data", RegionKind::TaskData { task: TaskId::new(0) }, 128 * 64)
            .unwrap();
        let rb = table
            .insert("b.data", RegionKind::TaskData { task: TaskId::new(1) }, 128 * 64)
            .unwrap();
        let base_a = table.region(ra).base;
        let base_b = table.region(rb).base;
        let config = CacheConfig::new(32, 2).unwrap();

        let a_accesses: Vec<Access> = task_a
            .iter()
            .map(|&l| Access::load(base_a.offset(l * 64), 4, TaskId::new(0), ra))
            .collect();
        let b_accesses: Vec<Access> = task_b
            .iter()
            .map(|&l| Access::load(base_b.offset(l * 64), 4, TaskId::new(1), rb))
            .collect();

        let mut alone = SharedCache::new(config);
        for a in &a_accesses {
            alone.access(a);
        }
        let alone_misses = alone.stats_by_task().get(&TaskId::new(0)).misses;

        let mut together = SharedCache::new(config);
        for (a, b) in a_accesses.iter().zip(b_accesses.iter().cycle()) {
            together.access(b);
            together.access(a);
        }
        let together_misses = together.stats_by_task().get(&TaskId::new(0)).misses;
        prop_assert!(together_misses >= alone_misses);
    }

    /// Partition maps produced by `pack` keep every entity inside the cache
    /// and index every line inside its own partition.
    #[test]
    fn packed_partitions_stay_in_range(
        sizes in prop::collection::vec(prop::sample::select(vec![1u32, 2, 4, 8]), 1..12),
        lines in prop::collection::vec(0u64..100_000, 1..50),
    ) {
        let geometry = CacheGeometry::new(128, 4).unwrap();
        let total: u32 = sizes.iter().sum();
        prop_assume!(total <= geometry.sets());
        let entries: Vec<(PartitionKey, u32)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (PartitionKey::Task(TaskId::new(i as u32)), s))
            .collect();
        let map = PartitionMap::pack(geometry, &entries).unwrap();
        for (key, partition) in map.iter() {
            prop_assert!(partition.end_set() <= geometry.sets());
            for &l in &lines {
                let set = partition.index_of(compmem_trace::LineAddr::new(l));
                prop_assert!(set >= partition.base_set && set < partition.end_set(),
                    "key {key}: set {set} outside {partition}");
            }
        }
    }

    /// Windowed profiling is a pure refinement of the whole-run pass: for
    /// any access stream and any window length, summing the per-window
    /// curves (access counts, cold misses and full histograms, per key
    /// and in aggregate) reconstructs the whole-run curves exactly, and
    /// the windowed pass leaves the totals untouched.
    #[test]
    fn windowed_curves_sum_to_the_whole_run(
        task_a in trace_strategy(192, 300),
        task_b in trace_strategy(192, 300),
        window_len in 1u64..120,
    ) {
        use compmem_cache::{CurveResolution, StackDistanceProfiler, WindowConfig,
            WindowedProfiler};

        let mut table = RegionTable::new();
        let ra = table
            .insert("a.data", RegionKind::TaskData { task: TaskId::new(0) }, 192 * 64)
            .unwrap();
        let rb = table
            .insert("b.data", RegionKind::TaskData { task: TaskId::new(1) }, 192 * 64)
            .unwrap();
        let base_a = table.region(ra).base;
        let base_b = table.region(rb).base;
        let accesses: Vec<Access> = task_a
            .iter()
            .map(|&l| Access::load(base_a.offset(l * 64), 4, TaskId::new(0), ra))
            .chain(task_b.iter().map(|&l| {
                Access::load(base_b.offset(l * 64), 4, TaskId::new(1), rb)
            }))
            .collect();

        let resolution = CurveResolution::new(4, 32, 4).unwrap();
        let mut whole = StackDistanceProfiler::new(resolution, &table);
        whole.observe_all(&accesses);
        let whole = whole.into_curves();

        let config = WindowConfig::accesses(window_len).unwrap();
        let mut windowed = WindowedProfiler::new(config, resolution, &table);
        for a in &accesses {
            windowed.observe(a);
        }
        let windowed = windowed.finish();

        prop_assert_eq!(&windowed.total, &whole);
        prop_assert_eq!(&windowed.reconstruct_total(), &whole);
        let expected_windows = (accesses.len() as u64).div_ceil(window_len) as usize;
        prop_assert_eq!(windowed.windows.len(), expected_windows);
        let summed: u64 = windowed.windows.iter().map(|w| w.curves.accesses()).sum();
        prop_assert_eq!(summed, accesses.len() as u64);
        // Phases always tile the windows, whatever the threshold.
        for threshold in [0.0, 0.05, 0.5] {
            let phases = windowed.phases(threshold);
            let covered: usize = phases.iter().map(|p| p.window_count()).sum();
            prop_assert_eq!(covered, windowed.windows.len());
            let merged_accesses: u64 =
                phases.iter().map(|p| p.curves.accesses()).sum();
            prop_assert_eq!(merged_accesses, accesses.len() as u64);
        }
    }

    /// The exact solver is never worse than the heuristics and always agrees
    /// with the exhaustive reference on small instances.
    #[test]
    fn exact_optimizer_dominates_heuristics(
        misses in prop::collection::vec(prop::collection::vec(1u64..10_000, 4), 1..5),
        capacity in 4u32..32,
    ) {
        let candidates = vec![1u32, 2, 4, 8];
        let mut profiles = MissProfiles {
            profiles: BTreeMap::new(),
            lattice_units: candidates.clone(),
        };
        let mut entities = Vec::new();
        for (i, task_misses) in misses.iter().enumerate() {
            let key = PartitionKey::Task(TaskId::new(i as u32));
            // Make the profile monotone non-increasing in the cache size.
            let mut sorted = task_misses.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let profile = MissProfile {
                accesses: sorted.iter().sum(),
                misses_by_units: candidates.iter().copied().zip(sorted).collect(),
            };
            profiles.profiles.insert(key, profile);
            entities.push(AllocationEntity { key, candidates: candidates.clone() });
        }
        let problem = AllocationProblem { entities, profiles, total_units: capacity };
        prop_assume!(problem.entities.len() as u32 <= capacity);
        let exact = solve_exact(&problem).unwrap();
        let brute = solve_exhaustive(&problem).unwrap();
        let greedy = solve_greedy(&problem).unwrap();
        let equal = solve_equal_split(&problem).unwrap();
        prop_assert_eq!(exact.predicted_misses, brute.predicted_misses);
        prop_assert!(exact.predicted_misses <= greedy.predicted_misses);
        prop_assert!(exact.predicted_misses <= equal.predicted_misses);
        prop_assert!(exact.total_units <= capacity);
        prop_assert!(greedy.total_units <= capacity);
    }

    /// Lane decomposition of the single-pass profiler: one keys-only
    /// shard per partition key fed *only that key's substream*, plus one
    /// aggregate-only shard walking the full stream, merge into curves
    /// identical to the unsharded pass — for any interleaving. Per-key
    /// stack banks only ever see their own key's accesses, so sharding by
    /// key changes nothing; the whole-L2 aggregate is not decomposable
    /// and rides the designated full-stream shard.
    #[test]
    fn merged_profiler_shards_match_the_unsharded_pass(
        task_a in trace_strategy(192, 300),
        task_b in trace_strategy(192, 300),
    ) {
        use compmem_cache::{CurveResolution, StackDistanceProfiler};

        let mut table = RegionTable::new();
        let ra = table
            .insert("a.data", RegionKind::TaskData { task: TaskId::new(0) }, 192 * 64)
            .unwrap();
        let rb = table
            .insert("b.data", RegionKind::TaskData { task: TaskId::new(1) }, 192 * 64)
            .unwrap();
        let base_a = table.region(ra).base;
        let base_b = table.region(rb).base;
        let mut accesses: Vec<Access> = Vec::new();
        let mut ai = task_a.iter();
        let mut bi = task_b.iter();
        loop {
            match (ai.next(), bi.next()) {
                (None, None) => break,
                (a, b) => {
                    if let Some(&l) = a {
                        accesses.push(Access::load(base_a.offset(l * 64), 4, TaskId::new(0), ra));
                    }
                    if let Some(&l) = b {
                        accesses.push(Access::load(base_b.offset(l * 64), 4, TaskId::new(1), rb));
                    }
                }
            }
        }

        let resolution = CurveResolution::new(4, 32, 4).unwrap();
        let mut whole = StackDistanceProfiler::new(resolution, &table);
        whole.observe_all(&accesses);
        let whole = whole.into_curves();

        let mut aggregate = StackDistanceProfiler::aggregate_only(resolution, &table);
        aggregate.observe_all(&accesses);
        let mut merged = aggregate;
        for task in [TaskId::new(0), TaskId::new(1)] {
            let mut shard = StackDistanceProfiler::keys_only(resolution, &table);
            for access in accesses.iter().filter(|a| a.task == task) {
                shard.observe(access);
            }
            merged = merged.merge(shard).unwrap();
        }
        prop_assert_eq!(&merged.into_curves(), &whole);
    }

    /// The windowed lane decomposition: every shard closes its windows at
    /// the *globally planned* access ordinals (a [`WindowPlan`] distilled
    /// from the cycle stream, shared by all lanes), so the per-window
    /// curves of the per-key shards absorb window-for-window into exactly
    /// the serial windowed pass — whole-run totals and every individual
    /// window.
    #[test]
    fn planned_window_shards_reconstruct_the_serial_windows(
        task_a in trace_strategy(192, 260),
        task_b in trace_strategy(192, 260),
        window_len in 1u64..90,
        stride in 1u64..40,
    ) {
        use compmem_cache::{CurveResolution, PlannedWindowedProfiler, StackDistanceProfiler,
            WindowConfig, WindowPlan, WindowedProfiler};

        let mut table = RegionTable::new();
        let ra = table
            .insert("a.data", RegionKind::TaskData { task: TaskId::new(0) }, 192 * 64)
            .unwrap();
        let rb = table
            .insert("b.data", RegionKind::TaskData { task: TaskId::new(1) }, 192 * 64)
            .unwrap();
        let base_a = table.region(ra).base;
        let base_b = table.region(rb).base;
        let accesses: Vec<Access> = task_a
            .iter()
            .map(|&l| Access::load(base_a.offset(l * 64), 4, TaskId::new(0), ra))
            .chain(task_b.iter().map(|&l| {
                Access::load(base_b.offset(l * 64), 4, TaskId::new(1), rb)
            }))
            .collect();
        // A monotone cycle clock, several accesses per cycle when the
        // stride is small relative to the window.
        let cycles: Vec<u64> = (0..accesses.len() as u64).map(|i| i / stride).collect();

        let resolution = CurveResolution::new(4, 32, 4).unwrap();
        let config = WindowConfig::accesses(window_len).unwrap();
        let mut serial = WindowedProfiler::new(config, resolution, &table);
        for (access, &cycle) in accesses.iter().zip(&cycles) {
            serial.observe_at(cycle, access);
        }
        let serial = serial.finish();

        let plan = WindowPlan::from_cycles(config, cycles.iter().copied());
        let run_shard = |shard: StackDistanceProfiler, key: Option<TaskId>| {
            let mut planned = PlannedWindowedProfiler::new(shard, plan.clone());
            for (ordinal, access) in accesses.iter().enumerate() {
                if key.is_none() || key == Some(access.task) {
                    planned.observe(ordinal as u64, access);
                }
            }
            planned.finish()
        };
        let mut merged = run_shard(
            StackDistanceProfiler::aggregate_only(resolution, &table),
            None,
        );
        for task in [TaskId::new(0), TaskId::new(1)] {
            let shard = run_shard(
                StackDistanceProfiler::keys_only(resolution, &table),
                Some(task),
            );
            merged.absorb_shard(&shard).unwrap();
        }
        prop_assert_eq!(&merged.total, &serial.total);
        prop_assert_eq!(merged.windows.len(), serial.windows.len());
        for (m, s) in merged.windows.iter().zip(&serial.windows) {
            prop_assert_eq!(m, s);
        }
    }

    /// The controller's solver stage is install-safe by construction: for
    /// any access stream and any window grid, every map it emits — the
    /// equal-split start map, the fresh first pack, and every
    /// `pack_stable` chained against the previously installed map — has
    /// the target geometry and covers every region. The schedule
    /// assembled from the whole run passes
    /// [`PartitionSchedule::validate_for`], the exact check
    /// `MemorySystem::push_switch` applies before installing.
    #[test]
    fn controller_solver_maps_always_validate(
        task_a in trace_strategy(192, 300),
        task_b in trace_strategy(192, 300),
        window_len in 1u64..120,
    ) {
        let mut table = RegionTable::new();
        let ra = table
            .insert("a.data", RegionKind::TaskData { task: TaskId::new(0) }, 192 * 64)
            .unwrap();
        let rb = table
            .insert("b.data", RegionKind::TaskData { task: TaskId::new(1) }, 192 * 64)
            .unwrap();
        let base_a = table.region(ra).base;
        let base_b = table.region(rb).base;
        let accesses: Vec<Access> = task_a
            .iter()
            .map(|&l| Access::load(base_a.offset(l * 64), 4, TaskId::new(0), ra))
            .chain(task_b.iter().map(|&l| {
                Access::load(base_b.offset(l * 64), 4, TaskId::new(1), rb)
            }))
            .collect();

        let geometry = CacheGeometry::new(64, 4).unwrap();
        let sets_per_unit = 2;
        let lattice = CacheSizeLattice::new(geometry, sets_per_unit);
        let resolution = CurveResolution::for_geometry(geometry, sets_per_unit).unwrap();
        let mut profiler = WindowedProfiler::new(
            WindowConfig::accesses(window_len).unwrap(),
            resolution,
            &table,
        );
        for a in &accesses {
            profiler.observe(a);
        }
        let windowed = profiler.finish();

        let solver = SolverContext {
            table: &table,
            lattice: &lattice,
            geometry,
            optimizer: OptimizerKind::ExactIlp,
        };
        let mut current = solver.equal_split().unwrap();
        prop_assert_eq!(current.geometry(), geometry);
        prop_assert!(current.validate_covers(&table).is_ok());
        let mut steps = vec![(0u64, OrganizationSpec::SetPartitioned(current.clone()))];
        for (i, window) in windowed.windows.iter().enumerate() {
            let allocation = solver.solve(&window.curves).unwrap();
            let map = if i == 0 {
                solver.pack(&allocation, None).unwrap()
            } else {
                solver.pack(&allocation, Some(&current)).unwrap()
            };
            prop_assert_eq!(map.geometry(), geometry, "window {} map geometry", i);
            prop_assert!(map.validate_covers(&table).is_ok(), "window {} coverage", i);
            if map != current {
                steps.push((i as u64 + 1, OrganizationSpec::SetPartitioned(map.clone())));
            }
            current = map;
        }
        let schedule = PartitionSchedule::new(steps).unwrap();
        prop_assert!(schedule.validate_for(geometry, &table).is_ok());
    }
}

/// A policy that observes every window but never switches.
struct Never;

impl ControllerPolicy for Never {
    fn name(&self) -> &str {
        "never"
    }

    fn observe(
        &mut self,
        _solver: &SolverContext<'_>,
        _tick: &ControllerTick<'_>,
    ) -> Result<Option<PartitionMap>, CoreError> {
        Ok(None)
    }
}

/// The once-recorded tiny MPEG-2 trace plus its equal-split static
/// replay, shared by every case of the replay-backed property below.
struct ControllerFixture {
    platform: PlatformConfig,
    l2: CacheConfig,
    trace: Arc<PreparedTrace>,
    lattice: CacheSizeLattice,
    resolution: CurveResolution,
    makespan: u64,
    static_outcome: RunOutcome,
}

fn controller_fixture() -> &'static ControllerFixture {
    static FIXTURE: OnceLock<ControllerFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let l2 = CacheConfig::with_size_bytes(32 * 1024, 4).unwrap();
        let config = ExperimentConfig {
            l2,
            sets_per_unit: 2,
            ..ExperimentConfig::default()
        };
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(config, move || mpeg2_app(&params).expect("valid params"));
        let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        let platform = experiment.config().platform;
        let keys = PartitionKey::distinct_keys(trace.table());
        let map = PartitionMap::equal_split(l2.geometry(), &keys).unwrap();
        let static_outcome = run_replay(
            &platform,
            &ScenarioSpec::replay(
                l2,
                OrganizationSpec::SetPartitioned(map),
                Arc::clone(&trace),
            ),
        )
        .unwrap();
        ControllerFixture {
            platform,
            l2,
            trace,
            lattice: CacheSizeLattice::new(l2.geometry(), 2),
            resolution: CurveResolution::for_geometry(l2.geometry(), 2).unwrap(),
            makespan: live.report.makespan_cycles,
            static_outcome,
        }
    })
}

proptest! {
    // Each case replays the whole trace; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the window grid, a controller that never switches is
    /// invisible: its controlled replay is byte-identical to the plain
    /// static replay under the same start map, with an empty repartition
    /// log and a static reported schedule.
    #[test]
    fn never_switching_controller_matches_static_for_any_window(divisor in 1u64..96) {
        let f = controller_fixture();
        let window_cycles = (f.makespan / divisor).max(1);
        let config = ControllerConfig::cycles(window_cycles, f.resolution).unwrap();
        let online = replay_controlled(
            &f.platform,
            f.l2,
            &f.lattice,
            &f.trace,
            &mut Never,
            &config,
        )
        .unwrap();
        prop_assert_eq!(&online.outcome, &f.static_outcome);
        prop_assert!(online.outcome.report.repartitions.is_empty());
        prop_assert!(online.schedule.is_static());
    }
}
