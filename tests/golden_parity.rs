//! Golden-parity tests of the unified `Box<dyn CacheModel>` path.
//!
//! The refactor that collapsed the four L2 organisations behind one
//! object-safe trait must be behaviour-preserving: driving a model built
//! from an [`OrganizationSpec`] has to reproduce **byte-identical** miss
//! counts and per-key statistics to constructing the concrete organisation
//! directly — both at the raw access-stream level and through the full
//! discrete-event platform.

use compmem_cache::{
    CacheConfig, CacheModel, CacheSizeLattice, OrganizationSpec, PartitionKey, PartitionMap,
    ProfilingCache, SetPartitionedCache, SharedCache, WayAllocation, WayPartitionedCache,
};
use compmem_platform::{
    Burst, BurstOutcome, Op, PlatformConfig, System, TaskMapping, WorkloadDriver,
};
use compmem_trace::gen::{interleave, looping, strided, StreamParams};
use compmem_trace::{Access, RegionKind, RegionTable, TaskId};

/// Two tasks plus a FIFO buffer: enough region diversity to exercise task,
/// buffer and shared-section partition keys.
fn fixture() -> (RegionTable, Vec<Access>) {
    let mut table = RegionTable::new();
    let r0 = table
        .insert(
            "t0.data",
            RegionKind::TaskData {
                task: TaskId::new(0),
            },
            32 * 1024,
        )
        .unwrap();
    let r1 = table
        .insert(
            "t1.data",
            RegionKind::TaskData {
                task: TaskId::new(1),
            },
            32 * 1024,
        )
        .unwrap();
    let rf = table
        .insert(
            "fifo.stream",
            RegionKind::Fifo {
                buffer: compmem_trace::BufferId::new(0),
            },
            4 * 1024,
        )
        .unwrap();
    let s0 = looping(
        StreamParams::for_region(table.region(r0), TaskId::new(0)),
        24 * 1024,
        64,
        3,
    );
    let s1 = looping(
        StreamParams::for_region(table.region(r1), TaskId::new(1)),
        16 * 1024,
        64,
        4,
    );
    let sf = strided(
        StreamParams::for_region(table.region(rf), TaskId::new(0)),
        64,
        256,
    );
    let trace = interleave(vec![s0, s1, sf]);
    (table, trace)
}

fn partition_map(config: CacheConfig) -> PartitionMap {
    PartitionMap::pack(
        config.geometry(),
        &[
            (PartitionKey::Task(TaskId::new(0)), 32),
            (PartitionKey::Task(TaskId::new(1)), 16),
            (PartitionKey::Buffer(compmem_trace::BufferId::new(0)), 16),
        ],
    )
    .unwrap()
}

fn way_allocation(config: CacheConfig) -> WayAllocation {
    WayAllocation::equal_split(
        config.geometry(),
        &[
            PartitionKey::Task(TaskId::new(0)),
            PartitionKey::Task(TaskId::new(1)),
            PartitionKey::Buffer(compmem_trace::BufferId::new(0)),
        ],
    )
}

/// Feeds the same trace to a directly constructed organisation and to the
/// spec-built trait object, then asserts identical snapshots.
fn assert_trace_parity(direct: &mut dyn CacheModel, spec: OrganizationSpec, table: &RegionTable) {
    let config = CacheConfig::new(128, 4).unwrap();
    let mut boxed = spec.build(config, table).unwrap();
    let (_, trace) = fixture();
    for a in &trace {
        let d = direct.access(a);
        let b = boxed.access(a);
        assert_eq!(d, b, "outcome diverged at access {a:?}");
    }
    assert_eq!(
        direct.snapshot(),
        boxed.snapshot(),
        "per-key statistics diverged for `{}`",
        spec.label()
    );
    assert_eq!(direct.stats().misses, boxed.stats().misses);
}

#[test]
fn shared_spec_matches_direct_construction() {
    let (table, _) = fixture();
    let config = CacheConfig::new(128, 4).unwrap();
    let mut direct = SharedCache::new(config);
    assert_trace_parity(&mut direct, OrganizationSpec::Shared, &table);
}

#[test]
fn set_partitioned_spec_matches_direct_construction() {
    let (table, _) = fixture();
    let config = CacheConfig::new(128, 4).unwrap();
    let map = partition_map(config);
    let mut direct = SetPartitionedCache::new(config, &table, &map).unwrap();
    assert_trace_parity(&mut direct, OrganizationSpec::SetPartitioned(map), &table);
}

#[test]
fn way_partitioned_spec_matches_direct_construction() {
    let (table, _) = fixture();
    let config = CacheConfig::new(128, 4).unwrap();
    let alloc = way_allocation(config);
    let mut direct = WayPartitionedCache::new(config, &table, &alloc).unwrap();
    assert_trace_parity(&mut direct, OrganizationSpec::WayPartitioned(alloc), &table);
}

#[test]
fn profiling_spec_matches_direct_construction_including_profiles() {
    let (table, trace) = fixture();
    let config = CacheConfig::new(128, 4).unwrap();
    let lattice = CacheSizeLattice::new(config.geometry(), 8);
    let mut direct = ProfilingCache::new(config, &table, lattice.clone());
    let mut boxed = OrganizationSpec::Profiling(lattice)
        .build(config, &table)
        .unwrap();
    for a in &trace {
        assert_eq!(direct.access(a), boxed.access(a));
    }
    assert_eq!(direct.snapshot(), boxed.snapshot());
    // The organisation-specific result (the measured profiles) survives the
    // trait-object round trip bit for bit.
    let recovered = boxed
        .into_any()
        .downcast::<ProfilingCache>()
        .expect("profiling spec builds a ProfilingCache");
    assert_eq!(direct.into_profiles(), recovered.into_profiles());
}

/// A deterministic two-task driver: each task streams loads over its own
/// region with a little compute between them.
struct TwoTaskDriver {
    table: RegionTable,
    remaining: Vec<u32>,
    cursor: Vec<u64>,
}

impl TwoTaskDriver {
    fn new(table: RegionTable) -> Self {
        TwoTaskDriver {
            table,
            remaining: vec![40, 40],
            cursor: vec![0, 0],
        }
    }
}

impl WorkloadDriver for TwoTaskDriver {
    fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
        let t = task.index();
        if self.remaining[t] == 0 {
            return BurstOutcome::Finished;
        }
        self.remaining[t] -= 1;
        let region = compmem_trace::RegionId::new(t as u32);
        let base = self.table.region(region).base;
        let mut ops = Vec::new();
        for _ in 0..16 {
            let addr = base.offset((self.cursor[t] % 256) * 64);
            self.cursor[t] += 1;
            ops.push(Op::Compute(3));
            ops.push(Op::Mem(Access::load(addr, 4, task, region)));
        }
        BurstOutcome::Ready(Burst::new(ops))
    }
}

/// Through the full platform (L1s, bus, discrete-event loop), a run against
/// the spec-built L2 is byte-identical to a run against the directly
/// constructed organisation.
#[test]
fn full_system_runs_are_identical_for_spec_and_direct_l2() {
    let (table, _) = fixture();
    let l2 = CacheConfig::new(128, 4).unwrap();
    let map = partition_map(l2);
    let platform = PlatformConfig::default().processors(2);
    let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);

    let direct: Box<dyn CacheModel> = Box::new(SetPartitionedCache::new(l2, &table, &map).unwrap());
    let boxed = OrganizationSpec::SetPartitioned(map)
        .build(l2, &table)
        .unwrap();

    let mut reports = Vec::new();
    for l2_model in [direct, boxed] {
        let mut system = System::new(platform, l2_model, mapping.clone()).unwrap();
        let mut driver = TwoTaskDriver::new(table.clone());
        reports.push(system.run(&mut driver).unwrap());
    }
    assert_eq!(reports[0], reports[1]);
    assert!(reports[0].l2.accesses > 0);
}
