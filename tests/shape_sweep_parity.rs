//! Parity of the analytic L2 shape sweep against the replay sweep.
//!
//! The aggregate stack-distance curve claims the *exact* miss count of a
//! shared LRU L2 at every resolved `(sets, ways)` shape, from one pass
//! over one recording. This test pins that claim down on tiny MPEG-2:
//! every point of [`sweep_shapes_from_curves`] is cross-checked against a
//! full replay of the trace through a freshly built shared L2 of that
//! exact shape — the analytic sweep and the replay sweep must agree
//! **point for point**, and the windowed profile must leave the
//! whole-run curves (and hence the sweep) unchanged.

use std::sync::Arc;

use compmem::experiment::{
    run_replay, sweep_shapes_from_curves, Experiment, ExperimentConfig, ScenarioSpec,
};
use compmem::{CurveResolution, WindowConfig};
use compmem_cache::{CacheConfig, OrganizationSpec};
use compmem_platform::{profile_trace, profile_trace_windowed, PreparedTrace};
use compmem_workloads::apps::{mpeg2_app, Application, Mpeg2Params};

fn tiny_experiment() -> Experiment<impl Fn() -> Application> {
    let params = Mpeg2Params::tiny();
    let config = ExperimentConfig {
        l2: CacheConfig::with_size_bytes(32 * 1024, 4).unwrap(),
        sets_per_unit: 2,
        ..ExperimentConfig::default()
    };
    Experiment::new(config, move || mpeg2_app(&params).expect("valid params"))
}

#[test]
fn analytic_shape_sweep_matches_the_replay_sweep_point_for_point() {
    let experiment = tiny_experiment();
    let (_, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording tiny MPEG-2 succeeds");
    let platform = experiment.config().platform;
    let resolution = experiment.curve_resolution();

    // One profiling pass -> every shape analytically.
    let curves = profile_trace(&platform, &trace, resolution).expect("profiling succeeds");
    let sweep = sweep_shapes_from_curves(&curves);
    assert_eq!(
        sweep.points.len(),
        resolution.levels() * 3,
        "tiny L2 is 4-way: 1/2/4-way columns at every resolved set count"
    );

    // The replay sweep: one full replay per shape, shared organisation.
    for point in &sweep.points {
        let l2 = CacheConfig::new(point.sets, point.ways).expect("resolved shapes are valid");
        let spec = ScenarioSpec::replay(l2, OrganizationSpec::Shared, Arc::clone(&trace));
        let outcome = run_replay(&platform, &spec).expect("replay succeeds");
        assert_eq!(
            outcome.report.l2.accesses, sweep.accesses,
            "every replay sees the identical L2-bound stream"
        );
        assert_eq!(
            outcome.report.l2.misses, point.misses,
            "analytic vs replay diverged at {} sets x {} ways",
            point.sets, point.ways
        );
    }
}

#[test]
fn windowed_profiling_preserves_the_sweep_and_sums_to_the_whole_run() {
    let experiment = tiny_experiment();
    let (_, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording tiny MPEG-2 succeeds");
    let platform = experiment.config().platform;
    let resolution = experiment.curve_resolution();

    let plain = profile_trace(&platform, &trace, resolution).expect("profiling succeeds");
    let windowed = profile_trace_windowed(
        &platform,
        &trace,
        resolution,
        WindowConfig::accesses(1_000).unwrap(),
    )
    .expect("windowed profiling succeeds");

    assert!(windowed.windows.len() > 1);
    assert_eq!(windowed.total, plain, "windowing must not disturb totals");
    assert_eq!(windowed.reconstruct_total(), plain);
    assert_eq!(
        sweep_shapes_from_curves(&windowed.total),
        sweep_shapes_from_curves(&plain)
    );

    // Sum of per-window access counts equals the whole-run counts, per
    // key and in aggregate.
    let total_by_windows: u64 = windowed.windows.iter().map(|w| w.curves.accesses()).sum();
    assert_eq!(total_by_windows, plain.accesses());
    for (key, curve) in &plain.curves {
        let per_window: u64 = windowed
            .windows
            .iter()
            .filter_map(|w| w.curves.curve(*key))
            .map(|c| c.accesses)
            .sum();
        assert_eq!(per_window, curve.accesses, "key {key}");
    }
}

#[test]
fn sweep_resolution_can_exceed_the_experiment_lattice() {
    // The curves resolve any power-of-two resolution requested at
    // profiling time — here finer (1-set minimum) than the experiment's
    // own lattice — and the sweep covers all of it.
    let experiment = tiny_experiment();
    let (_, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording tiny MPEG-2 succeeds");
    let geometry = experiment.config().l2.geometry();
    let resolution = CurveResolution::new(1, geometry.sets(), geometry.ways()).unwrap();
    let curves = profile_trace(&experiment.config().platform, &trace, resolution)
        .expect("profiling succeeds");
    let sweep = sweep_shapes_from_curves(&curves);
    assert_eq!(sweep.set_counts().len(), resolution.levels());
    assert_eq!(sweep.set_counts()[0], 1);
    // The fully-associative direct comparison: a 1-set, 4-way shared L2.
    let spec = ScenarioSpec::replay(
        CacheConfig::new(1, 4).unwrap(),
        OrganizationSpec::Shared,
        Arc::clone(&trace),
    );
    let outcome = run_replay(&experiment.config().platform, &spec).expect("replay succeeds");
    assert_eq!(outcome.report.l2.misses, sweep.point(1, 4).unwrap().misses);
}

#[test]
fn prepared_trace_from_file_roundtrip_profiles_identically() {
    // The CLI path: write the trace to disk, read it back, profile — the
    // persisted bytes are the identity the sidecar hash protects.
    let experiment = tiny_experiment();
    let (_, trace) = experiment
        .record_trace(&experiment.shared_spec())
        .expect("recording tiny MPEG-2 succeeds");
    let dir = std::env::temp_dir().join("compmem-shape-sweep-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mpeg2-tiny.cmt");
    trace.trace().write_to(&path).unwrap();
    let reloaded = PreparedTrace::from(
        compmem_trace::EncodedTrace::read_from(&path).expect("trace file parses"),
    );
    assert_eq!(
        reloaded.trace().content_hash(),
        trace.trace().content_hash()
    );
    let platform = experiment.config().platform;
    let resolution = experiment.curve_resolution();
    assert_eq!(
        profile_trace(&platform, &reloaded, resolution).unwrap(),
        profile_trace(&platform, &trace, resolution).unwrap()
    );
    let _ = std::fs::remove_file(&path);
}
