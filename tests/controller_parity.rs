//! Online-vs-offline parity of the self-tuning cache controller.
//!
//! The controller loop (`compmem::controller`) is correct when it is a
//! strict *causal re-arrangement* of the offline pipeline: with the
//! window grid fixed, every window its own phase (threshold `-1.0`) and
//! the clairvoyant curve feed, the online `Greedy` policy must
//! reproduce the offline `PhasePlan::to_schedule` run **byte for byte**
//! — same switch sequence, same `RepartitionRecord`s (boundaries and
//! flush stats), same final cache snapshot. And a controller that never
//! switches must be invisible: its run is the static run.

use std::sync::Arc;

use compmem::controller::{
    replay_controlled, replay_pushed, ControllerConfig, ControllerPolicy, ControllerTick, Greedy,
    SolverContext,
};
use compmem::experiment::{
    phase_allocations_for_table, run_replay, Experiment, ExperimentConfig, ScenarioSpec,
};
use compmem::{CoreError, OptimizerKind};
use compmem_cache::{
    CacheConfig, CacheSizeLattice, CurveResolution, MissRateCurves, OrganizationSpec, PartitionKey,
    PartitionMap, ReplacementPolicy, WindowConfig,
};
use compmem_platform::{profile_trace_windowed, PlatformConfig, PreparedTrace};
use compmem_workloads::apps::{mpeg2_app, Application, Mpeg2Params};

const SETS_PER_UNIT: u32 = 2;

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        l2: CacheConfig::with_size_bytes(32 * 1024, 4).unwrap(),
        sets_per_unit: SETS_PER_UNIT,
        ..ExperimentConfig::default()
    }
}

fn mpeg2_experiment() -> Experiment<impl Fn() -> Application> {
    let params = Mpeg2Params::tiny();
    Experiment::new(tiny_config(), move || {
        mpeg2_app(&params).expect("valid params")
    })
}

struct Fixture {
    trace: Arc<PreparedTrace>,
    l2: CacheConfig,
    platform: PlatformConfig,
    lattice: CacheSizeLattice,
    resolution: CurveResolution,
    window_cycles: u64,
}

fn fixture() -> Fixture {
    let experiment = mpeg2_experiment();
    let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let l2 = experiment.config().l2;
    Fixture {
        trace,
        l2,
        platform: experiment.config().platform,
        lattice: CacheSizeLattice::new(l2.geometry(), SETS_PER_UNIT),
        resolution: CurveResolution::for_geometry(l2.geometry(), SETS_PER_UNIT).unwrap(),
        window_cycles: (live.report.makespan_cycles / 5).max(1),
    }
}

/// With fixed window boundaries, one phase per window and the
/// clairvoyant feed, the online `Greedy` controller and the offline
/// `PhasePlan::to_schedule` pipeline produce the identical schedule and
/// the identical run: same `ScheduleStep`s, same fired
/// `RepartitionRecord`s (boundary cycles *and* flush stats), same
/// snapshot, same per-key statistics.
#[test]
fn greedy_on_oracle_feed_reproduces_the_offline_schedule_byte_for_byte() {
    let f = fixture();
    let geometry = f.l2.geometry();
    let window = WindowConfig::cycles(f.window_cycles).unwrap();

    let windowed = profile_trace_windowed(&f.platform, &f.trace, f.resolution, window).unwrap();
    assert!(
        windowed.windows.len() >= 3,
        "need several windows for a meaningful parity run, got {}",
        windowed.windows.len()
    );
    let plan = phase_allocations_for_table(
        &windowed,
        -1.0, // every window its own phase
        f.trace.table(),
        &f.lattice,
        geometry,
        OptimizerKind::ExactIlp,
    )
    .unwrap();
    assert_eq!(plan.phases.len(), windowed.windows.len());
    let offline_schedule = plan.to_schedule(&f.lattice, geometry).unwrap();
    let offline = run_replay(
        &f.platform,
        &ScenarioSpec::scheduled_replay(f.l2, offline_schedule.clone(), Arc::clone(&f.trace)),
    )
    .unwrap();

    let config = ControllerConfig::cycles(f.window_cycles, f.resolution)
        .unwrap()
        .oracle_feed();
    let online = replay_controlled(
        &f.platform,
        f.l2,
        &f.lattice,
        &f.trace,
        &mut Greedy,
        &config,
    )
    .unwrap();

    assert_eq!(
        online.schedule, offline_schedule,
        "the controller must emit the offline schedule switch for switch"
    );
    assert_eq!(online.ticks, windowed.windows.len() - 1);

    // The pre-installed offline replay fires on the replayed clock —
    // possibly a few refills *before* the boundary run, when an earlier
    // run's replayed timing overshoots the boundary — so only the switch
    // boundaries are comparable against it.
    let offline_boundaries: Vec<u64> = offline
        .report
        .repartitions
        .iter()
        .map(|r| r.at_cycle)
        .collect();
    let online_boundaries: Vec<u64> = online
        .outcome
        .report
        .repartitions
        .iter()
        .map(|r| r.at_cycle)
        .collect();
    assert_eq!(online_boundaries, offline_boundaries);

    // The byte-for-byte reference: the *same offline schedule* replayed
    // with the controller's stream-order firing semantics (each switch
    // at its boundary run). Decisions and execution must now coincide
    // exactly — same `RepartitionRecord`s, flush stats, snapshot, all.
    let pushed = replay_pushed(&f.platform, f.l2, &offline_schedule, &f.trace).unwrap();
    assert_eq!(
        online.outcome.report.repartitions, pushed.outcome.report.repartitions,
        "every fired switch must match: boundary cycle and flush stats"
    );
    assert_eq!(
        online.outcome, pushed.outcome,
        "the whole run must be identical"
    );
}

/// A policy that observes every window but never switches.
struct Never;

impl ControllerPolicy for Never {
    fn name(&self) -> &str {
        "never"
    }

    fn observe(
        &mut self,
        _solver: &SolverContext<'_>,
        _tick: &ControllerTick<'_>,
    ) -> Result<Option<PartitionMap>, CoreError> {
        Ok(None)
    }
}

/// A never-switching controller does not perturb the run: its outcome is
/// byte-identical to the static run under its start map, its repartition
/// log is empty and its reported schedule is the static single-step one.
#[test]
fn never_switching_controller_is_byte_identical_to_the_static_run() {
    let f = fixture();
    let keys = PartitionKey::distinct_keys(f.trace.table());
    let map = PartitionMap::equal_split(f.l2.geometry(), &keys).unwrap();
    let static_outcome = run_replay(
        &f.platform,
        &ScenarioSpec::replay(
            f.l2,
            OrganizationSpec::SetPartitioned(map.clone()),
            Arc::clone(&f.trace),
        ),
    )
    .unwrap();

    let config = ControllerConfig::cycles(f.window_cycles, f.resolution).unwrap();
    let online =
        replay_controlled(&f.platform, f.l2, &f.lattice, &f.trace, &mut Never, &config).unwrap();

    assert_eq!(
        online.outcome, static_outcome,
        "a silent controller must be invisible"
    );
    assert!(online.outcome.report.repartitions.is_empty());
    assert!(online.schedule.is_static());
    assert_eq!(
        *online.schedule.initial(),
        OrganizationSpec::SetPartitioned(map)
    );
    assert!(online.ticks > 0, "the policy was actually consulted");
}

/// The controller path rejects a non-LRU L2 up front with the typed
/// `CoreError::NonLruProfiling` — its curves would be fiction on any
/// other policy — instead of silently profiling garbage.
#[test]
fn controller_rejects_non_lru_l2_with_a_typed_error() {
    let f = fixture();
    let config = ControllerConfig::cycles(f.window_cycles, f.resolution).unwrap();
    for policy in [
        ReplacementPolicy::Fifo,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Random,
    ] {
        let non_lru = f.l2.policy(policy);
        let err = replay_controlled(
            &f.platform,
            non_lru,
            &f.lattice,
            &f.trace,
            &mut Greedy,
            &config,
        )
        .unwrap_err();
        match err {
            CoreError::NonLruProfiling { policy: name } => {
                assert_eq!(name, policy.to_string());
            }
            other => panic!("expected NonLruProfiling for {policy:?}, got {other:?}"),
        }
    }
}

/// Non-cycle window kinds are rejected: an access-count window can close
/// mid-run, after the boundary's refills already replayed, so the
/// controller could not install the switch at the true window edge.
#[test]
fn controller_rejects_access_count_windows() {
    let f = fixture();
    let config = ControllerConfig {
        window: WindowConfig::accesses(400).unwrap(),
        resolution: f.resolution,
        optimizer: OptimizerKind::ExactIlp,
        feed: compmem::controller::CurveFeed::Measured,
    };
    let err = replay_controlled(
        &f.platform,
        f.l2,
        &f.lattice,
        &f.trace,
        &mut Greedy,
        &config,
    )
    .unwrap_err();
    assert!(
        matches!(err, CoreError::Infeasible { .. }),
        "expected Infeasible, got {err:?}"
    );
}

/// The causal (measured-feed) controller is deterministic: two identical
/// controlled replays produce identical outcomes, schedules and logs.
#[test]
fn measured_feed_controller_is_deterministic() {
    let f = fixture();
    let config = ControllerConfig::cycles(f.window_cycles, f.resolution).unwrap();
    let run = || {
        replay_controlled(
            &f.platform,
            f.l2,
            &f.lattice,
            &f.trace,
            &mut Greedy,
            &config,
        )
        .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first.outcome, second.outcome);
    assert_eq!(first.schedule, second.schedule);
    assert_eq!(first.ticks, second.ticks);
    assert!(
        first.ticks >= 2,
        "the controller must actually tick: {} windows",
        first.ticks
    );
    // Greedy re-solves every window: every boundary after the first
    // window carries an installed switch.
    assert_eq!(first.schedule.switches().len(), first.ticks);
}

/// `MissRateCurves` is consumed by the controller exactly as produced by
/// the profiler: the online profiler's windows equal the offline pass's
/// windows on the same stream (sanity anchor for the feeds).
#[test]
fn online_and_offline_profilers_agree_on_windows() {
    let f = fixture();
    let window = WindowConfig::cycles(f.window_cycles).unwrap();
    let a: Vec<MissRateCurves> =
        profile_trace_windowed(&f.platform, &f.trace, f.resolution, window)
            .unwrap()
            .windows
            .into_iter()
            .map(|w| w.curves)
            .collect();
    let b: Vec<MissRateCurves> =
        profile_trace_windowed(&f.platform, &f.trace, f.resolution, window)
            .unwrap()
            .windows
            .into_iter()
            .map(|w| w.curves)
            .collect();
    assert_eq!(a, b);
}
