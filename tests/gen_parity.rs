//! The workload zoo, end to end: generated traces are first-class
//! scenarios for every analytic and replay path, and the paper's
//! compositionality claim survives an adversarial stress test.
//!
//! Two families of assertions:
//!
//! * **Parity** — the analytic `sweep_shapes` (one stack-distance pass)
//!   equals a full replay **point for point** on a generated Zipf trace
//!   and on a phased multi-program mixture, extending
//!   `shape_sweep_parity.rs` beyond the recorded apps.
//! * **Isolation** — the [`compmem::isolation`] harness: a victim task
//!   with a QoS floor keeps its solo miss rate under an adversarial
//!   streamer when partitioned, while the shared cache measurably
//!   violates the floor; an unmeetable floor is the typed
//!   [`CoreError::QosInfeasible`].

use std::sync::Arc;

use compmem::experiment::{run_replay, sweep_shapes_from_curves, ScenarioSpec};
use compmem::isolation::{run_isolation, IsolationSpec};
use compmem::{CoreError, CurveResolution, OptimizerKind};
use compmem_cache::{CacheConfig, OrganizationSpec};
use compmem_platform::{profile_trace, PlatformConfig, PreparedTrace};
use compmem_trace::gen::{generate, GenKind, GenSpec, GenTask};

fn prepared(spec: &GenSpec) -> Arc<PreparedTrace> {
    Arc::new(PreparedTrace::from(
        generate(spec).expect("valid zoo spec generates"),
    ))
}

/// Analytic sweep == replay sweep, point for point, on one trace.
fn assert_shape_parity(trace: &Arc<PreparedTrace>, l2: CacheConfig, sets_per_unit: u32) {
    let platform = PlatformConfig::default();
    let resolution =
        CurveResolution::for_geometry(l2.geometry(), sets_per_unit).expect("valid resolution");
    let curves = profile_trace(&platform, trace, resolution).expect("profiling succeeds");
    let sweep = sweep_shapes_from_curves(&curves);
    assert!(!sweep.points.is_empty());
    for point in &sweep.points {
        let shape = CacheConfig::new(point.sets, point.ways).expect("resolved shapes are valid");
        let spec = ScenarioSpec::replay(shape, OrganizationSpec::Shared, Arc::clone(trace));
        let outcome = run_replay(&platform, &spec).expect("replay succeeds");
        assert_eq!(outcome.report.l2.accesses, sweep.accesses);
        assert_eq!(
            outcome.report.l2.misses, point.misses,
            "analytic vs replay diverged at {} sets x {} ways",
            point.sets, point.ways
        );
    }
}

#[test]
fn analytic_sweep_matches_replay_on_a_generated_zipf_trace() {
    let trace = prepared(&GenSpec::single(
        GenKind::Zipf {
            working_set_bytes: 32 * 1024,
        },
        7,
        20_000,
    ));
    assert_shape_parity(
        &trace,
        CacheConfig::with_size_bytes(32 * 1024, 4).unwrap(),
        2,
    );
}

#[test]
fn analytic_sweep_matches_replay_on_a_phased_mixture() {
    // A two-program mix with real phase structure: the controller's
    // traffic shape, profiled and replayed like any recorded app.
    let trace = prepared(&GenSpec::mix(
        vec![
            GenTask {
                kind: GenKind::Phased {
                    hot_bytes: 8 * 1024,
                    scan_bytes: 128 * 1024,
                    phase_accesses: 2_048,
                },
                accesses: 12_000,
            },
            GenTask {
                kind: GenKind::Zipf {
                    working_set_bytes: 24 * 1024,
                },
                accesses: 12_000,
            },
        ],
        7,
    ));
    assert_shape_parity(
        &trace,
        CacheConfig::with_size_bytes(32 * 1024, 4).unwrap(),
        2,
    );
}

/// The victim/streamer pair of the isolation experiment: a pointer chase
/// whose working set fits half the L2, against a scan four times its
/// rate over four times the cache.
fn victim_and_mix() -> (Arc<PreparedTrace>, Arc<PreparedTrace>) {
    let victim = GenTask {
        kind: GenKind::Chase {
            working_set_bytes: 24 * 1024,
        },
        accesses: 20_000,
    };
    let streamer = GenTask {
        kind: GenKind::Scan {
            footprint_bytes: 256 * 1024,
        },
        accesses: 80_000,
    };
    // Same seed and same task index -> the victim's stream (and its
    // region base) is identical in both traces.
    let solo = prepared(&GenSpec::mix(vec![victim], 42));
    let mix = prepared(&GenSpec::mix(vec![victim, streamer], 42));
    (solo, mix)
}

fn isolation_spec() -> IsolationSpec {
    IsolationSpec {
        l2: CacheConfig::with_size_bytes(64 * 1024, 4).unwrap(),
        sets_per_unit: 16,
        victim: compmem_trace::TaskId::new(0),
        max_miss_rate: 0.05,
        solver: OptimizerKind::ExactIlp,
    }
}

#[test]
fn qos_floor_isolates_the_victim_from_an_adversarial_streamer() {
    let (solo, mix) = victim_and_mix();
    let report = run_isolation(&PlatformConfig::default(), &isolation_spec(), solo, mix)
        .expect("isolation experiment runs");

    // The baseline: alone, the victim's working set fits and it mostly
    // hits; under the shared cache the streamer evicts it wholesale.
    assert!(
        report.solo.miss_rate() < 0.05,
        "solo miss rate {:.4} should be low",
        report.solo.miss_rate()
    );
    assert!(
        report.shared_violates_floor(),
        "shared run must violate the floor: {:.4}",
        report.shared.miss_rate()
    );
    assert!(
        report.shared_delta() > 0.5,
        "the adversary should devastate the shared victim (delta {:.4})",
        report.shared_delta()
    );

    // The claim: with a floor-solved partition the victim stays within
    // tolerance of solo, under the same adversary.
    assert!(
        report.floor_holds(),
        "partitioned miss rate {:.4} must stay under the floor",
        report.partitioned.miss_rate()
    );
    assert!(
        report.partitioned_delta().abs() < 0.02,
        "partitioned must stay within 2pp of solo (delta {:.4})",
        report.partitioned_delta()
    );

    // The victim's L2-bound stream is identical in solo and mix (private
    // L1s, same seed, same processor) — the comparison is apples to
    // apples.
    assert_eq!(report.solo.accesses, report.shared.accesses);
    assert_eq!(report.solo.accesses, report.partitioned.accesses);

    // The report renders all three configurations.
    let text = report.to_string();
    assert!(text.contains("solo/shared"));
    assert!(text.contains("floor holds under the adversary"));
}

#[test]
fn unmeetable_qos_floor_is_a_typed_error() {
    let (_, mix) = victim_and_mix();
    let spec = IsolationSpec {
        max_miss_rate: 0.0001,
        ..isolation_spec()
    };
    let err = run_isolation(
        &PlatformConfig::default(),
        &spec,
        Arc::clone(&mix),
        Arc::clone(&mix),
    )
    .expect_err("a 0.01% floor is unmeetable for a 24 KB chase");
    assert!(
        matches!(err, CoreError::QosInfeasible { .. }),
        "expected QosInfeasible, got {err:?}"
    );
    assert!(err.to_string().contains("QoS floor"));
}
