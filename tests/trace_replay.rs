//! Golden parity of the trace record/replay pipeline.
//!
//! Recording a live run and replaying the trace must be **exact**: under
//! the organisation the trace was recorded with, the replay's
//! `CacheSnapshot` (aggregate, per-task, per-region and per-partition
//! counters) is byte-identical to the live run's, for every one of the
//! four L2 organisations — and replays are deterministic for every
//! replacement policy, including the (seeded) random one.

use std::sync::Arc;

use compmem::experiment::{run_replay, Experiment, ExperimentConfig, ScenarioSpec};
use compmem_cache::{CacheConfig, OrganizationSpec, PartitionKey, PartitionMap, ReplacementPolicy};
use compmem_trace::RegionKind;
use compmem_workloads::apps::{mpeg2_app, Application, Mpeg2Params};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        l2: CacheConfig::with_size_bytes(32 * 1024, 4).unwrap(),
        sets_per_unit: 2,
        ..ExperimentConfig::default()
    }
}

fn mpeg2_experiment() -> Experiment<impl Fn() -> Application> {
    let params = Mpeg2Params::tiny();
    Experiment::new(tiny_config(), move || {
        mpeg2_app(&params).expect("valid params")
    })
}

/// An equal-split set-partitioned organisation over every entity of the
/// application (golden parity needs *an* exclusive allocation, not the
/// optimised one).
fn equal_split_partitioned(
    experiment: &Experiment<impl Fn() -> Application>,
    app: &Application,
) -> ScenarioSpec {
    let l2 = experiment.config().l2;
    let keys = PartitionKey::distinct_keys(app.space.table());
    let map = PartitionMap::equal_split(l2.geometry(), &keys).unwrap();
    ScenarioSpec::live(l2, OrganizationSpec::SetPartitioned(map))
}

/// Recording the MPEG-2 application under each of the four organisations
/// and replaying the trace under the same organisation reproduces the live
/// run's `CacheSnapshot` byte for byte.
#[test]
fn replaying_a_recorded_mpeg2_trace_matches_the_live_snapshot_for_all_organisations() {
    let experiment = mpeg2_experiment();
    let app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
    let specs: Vec<ScenarioSpec> = vec![
        experiment.shared_spec(),
        equal_split_partitioned(&experiment, &app),
        experiment.way_partitioned_spec(),
        experiment.profiling_spec(),
    ];
    for spec in specs {
        let label = spec.label();
        let (live, trace) = experiment.record_trace(&spec).unwrap();
        assert!(trace.accesses() > 0, "{label}: trace must not be empty");

        let replayed = experiment
            .run(&spec.clone().replaying(trace.clone()))
            .unwrap();
        assert_eq!(
            live.l2_snapshot, replayed.l2_snapshot,
            "{label}: replay must reproduce the live CacheSnapshot exactly"
        );
        assert_eq!(live.by_key, replayed.by_key, "{label}: per-key stats");
        assert_eq!(live.report.l1, replayed.report.l1, "{label}: L1 stats");
        assert_eq!(
            live.report.dram_accesses, replayed.report.dram_accesses,
            "{label}: DRAM traffic"
        );
        assert_eq!(
            live.report.dram_writebacks, replayed.report.dram_writebacks,
            "{label}: DRAM write-backs"
        );
        assert_eq!(
            live.report.bus_bytes, replayed.report.bus_bytes,
            "{label}: bus traffic"
        );
    }
}

/// The recorded trace embeds everything a scenario needs: the standalone
/// replay runner works from the trace alone (no application factory) and
/// its region table matches the application's.
#[test]
fn recorded_trace_is_a_self_contained_scenario() {
    let experiment = mpeg2_experiment();
    let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();

    let app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
    assert_eq!(trace.table().len(), app.space.table().len());
    for (a, b) in app.space.table().iter().zip(trace.table().iter()) {
        assert_eq!(a, b, "embedded region table must match the application's");
    }
    assert!(trace
        .table()
        .iter()
        .any(|r| matches!(r.kind, RegionKind::Fifo { .. })));

    let outcome = run_replay(
        &experiment.config().platform,
        &experiment.shared_spec().replaying(trace),
    )
    .unwrap();
    assert_eq!(outcome.l2_snapshot, live.l2_snapshot);
}

/// Every replacement policy builds through `OrganizationSpec` and replays
/// the same trace deterministically — two replays under the same policy
/// (including seeded Random) produce identical snapshots.
#[test]
fn every_replacement_policy_replays_deterministically() {
    let experiment = mpeg2_experiment();
    let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let platform = experiment.config().platform;

    let mut snapshots = Vec::new();
    for policy in ReplacementPolicy::ALL {
        let l2 = CacheConfig::with_size_bytes(32 * 1024, 4)
            .unwrap()
            .policy(policy);
        let spec = ScenarioSpec::replay(l2, OrganizationSpec::Shared, trace.clone());
        let first = run_replay(&platform, &spec).unwrap();
        let second = run_replay(&platform, &spec).unwrap();
        assert_eq!(
            first.l2_snapshot, second.l2_snapshot,
            "policy {policy}: replay must be deterministic"
        );
        assert_eq!(first.report, second.report, "policy {policy}: full report");
        assert!(first.report.l2.accesses > 0);
        snapshots.push((policy, first.l2_snapshot));
    }
    // All policies see the identical L2-bound stream; only hit/miss splits
    // may differ.
    let accesses = snapshots[0].1.aggregate.accesses;
    for (policy, snapshot) in &snapshots {
        assert_eq!(
            snapshot.aggregate.accesses, accesses,
            "policy {policy}: L2 access count is traffic, not policy"
        );
    }
}

/// Replays under a *different* seeded-random configuration still replay the
/// identical traffic (accesses), while the seed changes the eviction
/// pattern — the determinism is per-configuration, not an accident of a
/// shared global state.
#[test]
fn random_policy_determinism_is_seed_scoped() {
    let experiment = mpeg2_experiment();
    let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let platform = experiment.config().platform;
    let run_with_seed = |seed: u64| {
        let l2 = CacheConfig::with_size_bytes(32 * 1024, 4)
            .unwrap()
            .policy(ReplacementPolicy::Random)
            .seed(seed);
        let spec = ScenarioSpec::replay(l2, OrganizationSpec::Shared, Arc::clone(&trace));
        run_replay(&platform, &spec).unwrap()
    };
    let a1 = run_with_seed(1);
    let a2 = run_with_seed(1);
    let b = run_with_seed(2);
    assert_eq!(a1.l2_snapshot, a2.l2_snapshot);
    assert_eq!(a1.report.l2.accesses, b.report.l2.accesses);
}
