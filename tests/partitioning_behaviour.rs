//! Integration tests of the qualitative claims of the paper on controlled
//! synthetic workloads (independent of the multimedia applications).

use compmem_cache::{
    CacheConfig, CacheModel, PartitionKey, PartitionMap, ReplacementPolicy, SetAssocCache,
    SetPartitionedCache, SharedCache, WayAllocation, WayPartitionedCache,
};
use compmem_trace::gen::{interleave, looping, StreamParams};
use compmem_trace::{Access, RegionKind, RegionTable, TaskId};

/// Builds a region table with `n` tasks, each owning a `bytes`-sized data
/// region, and returns per-task looping access streams over their region.
fn looping_tasks(n: usize, bytes: u64, repeats: usize) -> (RegionTable, Vec<Vec<Access>>) {
    let mut table = RegionTable::new();
    let mut streams = Vec::new();
    for i in 0..n {
        let task = TaskId::new(i as u32);
        let region = table
            .insert(format!("t{i}.data"), RegionKind::TaskData { task }, bytes)
            .unwrap();
        let params = StreamParams::for_region(table.region(region), task);
        streams.push(looping(params, bytes, 64, repeats));
    }
    (table, streams)
}

/// The central claim: with exclusive set partitions, co-scheduling does not
/// change any task's miss count, while in a shared cache it does.
#[test]
fn co_scheduling_perturbs_shared_but_not_partitioned_caches() {
    // Four tasks, each with a 32 KB working set; a 64 KB cache holds two of
    // them but not four.
    let (table, streams) = looping_tasks(4, 32 * 1024, 6);
    let config = CacheConfig::with_size_bytes(64 * 1024, 4).unwrap();
    let interleaved = interleave(streams.clone());

    // Stand-alone misses per task (task alone in the machine).
    let mut standalone = Vec::new();
    for stream in &streams {
        let mut cache = SharedCache::new(config);
        for a in stream {
            cache.access(a);
        }
        standalone.push(cache.stats().misses);
    }

    // Shared cache, co-scheduled: inter-task conflicts inflate misses.
    let mut shared = SharedCache::new(config);
    for a in &interleaved {
        shared.access(a);
    }
    let shared_total: u64 = shared.stats().misses;
    assert!(
        shared_total > standalone.iter().sum::<u64>() * 2,
        "co-scheduling should thrash the shared cache: {shared_total} vs {standalone:?}"
    );

    // Partitioned cache, co-scheduled: every task gets a quarter of the
    // cache; its misses equal its stand-alone misses *with that partition*.
    let sizes: Vec<(PartitionKey, u32)> = (0..4)
        .map(|i| (PartitionKey::Task(TaskId::new(i)), 64))
        .collect();
    let map = PartitionMap::pack(config.geometry(), &sizes).unwrap();
    let mut partitioned = SetPartitionedCache::new(config, &table, &map).unwrap();
    for a in &interleaved {
        partitioned.access(a);
    }
    for i in 0..4u32 {
        let mut alone = SetPartitionedCache::new(config, &table, &map).unwrap();
        for a in &streams[i as usize] {
            alone.access(a);
        }
        assert_eq!(
            partitioned.stats_by_task().get(&TaskId::new(i)).misses,
            alone.stats_by_task().get(&TaskId::new(i)).misses,
            "task {i} misses depend on co-runners under partitioning"
        );
    }
}

/// The granularity argument of §2: with more entities than ways, column
/// caching must share ways and loses isolation, while set partitioning keeps
/// every entity isolated.
#[test]
fn way_partitioning_granularity_is_limited_by_associativity() {
    let (table, streams) = looping_tasks(8, 8 * 1024, 6);
    let config = CacheConfig::with_size_bytes(64 * 1024, 4).unwrap();
    let interleaved = interleave(streams.clone());
    let keys: Vec<PartitionKey> = (0..8).map(|i| PartitionKey::Task(TaskId::new(i))).collect();

    // Set partitioning: eight exclusive partitions of 8 KB each.
    let sizes: Vec<(PartitionKey, u32)> = keys.iter().map(|&k| (k, 32)).collect();
    let map = PartitionMap::pack(config.geometry(), &sizes).unwrap();
    let mut set_part = SetPartitionedCache::new(config, &table, &map).unwrap();
    for a in &interleaved {
        set_part.access(a);
    }

    // Way partitioning: only four ways exist, so the eight tasks must share.
    let alloc = WayAllocation::equal_split(config.geometry(), &keys);
    let mut way_part = WayPartitionedCache::new(config, &table, &alloc).unwrap();
    for a in &interleaved {
        way_part.access(a);
    }

    assert!(
        way_part.stats().misses > set_part.stats().misses,
        "sharing ways must cost misses: way={} set={}",
        way_part.stats().misses,
        set_part.stats().misses
    );
    // Under set partitioning each 8 KB working set fits its 8 KB partition:
    // only cold misses remain.
    assert_eq!(set_part.stats().misses, set_part.stats().cold_misses);
}

/// The FIFO sizing rule of §4.1: a partition as large as the FIFO turns all
/// steady-state FIFO accesses into hits (only cold misses remain), while a
/// smaller partition does not guarantee that.
#[test]
fn fifo_sized_partition_leaves_only_cold_misses() {
    use compmem_kpn::Fifo;
    use compmem_trace::{AccessSink, TraceBuffer};

    let mut table = RegionTable::new();
    let capacity_tokens = 4096; // 16 KB FIFO
    let region = table
        .insert(
            "fifo.big",
            RegionKind::Fifo {
                buffer: compmem_trace::BufferId::new(0),
            },
            capacity_tokens as u64 * 4,
        )
        .unwrap();
    let base = table.region(region).base;
    let mut fifo = Fifo::new("big", region, base, capacity_tokens);

    // Producer and consumer chase each other around the circular buffer.
    let mut trace = TraceBuffer::new();
    let producer = TaskId::new(0);
    let consumer = TaskId::new(1);
    for round in 0..20_000 {
        fifo.push(&mut trace, producer, round);
        let _ = fifo.pop(&mut trace, consumer);
    }

    let config = CacheConfig::with_size_bytes(256 * 1024, 4).unwrap();
    let fifo_bytes = capacity_tokens as u64 * 4;
    let sets_needed = (fifo_bytes / (4 * 64)) as u32; // ways * line size
    let run = |sets: u32| {
        let map = PartitionMap::pack(
            config.geometry(),
            &[(PartitionKey::Buffer(compmem_trace::BufferId::new(0)), sets)],
        )
        .unwrap();
        let mut cache = SetPartitionedCache::new(config, &table, &map).unwrap();
        for a in trace.accesses() {
            cache.access(a);
        }
        (cache.stats().misses, cache.stats().cold_misses)
    };

    let (misses_full, cold_full) = run(sets_needed);
    assert_eq!(
        misses_full, cold_full,
        "a FIFO-sized partition must leave only cold misses"
    );
    let (misses_half, _) = run(sets_needed / 4);
    assert!(
        misses_half >= misses_full,
        "an undersized FIFO partition cannot do better"
    );

    // Silence the unused-trait warning for AccessSink (used via TraceBuffer).
    fn _assert_sink<S: AccessSink>(_: &S) {}
    _assert_sink(&trace);
}

/// Replacement-policy sensitivity: the compositionality property does not
/// depend on the policy — under exclusive partitions a task's misses are
/// co-runner-independent for every policy.
#[test]
fn partition_isolation_holds_for_every_replacement_policy() {
    let (table, streams) = looping_tasks(2, 16 * 1024, 4);
    let interleaved = interleave(streams.clone());
    for policy in ReplacementPolicy::ALL {
        let config = CacheConfig::with_size_bytes(32 * 1024, 4)
            .unwrap()
            .policy(policy);
        let sizes = vec![
            (PartitionKey::Task(TaskId::new(0)), 64),
            (PartitionKey::Task(TaskId::new(1)), 64),
        ];
        let map = PartitionMap::pack(config.geometry(), &sizes).unwrap();
        let mut together = SetPartitionedCache::new(config, &table, &map).unwrap();
        for a in &interleaved {
            together.access(a);
        }
        let mut alone = SetPartitionedCache::new(config, &table, &map).unwrap();
        for a in &streams[0] {
            alone.access(a);
        }
        assert_eq!(
            together.stats_by_task().get(&TaskId::new(0)).misses,
            alone.stats_by_task().get(&TaskId::new(0)).misses,
            "policy {policy}"
        );
    }
}

/// A plain set-associative cache obeys the inclusion-ish monotonicity the
/// optimiser relies on: more sets never means more misses for the looping
/// streams the workloads are made of.
#[test]
fn looping_streams_have_monotone_miss_profiles() {
    let (_, streams) = looping_tasks(1, 64 * 1024, 5);
    let stream = &streams[0];
    let mut previous = u64::MAX;
    for sets in [16u32, 32, 64, 128, 256, 512] {
        let mut cache = SetAssocCache::new(CacheConfig::new(sets, 4).unwrap());
        for a in stream {
            cache.access(a);
        }
        assert!(
            cache.stats().misses <= previous,
            "misses increased from {previous} to {} at {sets} sets",
            cache.stats().misses
        );
        previous = cache.stats().misses;
    }
}
