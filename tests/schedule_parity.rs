//! Golden parity and determinism of time-varying partition schedules.
//!
//! A `PartitionSchedule` must be a strict generalisation of the static
//! organisation API: a one-step schedule (and a schedule that re-applies
//! the identical map mid-run) is **byte-identical** — full
//! `CacheSnapshot` — to the equivalent static run, for every partitioned
//! organisation; a genuinely different mid-run repartition is
//! deterministic (same schedule twice ⇒ identical snapshots and flush
//! stats) and its flush traffic is visible in the timing path.

use std::sync::Arc;

use compmem::experiment::{run_replay, Experiment, ExperimentConfig, ScenarioSpec};
use compmem_cache::{
    CacheConfig, OrganizationSpec, PartitionKey, PartitionMap, PartitionSchedule, WayAllocation,
};
use compmem_platform::PreparedTrace;
use compmem_workloads::apps::{mpeg2_app, Application, Mpeg2Params};

fn tiny_config() -> ExperimentConfig {
    ExperimentConfig {
        l2: CacheConfig::with_size_bytes(32 * 1024, 4).unwrap(),
        sets_per_unit: 2,
        ..ExperimentConfig::default()
    }
}

fn mpeg2_experiment() -> Experiment<impl Fn() -> Application> {
    let params = Mpeg2Params::tiny();
    Experiment::new(tiny_config(), move || {
        mpeg2_app(&params).expect("valid params")
    })
}

/// The distinct entity keys of the recorded trace, plus an equal-split
/// map over them.
fn keys_and_map(trace: &PreparedTrace, l2: CacheConfig) -> (Vec<PartitionKey>, PartitionMap) {
    let keys = PartitionKey::distinct_keys(trace.table());
    let map = PartitionMap::equal_split(l2.geometry(), &keys).unwrap();
    (keys, map)
}

/// A one-step `PartitionSchedule` — and a two-step schedule whose switch
/// re-applies the *identical* organisation — reproduce the static run's
/// `CacheSnapshot` byte for byte, for the set-partitioned, the
/// way-partitioned and the shared organisation.
#[test]
fn redundant_schedules_are_snapshot_identical_to_the_static_run() {
    let experiment = mpeg2_experiment();
    let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let l2 = experiment.config().l2;
    let platform = experiment.config().platform;
    let (keys, map) = keys_and_map(&trace, l2);
    let mid = live.report.makespan_cycles / 2;

    let organisations = vec![
        OrganizationSpec::Shared,
        OrganizationSpec::SetPartitioned(map),
        OrganizationSpec::WayPartitioned(WayAllocation::equal_split(l2.geometry(), &keys)),
    ];
    for organization in organisations {
        let label = organization.label();
        let static_spec = ScenarioSpec::replay(l2, organization.clone(), Arc::clone(&trace));
        let static_outcome = run_replay(&platform, &static_spec).unwrap();
        assert!(static_outcome.report.repartitions.is_empty());

        // One-step schedule == static.
        let single = ScenarioSpec::scheduled_replay(
            l2,
            PartitionSchedule::single(organization.clone()),
            Arc::clone(&trace),
        );
        let single_outcome = run_replay(&platform, &single).unwrap();
        assert_eq!(
            single_outcome, static_outcome,
            "{label}: a one-step schedule must be the static run"
        );

        // A mid-run switch to the *identical* organisation flushes
        // nothing and leaves the whole outcome untouched (only the fired
        // event's record differs, by construction).
        let redundant = ScenarioSpec::scheduled_replay(
            l2,
            PartitionSchedule::new(vec![(0, organization.clone()), (mid, organization.clone())])
                .unwrap(),
            Arc::clone(&trace),
        );
        let redundant_outcome = run_replay(&platform, &redundant).unwrap();
        assert_eq!(
            redundant_outcome.l2_snapshot, static_outcome.l2_snapshot,
            "{label}: re-applying the identical organisation must not disturb the cache"
        );
        assert_eq!(redundant_outcome.by_key, static_outcome.by_key);
        assert_eq!(
            redundant_outcome.report.bus_bytes, static_outcome.report.bus_bytes,
            "{label}: a zero-line flush must add no bus traffic"
        );
        assert_eq!(redundant_outcome.report.repartitions.len(), 1);
        let record = redundant_outcome.report.repartitions[0];
        assert_eq!(record.at_cycle, mid);
        assert_eq!(record.flush.invalidated, 0, "{label}");
        assert_eq!(record.flush.written_back, 0, "{label}");
    }
}

/// A genuinely different mid-run repartition is deterministic — the same
/// schedule replayed twice produces identical snapshots, reports and
/// flush stats — and its flush write-backs are charged on the timing
/// path (DRAM write-backs and bus traffic).
#[test]
fn mid_run_repartition_is_deterministic_and_charges_its_flushes() {
    let experiment = mpeg2_experiment();
    let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let l2 = experiment.config().l2;
    let platform = experiment.config().platform;
    let (keys, map_a) = keys_and_map(&trace, l2);
    // Same sizes, reversed packing order: every partition moves, so the
    // switch flushes every resident line.
    let reversed: Vec<PartitionKey> = keys.iter().rev().copied().collect();
    let map_b = PartitionMap::equal_split(l2.geometry(), &reversed).unwrap();
    assert_ne!(map_a, map_b);
    let mid = live.report.makespan_cycles / 2;

    let schedule = PartitionSchedule::new(vec![
        (0, OrganizationSpec::SetPartitioned(map_a.clone())),
        (mid, OrganizationSpec::SetPartitioned(map_b)),
    ])
    .unwrap();
    let spec = ScenarioSpec::scheduled_replay(l2, schedule, Arc::clone(&trace));
    let first = run_replay(&platform, &spec).unwrap();
    let second = run_replay(&platform, &spec).unwrap();
    assert_eq!(first, second, "scheduled replays must be deterministic");
    assert_eq!(
        first.report.repartitions, second.report.repartitions,
        "identical flush stats on every run"
    );

    // The switch fired, invalidated resident lines, and its dirty lines
    // were written back through the DRAM/bus path.
    assert_eq!(first.report.repartitions.len(), 1);
    let record = first.report.repartitions[0];
    assert_eq!(record.at_cycle, mid);
    assert!(record.flush.invalidated > 0, "mid-run cache is not empty");
    assert!(record.flush.written_back > 0, "stores left dirty lines");
    let static_outcome = run_replay(
        &platform,
        &ScenarioSpec::replay(l2, OrganizationSpec::SetPartitioned(map_a), trace),
    )
    .unwrap();
    assert!(
        first.report.dram_writebacks >= record.flush.written_back,
        "flush write-backs must reach the DRAM counter"
    );
    assert_ne!(
        first.report.bus_bytes, static_outcome.report.bus_bytes,
        "flush traffic must be visible on the bus"
    );
    // The L2 sees identical traffic either way; only hit/miss (and the
    // repartition conflict misses) differ.
    assert_eq!(first.report.l2.accesses, static_outcome.report.l2.accesses);
    assert!(first.report.l2.misses >= static_outcome.report.l2.misses);
}

/// A switch whose boundary lies beyond the last access still fires —
/// replay matches the live loop's explicit repartition events, so the
/// same schedule fires the same switches on both paths.
#[test]
fn trailing_switches_fire_on_replay_too() {
    let experiment = mpeg2_experiment();
    let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let l2 = experiment.config().l2;
    let platform = experiment.config().platform;
    let (keys, map_a) = keys_and_map(&trace, l2);
    let reversed: Vec<PartitionKey> = keys.iter().rev().copied().collect();
    let map_b = PartitionMap::equal_split(l2.geometry(), &reversed).unwrap();
    let beyond = live.report.makespan_cycles * 2;
    let schedule = PartitionSchedule::new(vec![
        (0, OrganizationSpec::SetPartitioned(map_a)),
        (beyond, OrganizationSpec::SetPartitioned(map_b)),
    ])
    .unwrap();
    let outcome = run_replay(
        &platform,
        &ScenarioSpec::scheduled_replay(l2, schedule, trace),
    )
    .unwrap();
    assert_eq!(
        outcome.report.repartitions.len(),
        1,
        "a trailing switch must fire at end of replay, as it does live"
    );
    assert_eq!(outcome.report.repartitions[0].at_cycle, beyond);
    assert!(outcome.report.repartitions[0].flush.invalidated > 0);
}

/// The streaming EWMA phase detector agrees with the offline curve-delta
/// detector on the tiny MPEG-2 workload — the configuration the CLI's
/// `replay --schedule phases` uses — so a schedule derived online (no
/// second pass) segments the run identically.
#[test]
fn online_phase_detector_agrees_with_offline_on_tiny_mpeg2() {
    use compmem_cache::WindowConfig;
    let experiment = mpeg2_experiment();
    let window = WindowConfig::accesses(400).unwrap();
    let (_, windowed) = experiment.profile_curves_windowed(window).unwrap();
    assert!(windowed.windows.len() > 1, "enough traffic for 2+ windows");
    for threshold in [0.1, 0.5, 10.0] {
        let offline = windowed.phases(threshold);
        let online = windowed.phases_online(threshold);
        assert_eq!(
            online, offline,
            "threshold {threshold}: the detectors must segment tiny MPEG-2 identically"
        );
    }
}

/// `Experiment::run` executes scheduled specs through the same single
/// driver as static ones, live and replayed.
#[test]
fn scheduled_specs_run_through_the_single_experiment_driver() {
    let experiment = mpeg2_experiment();
    let (live, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
    let l2 = experiment.config().l2;
    let (_, map_a) = keys_and_map(&trace, l2);
    let mid = live.report.makespan_cycles / 2;
    let mut resized = map_a.clone();
    // Double the first key's partition by moving it into free space at
    // the top of the cache, if any; otherwise reuse the same map (the
    // test then degenerates to the redundant case, which is still a
    // valid run).
    let first_key = *map_a.iter().next().unwrap().0;
    let sets = map_a.iter().next().unwrap().1.sets;
    if map_a.assigned_sets() + sets * 2 <= l2.geometry().sets() {
        resized
            .assign(first_key, map_a.assigned_sets(), sets * 2)
            .unwrap();
    }
    let schedule = PartitionSchedule::new(vec![
        (0, OrganizationSpec::SetPartitioned(map_a)),
        (mid, OrganizationSpec::SetPartitioned(resized)),
    ])
    .unwrap();

    // Replayed scheduled run through Experiment::run.
    let replay_outcome = experiment
        .run(&ScenarioSpec::scheduled_replay(
            l2,
            schedule.clone(),
            Arc::clone(&trace),
        ))
        .unwrap();
    assert_eq!(replay_outcome.report.repartitions.len(), 1);

    // Live scheduled run: same engine, schedule installed on the live
    // event loop; deterministic.
    let live_spec = ScenarioSpec::scheduled_live(l2, schedule);
    let once = experiment.run(&live_spec).unwrap();
    let twice = experiment.run(&live_spec).unwrap();
    assert_eq!(once, twice, "live scheduled runs must be deterministic");
    assert_eq!(once.report.repartitions.len(), 1);
    assert_eq!(once.l2_snapshot.organization, "set-partitioned");
}
