//! Frame buffers: produced completely, then consumed.

use compmem_trace::{Access, AccessSink, Addr, RegionId, TaskId};

/// A frame buffer mapped onto its own memory region.
///
/// In the paper's application model frame buffers are "intrinsically
/// sequential": a frame is completely produced before any consumer reads it
/// (synchronisation is carried by small control tokens over FIFOs). Giving
/// the buffer an exclusive cache partition therefore preserves
/// compositionality even though several tasks touch it.
///
/// Elements are stored as `i32` but addressed with a configurable element
/// size (1 for 8-bit pixels, 2 for 16-bit coefficients, 4 for words), so the
/// address stream seen by the caches has the real byte footprint.
#[derive(Debug, Clone)]
pub struct FrameStore {
    name: String,
    region: RegionId,
    base: Addr,
    elem_size: u16,
    data: Vec<i32>,
    writes: u64,
    reads: u64,
}

impl FrameStore {
    /// Creates a zero-initialised frame buffer of `len` elements of
    /// `elem_size` bytes each, mapped at `base` in `region`.
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is not 1, 2, 4 or 8 or `len` is zero.
    pub fn new(
        name: impl Into<String>,
        region: RegionId,
        base: Addr,
        len: usize,
        elem_size: u16,
    ) -> Self {
        assert!(
            matches!(elem_size, 1 | 2 | 4 | 8),
            "element size must be 1, 2, 4 or 8 bytes"
        );
        assert!(len > 0, "frame buffer must have at least one element");
        FrameStore {
            name: name.into(),
            region,
            base,
            elem_size,
            data: vec![0; len],
            writes: 0,
            reads: 0,
        }
    }

    /// Name of the frame buffer.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Region the frame buffer lives in.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer has no elements (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the buffer in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.data.len() as u64 * u64::from(self.elem_size)
    }

    /// Total element writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total element reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Byte address of element `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn addr_of(&self, index: usize) -> Addr {
        assert!(index < self.data.len(), "index out of bounds");
        self.base.offset(index as u64 * u64::from(self.elem_size))
    }

    /// Writes element `index` on behalf of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn write<S: AccessSink>(&mut self, sink: &mut S, task: TaskId, index: usize, value: i32) {
        sink.record(Access::store(
            self.addr_of(index),
            self.elem_size,
            task,
            self.region,
        ));
        self.data[index] = value;
        self.writes += 1;
    }

    /// Reads element `index` on behalf of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn read<S: AccessSink>(&mut self, sink: &mut S, task: TaskId, index: usize) -> i32 {
        sink.record(Access::load(
            self.addr_of(index),
            self.elem_size,
            task,
            self.region,
        ));
        self.reads += 1;
        self.data[index]
    }

    /// Reads element `index` without recording an access (verification only).
    pub fn peek(&self, index: usize) -> i32 {
        self.data[index]
    }

    /// Raw contents (for functional verification in tests).
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::{AccessKind, TraceBuffer};

    fn frame() -> FrameStore {
        FrameStore::new("luma", RegionId::new(3), Addr::new(0x8000), 16, 1)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut f = frame();
        let mut sink = TraceBuffer::new();
        let t = TaskId::new(2);
        f.write(&mut sink, t, 5, 200);
        assert_eq!(f.read(&mut sink, t, 5), 200);
        assert_eq!(f.peek(5), 200);
        assert_eq!(f.writes(), 1);
        assert_eq!(f.reads(), 1);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.accesses()[0].kind, AccessKind::Store);
        assert_eq!(sink.accesses()[0].addr, Addr::new(0x8005));
        assert_eq!(sink.accesses()[0].size, 1);
    }

    #[test]
    fn element_size_controls_addresses_and_footprint() {
        let f16 = FrameStore::new("coeff", RegionId::new(4), Addr::new(0), 8, 2);
        assert_eq!(f16.addr_of(3), Addr::new(6));
        assert_eq!(f16.size_bytes(), 16);
        assert_eq!(f16.len(), 8);
        assert!(!f16.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let mut f = frame();
        let mut sink = TraceBuffer::new();
        f.write(&mut sink, TaskId::new(0), 100, 1);
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn bad_elem_size_panics() {
        let _ = FrameStore::new("x", RegionId::new(0), Addr::new(0), 4, 3);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_len_panics() {
        let _ = FrameStore::new("x", RegionId::new(0), Addr::new(0), 0, 1);
    }
}
