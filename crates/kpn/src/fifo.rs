//! Bounded token FIFOs mapped onto their own memory regions.

use std::collections::VecDeque;

use compmem_trace::{Access, AccessSink, Addr, RegionId, TaskId};

/// A bounded FIFO of 4-byte tokens living in its own memory region.
///
/// Every push copies the token into the FIFO's circular buffer in memory
/// (one store) and every pop copies it out (one load); the addresses wrap
/// around the region, exactly like a software circular buffer. The paper's
/// rule for predictable FIFO accesses — allocate the FIFO a cache partition
/// as large as the FIFO itself — works because the region and the partition
/// then have the same number of lines.
#[derive(Debug, Clone)]
pub struct Fifo {
    name: String,
    region: RegionId,
    base: Addr,
    capacity: usize,
    tokens: VecDeque<i32>,
    /// Next slot index to write (wraps at `capacity`).
    write_slot: usize,
    /// Next slot index to read (wraps at `capacity`).
    read_slot: usize,
    total_pushed: u64,
    total_popped: u64,
    producer_finished: bool,
}

impl Fifo {
    /// Creates an empty FIFO of `capacity` tokens mapped at `base` in
    /// `region`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the builder validates this before
    /// allocating the region).
    pub fn new(name: impl Into<String>, region: RegionId, base: Addr, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            name: name.into(),
            region,
            base,
            capacity,
            tokens: VecDeque::with_capacity(capacity),
            write_slot: 0,
            read_slot: 0,
            total_pushed: 0,
            total_popped: 0,
            producer_finished: false,
        }
    }

    /// Name of the FIFO.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Region the FIFO's storage lives in.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Capacity in tokens.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tokens currently queued.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if no token is queued.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Free slots.
    pub fn space(&self) -> usize {
        self.capacity - self.tokens.len()
    }

    /// Total tokens ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total tokens ever popped.
    pub fn total_popped(&self) -> u64 {
        self.total_popped
    }

    /// Marks that the producer will push no more tokens.
    pub fn set_producer_finished(&mut self) {
        self.producer_finished = true;
    }

    /// Returns `true` if the producer has finished and the FIFO is drained.
    pub fn is_closed_and_drained(&self) -> bool {
        self.producer_finished && self.tokens.is_empty()
    }

    /// Pushes a token on behalf of `task`, recording the store to the FIFO's
    /// region in `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full; callers check [`space`](Self::space)
    /// first (blocking write).
    pub fn push<S: AccessSink>(&mut self, sink: &mut S, task: TaskId, value: i32) {
        assert!(self.space() > 0, "push into full fifo `{}`", self.name);
        let addr = self.base.offset(self.write_slot as u64 * 4);
        sink.record(Access::store(addr, 4, task, self.region));
        self.write_slot = (self.write_slot + 1) % self.capacity;
        self.tokens.push_back(value);
        self.total_pushed += 1;
    }

    /// Pops a token on behalf of `task`, recording the load from the FIFO's
    /// region in `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty; callers check
    /// [`len`](Self::len)/[`is_empty`](Self::is_empty) first (blocking read).
    pub fn pop<S: AccessSink>(&mut self, sink: &mut S, task: TaskId) -> i32 {
        assert!(!self.is_empty(), "pop from empty fifo `{}`", self.name);
        let addr = self.base.offset(self.read_slot as u64 * 4);
        sink.record(Access::load(addr, 4, task, self.region));
        self.read_slot = (self.read_slot + 1) % self.capacity;
        self.total_popped += 1;
        self.tokens.pop_front().expect("checked non-empty")
    }

    /// Looks at the `offset`-th queued token without consuming it (no memory
    /// access is recorded; peeking models a register-held head token).
    pub fn peek(&self, offset: usize) -> Option<i32> {
        self.tokens.get(offset).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::{AccessKind, TraceBuffer};

    fn fifo(capacity: usize) -> Fifo {
        Fifo::new("f", RegionId::new(7), Addr::new(0x1000), capacity)
    }

    #[test]
    fn push_pop_is_fifo_ordered() {
        let mut f = fifo(4);
        let mut sink = TraceBuffer::new();
        let t = TaskId::new(0);
        for v in [10, 20, 30] {
            f.push(&mut sink, t, v);
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.space(), 1);
        assert_eq!(f.pop(&mut sink, t), 10);
        assert_eq!(f.pop(&mut sink, t), 20);
        assert_eq!(f.pop(&mut sink, t), 30);
        assert!(f.is_empty());
        assert_eq!(f.total_pushed(), 3);
        assert_eq!(f.total_popped(), 3);
    }

    #[test]
    fn accesses_wrap_around_the_region() {
        let mut f = fifo(2);
        let mut sink = TraceBuffer::new();
        let t = TaskId::new(1);
        // Push/pop four tokens through a two-slot FIFO: slot addresses must
        // alternate between base and base+4.
        for i in 0..4 {
            f.push(&mut sink, t, i);
            let _ = f.pop(&mut sink, t);
        }
        let addrs: Vec<u64> = sink.iter().map(|a| a.addr.value()).collect();
        assert_eq!(
            addrs,
            vec![0x1000, 0x1000, 0x1004, 0x1004, 0x1000, 0x1000, 0x1004, 0x1004]
        );
        assert_eq!(sink.accesses()[0].kind, AccessKind::Store);
        assert_eq!(sink.accesses()[1].kind, AccessKind::Load);
        assert!(sink.iter().all(|a| a.region == RegionId::new(7)));
    }

    #[test]
    fn peek_does_not_consume_or_trace() {
        let mut f = fifo(4);
        let mut sink = TraceBuffer::new();
        f.push(&mut sink, TaskId::new(0), 5);
        let traced = sink.len();
        assert_eq!(f.peek(0), Some(5));
        assert_eq!(f.peek(1), None);
        assert_eq!(f.len(), 1);
        assert_eq!(sink.len(), traced);
    }

    #[test]
    fn producer_finished_tracking() {
        let mut f = fifo(2);
        let mut sink = TraceBuffer::new();
        f.push(&mut sink, TaskId::new(0), 1);
        f.set_producer_finished();
        assert!(!f.is_closed_and_drained());
        let _ = f.pop(&mut sink, TaskId::new(1));
        assert!(f.is_closed_and_drained());
    }

    #[test]
    #[should_panic(expected = "full fifo")]
    fn overfull_push_panics() {
        let mut f = fifo(1);
        let mut sink = TraceBuffer::new();
        f.push(&mut sink, TaskId::new(0), 1);
        f.push(&mut sink, TaskId::new(0), 2);
    }

    #[test]
    #[should_panic(expected = "empty fifo")]
    fn empty_pop_panics() {
        let mut f = fifo(1);
        let mut sink = TraceBuffer::new();
        let _ = f.pop(&mut sink, TaskId::new(0));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = fifo(0);
    }
}
