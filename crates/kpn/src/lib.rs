//! YAPI-style Kahn-process-network runtime.
//!
//! The applications of *"Compositional memory systems for multimedia
//! communicating tasks"* (Molnos et al., DATE 2005) are described with YAPI:
//! parallel tasks that communicate through bounded FIFOs (blocking read /
//! blocking write) and frame buffers. This crate provides that model of
//! computation for the reproduction:
//!
//! * [`Process`] — a task; its [`fire`](Process::fire) method performs one
//!   firing (one grain of work) against a [`FireContext`].
//! * [`Fifo`] — a bounded token FIFO mapped onto its own memory region, so
//!   the partitioned L2 can give it an exclusive partition.
//! * [`FrameStore`] — a frame buffer written completely before it is read,
//!   also mapped onto its own region.
//! * [`Network`] / [`NetworkBuilder`] — the process graph. `Network`
//!   implements [`WorkloadDriver`](compmem_platform::WorkloadDriver), so it
//!   plugs straight into the multiprocessor platform simulator: every firing
//!   becomes a burst of compute instructions, data accesses and
//!   instruction fetches.
//!
//! # Example
//!
//! A two-stage pipeline in which a producer writes squares into a FIFO and a
//! consumer accumulates them:
//!
//! ```
//! use compmem_kpn::{FireContext, FireResult, NetworkBuilder, Process, TaskLayout};
//! use compmem_trace::{AddressSpace, RegionKind};
//!
//! struct Producer { next: i32, count: i32 }
//! impl Process for Producer {
//!     fn name(&self) -> &str { "producer" }
//!     fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
//!         if self.next == self.count { return FireResult::Finished; }
//!         if ctx.space(0) < 1 { return FireResult::Blocked; }
//!         ctx.compute(5);
//!         let v = self.next * self.next;
//!         ctx.push(0, v);
//!         self.next += 1;
//!         FireResult::Fired
//!     }
//! }
//!
//! struct Consumer { sum: i64, seen: i32, count: i32 }
//! impl Process for Consumer {
//!     fn name(&self) -> &str { "consumer" }
//!     fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
//!         if self.seen == self.count { return FireResult::Finished; }
//!         if ctx.available(0) < 1 { return FireResult::Blocked; }
//!         let v = ctx.pop(0);
//!         ctx.compute(2);
//!         self.sum += i64::from(v);
//!         self.seen += 1;
//!         FireResult::Fired
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut space = AddressSpace::new();
//! let mut builder = NetworkBuilder::new();
//! let p = builder.add_process(
//!     Box::new(Producer { next: 0, count: 10 }),
//!     TaskLayout::with_code_size(&mut space, "producer", builder.next_task_id(), 2048)?,
//! );
//! let c = builder.add_process(
//!     Box::new(Consumer { sum: 0, seen: 0, count: 10 }),
//!     TaskLayout::with_code_size(&mut space, "consumer", builder.next_task_id(), 2048)?,
//! );
//! let fifo = builder.add_fifo(&mut space, "squares", 4)?;
//! builder.connect_output(p, 0, fifo)?;
//! builder.connect_input(c, 0, fifo)?;
//! let mut network = builder.build()?;
//! let completed = network.run_functional(10_000)?;
//! assert!(completed);
//! # let _ = RegionKind::AppData;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod error;
mod fifo;
mod frame;
mod network;
mod process;

pub use context::FireContext;
pub use error::KpnError;
pub use fifo::Fifo;
pub use frame::FrameStore;
pub use network::{communication_regions, ChannelId, FrameId, Network, NetworkBuilder};
pub use process::{FireResult, Process, TaskLayout};
