//! Error type of the Kahn-process-network runtime.

use std::error::Error;
use std::fmt;

use compmem_trace::TraceError;

/// Errors produced while building or running a process network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KpnError {
    /// A FIFO was created with zero capacity.
    ZeroCapacityFifo {
        /// Name of the FIFO.
        name: String,
    },
    /// A port was connected to a channel that does not exist.
    UnknownChannel {
        /// Index of the offending channel.
        channel: usize,
    },
    /// A port was connected to a process that does not exist.
    UnknownProcess {
        /// Index of the offending process.
        process: usize,
    },
    /// A FIFO already has a producer / consumer connected.
    ChannelAlreadyConnected {
        /// Name of the FIFO.
        name: String,
        /// `"producer"` or `"consumer"`.
        end: &'static str,
    },
    /// A FIFO was left without a producer or consumer.
    DanglingChannel {
        /// Name of the FIFO.
        name: String,
    },
    /// The functional run did not finish within the firing budget.
    FunctionalRunStalled {
        /// Number of firings performed before giving up.
        firings: u64,
    },
    /// An underlying address-space error.
    Trace(TraceError),
}

impl fmt::Display for KpnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KpnError::ZeroCapacityFifo { name } => {
                write!(f, "fifo `{name}` has zero capacity")
            }
            KpnError::UnknownChannel { channel } => {
                write!(f, "channel {channel} does not exist")
            }
            KpnError::UnknownProcess { process } => {
                write!(f, "process {process} does not exist")
            }
            KpnError::ChannelAlreadyConnected { name, end } => {
                write!(f, "fifo `{name}` already has a {end}")
            }
            KpnError::DanglingChannel { name } => {
                write!(f, "fifo `{name}` is missing a producer or consumer")
            }
            KpnError::FunctionalRunStalled { firings } => {
                write!(f, "functional run stalled after {firings} firings")
            }
            KpnError::Trace(e) => write!(f, "address space error: {e}"),
        }
    }
}

impl Error for KpnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KpnError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for KpnError {
    fn from(value: TraceError) -> Self {
        KpnError::Trace(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = KpnError::ZeroCapacityFifo {
            name: "x".to_string(),
        };
        assert!(e.to_string().contains('x'));
        let e = KpnError::ChannelAlreadyConnected {
            name: "f".to_string(),
            end: "producer",
        };
        assert!(e.to_string().contains("producer"));
    }

    #[test]
    fn trace_error_converts_and_sources() {
        let e: KpnError = TraceError::EmptyRegion {
            name: "r".to_string(),
        }
        .into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KpnError>();
    }
}
