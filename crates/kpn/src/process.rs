//! The process trait and per-task memory layout.

use serde::{Deserialize, Serialize};

use compmem_trace::{Addr, AddressSpace, RegionId, RegionKind, TaskId};

use crate::context::FireContext;
use crate::error::KpnError;

/// Result of one firing attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FireResult {
    /// The process performed one grain of work.
    Fired,
    /// The process cannot progress: an input FIFO is empty or an output FIFO
    /// is full (YAPI blocking read / blocking write).
    Blocked,
    /// The process has produced all its output and will never fire again.
    Finished,
}

/// A YAPI task: a sequential process that communicates through FIFOs and
/// frame buffers.
///
/// Firing granularity is chosen by the implementation — typically one
/// macroblock, one image line or one token batch — and must be small enough
/// that a firing never needs to block halfway: the process checks
/// availability with [`FireContext::available`] / [`FireContext::space`]
/// first and returns [`FireResult::Blocked`] if it cannot complete a whole
/// firing.
pub trait Process {
    /// Human-readable name of the process (used in reports and tables).
    fn name(&self) -> &str;

    /// Attempts one firing.
    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult;
}

/// The memory layout of one task: where its code lives (for the
/// instruction-fetch model) and how large its steady-state loop body is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskLayout {
    /// The task this layout belongs to.
    pub task: TaskId,
    /// Region holding the task's instructions.
    pub code_region: RegionId,
    /// First byte of the code region.
    pub code_base: Addr,
    /// Size of the code footprint in bytes.
    pub code_bytes: u64,
}

impl TaskLayout {
    /// Allocates a code region of `code_bytes` named `"<name>.code"` in
    /// `space` and returns the corresponding layout.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors from the address space (duplicate name,
    /// zero size).
    pub fn with_code_size(
        space: &mut AddressSpace,
        name: &str,
        task: TaskId,
        code_bytes: u64,
    ) -> Result<Self, KpnError> {
        let code_region = space.allocate_region(
            format!("{name}.code"),
            RegionKind::TaskCode { task },
            code_bytes,
        )?;
        let code_base = space.region(code_region).base;
        Ok(TaskLayout {
            task,
            code_region,
            code_base,
            code_bytes: space.region(code_region).size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_allocates_code_region() {
        let mut space = AddressSpace::new();
        let t = TaskId::new(3);
        let layout = TaskLayout::with_code_size(&mut space, "idct", t, 3000).unwrap();
        assert_eq!(layout.task, t);
        let region = space.region(layout.code_region);
        assert_eq!(region.name, "idct.code");
        assert_eq!(region.kind, RegionKind::TaskCode { task: t });
        assert_eq!(layout.code_bytes, region.size);
        assert!(layout.code_bytes >= 3000);
        assert_eq!(layout.code_base, region.base);
    }

    #[test]
    fn duplicate_layout_name_is_rejected() {
        let mut space = AddressSpace::new();
        let t = TaskId::new(0);
        TaskLayout::with_code_size(&mut space, "x", t, 64).unwrap();
        assert!(TaskLayout::with_code_size(&mut space, "x", t, 64).is_err());
    }

    #[test]
    fn fire_result_is_comparable() {
        assert_eq!(FireResult::Fired, FireResult::Fired);
        assert_ne!(FireResult::Blocked, FireResult::Finished);
    }
}
