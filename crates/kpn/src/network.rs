//! The process network: graph construction and execution.
//!
//! Execution is discrete-event (see [`Network::run_functional`]): every
//! process is an actor whose firings are `(ready_cycle, task)` events in a
//! min-heap, blocked processes park until a neighbouring firing frees FIFO
//! space or produces tokens, and the whole network advances on one global
//! virtual clock — the same engine shape the timed platform simulator uses.

use std::fmt;

use compmem_platform::{Burst, BurstOutcome, EventQueue, Op, WorkloadDriver};
use compmem_trace::{
    Access, AddressSpace, BufferId, RegionId, RegionKind, TaskId, LINE_SIZE_BYTES,
};

use crate::context::FireContext;
use crate::error::KpnError;
use crate::fifo::Fifo;
use crate::frame::FrameStore;
use crate::process::{FireResult, Process, TaskLayout};

/// Number of instructions fetched per code line (64-byte lines of 4-byte
/// instructions).
const INSTRS_PER_FETCH: u64 = 16;

/// Identifier of a FIFO channel inside a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(usize);

impl ChannelId {
    /// Creates a channel identifier from a dense index.
    pub const fn new(index: usize) -> Self {
        ChannelId(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a frame buffer inside a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(usize);

impl FrameId {
    /// Creates a frame identifier from a dense index.
    pub const fn new(index: usize) -> Self {
        FrameId(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

struct ProcessEntry {
    process: Box<dyn Process>,
    layout: TaskLayout,
    inputs: Vec<ChannelId>,
    outputs: Vec<ChannelId>,
    finished: bool,
    firings: u64,
    /// Instruction-fetch cursor: instructions executed so far, used to keep
    /// the program counter walking around the code footprint across firings.
    fetched_instructions: u64,
}

impl fmt::Debug for ProcessEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessEntry")
            .field("name", &self.process.name())
            .field("task", &self.layout.task)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .field("finished", &self.finished)
            .field("firings", &self.firings)
            .finish()
    }
}

/// Builder of a process network.
///
/// Tasks are numbered densely in the order they are added
/// ([`next_task_id`](NetworkBuilder::next_task_id) previews the next one, so
/// that a process can allocate its private regions with the right owner
/// before being added); FIFOs and frame buffers are numbered densely as
/// communication buffers.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    processes: Vec<ProcessEntry>,
    fifos: Vec<Fifo>,
    frames: Vec<FrameStore>,
    fifo_producer: Vec<Option<TaskId>>,
    fifo_consumer: Vec<Option<TaskId>>,
    next_buffer: u32,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// The task identifier the next [`add_process`](Self::add_process) call
    /// will return.
    pub fn next_task_id(&self) -> TaskId {
        TaskId::new(self.processes.len() as u32)
    }

    /// The buffer identifier the next FIFO or frame buffer will receive.
    pub fn next_buffer_id(&self) -> BufferId {
        BufferId::new(self.next_buffer)
    }

    /// Adds a process with its memory layout and returns its task id.
    ///
    /// # Panics
    ///
    /// Panics if the layout's task does not match the id being assigned
    /// (allocate the layout with [`next_task_id`](Self::next_task_id)).
    pub fn add_process(&mut self, process: Box<dyn Process>, layout: TaskLayout) -> TaskId {
        let task = self.next_task_id();
        assert_eq!(
            layout.task,
            task,
            "layout of `{}` was allocated for {} but the process receives {}",
            process.name(),
            layout.task,
            task
        );
        self.processes.push(ProcessEntry {
            process,
            layout,
            inputs: Vec::new(),
            outputs: Vec::new(),
            finished: false,
            firings: 0,
            fetched_instructions: 0,
        });
        task
    }

    /// Allocates a FIFO of `capacity_tokens` 4-byte tokens in its own region
    /// of `space` and returns its channel id.
    ///
    /// # Errors
    ///
    /// Returns [`KpnError::ZeroCapacityFifo`] for a zero capacity, or an
    /// allocation error from the address space.
    pub fn add_fifo(
        &mut self,
        space: &mut AddressSpace,
        name: &str,
        capacity_tokens: usize,
    ) -> Result<ChannelId, KpnError> {
        if capacity_tokens == 0 {
            return Err(KpnError::ZeroCapacityFifo {
                name: name.to_string(),
            });
        }
        let buffer = BufferId::new(self.next_buffer);
        self.next_buffer += 1;
        let region = space.allocate_region(
            format!("fifo.{name}"),
            RegionKind::Fifo { buffer },
            capacity_tokens as u64 * 4,
        )?;
        let base = space.region(region).base;
        let id = ChannelId::new(self.fifos.len());
        self.fifos
            .push(Fifo::new(name, region, base, capacity_tokens));
        self.fifo_producer.push(None);
        self.fifo_consumer.push(None);
        Ok(id)
    }

    /// Allocates a frame buffer of `len` elements of `elem_size` bytes in its
    /// own region of `space` and returns its frame id.
    ///
    /// # Errors
    ///
    /// Returns an allocation error from the address space.
    pub fn add_frame(
        &mut self,
        space: &mut AddressSpace,
        name: &str,
        len: usize,
        elem_size: u16,
    ) -> Result<FrameId, KpnError> {
        let buffer = BufferId::new(self.next_buffer);
        self.next_buffer += 1;
        let region = space.allocate_region(
            format!("frame.{name}"),
            RegionKind::FrameBuffer { buffer },
            len as u64 * u64::from(elem_size),
        )?;
        let base = space.region(region).base;
        let id = FrameId::new(self.frames.len());
        self.frames
            .push(FrameStore::new(name, region, base, len, elem_size));
        Ok(id)
    }

    /// Connects output port `port` of `task` to `channel`.
    ///
    /// Ports must be connected in ascending order (0, 1, 2, …).
    ///
    /// # Errors
    ///
    /// Returns an error if the task or channel does not exist, the channel
    /// already has a producer, or the port is out of order.
    pub fn connect_output(
        &mut self,
        task: TaskId,
        port: usize,
        channel: ChannelId,
    ) -> Result<(), KpnError> {
        self.check_channel(channel)?;
        let entry = self
            .processes
            .get_mut(task.index())
            .ok_or(KpnError::UnknownProcess {
                process: task.index(),
            })?;
        if port != entry.outputs.len() {
            return Err(KpnError::UnknownChannel {
                channel: channel.index(),
            });
        }
        if self.fifo_producer[channel.index()].is_some() {
            return Err(KpnError::ChannelAlreadyConnected {
                name: self.fifos[channel.index()].name().to_string(),
                end: "producer",
            });
        }
        self.fifo_producer[channel.index()] = Some(task);
        entry.outputs.push(channel);
        Ok(())
    }

    /// Connects input port `port` of `task` to `channel`.
    ///
    /// Ports must be connected in ascending order (0, 1, 2, …).
    ///
    /// # Errors
    ///
    /// Returns an error if the task or channel does not exist, the channel
    /// already has a consumer, or the port is out of order.
    pub fn connect_input(
        &mut self,
        task: TaskId,
        port: usize,
        channel: ChannelId,
    ) -> Result<(), KpnError> {
        self.check_channel(channel)?;
        let entry = self
            .processes
            .get_mut(task.index())
            .ok_or(KpnError::UnknownProcess {
                process: task.index(),
            })?;
        if port != entry.inputs.len() {
            return Err(KpnError::UnknownChannel {
                channel: channel.index(),
            });
        }
        if self.fifo_consumer[channel.index()].is_some() {
            return Err(KpnError::ChannelAlreadyConnected {
                name: self.fifos[channel.index()].name().to_string(),
                end: "consumer",
            });
        }
        self.fifo_consumer[channel.index()] = Some(task);
        entry.inputs.push(channel);
        Ok(())
    }

    fn check_channel(&self, channel: ChannelId) -> Result<(), KpnError> {
        if channel.index() >= self.fifos.len() {
            return Err(KpnError::UnknownChannel {
                channel: channel.index(),
            });
        }
        Ok(())
    }

    /// Finalises the network.
    ///
    /// # Errors
    ///
    /// Returns [`KpnError::DanglingChannel`] if a FIFO is missing a producer
    /// or consumer.
    pub fn build(self) -> Result<Network, KpnError> {
        for (i, fifo) in self.fifos.iter().enumerate() {
            if self.fifo_producer[i].is_none() || self.fifo_consumer[i].is_none() {
                return Err(KpnError::DanglingChannel {
                    name: fifo.name().to_string(),
                });
            }
        }
        let endpoints = self
            .fifo_producer
            .iter()
            .zip(&self.fifo_consumer)
            .map(|(p, c)| {
                (
                    p.expect("validated above: producer connected"),
                    c.expect("validated above: consumer connected"),
                )
            })
            .collect();
        Ok(Network {
            processes: self.processes,
            fifos: self.fifos,
            frames: self.frames,
            endpoints,
        })
    }
}

/// An executable process network.
///
/// `Network` implements [`WorkloadDriver`], so it can be handed directly to
/// [`System::run`](compmem_platform::System::run); it can also be executed
/// purely functionally with [`run_functional`](Network::run_functional) for
/// workload verification.
#[derive(Debug)]
pub struct Network {
    processes: Vec<ProcessEntry>,
    fifos: Vec<Fifo>,
    frames: Vec<FrameStore>,
    /// `(producer, consumer)` of every FIFO, indexed like `fifos`; used by
    /// the event scheduler to wake exactly the tasks a firing can unblock.
    endpoints: Vec<(TaskId, TaskId)>,
}

impl Network {
    /// Number of tasks in the network.
    pub fn task_count(&self) -> usize {
        self.processes.len()
    }

    /// All task identifiers, in creation order.
    pub fn tasks(&self) -> Vec<TaskId> {
        (0..self.processes.len() as u32).map(TaskId::new).collect()
    }

    /// Name of a task's process.
    ///
    /// # Panics
    ///
    /// Panics if the task does not belong to this network.
    pub fn task_name(&self, task: TaskId) -> &str {
        self.processes[task.index()].process.name()
    }

    /// The memory layout of a task.
    ///
    /// # Panics
    ///
    /// Panics if the task does not belong to this network.
    pub fn task_layout(&self, task: TaskId) -> TaskLayout {
        self.processes[task.index()].layout
    }

    /// Number of firings a task has performed so far.
    ///
    /// # Panics
    ///
    /// Panics if the task does not belong to this network.
    pub fn firings(&self, task: TaskId) -> u64 {
        self.processes[task.index()].firings
    }

    /// Returns `true` if every process has finished.
    pub fn all_finished(&self) -> bool {
        self.processes.iter().all(|p| p.finished)
    }

    /// The FIFO behind a channel id.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not belong to this network.
    pub fn fifo(&self, channel: ChannelId) -> &Fifo {
        &self.fifos[channel.index()]
    }

    /// All FIFOs of the network.
    pub fn fifos(&self) -> &[Fifo] {
        &self.fifos
    }

    /// The frame buffer behind a frame id.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not belong to this network.
    pub fn frame(&self, frame: FrameId) -> &FrameStore {
        &self.frames[frame.index()]
    }

    /// All frame buffers of the network.
    pub fn frames(&self) -> &[FrameStore] {
        &self.frames
    }

    /// Fires one process once (used by the functional scheduler and by the
    /// [`WorkloadDriver`] impl).
    fn fire_once(&mut self, task: TaskId) -> (FireResult, Vec<Op>) {
        let entry = &mut self.processes[task.index()];
        if entry.finished {
            return (FireResult::Finished, Vec::new());
        }
        let mut ctx = FireContext::new(
            entry.layout.task,
            &entry.inputs,
            &entry.outputs,
            &mut self.fifos,
            &mut self.frames,
        );
        let result = entry.process.fire(&mut ctx);
        let ops = ctx.into_ops();
        match result {
            FireResult::Fired => {
                entry.firings += 1;
            }
            FireResult::Finished => {
                entry.finished = true;
                for &out in &entry.outputs {
                    self.fifos[out.index()].set_producer_finished();
                }
            }
            FireResult::Blocked => {}
        }
        (result, ops)
    }

    /// Interleaves instruction fetches into a firing's operations, modelling
    /// a program counter that walks around the task's code footprint.
    fn weave_ifetches(&mut self, task: TaskId, ops: Vec<Op>) -> Vec<Op> {
        let entry = &mut self.processes[task.index()];
        let layout = entry.layout;
        let code_lines = (layout.code_bytes / LINE_SIZE_BYTES).max(1);
        let mut out = Vec::with_capacity(ops.len() + ops.len() / 4 + 1);
        let mut pending = 0u64;
        let emit_fetch = |out: &mut Vec<Op>, fetched: &mut u64| {
            let line = (*fetched / INSTRS_PER_FETCH) % code_lines;
            out.push(Op::Mem(Access::ifetch(
                layout.code_base.offset(line * LINE_SIZE_BYTES),
                LINE_SIZE_BYTES as u16,
                task,
                layout.code_region,
            )));
        };
        // Every firing begins by (re-)fetching the current code line.
        emit_fetch(&mut out, &mut entry.fetched_instructions);
        for op in ops {
            let instrs = op.instructions();
            out.push(op);
            pending += instrs;
            while pending >= INSTRS_PER_FETCH {
                pending -= INSTRS_PER_FETCH;
                entry.fetched_instructions += INSTRS_PER_FETCH;
                emit_fetch(&mut out, &mut entry.fetched_instructions);
            }
        }
        entry.fetched_instructions += pending;
        out
    }

    /// Tasks whose blockage a firing (or retirement) of `task` may have
    /// resolved: the producers of its input FIFOs (space was freed) and the
    /// consumers of its output FIFOs (tokens arrived, or the channel
    /// closed).
    fn neighbours_of(&self, task: TaskId) -> Vec<TaskId> {
        let entry = &self.processes[task.index()];
        let mut out = Vec::with_capacity(entry.inputs.len() + entry.outputs.len());
        for &input in &entry.inputs {
            out.push(self.endpoints[input.index()].0);
        }
        for &output in &entry.outputs {
            out.push(self.endpoints[output.index()].1);
        }
        out
    }

    /// Runs the network functionally (no caches, virtual time) until every
    /// process finishes or `max_firings` firings have been performed.
    ///
    /// This is a discrete-event schedule: each task is an event in a
    /// min-heap keyed by its `ready_cycle`; firing a task advances its
    /// ready time by the instruction cost of the firing, so the interleaving
    /// follows one global virtual clock rather than round-robin polling.
    /// A task that cannot fire *parks* (leaves the heap) and is re-inserted
    /// only when a neighbouring firing frees FIFO space, produces tokens or
    /// closes a channel — so the scheduler never busy-polls blocked tasks.
    ///
    /// Returns `Ok(true)` when every process finished, `Ok(false)` when the
    /// firing budget ran out while progress was still being made.
    ///
    /// # Errors
    ///
    /// Returns [`KpnError::FunctionalRunStalled`] if no process can fire but
    /// some have not finished (a real deadlock, e.g. undersized FIFOs).
    pub fn run_functional(&mut self, max_firings: u64) -> Result<bool, KpnError> {
        let n = self.processes.len();
        let mut events: EventQueue<TaskId> = EventQueue::new();
        // `scheduled[i]` guards against duplicate heap entries per task.
        let mut scheduled = vec![false; n];
        let mut parked = vec![false; n];
        for (i, entry) in self.processes.iter().enumerate() {
            if !entry.finished {
                events.push(0, TaskId::new(i as u32));
                scheduled[i] = true;
            }
        }

        let mut firings = 0u64;
        while let Some((now, task)) = events.pop() {
            scheduled[task.index()] = false;
            if self.processes[task.index()].finished {
                continue;
            }
            if firings >= max_firings {
                return Ok(false);
            }
            let (result, ops) = self.fire_once(task);
            let wake = |net: &Network,
                        events: &mut EventQueue<TaskId>,
                        scheduled: &mut [bool],
                        parked: &mut [bool]| {
                for neighbour in net.neighbours_of(task) {
                    let i = neighbour.index();
                    if parked[i] && !scheduled[i] && !net.processes[i].finished {
                        parked[i] = false;
                        scheduled[i] = true;
                        events.push(now, neighbour);
                    }
                }
            };
            match result {
                FireResult::Fired => {
                    firings += 1;
                    // The firing occupies the virtual processor for its
                    // instruction count; re-fire no earlier than that.
                    let cost: u64 = ops.iter().map(Op::instructions).sum::<u64>().max(1);
                    events.push(now + cost, task);
                    scheduled[task.index()] = true;
                    wake(self, &mut events, &mut scheduled, &mut parked);
                }
                FireResult::Blocked => {
                    parked[task.index()] = true;
                }
                FireResult::Finished => {
                    // Closing output channels is an event consumers must see;
                    // producers into this task may also need a final poll.
                    wake(self, &mut events, &mut scheduled, &mut parked);
                }
            }
        }

        if self.all_finished() {
            Ok(true)
        } else {
            Err(KpnError::FunctionalRunStalled { firings })
        }
    }
}

impl WorkloadDriver for Network {
    fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
        let (result, ops) = self.fire_once(task);
        match result {
            FireResult::Fired => {
                let ops = self.weave_ifetches(task, ops);
                BurstOutcome::Ready(Burst::new(ops))
            }
            FireResult::Blocked => BurstOutcome::Blocked,
            FireResult::Finished => BurstOutcome::Finished,
        }
    }
}

/// Convenience: regions of every FIFO and frame buffer of a network,
/// together with their sizes in bytes (used by the partition sizing rule
/// "FIFO partition = FIFO size").
pub fn communication_regions(network: &Network) -> Vec<(RegionId, u64)> {
    let mut out = Vec::new();
    for fifo in network.fifos() {
        out.push((fifo.region(), fifo.capacity() as u64 * 4));
    }
    for frame in network.frames() {
        out.push((frame.region(), frame.size_bytes()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::FireResult;

    /// Produces `count` increasing integers.
    struct Source {
        next: i32,
        count: i32,
    }

    impl Process for Source {
        fn name(&self) -> &str {
            "source"
        }
        fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
            if self.next == self.count {
                return FireResult::Finished;
            }
            if ctx.space(0) < 1 {
                return FireResult::Blocked;
            }
            ctx.compute(4);
            ctx.push(0, self.next);
            self.next += 1;
            FireResult::Fired
        }
    }

    /// Doubles every token.
    struct Doubler;

    impl Process for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
            if ctx.available(0) < 1 {
                if ctx.input_closed(0) {
                    return FireResult::Finished;
                }
                return FireResult::Blocked;
            }
            if ctx.space(0) < 1 {
                return FireResult::Blocked;
            }
            let v = ctx.pop(0);
            ctx.compute(2);
            ctx.push(0, v * 2);
            FireResult::Fired
        }
    }

    /// Collects tokens.
    struct Sink {
        values: Vec<i32>,
    }

    impl Process for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
            if ctx.available(0) < 1 {
                if ctx.input_closed(0) {
                    return FireResult::Finished;
                }
                return FireResult::Blocked;
            }
            let v = ctx.pop(0);
            ctx.compute(1);
            self.values.push(v);
            FireResult::Fired
        }
    }

    fn pipeline(count: i32, fifo_capacity: usize) -> (AddressSpace, Network) {
        let mut space = AddressSpace::new();
        let mut b = NetworkBuilder::new();
        let t0 = b.next_task_id();
        let src = b.add_process(
            Box::new(Source { next: 0, count }),
            TaskLayout::with_code_size(&mut space, "source", t0, 1024).unwrap(),
        );
        let t1 = b.next_task_id();
        let dbl = b.add_process(
            Box::new(Doubler),
            TaskLayout::with_code_size(&mut space, "doubler", t1, 1024).unwrap(),
        );
        let t2 = b.next_task_id();
        let snk = b.add_process(
            Box::new(Sink { values: Vec::new() }),
            TaskLayout::with_code_size(&mut space, "sink", t2, 1024).unwrap(),
        );
        let f0 = b.add_fifo(&mut space, "src_to_dbl", fifo_capacity).unwrap();
        let f1 = b.add_fifo(&mut space, "dbl_to_snk", fifo_capacity).unwrap();
        b.connect_output(src, 0, f0).unwrap();
        b.connect_input(dbl, 0, f0).unwrap();
        b.connect_output(dbl, 0, f1).unwrap();
        b.connect_input(snk, 0, f1).unwrap();
        (space, b.build().unwrap())
    }

    #[test]
    fn functional_run_completes_and_produces_correct_values() {
        let (_, mut network) = pipeline(20, 4);
        let finished = network.run_functional(10_000).unwrap();
        assert!(finished);
        assert!(network.all_finished());
        assert_eq!(network.firings(TaskId::new(0)), 20);
        assert_eq!(network.firings(TaskId::new(1)), 20);
        assert_eq!(network.firings(TaskId::new(2)), 20);
        assert_eq!(network.fifo(ChannelId::new(0)).total_pushed(), 20);
        assert_eq!(network.fifo(ChannelId::new(1)).total_popped(), 20);
    }

    #[test]
    fn driver_interface_produces_bursts_with_ifetches() {
        let (_, mut network) = pipeline(5, 2);
        let outcome = network.next_burst(TaskId::new(0));
        let BurstOutcome::Ready(burst) = outcome else {
            panic!("source should be able to fire");
        };
        assert!(
            burst.memory_ops() >= 2,
            "one store plus at least one ifetch"
        );
        assert!(burst
            .ops()
            .iter()
            .any(|o| matches!(o, Op::Mem(a) if a.kind.is_instruction())));
        // The consumer is blocked before the producer has pushed anything
        // visible to it? It has one token now, so it can fire; the sink's
        // upstream is still empty.
        assert!(network.next_burst(TaskId::new(2)).is_blocked());
    }

    #[test]
    fn finished_producer_closes_downstream_fifos() {
        let (_, mut network) = pipeline(1, 2);
        // Run everything through the driver interface.
        let mut guard = 0;
        while !network.all_finished() {
            for t in network.tasks() {
                let _ = network.next_burst(t);
            }
            guard += 1;
            assert!(guard < 100, "pipeline did not converge");
        }
        assert!(network.fifo(ChannelId::new(0)).is_closed_and_drained());
        assert!(network.fifo(ChannelId::new(1)).is_closed_and_drained());
    }

    #[test]
    fn undersized_network_stalls_detectably() {
        // A single process that always blocks: the functional run must report
        // a stall rather than loop forever.
        struct AlwaysBlocked;
        impl Process for AlwaysBlocked {
            fn name(&self) -> &str {
                "stuck"
            }
            fn fire(&mut self, _ctx: &mut FireContext<'_>) -> FireResult {
                FireResult::Blocked
            }
        }
        let mut space = AddressSpace::new();
        let mut b = NetworkBuilder::new();
        let t = b.next_task_id();
        b.add_process(
            Box::new(AlwaysBlocked),
            TaskLayout::with_code_size(&mut space, "stuck", t, 64).unwrap(),
        );
        let mut network = b.build().unwrap();
        assert!(matches!(
            network.run_functional(100),
            Err(KpnError::FunctionalRunStalled { .. })
        ));
    }

    #[test]
    fn builder_validation() {
        let mut space = AddressSpace::new();
        let mut b = NetworkBuilder::new();
        assert!(matches!(
            b.add_fifo(&mut space, "zero", 0),
            Err(KpnError::ZeroCapacityFifo { .. })
        ));
        let t = b.next_task_id();
        let src = b.add_process(
            Box::new(Source { next: 0, count: 1 }),
            TaskLayout::with_code_size(&mut space, "s", t, 64).unwrap(),
        );
        let f = b.add_fifo(&mut space, "f", 2).unwrap();
        assert!(matches!(
            b.connect_output(src, 1, f),
            Err(KpnError::UnknownChannel { .. })
        ));
        b.connect_output(src, 0, f).unwrap();
        assert!(matches!(
            b.connect_output(src, 1, f),
            Err(KpnError::ChannelAlreadyConnected { .. })
        ));
        assert!(matches!(
            b.connect_input(TaskId::new(9), 0, f),
            Err(KpnError::UnknownProcess { .. })
        ));
        // Missing consumer -> dangling channel at build time.
        assert!(matches!(b.build(), Err(KpnError::DanglingChannel { .. })));
    }

    #[test]
    fn communication_regions_lists_fifos_and_frames() {
        let mut space = AddressSpace::new();
        let mut b = NetworkBuilder::new();
        let t0 = b.next_task_id();
        let src = b.add_process(
            Box::new(Source { next: 0, count: 1 }),
            TaskLayout::with_code_size(&mut space, "s", t0, 64).unwrap(),
        );
        let t1 = b.next_task_id();
        let snk = b.add_process(
            Box::new(Sink { values: Vec::new() }),
            TaskLayout::with_code_size(&mut space, "k", t1, 64).unwrap(),
        );
        let f = b.add_fifo(&mut space, "f", 8).unwrap();
        let _frame = b.add_frame(&mut space, "pic", 100, 1).unwrap();
        b.connect_output(src, 0, f).unwrap();
        b.connect_input(snk, 0, f).unwrap();
        let network = b.build().unwrap();
        let regions = communication_regions(&network);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].1, 32);
        assert_eq!(regions[1].1, 100);
        assert_eq!(network.frames().len(), 1);
        assert_eq!(network.frame(FrameId::new(0)).len(), 100);
        assert_eq!(network.task_name(src), "source");
        assert_eq!(network.task_layout(snk).task, snk);
    }

    #[test]
    fn run_functional_budget_is_respected() {
        let (_, mut network) = pipeline(1000, 4);
        let finished = network.run_functional(10).unwrap();
        assert!(!finished);
    }

    #[test]
    #[should_panic(expected = "layout")]
    fn mismatched_layout_task_panics() {
        let mut space = AddressSpace::new();
        let mut b = NetworkBuilder::new();
        let wrong = TaskLayout::with_code_size(&mut space, "w", TaskId::new(5), 64).unwrap();
        let _ = b.add_process(Box::new(Source { next: 0, count: 0 }), wrong);
    }
}
