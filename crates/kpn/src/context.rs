//! The firing context handed to a process.

use compmem_platform::Op;
use compmem_trace::{Access, AccessSink, TaskId};

use crate::fifo::Fifo;
use crate::frame::FrameStore;
use crate::network::{ChannelId, FrameId};

/// Everything a process may touch during one firing: its input and output
/// FIFOs, the network's frame buffers, and a compute-cost accumulator.
///
/// The context records every memory operation of the firing (FIFO copies,
/// frame-buffer accesses, accesses of the process's private arrays routed
/// through the [`AccessSink`] impl, and compute instructions) as a list of
/// [`Op`]s; the network turns that list into a burst for the platform
/// simulator.
#[derive(Debug)]
pub struct FireContext<'a> {
    task: TaskId,
    inputs: &'a [ChannelId],
    outputs: &'a [ChannelId],
    fifos: &'a mut [Fifo],
    frames: &'a mut [FrameStore],
    ops: Vec<Op>,
}

impl<'a> FireContext<'a> {
    pub(crate) fn new(
        task: TaskId,
        inputs: &'a [ChannelId],
        outputs: &'a [ChannelId],
        fifos: &'a mut [Fifo],
        frames: &'a mut [FrameStore],
    ) -> Self {
        FireContext {
            task,
            inputs,
            outputs,
            fifos,
            frames,
            ops: Vec::new(),
        }
    }

    /// The task this firing belongs to.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    fn input_fifo(&self, port: usize) -> &Fifo {
        let id = self
            .inputs
            .get(port)
            .unwrap_or_else(|| panic!("task {} has no input port {port}", self.task));
        &self.fifos[id.index()]
    }

    fn output_fifo(&self, port: usize) -> &Fifo {
        let id = self
            .outputs
            .get(port)
            .unwrap_or_else(|| panic!("task {} has no output port {port}", self.task));
        &self.fifos[id.index()]
    }

    /// Tokens available on input port `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn available(&self, port: usize) -> usize {
        self.input_fifo(port).len()
    }

    /// Free token slots on output port `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn space(&self, port: usize) -> usize {
        self.output_fifo(port).space()
    }

    /// Returns `true` if the producer of input port `port` has finished and
    /// every token has been consumed (end of stream).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn input_closed(&self, port: usize) -> bool {
        self.input_fifo(port).is_closed_and_drained()
    }

    /// Pops one token from input port `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the FIFO is empty (the process
    /// must check [`available`](Self::available) first).
    pub fn pop(&mut self, port: usize) -> i32 {
        let id = self
            .inputs
            .get(port)
            .copied()
            .unwrap_or_else(|| panic!("task {} has no input port {port}", self.task));
        let task = self.task;
        // Split borrows: the FIFO is mutated, the ops vector records the copy.
        let (fifo, ops) = (&mut self.fifos[id.index()], &mut self.ops);
        let mut sink = OpSink(ops);
        fifo.pop(&mut sink, task)
    }

    /// Pushes one token onto output port `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or the FIFO is full (the process
    /// must check [`space`](Self::space) first).
    pub fn push(&mut self, port: usize, value: i32) {
        let id = self
            .outputs
            .get(port)
            .copied()
            .unwrap_or_else(|| panic!("task {} has no output port {port}", self.task));
        let task = self.task;
        let (fifo, ops) = (&mut self.fifos[id.index()], &mut self.ops);
        let mut sink = OpSink(ops);
        fifo.push(&mut sink, task, value);
    }

    /// Pops `n` tokens into a vector (helper for block-granular protocols).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` tokens are available.
    pub fn pop_many(&mut self, port: usize, n: usize) -> Vec<i32> {
        (0..n).map(|_| self.pop(port)).collect()
    }

    /// Pushes all values of `values` onto output port `port`.
    ///
    /// # Panics
    ///
    /// Panics if there is not enough space.
    pub fn push_all(&mut self, port: usize, values: &[i32]) {
        for &v in values {
            self.push(port, v);
        }
    }

    /// Number of elements of frame buffer `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not exist.
    pub fn frame_len(&self, frame: FrameId) -> usize {
        self.frames[frame.index()].len()
    }

    /// Reads element `index` of frame buffer `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame or index does not exist.
    pub fn frame_read(&mut self, frame: FrameId, index: usize) -> i32 {
        let task = self.task;
        let (store, ops) = (&mut self.frames[frame.index()], &mut self.ops);
        let mut sink = OpSink(ops);
        store.read(&mut sink, task, index)
    }

    /// Writes element `index` of frame buffer `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame or index does not exist.
    pub fn frame_write(&mut self, frame: FrameId, index: usize, value: i32) {
        let task = self.task;
        let (store, ops) = (&mut self.frames[frame.index()], &mut self.ops);
        let mut sink = OpSink(ops);
        store.write(&mut sink, task, index, value);
    }

    /// Accounts `instructions` compute instructions (no memory access).
    pub fn compute(&mut self, instructions: u32) {
        if instructions > 0 {
            self.ops.push(Op::Compute(instructions));
        }
    }

    /// Number of operations recorded so far in this firing.
    pub fn recorded_ops(&self) -> usize {
        self.ops.len()
    }

    pub(crate) fn into_ops(self) -> Vec<Op> {
        self.ops
    }
}

/// Routes private-array accesses (recorded through the `AccessSink` impl of
/// the context) into the firing's operation list.
///
/// This is the platform's live sink: batches reported through
/// [`record_all`](AccessSink::record_all) (bulk array fills, block copies)
/// become runs of consecutive memory operations in the burst, which the
/// engine then issues through the hierarchy's batch entry point
/// (`MemorySystem::access_burst`) — one virtual L2 dispatch per run.
impl AccessSink for FireContext<'_> {
    fn record(&mut self, access: Access) {
        self.ops.push(Op::Mem(access));
    }

    fn record_all(&mut self, accesses: &[Access]) {
        self.ops.extend(accesses.iter().map(|&a| Op::Mem(a)));
    }
}

struct OpSink<'a>(&'a mut Vec<Op>);

impl AccessSink for OpSink<'_> {
    fn record(&mut self, access: Access) {
        self.0.push(Op::Mem(access));
    }

    fn record_all(&mut self, accesses: &[Access]) {
        self.0.extend(accesses.iter().map(|&a| Op::Mem(a)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::{Addr, RegionId};

    fn fifos() -> Vec<Fifo> {
        vec![
            Fifo::new("in", RegionId::new(0), Addr::new(0x1000), 4),
            Fifo::new("out", RegionId::new(1), Addr::new(0x2000), 4),
        ]
    }

    fn frames() -> Vec<FrameStore> {
        vec![FrameStore::new(
            "frame",
            RegionId::new(2),
            Addr::new(0x4000),
            64,
            1,
        )]
    }

    #[test]
    fn fifo_ports_map_to_channels() {
        let mut fifos = fifos();
        let mut frames = frames();
        // Pre-load the input FIFO.
        {
            let mut sink = compmem_trace::TraceBuffer::new();
            fifos[0].push(&mut sink, TaskId::new(9), 41);
        }
        let inputs = [ChannelId::new(0)];
        let outputs = [ChannelId::new(1)];
        let mut ctx = FireContext::new(TaskId::new(1), &inputs, &outputs, &mut fifos, &mut frames);
        assert_eq!(ctx.task(), TaskId::new(1));
        assert_eq!(ctx.input_count(), 1);
        assert_eq!(ctx.output_count(), 1);
        assert_eq!(ctx.available(0), 1);
        assert_eq!(ctx.space(0), 4);
        let v = ctx.pop(0);
        ctx.compute(3);
        ctx.push(0, v + 1);
        assert_eq!(ctx.recorded_ops(), 3);
        let ops = ctx.into_ops();
        assert!(matches!(ops[0], Op::Mem(a) if a.kind.is_read()));
        assert!(matches!(ops[1], Op::Compute(3)));
        assert!(matches!(ops[2], Op::Mem(a) if a.kind.is_write()));
        assert_eq!(fifos[1].peek(0), Some(42));
    }

    #[test]
    fn frame_access_and_bulk_helpers() {
        let mut fifos = fifos();
        let mut frames = frames();
        let inputs = [ChannelId::new(0)];
        let outputs = [ChannelId::new(1)];
        let mut ctx = FireContext::new(TaskId::new(0), &inputs, &outputs, &mut fifos, &mut frames);
        assert_eq!(ctx.frame_len(FrameId::new(0)), 64);
        ctx.frame_write(FrameId::new(0), 10, 7);
        assert_eq!(ctx.frame_read(FrameId::new(0), 10), 7);
        ctx.push_all(0, &[1, 2, 3]);
        assert_eq!(ctx.available(0), 0, "port 0 input is a different fifo");
        let ops = ctx.into_ops();
        assert_eq!(ops.len(), 2 + 3);
        // The output fifo now holds the three tokens; pop them back through a
        // fresh context wired the other way round.
        let inputs2 = [ChannelId::new(1)];
        let outputs2 = [ChannelId::new(0)];
        let mut ctx2 =
            FireContext::new(TaskId::new(1), &inputs2, &outputs2, &mut fifos, &mut frames);
        assert_eq!(ctx2.pop_many(0, 3), vec![1, 2, 3]);
    }

    #[test]
    fn zero_compute_records_nothing() {
        let mut fifos = fifos();
        let mut frames = frames();
        let mut ctx = FireContext::new(TaskId::new(0), &[], &[], &mut fifos, &mut frames);
        ctx.compute(0);
        assert_eq!(ctx.recorded_ops(), 0);
    }

    #[test]
    fn private_array_accesses_flow_through_the_sink_impl() {
        use compmem_trace::{AddressSpace, RegionKind, ScalarArray};
        let mut space = AddressSpace::new();
        let t = TaskId::new(0);
        let r = space
            .allocate_region("t.data", RegionKind::TaskData { task: t }, 256)
            .unwrap();
        let mut array: ScalarArray = space.array(r).unwrap();
        let mut fifos = fifos();
        let mut frames = frames();
        let mut ctx = FireContext::new(t, &[], &[], &mut fifos, &mut frames);
        array.write(&mut ctx, t, 0, 5);
        let _ = array.read(&mut ctx, t, 0);
        assert_eq!(ctx.recorded_ops(), 2);
    }

    #[test]
    #[should_panic(expected = "no input port")]
    fn missing_port_panics() {
        let mut fifos = fifos();
        let mut frames = frames();
        let mut ctx = FireContext::new(TaskId::new(0), &[], &[], &mut fifos, &mut frames);
        let _ = ctx.pop(0);
    }
}
