//! The line-based Canny edge-detection task graph.
//!
//! Seven tasks, matching the names of Table 1 of the paper: a frontend
//! (`Fr.canny`) streaming image lines, a low-pass (Gaussian) filter,
//! horizontal and vertical Sobel gradient filters, horizontal and vertical
//! non-maximum suppression, and a final maximum/threshold stage writing the
//! edge map. All 3x3 stages keep a three-line history window in private
//! memory, which is what gives each task the working set the partitioning
//! study cares about.

use compmem_kpn::{FireContext, FireResult, FrameId, NetworkBuilder, Process, TaskLayout};
use compmem_trace::{AddressSpace, RegionKind, ScalarArray, TaskId};

use crate::error::WorkloadError;
use crate::pixels::SyntheticImage;
use crate::sections::SharedSections;

/// Task ids and the output frame of one Canny instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CannyHandles {
    /// Frontend streaming the source picture line by line.
    pub frontend: TaskId,
    /// Gaussian low-pass filter.
    pub lowpass: TaskId,
    /// Horizontal Sobel gradient.
    pub horiz_sobel: TaskId,
    /// Vertical Sobel gradient.
    pub vert_sobel: TaskId,
    /// Horizontal non-maximum suppression.
    pub horiz_nms: TaskId,
    /// Vertical non-maximum suppression.
    pub vert_nms: TaskId,
    /// Maximum / threshold stage.
    pub max_threshold: TaskId,
    /// Frame buffer holding the resulting edge map.
    pub edge_frame: FrameId,
}

/// Frontend: pushes the source image line by line.
pub struct FrCanny {
    task: TaskId,
    source: ScalarArray,
    width: usize,
    height: usize,
    next_line: usize,
}

impl Process for FrCanny {
    fn name(&self) -> &str {
        "Fr.canny"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if self.next_line == self.height {
            return FireResult::Finished;
        }
        if ctx.space(0) < self.width {
            return FireResult::Blocked;
        }
        let task = self.task;
        for x in 0..self.width {
            let v = self.source.read(ctx, task, self.next_line * self.width + x);
            ctx.compute(1);
            ctx.push(0, v);
        }
        self.next_line += 1;
        FireResult::Fired
    }
}

/// The 3x3 kernel a [`WindowStage`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowKernel {
    /// Gaussian blur (1 2 1 / 2 4 2 / 1 2 1) / 16.
    LowPass,
    /// Horizontal Sobel gradient magnitude.
    SobelHoriz,
    /// Vertical Sobel gradient magnitude.
    SobelVert,
    /// Vertical non-maximum suppression (keep values that are column maxima).
    NmsVert,
}

impl WindowKernel {
    fn stage_name(self) -> &'static str {
        match self {
            WindowKernel::LowPass => "LowPass",
            WindowKernel::SobelHoriz => "HorizSobel",
            WindowKernel::SobelVert => "VertSobel",
            WindowKernel::NmsVert => "VertNMS",
        }
    }

    fn apply(self, window: &[[i32; 3]; 3]) -> i32 {
        match self {
            WindowKernel::LowPass => {
                let w = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
                let mut acc = 0;
                for (r, row) in window.iter().enumerate() {
                    for (c, &v) in row.iter().enumerate() {
                        acc += v * w[r][c];
                    }
                }
                acc / 16
            }
            WindowKernel::SobelHoriz => {
                let gx = -window[0][0] + window[0][2] - 2 * window[1][0] + 2 * window[1][2]
                    - window[2][0]
                    + window[2][2];
                gx.abs().min(255)
            }
            WindowKernel::SobelVert => {
                let gy = -window[0][0] - 2 * window[0][1] - window[0][2]
                    + window[2][0]
                    + 2 * window[2][1]
                    + window[2][2];
                gy.abs().min(255)
            }
            WindowKernel::NmsVert => {
                let v = window[1][1];
                if v >= window[0][1] && v >= window[2][1] {
                    v
                } else {
                    0
                }
            }
        }
    }
}

/// A pipeline stage operating on a sliding three-line window. Each firing
/// consumes one input line into a private history buffer and, once three
/// lines are present, produces one output line on every output port.
pub struct WindowStage {
    task: TaskId,
    kernel: WindowKernel,
    width: usize,
    history: ScalarArray,
    lines_in: usize,
    outputs: usize,
}

impl Process for WindowStage {
    fn name(&self) -> &str {
        self.kernel.stage_name()
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        let width = self.width;
        if ctx.available(0) < width {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        // Popping this line may immediately trigger an output line; make
        // sure there is room before consuming anything.
        let will_emit = self.lines_in + 1 >= 3;
        if will_emit {
            for port in 0..self.outputs {
                if ctx.space(port) < width {
                    return FireResult::Blocked;
                }
            }
        }
        let task = self.task;
        let slot = self.lines_in % 3;
        for x in 0..width {
            let v = ctx.pop(0);
            ctx.compute(1);
            self.history.write(ctx, task, slot * width + x, v);
        }
        self.lines_in += 1;
        if !will_emit {
            return FireResult::Fired;
        }
        // Rows of the window, oldest first.
        let newest = (self.lines_in - 1) % 3;
        let middle = (self.lines_in + 1) % 3;
        let oldest = self.lines_in % 3;
        for x in 0..width {
            let mut window = [[0i32; 3]; 3];
            for (r, &row_slot) in [oldest, middle, newest].iter().enumerate() {
                for (c, dx) in (-1i64..=1).enumerate() {
                    let col = (x as i64 + dx).clamp(0, width as i64 - 1) as usize;
                    window[r][c] = self.history.read(ctx, task, row_slot * width + col);
                }
            }
            ctx.compute(14);
            let out = self.kernel.apply(&window);
            for port in 0..self.outputs {
                ctx.push(port, out);
            }
        }
        FireResult::Fired
    }
}

/// Horizontal non-maximum suppression: a single-line stage that keeps only
/// values that are maxima among their left/right neighbours.
pub struct HorizNms {
    task: TaskId,
    width: usize,
    line: ScalarArray,
}

impl Process for HorizNms {
    fn name(&self) -> &str {
        "HorizNMS"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        let width = self.width;
        if ctx.available(0) < width {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < width {
            return FireResult::Blocked;
        }
        let task = self.task;
        for x in 0..width {
            let v = ctx.pop(0);
            self.line.write(ctx, task, x, v);
        }
        for x in 0..width {
            let left = self.line.read(ctx, task, x.saturating_sub(1));
            let v = self.line.read(ctx, task, x);
            let right = self.line.read(ctx, task, (x + 1).min(width - 1));
            ctx.compute(6);
            ctx.push(0, if v >= left && v >= right { v } else { 0 });
        }
        FireResult::Fired
    }
}

/// Final stage: combines the two suppressed gradients, thresholds and writes
/// the edge map.
pub struct MaxThreshold {
    width: usize,
    threshold: i32,
    frame: FrameId,
    lines_written: usize,
    max_lines: usize,
}

impl Process for MaxThreshold {
    fn name(&self) -> &str {
        "MaxTreshold"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        let width = self.width;
        let have_h = ctx.available(0) >= width;
        let have_v = ctx.available(1) >= width;
        let h_closed = ctx.input_closed(0);
        let v_closed = ctx.input_closed(1);
        if self.lines_written >= self.max_lines || (h_closed && v_closed && !have_h && !have_v) {
            return FireResult::Finished;
        }
        // Combine when both lines are present, or drain the surviving input
        // once the other stream has ended (the windowed path is two lines
        // shorter).
        let mode = if have_h && have_v {
            2
        } else if have_h && v_closed {
            1
        } else if have_v && h_closed {
            0
        } else {
            return FireResult::Blocked;
        };
        let line = self.lines_written;
        for x in 0..width {
            let h = if mode != 0 { ctx.pop(0) } else { 0 };
            let v = if mode != 1 { ctx.pop(1) } else { 0 };
            ctx.compute(5);
            let strength = h.max(v);
            let edge = if strength > self.threshold { 255 } else { 0 };
            ctx.frame_write(self.frame, line * width + x, edge);
        }
        self.lines_written += 1;
        FireResult::Fired
    }
}

/// Adds one Canny edge-detection instance (seven tasks, eight FIFOs, one
/// edge-map frame buffer) to `builder`, processing `image`.
///
/// # Errors
///
/// Returns an error if the image is narrower than three pixels or on
/// allocation failure.
pub fn build_canny(
    builder: &mut NetworkBuilder,
    space: &mut AddressSpace,
    _sections: &SharedSections,
    image: &SyntheticImage,
    prefix: &str,
    threshold: i32,
) -> Result<CannyHandles, WorkloadError> {
    if image.width() < 3 || image.height() < 7 {
        return Err(WorkloadError::InvalidDimensions {
            width: image.width(),
            height: image.height(),
            reason: "Canny pipeline needs at least a 3x7 picture",
        });
    }
    let width = image.width();
    let height = image.height();

    // Frontend with the source picture in private data.
    let fr_task = builder.next_task_id();
    let fr_layout =
        TaskLayout::with_code_size(space, &format!("{prefix}.frontend"), fr_task, 3 * 1024)?;
    let source_region = space.allocate_region(
        format!("{prefix}.frontend.source"),
        RegionKind::TaskData { task: fr_task },
        (width * height) as u64,
    )?;
    let mut source = space.array_with_elem_size(source_region, 1)?;
    for (i, &p) in image.pixels().iter().enumerate() {
        source.poke(i, p);
    }
    let frontend = builder.add_process(
        Box::new(FrCanny {
            task: fr_task,
            source,
            width,
            height,
            next_line: 0,
        }),
        fr_layout,
    );

    let window_stage = |builder: &mut NetworkBuilder,
                        space: &mut AddressSpace,
                        kernel: WindowKernel,
                        outputs: usize,
                        code: u64|
     -> Result<TaskId, WorkloadError> {
        let task = builder.next_task_id();
        let name = format!("{prefix}.{}", kernel.stage_name().to_lowercase());
        let layout = TaskLayout::with_code_size(space, &name, task, code)?;
        let history = space.allocate_region(
            format!("{name}.history"),
            RegionKind::TaskBss { task },
            (3 * width) as u64 * 4,
        )?;
        Ok(builder.add_process(
            Box::new(WindowStage {
                task,
                kernel,
                width,
                history: space.array(history)?,
                lines_in: 0,
                outputs,
            }),
            layout,
        ))
    };

    let lowpass = window_stage(builder, space, WindowKernel::LowPass, 2, 5 * 1024)?;
    let horiz_sobel = window_stage(builder, space, WindowKernel::SobelHoriz, 1, 4 * 1024)?;
    let vert_sobel = window_stage(builder, space, WindowKernel::SobelVert, 1, 4 * 1024)?;
    let vert_nms = window_stage(builder, space, WindowKernel::NmsVert, 1, 3 * 1024)?;

    let hn_task = builder.next_task_id();
    let hn_layout =
        TaskLayout::with_code_size(space, &format!("{prefix}.horiznms"), hn_task, 3 * 1024)?;
    let hn_line = space.allocate_region(
        format!("{prefix}.horiznms.line"),
        RegionKind::TaskBss { task: hn_task },
        width as u64 * 4,
    )?;
    let horiz_nms = builder.add_process(
        Box::new(HorizNms {
            task: hn_task,
            width,
            line: space.array(hn_line)?,
        }),
        hn_layout,
    );

    let mt_task = builder.next_task_id();
    let mt_layout =
        TaskLayout::with_code_size(space, &format!("{prefix}.maxthreshold"), mt_task, 2 * 1024)?;
    let edge_frame = builder.add_frame(space, &format!("{prefix}.edges"), width * height, 1)?;
    let max_threshold = builder.add_process(
        Box::new(MaxThreshold {
            width,
            threshold,
            frame: edge_frame,
            lines_written: 0,
            max_lines: height,
        }),
        mt_layout,
    );

    // FIFOs: every edge of the pipeline holds two image lines.
    let cap = 2 * width;
    let f_src = builder.add_fifo(space, &format!("{prefix}.src_to_lp"), cap)?;
    let f_lp_h = builder.add_fifo(space, &format!("{prefix}.lp_to_hsobel"), cap)?;
    let f_lp_v = builder.add_fifo(space, &format!("{prefix}.lp_to_vsobel"), cap)?;
    let f_hs = builder.add_fifo(space, &format!("{prefix}.hsobel_to_hnms"), cap)?;
    let f_vs = builder.add_fifo(space, &format!("{prefix}.vsobel_to_vnms"), cap)?;
    let f_hn = builder.add_fifo(space, &format!("{prefix}.hnms_to_max"), cap)?;
    let f_vn = builder.add_fifo(space, &format!("{prefix}.vnms_to_max"), cap)?;

    builder.connect_output(frontend, 0, f_src)?;
    builder.connect_input(lowpass, 0, f_src)?;
    builder.connect_output(lowpass, 0, f_lp_h)?;
    builder.connect_output(lowpass, 1, f_lp_v)?;
    builder.connect_input(horiz_sobel, 0, f_lp_h)?;
    builder.connect_input(vert_sobel, 0, f_lp_v)?;
    builder.connect_output(horiz_sobel, 0, f_hs)?;
    builder.connect_input(horiz_nms, 0, f_hs)?;
    builder.connect_output(vert_sobel, 0, f_vs)?;
    builder.connect_input(vert_nms, 0, f_vs)?;
    builder.connect_output(horiz_nms, 0, f_hn)?;
    builder.connect_output(vert_nms, 0, f_vn)?;
    builder.connect_input(max_threshold, 0, f_hn)?;
    builder.connect_input(max_threshold, 1, f_vn)?;

    Ok(CannyHandles {
        frontend,
        lowpass,
        horiz_sobel,
        vert_sobel,
        horiz_nms,
        vert_nms,
        max_threshold,
        edge_frame,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_kpn::Network;

    fn run(width: usize, height: usize, seed: u64) -> (SyntheticImage, Network, CannyHandles) {
        let mut space = AddressSpace::new();
        let sections = SharedSections::allocate(&mut space, 4096, 2048, 1024, 1024).unwrap();
        let image = SyntheticImage::generate(width, height, seed);
        let mut builder = NetworkBuilder::new();
        let handles =
            build_canny(&mut builder, &mut space, &sections, &image, "canny", 60).unwrap();
        let mut network = builder.build().unwrap();
        let finished = network.run_functional(10_000_000).unwrap();
        assert!(finished, "canny did not finish");
        (image, network, handles)
    }

    #[test]
    fn pipeline_finishes_and_produces_binary_edge_map() {
        let (_, network, handles) = run(48, 40, 21);
        let frame = network.frame(handles.edge_frame);
        let values: Vec<i32> = frame.as_slice().to_vec();
        assert!(values.iter().all(|&v| v == 0 || v == 255));
        let edges = values.iter().filter(|&&v| v == 255).count();
        assert!(
            edges > 0,
            "the synthetic image has rectangles, so edges exist"
        );
        assert!(
            edges < values.len() / 2,
            "most of the picture should not be an edge"
        );
    }

    #[test]
    fn kernels_behave_on_simple_windows() {
        let flat = [[10; 3]; 3];
        assert_eq!(WindowKernel::LowPass.apply(&flat), 10);
        assert_eq!(WindowKernel::SobelHoriz.apply(&flat), 0);
        assert_eq!(WindowKernel::SobelVert.apply(&flat), 0);
        let step_h = [[0, 0, 100], [0, 0, 100], [0, 0, 100]];
        assert!(WindowKernel::SobelHoriz.apply(&step_h) > 100);
        assert_eq!(WindowKernel::SobelVert.apply(&step_h), 0);
        let step_v = [[0, 0, 0], [0, 0, 0], [100, 100, 100]];
        assert!(WindowKernel::SobelVert.apply(&step_v) > 100);
        let peak = [[0, 5, 0], [0, 9, 0], [0, 3, 0]];
        assert_eq!(WindowKernel::NmsVert.apply(&peak), 9);
        let not_peak = [[0, 50, 0], [0, 9, 0], [0, 3, 0]];
        assert_eq!(WindowKernel::NmsVert.apply(&not_peak), 0);
    }

    #[test]
    fn firing_counts_follow_line_structure() {
        let (_, network, handles) = run(32, 24, 4);
        assert_eq!(network.firings(handles.frontend), 24);
        assert_eq!(network.firings(handles.lowpass), 24);
        // Low-pass emits 22 lines, Sobel stages consume them all.
        assert_eq!(network.firings(handles.horiz_sobel), 22);
        assert_eq!(network.firings(handles.vert_sobel), 22);
        assert_eq!(network.firings(handles.horiz_nms), 20);
        assert_eq!(network.firings(handles.vert_nms), 20);
        // The threshold stage processes every line at least one path offers.
        assert!(network.firings(handles.max_threshold) >= 18);
    }

    #[test]
    fn tiny_image_is_rejected() {
        let mut space = AddressSpace::new();
        let sections = SharedSections::allocate(&mut space, 4096, 2048, 1024, 1024).unwrap();
        let image = SyntheticImage::generate(2, 4, 1);
        let mut builder = NetworkBuilder::new();
        assert!(matches!(
            build_canny(&mut builder, &mut space, &sections, &image, "c", 60),
            Err(WorkloadError::InvalidDimensions { .. })
        ));
    }
}
