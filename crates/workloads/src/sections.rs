//! Shared static sections: application data/bss and run-time-system
//! data/bss.
//!
//! On the paper's platform the statically allocated application data (e.g.
//! quantisation and scan tables) and the run-time system's data are shared
//! between tasks, so — with the same reasoning as for communication
//! buffers — they receive their own exclusive cache partitions (the last
//! rows of Tables 1 and 2).

use compmem_platform::OsRegions;
use compmem_trace::{AddressSpace, RegionId, RegionKind, ScalarArray, TaskId};

use crate::dct::{zigzag_order, DEFAULT_QUANT_TABLE};
use crate::error::WorkloadError;

/// Offset (in 4-byte elements) of the quantisation table inside `app.data`.
pub(crate) const APP_DATA_QUANT_OFFSET: usize = 0;
/// Offset (in 4-byte elements) of the zig-zag table inside `app.data`.
pub(crate) const APP_DATA_ZIGZAG_OFFSET: usize = 64;

/// The four shared static sections of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedSections {
    /// Application initialised data (constant tables shared by all tasks).
    pub app_data: RegionId,
    /// Application zero-initialised data (shared counters and scratch).
    pub app_bss: RegionId,
    /// Run-time-system initialised data.
    pub rt_data: RegionId,
    /// Run-time-system zero-initialised data.
    pub rt_bss: RegionId,
}

impl SharedSections {
    /// Allocates the four sections in `space` with the given sizes in bytes.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors from the address space.
    pub fn allocate(
        space: &mut AddressSpace,
        app_data_bytes: u64,
        app_bss_bytes: u64,
        rt_data_bytes: u64,
        rt_bss_bytes: u64,
    ) -> Result<Self, WorkloadError> {
        Ok(SharedSections {
            app_data: space.allocate_region("app.data", RegionKind::AppData, app_data_bytes)?,
            app_bss: space.allocate_region("app.bss", RegionKind::AppBss, app_bss_bytes)?,
            rt_data: space.allocate_region("rt.data", RegionKind::RtData, rt_data_bytes)?,
            rt_bss: space.allocate_region("rt.bss", RegionKind::RtBss, rt_bss_bytes)?,
        })
    }

    /// Returns a fresh handle onto `app.data`, pre-initialised with the
    /// shared constant tables (quantisation table at element
    /// `APP_DATA_QUANT_OFFSET`, zig-zag order at
    /// `APP_DATA_ZIGZAG_OFFSET`).
    ///
    /// Each process takes its own handle; the tables are read-only so the
    /// duplicated functional storage is irrelevant — all handles emit
    /// accesses to the same addresses.
    ///
    /// # Errors
    ///
    /// Propagates errors from the address space.
    pub fn app_data_tables(&self, space: &AddressSpace) -> Result<ScalarArray, WorkloadError> {
        let mut array = space.array(self.app_data)?;
        for (i, &q) in DEFAULT_QUANT_TABLE.iter().enumerate() {
            array.poke(APP_DATA_QUANT_OFFSET + i, q);
        }
        for (i, &z) in zigzag_order().iter().enumerate() {
            array.poke(APP_DATA_ZIGZAG_OFFSET + i, z as i32);
        }
        Ok(array)
    }

    /// Returns a fresh handle onto `app.bss` (shared zero-initialised
    /// counters / scratch).
    ///
    /// # Errors
    ///
    /// Propagates errors from the address space.
    pub fn app_bss_scratch(&self, space: &AddressSpace) -> Result<ScalarArray, WorkloadError> {
        Ok(space.array(self.app_bss)?)
    }

    /// Builds the [`OsRegions`] descriptor the platform uses to model the
    /// run-time system's traffic on every task switch.
    pub fn os_regions(
        &self,
        space: &AddressSpace,
        os_task: TaskId,
        lines_per_switch: u32,
    ) -> OsRegions {
        OsRegions {
            os_task,
            rt_data: self.rt_data,
            rt_data_base: space.region(self.rt_data).base,
            rt_bss: self.rt_bss,
            rt_bss_base: space.region(self.rt_bss).base,
            lines_per_switch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_are_allocated_with_the_right_kinds() {
        let mut space = AddressSpace::new();
        let s = SharedSections::allocate(&mut space, 4096, 2048, 1024, 1024).unwrap();
        assert_eq!(space.region(s.app_data).kind, RegionKind::AppData);
        assert_eq!(space.region(s.app_bss).kind, RegionKind::AppBss);
        assert_eq!(space.region(s.rt_data).kind, RegionKind::RtData);
        assert_eq!(space.region(s.rt_bss).kind, RegionKind::RtBss);
    }

    #[test]
    fn app_data_tables_hold_quant_and_zigzag() {
        let mut space = AddressSpace::new();
        let s = SharedSections::allocate(&mut space, 4096, 2048, 1024, 1024).unwrap();
        let tables = s.app_data_tables(&space).unwrap();
        assert_eq!(tables.peek(APP_DATA_QUANT_OFFSET), 16);
        assert_eq!(tables.peek(APP_DATA_ZIGZAG_OFFSET), 0);
        assert_eq!(tables.peek(APP_DATA_ZIGZAG_OFFSET + 1), 1);
        assert_eq!(tables.peek(APP_DATA_ZIGZAG_OFFSET + 2), 8);
    }

    #[test]
    fn os_regions_point_into_rt_sections() {
        let mut space = AddressSpace::new();
        let s = SharedSections::allocate(&mut space, 4096, 2048, 1024, 1024).unwrap();
        let os = s.os_regions(&space, TaskId::new(42), 4);
        assert_eq!(os.rt_data, s.rt_data);
        assert_eq!(os.rt_data_base, space.region(s.rt_data).base);
        assert_eq!(os.lines_per_switch, 4);
        assert_eq!(os.os_task, TaskId::new(42));
    }
}
