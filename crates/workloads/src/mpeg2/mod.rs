//! The MPEG-2 video decoder task graph (13 tasks), matching the task names
//! of Table 2 of the paper: `input`, `vld`, `hdr`, `isiq`, `memMan`,
//! `idct`, `add`, `decMV`, `predict`, `predictRD`, `writeMB`, `store` and
//! `output`.
//!
//! The decoder is functional: a synthetic encoder ([`stream`]) produces a
//! coded sequence (one intra picture followed by motion-compensated inter
//! pictures); the thirteen tasks reconstruct the pictures through two decode
//! frame stores and a display frame store, generating the communication and
//! working-set traffic of the van der Wolf MPEG-2 case study the paper uses.
//! Simplifications relative to a standards-compliant decoder (luma only,
//! full-pel motion, one global motion vector) are documented in DESIGN.md;
//! they do not change which memory-active entities exist nor the shape of
//! their traffic.

pub mod stream;

mod back;
mod front;
mod motion;

pub use back::{AddTask, Output, Store, WriteMb};
pub use front::{Hdr, IdctMb, Input, Isiq, Vld};
pub use motion::{DecMv, MemMan, Predict, PredictRd};
pub use stream::{
    encode_stream, generate_source_frames, MacroblockGrid, MB_INTER, MB_INTRA, RECORD_LEN,
};

use compmem_kpn::{FrameId, NetworkBuilder, TaskLayout};
use compmem_trace::{AddressSpace, RegionKind, TaskId};

use crate::error::WorkloadError;
use crate::sections::SharedSections;

/// Task ids, frame stores and geometry of one MPEG-2 decoder instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mpeg2Handles {
    /// The `input` task.
    pub input: TaskId,
    /// The `vld` task.
    pub vld: TaskId,
    /// The `hdr` task.
    pub hdr: TaskId,
    /// The `isiq` task.
    pub isiq: TaskId,
    /// The `memMan` task.
    pub mem_man: TaskId,
    /// The `idct` task.
    pub idct: TaskId,
    /// The `add` task.
    pub add: TaskId,
    /// The `decMV` task.
    pub dec_mv: TaskId,
    /// The `predict` task.
    pub predict: TaskId,
    /// The `predictRD` task.
    pub predict_rd: TaskId,
    /// The `writeMB` task.
    pub write_mb: TaskId,
    /// The `store` task.
    pub store: TaskId,
    /// The `output` task.
    pub output: TaskId,
    /// The two decode (reconstruction/reference) frame stores.
    pub decode_frames: [FrameId; 2],
    /// The display frame store read by `output`.
    pub display_frame: FrameId,
    /// Macroblock grid of the decoded pictures.
    pub grid: MacroblockGrid,
    /// Number of coded pictures in the stream.
    pub pictures: usize,
}

/// Adds a complete MPEG-2 decoder (13 tasks, 17 FIFOs, 3 frame stores) to
/// `builder`, decoding `pictures` pictures of `width` x `height` pixels.
///
/// # Errors
///
/// Returns an error if the dimensions are not positive multiples of 16, if
/// `pictures` is zero, or on allocation failure.
pub fn build_mpeg2_decoder(
    builder: &mut NetworkBuilder,
    space: &mut AddressSpace,
    sections: &SharedSections,
    width: usize,
    height: usize,
    pictures: usize,
    seed: u64,
) -> Result<Mpeg2Handles, WorkloadError> {
    if width == 0 || height == 0 || !width.is_multiple_of(16) || !height.is_multiple_of(16) {
        return Err(WorkloadError::InvalidDimensions {
            width,
            height,
            reason: "MPEG-2 pipeline requires positive multiples of 16",
        });
    }
    if pictures == 0 {
        return Err(WorkloadError::InvalidDimensions {
            width,
            height,
            reason: "at least one picture is required",
        });
    }
    let grid = MacroblockGrid::new(width, height);
    let motion = (2, 1);
    let source_frames = generate_source_frames(grid, pictures, seed, motion);
    let coded = encode_stream(&source_frames, grid, motion);
    let total_records = pictures * grid.mbs_per_picture();

    // Frame stores (communication buffers in the paper's sense).
    let decode0 = builder.add_frame(space, "mpeg2.decode0", grid.pixels_per_picture(), 1)?;
    let decode1 = builder.add_frame(space, "mpeg2.decode1", grid.pixels_per_picture(), 1)?;
    let display = builder.add_frame(space, "mpeg2.display", grid.pixels_per_picture(), 1)?;
    let decode_frames = [decode0, decode1];

    // Small helper to allocate a private bss array.
    let bss = |space: &mut AddressSpace,
               name: String,
               task: TaskId,
               bytes: u64|
     -> Result<compmem_trace::ScalarArray, WorkloadError> {
        let region = space.allocate_region(name, RegionKind::TaskBss { task }, bytes)?;
        Ok(space.array(region)?)
    };

    // input
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.input", t, 4 * 1024)?;
    let stream_region = space.allocate_region(
        "mpeg2.input.stream",
        RegionKind::TaskData { task: t },
        coded.len() as u64 * 2,
    )?;
    let mut stream_array = space.array_with_elem_size(stream_region, 2)?;
    for (i, &v) in coded.iter().enumerate() {
        stream_array.poke(i, v);
    }
    let input = builder.add_process(
        Box::new(Input {
            task: t,
            stream: stream_array,
            next_record: 0,
            total_records,
        }),
        layout,
    );

    // vld
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.vld", t, 12 * 1024)?;
    let vlc_region =
        space.allocate_region("mpeg2.vld.table", RegionKind::TaskData { task: t }, 256 * 4)?;
    let mut vlc_table = space.array(vlc_region)?;
    for i in 0..256 {
        vlc_table.poke(i, (i as i32 * 7 + 3) & 0xff);
    }
    let vld = builder.add_process(
        Box::new(Vld {
            task: t,
            vlc_table,
            block: bss(space, "mpeg2.vld.block".to_string(), t, 256 * 4)?,
        }),
        layout,
    );

    // hdr
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.hdr", t, 6 * 1024)?;
    let hdr = builder.add_process(
        Box::new(Hdr {
            task: t,
            state: bss(space, "mpeg2.hdr.state".to_string(), t, 64)?,
            mb_counter: 0,
            mbs_per_picture: grid.mbs_per_picture() as i32,
        }),
        layout,
    );

    // isiq
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.isiq", t, 6 * 1024)?;
    let isiq = builder.add_process(
        Box::new(Isiq {
            task: t,
            tables: sections.app_data_tables(space)?,
            block: bss(space, "mpeg2.isiq.block".to_string(), t, 256 * 4)?,
        }),
        layout,
    );

    // memMan
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.memman", t, 4 * 1024)?;
    let mem_man = builder.add_process(
        Box::new(MemMan {
            task: t,
            frame_table: bss(space, "mpeg2.memman.table".to_string(), t, 64)?,
            mbs_per_picture: grid.mbs_per_picture() as i32,
            current_frame: 0,
        }),
        layout,
    );

    // idct
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.idct", t, 8 * 1024)?;
    let idct = builder.add_process(
        Box::new(IdctMb {
            task: t,
            work: bss(space, "mpeg2.idct.work".to_string(), t, 128 * 4)?,
        }),
        layout,
    );

    // add
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.add", t, 3 * 1024)?;
    let add = builder.add_process(
        Box::new(AddTask {
            task: t,
            accum: bss(space, "mpeg2.add.accum".to_string(), t, 64 * 4)?,
        }),
        layout,
    );

    // decMV
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.decmv", t, 4 * 1024)?;
    let dec_mv = builder.add_process(
        Box::new(DecMv {
            task: t,
            mv_state: bss(space, "mpeg2.decmv.state".to_string(), t, 64)?,
        }),
        layout,
    );

    // predict
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.predict", t, 8 * 1024)?;
    let predict = builder.add_process(
        Box::new(Predict {
            task: t,
            work: bss(space, "mpeg2.predict.work".to_string(), t, 256 * 4)?,
        }),
        layout,
    );

    // predictRD
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.predictrd", t, 4 * 1024)?;
    let predict_rd = builder.add_process(
        Box::new(PredictRd {
            grid,
            decode_frames,
        }),
        layout,
    );

    // writeMB
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.writemb", t, 4 * 1024)?;
    let write_mb = builder.add_process(
        Box::new(WriteMb {
            grid,
            decode_frames,
        }),
        layout,
    );

    // store
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.store", t, 3 * 1024)?;
    let store = builder.add_process(Box::new(Store::new(grid, decode_frames, display)), layout);

    // output
    let t = builder.next_task_id();
    let layout = TaskLayout::with_code_size(space, "mpeg2.output", t, 3 * 1024)?;
    let output = builder.add_process(
        Box::new(Output {
            task: t,
            grid,
            display_frame: display,
            checksum: bss(space, "mpeg2.output.checksum".to_string(), t, 64)?,
            current_line: None,
            frames_emitted: 0,
        }),
        layout,
    );

    // FIFOs.
    let f_in_hdr = builder.add_fifo(space, "mpeg2.in_to_hdr", 32)?;
    let f_in_vld = builder.add_fifo(space, "mpeg2.in_to_vld", 512)?;
    let f_hdr_decmv = builder.add_fifo(space, "mpeg2.hdr_to_decmv", 32)?;
    let f_hdr_memman = builder.add_fifo(space, "mpeg2.hdr_to_memman", 32)?;
    let f_vld_isiq = builder.add_fifo(space, "mpeg2.vld_to_isiq", 512)?;
    let f_isiq_idct = builder.add_fifo(space, "mpeg2.isiq_to_idct", 512)?;
    let f_idct_add = builder.add_fifo(space, "mpeg2.idct_to_add", 512)?;
    let f_decmv_predict = builder.add_fifo(space, "mpeg2.decmv_to_predict", 32)?;
    let f_decmv_predictrd = builder.add_fifo(space, "mpeg2.decmv_to_predictrd", 32)?;
    let f_memman_predictrd = builder.add_fifo(space, "mpeg2.memman_to_predictrd", 32)?;
    let f_memman_writemb = builder.add_fifo(space, "mpeg2.memman_to_writemb", 32)?;
    let f_memman_store = builder.add_fifo(space, "mpeg2.memman_to_store", 8)?;
    let f_predictrd_predict = builder.add_fifo(space, "mpeg2.predictrd_to_predict", 512)?;
    let f_predict_add = builder.add_fifo(space, "mpeg2.predict_to_add", 512)?;
    let f_add_writemb = builder.add_fifo(space, "mpeg2.add_to_writemb", 512)?;
    let f_writemb_store = builder.add_fifo(space, "mpeg2.writemb_to_store", 64)?;
    let f_store_output = builder.add_fifo(space, "mpeg2.store_to_output", 8)?;

    builder.connect_output(input, 0, f_in_hdr)?;
    builder.connect_output(input, 1, f_in_vld)?;
    builder.connect_input(hdr, 0, f_in_hdr)?;
    builder.connect_output(hdr, 0, f_hdr_decmv)?;
    builder.connect_output(hdr, 1, f_hdr_memman)?;
    builder.connect_input(vld, 0, f_in_vld)?;
    builder.connect_output(vld, 0, f_vld_isiq)?;
    builder.connect_input(isiq, 0, f_vld_isiq)?;
    builder.connect_output(isiq, 0, f_isiq_idct)?;
    builder.connect_input(idct, 0, f_isiq_idct)?;
    builder.connect_output(idct, 0, f_idct_add)?;
    builder.connect_input(dec_mv, 0, f_hdr_decmv)?;
    builder.connect_output(dec_mv, 0, f_decmv_predict)?;
    builder.connect_output(dec_mv, 1, f_decmv_predictrd)?;
    builder.connect_input(mem_man, 0, f_hdr_memman)?;
    builder.connect_output(mem_man, 0, f_memman_predictrd)?;
    builder.connect_output(mem_man, 1, f_memman_writemb)?;
    builder.connect_output(mem_man, 2, f_memman_store)?;
    builder.connect_input(predict_rd, 0, f_decmv_predictrd)?;
    builder.connect_input(predict_rd, 1, f_memman_predictrd)?;
    builder.connect_output(predict_rd, 0, f_predictrd_predict)?;
    builder.connect_input(predict, 0, f_decmv_predict)?;
    builder.connect_input(predict, 1, f_predictrd_predict)?;
    builder.connect_output(predict, 0, f_predict_add)?;
    builder.connect_input(add, 0, f_idct_add)?;
    builder.connect_input(add, 1, f_predict_add)?;
    builder.connect_output(add, 0, f_add_writemb)?;
    builder.connect_input(write_mb, 0, f_memman_writemb)?;
    builder.connect_input(write_mb, 1, f_add_writemb)?;
    builder.connect_output(write_mb, 0, f_writemb_store)?;
    builder.connect_input(store, 0, f_writemb_store)?;
    builder.connect_input(store, 1, f_memman_store)?;
    builder.connect_output(store, 0, f_store_output)?;
    builder.connect_input(output, 0, f_store_output)?;

    Ok(Mpeg2Handles {
        input,
        vld,
        hdr,
        isiq,
        mem_man,
        idct,
        add,
        dec_mv,
        predict,
        predict_rd,
        write_mb,
        store,
        output,
        decode_frames,
        display_frame: display,
        grid,
        pictures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_kpn::Network;

    fn decode(
        width: usize,
        height: usize,
        pictures: usize,
        seed: u64,
    ) -> (Vec<Vec<i32>>, Network, Mpeg2Handles) {
        let mut space = AddressSpace::new();
        let sections = SharedSections::allocate(&mut space, 4096, 2048, 1024, 1024).unwrap();
        let mut builder = NetworkBuilder::new();
        let handles = build_mpeg2_decoder(
            &mut builder,
            &mut space,
            &sections,
            width,
            height,
            pictures,
            seed,
        )
        .unwrap();
        let grid = MacroblockGrid::new(width, height);
        let source = generate_source_frames(grid, pictures, seed, (2, 1));
        let mut network = builder.build().unwrap();
        let finished = network.run_functional(100_000_000).unwrap();
        assert!(finished, "mpeg2 decoder did not finish");
        (source, network, handles)
    }

    #[test]
    fn intra_picture_reconstructs_the_source() {
        let (source, network, handles) = decode(32, 32, 1, 17);
        // With a single picture the display buffer holds the intra picture.
        let display = network.frame(handles.display_frame);
        let mut total_err = 0i64;
        for (i, &orig) in source[0].iter().enumerate() {
            total_err += i64::from((display.peek(i) - orig).abs());
        }
        let mean = total_err as f64 / source[0].len() as f64;
        assert!(mean < 12.0, "intra reconstruction error {mean} too large");
    }

    #[test]
    fn inter_pictures_track_the_moving_source() {
        let (source, network, handles) = decode(48, 32, 3, 5);
        let display = network.frame(handles.display_frame);
        let last = source.last().unwrap();
        let mut total_err = 0i64;
        for (i, &orig) in last.iter().enumerate() {
            total_err += i64::from((display.peek(i) - orig).abs());
        }
        let mean = total_err as f64 / last.len() as f64;
        assert!(
            mean < 15.0,
            "motion-compensated reconstruction error {mean} too large"
        );
    }

    #[test]
    fn firing_counts_match_macroblock_structure() {
        let (_, network, handles) = decode(32, 32, 2, 3);
        let grid = MacroblockGrid::new(32, 32);
        let mbs = (grid.mbs_per_picture() * 2) as u64;
        assert_eq!(network.firings(handles.input), mbs);
        assert_eq!(network.firings(handles.vld), mbs);
        assert_eq!(network.firings(handles.isiq), mbs);
        assert_eq!(network.firings(handles.idct), mbs * 4);
        assert_eq!(network.firings(handles.add), mbs);
        assert_eq!(network.firings(handles.write_mb), mbs);
        assert_eq!(network.firings(handles.dec_mv), mbs);
        assert_eq!(network.firings(handles.predict_rd), mbs);
        // store: collect firings + await + one copy firing per line + notify.
        assert!(network.firings(handles.store) >= 2 * (32 + 2));
        assert!(network.firings(handles.output) >= 2 * 32);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut space = AddressSpace::new();
        let sections = SharedSections::allocate(&mut space, 4096, 2048, 1024, 1024).unwrap();
        let mut builder = NetworkBuilder::new();
        assert!(matches!(
            build_mpeg2_decoder(&mut builder, &mut space, &sections, 40, 32, 1, 1),
            Err(WorkloadError::InvalidDimensions { .. })
        ));
        assert!(matches!(
            build_mpeg2_decoder(&mut builder, &mut space, &sections, 32, 32, 0, 1),
            Err(WorkloadError::InvalidDimensions { .. })
        ));
    }
}
