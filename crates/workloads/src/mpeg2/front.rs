//! The front half of the MPEG-2 decoder: stream input, header parsing,
//! variable-length decoding, inverse scan/quantisation and the IDCT.

use compmem_kpn::{FireContext, FireResult, Process};
use compmem_trace::{ScalarArray, TaskId};

use crate::dct::idct_8x8;
use crate::sections::{APP_DATA_QUANT_OFFSET, APP_DATA_ZIGZAG_OFFSET};

use super::stream::RECORD_LEN;

/// `input`: replays the coded stream, one macroblock record per firing.
///
/// Output port 0 carries the three header values to `hdr`; output port 1
/// carries the 256 quantised coefficients to `vld`.
pub struct Input {
    pub(super) task: TaskId,
    pub(super) stream: ScalarArray,
    pub(super) next_record: usize,
    pub(super) total_records: usize,
}

impl Process for Input {
    fn name(&self) -> &str {
        "input"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if self.next_record == self.total_records {
            return FireResult::Finished;
        }
        if ctx.space(0) < 3 || ctx.space(1) < 256 {
            return FireResult::Blocked;
        }
        let task = self.task;
        let base = self.next_record * RECORD_LEN;
        for i in 0..3 {
            let v = self.stream.read(ctx, task, base + i);
            ctx.compute(1);
            ctx.push(0, v);
        }
        for i in 0..256 {
            let v = self.stream.read(ctx, task, base + 3 + i);
            ctx.compute(1);
            ctx.push(1, v);
        }
        self.next_record += 1;
        FireResult::Fired
    }
}

/// `hdr`: parses macroblock headers and fans the side information out to the
/// motion-vector decoder (port 0) and the memory manager (port 1).
pub struct Hdr {
    pub(super) task: TaskId,
    pub(super) state: ScalarArray,
    pub(super) mb_counter: i32,
    pub(super) mbs_per_picture: i32,
}

impl Process for Hdr {
    fn name(&self) -> &str {
        "hdr"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 3 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 3 || ctx.space(1) < 2 {
            return FireResult::Blocked;
        }
        let task = self.task;
        let mb_type = ctx.pop(0);
        let mv_x = ctx.pop(0);
        let mv_y = ctx.pop(0);
        // Picture/slice state bookkeeping in private data.
        let pictures = self.state.read(ctx, task, 0);
        self.state.write(ctx, task, 1, mb_type);
        self.state.write(ctx, task, 2, self.mb_counter);
        ctx.compute(8);
        let mb_in_picture = self.mb_counter % self.mbs_per_picture;
        if mb_in_picture == self.mbs_per_picture - 1 {
            self.state.write(ctx, task, 0, pictures + 1);
        }
        ctx.push_all(0, &[mb_type, mv_x, mv_y]);
        ctx.push_all(1, &[mb_in_picture, mb_type]);
        self.mb_counter += 1;
        FireResult::Fired
    }
}

/// `vld`: variable-length decoding, modelled as a table-driven expansion of
/// the coefficient stream through a private VLC table and block buffer.
pub struct Vld {
    pub(super) task: TaskId,
    pub(super) vlc_table: ScalarArray,
    pub(super) block: ScalarArray,
}

impl Process for Vld {
    fn name(&self) -> &str {
        "vld"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 256 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 256 {
            return FireResult::Blocked;
        }
        let task = self.task;
        for i in 0..256 {
            let v = ctx.pop(0);
            let _code = self.vlc_table.read(
                ctx,
                task,
                (v.unsigned_abs() as usize) % self.vlc_table.len(),
            );
            ctx.compute(4);
            self.block.write(ctx, task, i, v);
        }
        for i in 0..256 {
            let v = self.block.read(ctx, task, i);
            ctx.push(0, v);
        }
        FireResult::Fired
    }
}

/// `isiq`: inverse scan (de-zig-zag) and inverse quantisation using the
/// shared tables in `app.data`.
pub struct Isiq {
    pub(super) task: TaskId,
    pub(super) tables: ScalarArray,
    pub(super) block: ScalarArray,
}

impl Process for Isiq {
    fn name(&self) -> &str {
        "isiq"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 256 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 256 {
            return FireResult::Blocked;
        }
        let task = self.task;
        for b in 0..4 {
            for i in 0..64 {
                let v = ctx.pop(0);
                let raster = self.tables.read(ctx, task, APP_DATA_ZIGZAG_OFFSET + i) as usize;
                let quant = self.tables.read(ctx, task, APP_DATA_QUANT_OFFSET + raster);
                ctx.compute(3);
                self.block.write(ctx, task, b * 64 + raster % 64, v * quant);
            }
        }
        for i in 0..256 {
            let v = self.block.read(ctx, task, i);
            ctx.push(0, v);
        }
        FireResult::Fired
    }
}

/// `idct`: one inverse 8x8 DCT per firing over a private work buffer,
/// producing residual samples (no level shift — the `add` task combines the
/// residual with the prediction).
pub struct IdctMb {
    pub(super) task: TaskId,
    pub(super) work: ScalarArray,
}

impl Process for IdctMb {
    fn name(&self) -> &str {
        "idct"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 64 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 64 {
            return FireResult::Blocked;
        }
        let task = self.task;
        let mut coeffs = [0i32; 64];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = ctx.pop(0);
            self.work.write(ctx, task, i, *c);
        }
        for i in 0..64 {
            let v = self.work.read(ctx, task, i);
            ctx.compute(8);
            self.work.write(ctx, task, 64 + i, v);
        }
        let samples = idct_8x8(&coeffs);
        for (i, &sample) in samples.iter().enumerate() {
            let _ = self.work.read(ctx, task, 64 + i);
            ctx.compute(8);
            ctx.push(0, sample);
        }
        FireResult::Fired
    }
}
