//! The motion-compensation half of the MPEG-2 decoder: motion-vector
//! decoding, frame-buffer management, reference reads and prediction.

use compmem_kpn::{FireContext, FireResult, FrameId, Process};
use compmem_trace::{ScalarArray, TaskId};

use super::stream::{MacroblockGrid, MB_INTRA};

/// `decMV`: reconstructs motion vectors (differential decoding against the
/// previous macroblock's vector kept in private state) and forwards them to
/// the prediction tasks.
pub struct DecMv {
    pub(super) task: TaskId,
    pub(super) mv_state: ScalarArray,
}

impl Process for DecMv {
    fn name(&self) -> &str {
        "decMV"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 3 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 3 || ctx.space(1) < 3 {
            return FireResult::Blocked;
        }
        let task = self.task;
        let mb_type = ctx.pop(0);
        let mv_x = ctx.pop(0);
        let mv_y = ctx.pop(0);
        let prev_x = self.mv_state.read(ctx, task, 0);
        let prev_y = self.mv_state.read(ctx, task, 1);
        ctx.compute(10);
        // The synthetic stream carries absolute vectors; the differential
        // bookkeeping still produces the private-state traffic of a real
        // decoder.
        let _ = (prev_x, prev_y);
        self.mv_state.write(ctx, task, 0, mv_x);
        self.mv_state.write(ctx, task, 1, mv_y);
        ctx.push_all(0, &[mb_type, mv_x, mv_y]);
        ctx.push_all(1, &[mb_type, mv_x, mv_y]);
        FireResult::Fired
    }
}

/// `memMan`: decides which physical frame store holds the current and the
/// reference picture, and signals picture completion to `store`.
pub struct MemMan {
    pub(super) task: TaskId,
    pub(super) frame_table: ScalarArray,
    pub(super) mbs_per_picture: i32,
    pub(super) current_frame: i32,
}

impl Process for MemMan {
    fn name(&self) -> &str {
        "memMan"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 2 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 2 || ctx.space(1) < 2 || ctx.space(2) < 1 {
            return FireResult::Blocked;
        }
        let task = self.task;
        let mb_index = ctx.pop(0);
        let mb_type = ctx.pop(0);
        let cur = self.current_frame;
        let reference = 1 - cur;
        // Frame-state bookkeeping (allocation table of the memory manager).
        let uses = self.frame_table.read(ctx, task, cur as usize);
        self.frame_table.write(ctx, task, cur as usize, uses + 1);
        self.frame_table
            .write(ctx, task, 4 + mb_type as usize, mb_index);
        ctx.compute(8);
        ctx.push_all(0, &[reference, mb_index]);
        ctx.push_all(1, &[cur, mb_index]);
        if mb_index == self.mbs_per_picture - 1 {
            ctx.push(2, cur);
            self.current_frame = reference;
        }
        FireResult::Fired
    }
}

/// `predictRD`: reads the reference macroblock samples for the motion
/// compensation from the reference frame store (the "prediction read"
/// helper task of the paper's decoder).
pub struct PredictRd {
    pub(super) grid: MacroblockGrid,
    pub(super) decode_frames: [FrameId; 2],
}

impl Process for PredictRd {
    fn name(&self) -> &str {
        "predictRD"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 3 || ctx.available(1) < 2 {
            if ctx.input_closed(0) && ctx.available(0) == 0 {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 256 {
            return FireResult::Blocked;
        }
        let mb_type = ctx.pop(0);
        let mv_x = ctx.pop(0);
        let mv_y = ctx.pop(0);
        let reference = ctx.pop(1);
        let mb_index = ctx.pop(1);
        let (mb_x, mb_y) = self.grid.mb_origin(mb_index as usize);
        if mb_type == MB_INTRA {
            for _ in 0..256 {
                ctx.compute(1);
                ctx.push(0, 0);
            }
            return FireResult::Fired;
        }
        let frame = self.decode_frames[reference as usize];
        let width = self.grid.width as i32;
        let height = self.grid.height as i32;
        for b in 0..4 {
            let (x0, y0) = self.grid.block_origin(mb_x, mb_y, b);
            for dy in 0..8 {
                for dx in 0..8 {
                    // Same convention as the encoder: the predictor of (x, y)
                    // is the reference sample at (x - mv_x, y - mv_y).
                    let sx = ((x0 + dx) as i32 - mv_x).clamp(0, width - 1) as usize;
                    let sy = ((y0 + dy) as i32 - mv_y).clamp(0, height - 1) as usize;
                    let v = ctx.frame_read(frame, sy * self.grid.width + sx);
                    ctx.compute(2);
                    ctx.push(0, v);
                }
            }
        }
        FireResult::Fired
    }
}

/// `predict`: forms the final prediction (rounding / interpolation pass over
/// the reference samples delivered by `predictRD`).
pub struct Predict {
    pub(super) task: TaskId,
    pub(super) work: ScalarArray,
}

impl Process for Predict {
    fn name(&self) -> &str {
        "predict"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 3 || ctx.available(1) < 256 {
            if ctx.input_closed(0) && ctx.available(0) == 0 && ctx.available(1) == 0 {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 256 {
            return FireResult::Blocked;
        }
        let task = self.task;
        let _mb_type = ctx.pop(0);
        let mv_x = ctx.pop(0);
        let mv_y = ctx.pop(0);
        // Rounding control of the (here full-pel) interpolation.
        let rounding = (mv_x & 1) + (mv_y & 1);
        for i in 0..256 {
            let v = ctx.pop(1);
            ctx.compute(3);
            self.work.write(ctx, task, i, v + rounding / 2);
        }
        for i in 0..256 {
            let v = self.work.read(ctx, task, i);
            ctx.push(0, v);
        }
        FireResult::Fired
    }
}
