//! Synthetic MPEG-2-like coded stream: source sequence generation and the
//! encoder that produces the `input` task's coded buffer.

use crate::dct::{forward_dct_8x8, quantise, zigzag_order, DEFAULT_QUANT_TABLE};
use crate::pixels::SyntheticImage;

/// Number of values per coded macroblock record:
/// `[mb_type, mv_x, mv_y]` followed by four 8x8 blocks of quantised
/// coefficients in zig-zag order.
pub const RECORD_LEN: usize = 3 + 4 * 64;

/// Macroblock type: intra coded (no prediction).
pub const MB_INTRA: i32 = 0;
/// Macroblock type: inter coded (motion-compensated from the previous
/// picture).
pub const MB_INTER: i32 = 1;

/// Geometry of the macroblock grid of a picture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacroblockGrid {
    /// Picture width in pixels (multiple of 16).
    pub width: usize,
    /// Picture height in pixels (multiple of 16).
    pub height: usize,
}

impl MacroblockGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are not positive multiples of 16.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0 && width.is_multiple_of(16) && height.is_multiple_of(16),
            "picture dimensions must be positive multiples of 16"
        );
        MacroblockGrid { width, height }
    }

    /// Macroblock columns.
    pub fn mb_cols(&self) -> usize {
        self.width / 16
    }

    /// Macroblock rows.
    pub fn mb_rows(&self) -> usize {
        self.height / 16
    }

    /// Macroblocks per picture.
    pub fn mbs_per_picture(&self) -> usize {
        self.mb_cols() * self.mb_rows()
    }

    /// Pixels per picture.
    pub fn pixels_per_picture(&self) -> usize {
        self.width * self.height
    }

    /// Top-left pixel coordinates of macroblock `index` (raster order).
    pub fn mb_origin(&self, index: usize) -> (usize, usize) {
        let col = index % self.mb_cols();
        let row = index / self.mb_cols();
        (col * 16, row * 16)
    }

    /// Top-left pixel coordinates of 8x8 block `b` (0..4) of the macroblock
    /// at `(mb_x, mb_y)`: blocks are ordered top-left, top-right,
    /// bottom-left, bottom-right.
    pub fn block_origin(&self, mb_x: usize, mb_y: usize, b: usize) -> (usize, usize) {
        (mb_x + (b % 2) * 8, mb_y + (b / 2) * 8)
    }
}

/// Generates `frames` source pictures: the first from the synthetic-image
/// generator, each following one a clamped global shift of its predecessor
/// (global panning motion), so that inter macroblocks with the global motion
/// vector have near-zero residual.
pub fn generate_source_frames(
    grid: MacroblockGrid,
    frames: usize,
    seed: u64,
    motion: (i32, i32),
) -> Vec<Vec<i32>> {
    let first = SyntheticImage::generate(grid.width, grid.height, seed);
    let mut out: Vec<Vec<i32>> = vec![first.pixels().to_vec()];
    for _ in 1..frames {
        let prev = out.last().expect("at least one frame");
        let mut next = vec![0i32; grid.pixels_per_picture()];
        for y in 0..grid.height {
            for x in 0..grid.width {
                let sx = (x as i32 - motion.0).clamp(0, grid.width as i32 - 1) as usize;
                let sy = (y as i32 - motion.1).clamp(0, grid.height as i32 - 1) as usize;
                next[y * grid.width + x] = prev[sy * grid.width + sx];
            }
        }
        out.push(next);
    }
    out
}

fn block_from(frame: &[i32], grid: MacroblockGrid, x0: usize, y0: usize) -> [i32; 64] {
    let mut out = [0i32; 64];
    for dy in 0..8 {
        for dx in 0..8 {
            out[dy * 8 + dx] = frame[(y0 + dy) * grid.width + (x0 + dx)];
        }
    }
    out
}

/// Motion-compensated prediction. The convention used throughout the
/// reproduction is that the motion vector points from the reference picture
/// to the current one: the predictor for pixel `(x, y)` is the reference
/// sample at `(x - mv_x, y - mv_y)`.
fn predicted_block(
    reference: &[i32],
    grid: MacroblockGrid,
    x0: usize,
    y0: usize,
    mv: (i32, i32),
) -> [i32; 64] {
    let mut out = [0i32; 64];
    for dy in 0..8 {
        for dx in 0..8 {
            let sx = ((x0 + dx) as i32 - mv.0).clamp(0, grid.width as i32 - 1) as usize;
            let sy = ((y0 + dy) as i32 - mv.1).clamp(0, grid.height as i32 - 1) as usize;
            out[dy * 8 + dx] = reference[sy * grid.width + sx];
        }
    }
    out
}

/// Encodes a sequence of source frames into the coded macroblock stream the
/// `input` task replays.
///
/// The first picture is intra coded; every following picture is inter coded
/// against its predecessor with the single global motion vector `motion`.
pub fn encode_stream(frames: &[Vec<i32>], grid: MacroblockGrid, motion: (i32, i32)) -> Vec<i32> {
    let zigzag = zigzag_order();
    let mut stream = Vec::with_capacity(frames.len() * grid.mbs_per_picture() * RECORD_LEN);
    for (f, frame) in frames.iter().enumerate() {
        let intra = f == 0;
        for mb in 0..grid.mbs_per_picture() {
            let (mb_x, mb_y) = grid.mb_origin(mb);
            let (mb_type, mv) = if intra {
                (MB_INTRA, (0, 0))
            } else {
                (MB_INTER, motion)
            };
            stream.push(mb_type);
            stream.push(mv.0);
            stream.push(mv.1);
            for b in 0..4 {
                let (x0, y0) = grid.block_origin(mb_x, mb_y, b);
                let cur = block_from(frame, grid, x0, y0);
                let residual = if intra {
                    cur
                } else {
                    let pred = predicted_block(&frames[f - 1], grid, x0, y0, mv);
                    let mut r = [0i32; 64];
                    for i in 0..64 {
                        r[i] = cur[i] - pred[i];
                    }
                    r
                };
                let coeffs = forward_dct_8x8(&residual);
                let q = quantise(&coeffs, &DEFAULT_QUANT_TABLE);
                for &pos in &zigzag {
                    stream.push(q[pos]);
                }
            }
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let g = MacroblockGrid::new(48, 32);
        assert_eq!(g.mb_cols(), 3);
        assert_eq!(g.mb_rows(), 2);
        assert_eq!(g.mbs_per_picture(), 6);
        assert_eq!(g.mb_origin(0), (0, 0));
        assert_eq!(g.mb_origin(4), (16, 16));
        assert_eq!(g.block_origin(16, 16, 0), (16, 16));
        assert_eq!(g.block_origin(16, 16, 3), (24, 24));
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn bad_grid_panics() {
        let _ = MacroblockGrid::new(40, 32);
    }

    #[test]
    fn source_frames_follow_global_motion() {
        let g = MacroblockGrid::new(48, 32);
        let frames = generate_source_frames(g, 3, 7, (2, 1));
        assert_eq!(frames.len(), 3);
        // Away from the borders, frame 1 is frame 0 shifted by the motion.
        assert_eq!(frames[1][10 * 48 + 20], frames[0][9 * 48 + 18]);
        assert_eq!(frames[2][20 * 48 + 30], frames[1][19 * 48 + 28]);
    }

    #[test]
    fn stream_layout_and_types() {
        let g = MacroblockGrid::new(32, 32);
        let frames = generate_source_frames(g, 2, 3, (2, 1));
        let stream = encode_stream(&frames, g, (2, 1));
        assert_eq!(stream.len(), 2 * g.mbs_per_picture() * RECORD_LEN);
        // First picture intra, second inter with the global motion vector.
        assert_eq!(stream[0], MB_INTRA);
        let second_pic = g.mbs_per_picture() * RECORD_LEN;
        assert_eq!(stream[second_pic], MB_INTER);
        assert_eq!(stream[second_pic + 1], 2);
        assert_eq!(stream[second_pic + 2], 1);
    }

    #[test]
    fn inter_residuals_are_mostly_zero_away_from_borders() {
        let g = MacroblockGrid::new(64, 48);
        let frames = generate_source_frames(g, 2, 9, (2, 1));
        let stream = encode_stream(&frames, g, (2, 1));
        // Count non-zero coefficients of the second picture's interior MBs.
        let rec = RECORD_LEN;
        let pic1 = g.mbs_per_picture() * rec;
        // Macroblock (1,1) is interior for a 4x3 grid.
        let mb_index = g.mb_cols() + 1;
        let coeffs = &stream[pic1 + mb_index * rec + 3..pic1 + (mb_index + 1) * rec];
        let nonzero = coeffs.iter().filter(|&&c| c != 0).count();
        assert!(
            nonzero <= 8,
            "interior inter macroblock should have a near-empty residual, got {nonzero}"
        );
    }
}
