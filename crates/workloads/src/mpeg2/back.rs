//! The back half of the MPEG-2 decoder: reconstruction, macroblock
//! write-back, picture storage and output.

use compmem_kpn::{FireContext, FireResult, FrameId, Process};
use compmem_trace::{ScalarArray, TaskId};

use super::stream::MacroblockGrid;

/// `add`: adds the IDCT residual to the motion-compensated prediction and
/// clamps to the sample range.
pub struct AddTask {
    pub(super) task: TaskId,
    pub(super) accum: ScalarArray,
}

impl Process for AddTask {
    fn name(&self) -> &str {
        "add"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 256 || ctx.available(1) < 256 {
            if ctx.input_closed(0) && ctx.available(0) == 0 && ctx.available(1) == 0 {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 256 {
            return FireResult::Blocked;
        }
        let task = self.task;
        for i in 0..256 {
            let residual = ctx.pop(0);
            let prediction = ctx.pop(1);
            ctx.compute(3);
            let sample = (residual + prediction).clamp(0, 255);
            self.accum.write(ctx, task, i % self.accum.len(), sample);
            ctx.push(0, sample);
        }
        FireResult::Fired
    }
}

/// `writeMB`: writes the reconstructed macroblock into the current frame
/// store and signals completion to `store`.
pub struct WriteMb {
    pub(super) grid: MacroblockGrid,
    pub(super) decode_frames: [FrameId; 2],
}

impl Process for WriteMb {
    fn name(&self) -> &str {
        "writeMB"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        if ctx.available(0) < 2 || ctx.available(1) < 256 {
            if ctx.input_closed(0) && ctx.available(0) == 0 && ctx.available(1) == 0 {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        if ctx.space(0) < 1 {
            return FireResult::Blocked;
        }
        let current = ctx.pop(0);
        let mb_index = ctx.pop(0);
        let (mb_x, mb_y) = self.grid.mb_origin(mb_index as usize);
        let frame = self.decode_frames[current as usize];
        for b in 0..4 {
            let (x0, y0) = self.grid.block_origin(mb_x, mb_y, b);
            for dy in 0..8 {
                for dx in 0..8 {
                    let v = ctx.pop(1);
                    ctx.compute(1);
                    ctx.frame_write(frame, (y0 + dy) * self.grid.width + (x0 + dx), v);
                }
            }
        }
        ctx.push(0, mb_index);
        FireResult::Fired
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StorePhase {
    /// Collecting macroblock-done tokens of the current picture.
    Collect,
    /// Waiting for the memory manager's end-of-picture token.
    AwaitPicture,
    /// Copying the decoded picture to the display buffer, one line per
    /// firing.
    Copy { frame: i32, line: usize },
    /// Copy finished; the output task has not been notified yet.
    Notify,
}

/// `store`: once a picture is completely reconstructed, copies it from the
/// decode frame store to the display frame store and notifies `output`.
pub struct Store {
    grid: MacroblockGrid,
    decode_frames: [FrameId; 2],
    display_frame: FrameId,
    mbs_done: usize,
    pictures_done: i32,
    phase: StorePhase,
}

impl Store {
    pub(super) fn new(
        grid: MacroblockGrid,
        decode_frames: [FrameId; 2],
        display_frame: FrameId,
    ) -> Self {
        Store {
            grid,
            decode_frames,
            display_frame,
            mbs_done: 0,
            pictures_done: 0,
            phase: StorePhase::Collect,
        }
    }
}

impl Process for Store {
    fn name(&self) -> &str {
        "store"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        match self.phase {
            StorePhase::Copy { frame, line } => {
                let width = self.grid.width;
                for x in 0..width {
                    let v = ctx.frame_read(self.decode_frames[frame as usize], line * width + x);
                    ctx.compute(1);
                    ctx.frame_write(self.display_frame, line * width + x, v);
                }
                let next = line + 1;
                self.phase = if next == self.grid.height {
                    StorePhase::Notify
                } else {
                    StorePhase::Copy { frame, line: next }
                };
                FireResult::Fired
            }
            StorePhase::Notify => {
                if ctx.space(0) < 1 {
                    return FireResult::Blocked;
                }
                ctx.push(0, self.pictures_done);
                self.pictures_done += 1;
                self.phase = StorePhase::Collect;
                FireResult::Fired
            }
            StorePhase::AwaitPicture => {
                if ctx.available(1) < 1 {
                    return FireResult::Blocked;
                }
                let frame = ctx.pop(1);
                ctx.compute(2);
                self.phase = StorePhase::Copy { frame, line: 0 };
                FireResult::Fired
            }
            StorePhase::Collect => {
                let available = ctx.available(0);
                if available == 0 {
                    if ctx.input_closed(0) && ctx.input_closed(1) && self.mbs_done == 0 {
                        return FireResult::Finished;
                    }
                    return FireResult::Blocked;
                }
                let needed = self.grid.mbs_per_picture() - self.mbs_done;
                let take = available.min(needed);
                for _ in 0..take {
                    let _ = ctx.pop(0);
                    ctx.compute(1);
                }
                self.mbs_done += take;
                if self.mbs_done == self.grid.mbs_per_picture() {
                    self.mbs_done = 0;
                    self.phase = StorePhase::AwaitPicture;
                }
                FireResult::Fired
            }
        }
    }
}

/// `output`: consumes the display frame line by line (the video output /
/// display refresh of the decoder case study) and keeps a running checksum
/// in private data.
pub struct Output {
    pub(super) task: TaskId,
    pub(super) grid: MacroblockGrid,
    pub(super) display_frame: FrameId,
    pub(super) checksum: ScalarArray,
    pub(super) current_line: Option<usize>,
    pub(super) frames_emitted: i32,
}

impl Process for Output {
    fn name(&self) -> &str {
        "output"
    }

    fn fire(&mut self, ctx: &mut FireContext<'_>) -> FireResult {
        let task = self.task;
        if let Some(line) = self.current_line {
            let width = self.grid.width;
            let mut sum = self.checksum.read(ctx, task, 0);
            for x in 0..width {
                let v = ctx.frame_read(self.display_frame, line * width + x);
                ctx.compute(2);
                sum = (sum + v) & 0x7fff_ffff;
            }
            self.checksum.write(ctx, task, 0, sum);
            let next = line + 1;
            self.current_line = (next < self.grid.height).then_some(next);
            if self.current_line.is_none() {
                self.frames_emitted += 1;
                self.checksum.write(ctx, task, 1, self.frames_emitted);
            }
            return FireResult::Fired;
        }
        if ctx.available(0) < 1 {
            if ctx.input_closed(0) {
                return FireResult::Finished;
            }
            return FireResult::Blocked;
        }
        let _picture = ctx.pop(0);
        ctx.compute(4);
        self.current_line = Some(0);
        FireResult::Fired
    }
}
