//! Functional multimedia workloads for the `compmem` reproduction.
//!
//! The evaluation of *"Compositional memory systems for multimedia
//! communicating tasks"* (Molnos et al., DATE 2005) uses two applications:
//!
//! 1. **Two JPEG decoders plus a Canny edge detector** (15 tasks), and
//! 2. **An MPEG-2 video decoder** (13 tasks),
//!
//! both written as YAPI process networks running on a 4-processor CAKE tile.
//! The original TriMedia binaries are not available, so this crate provides
//! functional Rust implementations of the same task graphs — same task
//! names, same pipeline structure, real per-block computation (DCT/IDCT,
//! quantisation, convolution, non-maximum suppression, motion
//! compensation) — operating on synthetic input streams. All state lives in
//! instrumented memory (`compmem-trace`), so the address streams the caches
//! observe have realistic working sets, strides and communication traffic.
//!
//! The top-level entry points are [`apps::jpeg_canny_app`] and
//! [`apps::mpeg2_app`], which assemble the complete applications (tasks,
//! FIFOs, frame buffers, shared static sections, run-time-system regions and
//! the task-to-processor mapping) ready to run on the platform simulator.
//!
//! # Example
//!
//! ```
//! use compmem_workloads::apps::{jpeg_canny_app, JpegCannyParams};
//!
//! # fn main() -> Result<(), compmem_workloads::WorkloadError> {
//! // A miniature instance for tests; the defaults reproduce the paper scale.
//! let params = JpegCannyParams::tiny();
//! let app = jpeg_canny_app(&params)?;
//! assert_eq!(app.network.task_count(), 15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod canny;
mod dct;
mod error;
pub mod jpeg;
pub mod mpeg2;
mod pixels;
mod sections;

pub use dct::{dequantise, forward_dct_8x8, idct_8x8, quantise, zigzag_order, DEFAULT_QUANT_TABLE};
pub use error::WorkloadError;
pub use pixels::SyntheticImage;
pub use sections::SharedSections;
