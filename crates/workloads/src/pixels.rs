//! Synthetic test images.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic synthetic grey-scale image used as workload input.
///
/// The image combines a smooth gradient, a few high-contrast rectangles and
/// low-amplitude noise, which gives the decoders and the edge detector
/// realistic mixtures of low- and high-frequency content: DCT blocks with
/// varying numbers of significant coefficients, and edges at known
/// locations for the Canny pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticImage {
    width: usize,
    height: usize,
    pixels: Vec<i32>,
}

impl SyntheticImage {
    /// Generates a `width` x `height` image from a seed.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn generate(width: usize, height: usize, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pixels = vec![0i32; width * height];
        // Rectangles with strong contrast (edges for Canny, detail for DCT).
        let rects: Vec<(usize, usize, usize, usize, i32)> = (0..4)
            .map(|_| {
                let x0 = rng.gen_range(0..width);
                let y0 = rng.gen_range(0..height);
                let w = rng.gen_range(width / 8..=width / 3);
                let h = rng.gen_range(height / 8..=height / 3);
                let level = rng.gen_range(0..=255);
                (x0, y0, w, h, level)
            })
            .collect();
        for y in 0..height {
            for x in 0..width {
                // Smooth diagonal gradient.
                let mut v = ((x * 160) / width + (y * 96) / height) as i32;
                for &(x0, y0, w, h, level) in &rects {
                    if x >= x0 && x < (x0 + w).min(width) && y >= y0 && y < (y0 + h).min(height) {
                        v = level;
                    }
                }
                // Low-amplitude noise.
                v += rng.gen_range(-4..=4);
                pixels[y * width + x] = v.clamp(0, 255);
            }
        }
        SyntheticImage {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn pixel(&self, x: usize, y: usize) -> i32 {
        assert!(x < self.width && y < self.height, "pixel out of range");
        self.pixels[y * self.width + x]
    }

    /// All pixels in raster order.
    pub fn pixels(&self) -> &[i32] {
        &self.pixels
    }

    /// Extracts the 8x8 block whose top-left corner is at
    /// `(bx * 8, by * 8)`, replicating edge pixels if the image dimension is
    /// not a multiple of eight.
    pub fn block_8x8(&self, bx: usize, by: usize) -> [i32; 64] {
        let mut out = [0i32; 64];
        for dy in 0..8 {
            for dx in 0..8 {
                let x = (bx * 8 + dx).min(self.width - 1);
                let y = (by * 8 + dy).min(self.height - 1);
                out[dy * 8 + dx] = self.pixel(x, y);
            }
        }
        out
    }

    /// Number of 8x8 blocks horizontally.
    pub fn blocks_x(&self) -> usize {
        self.width.div_ceil(8)
    }

    /// Number of 8x8 blocks vertically.
    pub fn blocks_y(&self) -> usize {
        self.height.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_range() {
        let a = SyntheticImage::generate(64, 48, 7);
        let b = SyntheticImage::generate(64, 48, 7);
        assert_eq!(a, b);
        assert!(a.pixels().iter().all(|&p| (0..=255).contains(&p)));
        let c = SyntheticImage::generate(64, 48, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_and_blocks() {
        let img = SyntheticImage::generate(100, 60, 1);
        assert_eq!(img.width(), 100);
        assert_eq!(img.height(), 60);
        assert_eq!(img.blocks_x(), 13);
        assert_eq!(img.blocks_y(), 8);
        assert_eq!(img.pixels().len(), 6000);
    }

    #[test]
    fn edge_blocks_replicate_border_pixels() {
        let img = SyntheticImage::generate(20, 12, 3);
        let block = img.block_8x8(2, 1);
        // Columns beyond x = 19 replicate column 19; rows beyond y = 11
        // replicate row 11.
        assert_eq!(block[4], img.pixel(19, 8));
        assert_eq!(block[7 * 8 + 7], img.pixel(19, 11));
    }

    #[test]
    fn image_has_contrast() {
        let img = SyntheticImage::generate(64, 64, 42);
        let min = img.pixels().iter().min().unwrap();
        let max = img.pixels().iter().max().unwrap();
        assert!(max - min > 80, "synthetic image should have contrast");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = SyntheticImage::generate(0, 10, 1);
    }
}
