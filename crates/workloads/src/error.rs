//! Error type of the workloads crate.

use std::error::Error;
use std::fmt;

use compmem_kpn::KpnError;
use compmem_trace::TraceError;

/// Errors produced while assembling or running a workload application.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Image dimensions were not usable (zero, or not multiples of the block
    /// size where the pipeline requires it).
    InvalidDimensions {
        /// Width requested.
        width: usize,
        /// Height requested.
        height: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// An underlying process-network error.
    Kpn(KpnError),
    /// An underlying address-space error.
    Trace(TraceError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidDimensions {
                width,
                height,
                reason,
            } => write!(f, "invalid image dimensions {width}x{height}: {reason}"),
            WorkloadError::Kpn(e) => write!(f, "process network error: {e}"),
            WorkloadError::Trace(e) => write!(f, "address space error: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Kpn(e) => Some(e),
            WorkloadError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KpnError> for WorkloadError {
    fn from(value: KpnError) -> Self {
        WorkloadError::Kpn(value)
    }
}

impl From<TraceError> for WorkloadError {
    fn from(value: TraceError) -> Self {
        WorkloadError::Trace(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: WorkloadError = KpnError::ZeroCapacityFifo {
            name: "f".to_string(),
        }
        .into();
        assert!(e.to_string().contains('f'));
        assert!(e.source().is_some());
        let e = WorkloadError::InvalidDimensions {
            width: 0,
            height: 8,
            reason: "width must be non-zero",
        };
        assert!(e.to_string().contains("0x8"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkloadError>();
    }
}
