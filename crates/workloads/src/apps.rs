//! Assembly of the paper's two benchmark applications.
//!
//! * [`jpeg_canny_app`] — two JPEG decoders working on different picture
//!   formats plus one Canny edge detector: 15 tasks, as in Table 1.
//! * [`mpeg2_app`] — the MPEG-2 video decoder: 13 tasks, as in Table 2.
//!
//! Each assembled [`Application`] carries everything the experiment driver
//! needs: the address space (region table), the executable process network,
//! the static task-to-processor mapping for the 4-CPU CAKE tile, the shared
//! static sections and the run-time-system descriptor, plus display names
//! matching the paper's tables.

use compmem_kpn::Network;
use compmem_platform::{OsRegions, TaskMapping};
use compmem_trace::{AddressSpace, TaskId};

use crate::canny::build_canny;
use crate::error::WorkloadError;
use crate::jpeg::build_jpeg_decoder;
use crate::mpeg2::build_mpeg2_decoder;
use crate::pixels::SyntheticImage;
use crate::sections::SharedSections;

/// Task identifier used to attribute run-time-system (OS) traffic.
pub const OS_TASK: TaskId = TaskId::new(999);

/// A fully assembled benchmark application.
#[derive(Debug)]
pub struct Application {
    /// Short machine-readable name (`"jpeg_canny"` or `"mpeg2"`).
    pub name: String,
    /// The address space with every region of the application.
    pub space: AddressSpace,
    /// The executable process network.
    pub network: Network,
    /// Static task-to-processor mapping for the 4-processor tile.
    pub mapping: TaskMapping,
    /// Shared static sections (app data/bss, RT data/bss).
    pub sections: SharedSections,
    /// Run-time-system traffic descriptor for the platform.
    pub os_regions: OsRegions,
    /// Display name of every task, in the order of Tables 1 / 2.
    pub task_names: Vec<(TaskId, String)>,
}

impl Application {
    /// Display name of a task (falls back to the process name for tasks not
    /// in the table, which does not happen for the two built-in apps).
    pub fn task_name(&self, task: TaskId) -> &str {
        self.task_names
            .iter()
            .find(|(t, _)| *t == task)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?")
    }

    /// All task identifiers of the application.
    pub fn tasks(&self) -> Vec<TaskId> {
        self.network.tasks()
    }
}

/// Parameters of the "two JPEG decoders + Canny" application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JpegCannyParams {
    /// Picture size of the first JPEG decoder.
    pub jpeg1: (usize, usize),
    /// Picture size of the second JPEG decoder (a different format).
    pub jpeg2: (usize, usize),
    /// Picture size of the Canny edge detector.
    pub canny: (usize, usize),
    /// Canny edge threshold.
    pub threshold: i32,
    /// Seed of the synthetic input pictures.
    pub seed: u64,
}

impl JpegCannyParams {
    /// The scale used to regenerate the paper's tables: picture footprints
    /// large enough that the combined working set far exceeds the 512 KB L2.
    pub fn paper_scale() -> Self {
        JpegCannyParams {
            jpeg1: (384, 256),
            jpeg2: (256, 192),
            canny: (384, 256),
            threshold: 60,
            seed: 2005,
        }
    }

    /// A miniature instance for unit and integration tests.
    pub fn tiny() -> Self {
        JpegCannyParams {
            jpeg1: (48, 32),
            jpeg2: (32, 32),
            canny: (32, 24),
            threshold: 60,
            seed: 7,
        }
    }
}

impl Default for JpegCannyParams {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Parameters of the MPEG-2 decoder application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mpeg2Params {
    /// Picture width in pixels (multiple of 16).
    pub width: usize,
    /// Picture height in pixels (multiple of 16).
    pub height: usize,
    /// Number of coded pictures (first intra, rest inter).
    pub pictures: usize,
    /// Seed of the synthetic source sequence.
    pub seed: u64,
}

impl Mpeg2Params {
    /// The scale used to regenerate the paper's tables (CIF pictures).
    pub fn paper_scale() -> Self {
        Mpeg2Params {
            width: 352,
            height: 288,
            pictures: 3,
            seed: 2005,
        }
    }

    /// A miniature instance for unit and integration tests.
    pub fn tiny() -> Self {
        Mpeg2Params {
            width: 32,
            height: 32,
            pictures: 2,
            seed: 7,
        }
    }
}

impl Default for Mpeg2Params {
    fn default() -> Self {
        Self::paper_scale()
    }
}

fn shared_sections(space: &mut AddressSpace) -> Result<SharedSections, WorkloadError> {
    SharedSections::allocate(space, 8 * 1024, 16 * 1024, 8 * 1024, 16 * 1024)
}

/// Builds the first application of the paper: two JPEG decoders on
/// different picture formats plus a Canny edge detector (15 tasks).
///
/// # Errors
///
/// Returns an error for invalid dimensions or allocation failures.
pub fn jpeg_canny_app(params: &JpegCannyParams) -> Result<Application, WorkloadError> {
    let mut space = AddressSpace::new();
    let sections = shared_sections(&mut space)?;
    let mut builder = compmem_kpn::NetworkBuilder::new();

    let image1 = SyntheticImage::generate(params.jpeg1.0, params.jpeg1.1, params.seed);
    let image2 = SyntheticImage::generate(params.jpeg2.0, params.jpeg2.1, params.seed + 1);
    let canny_image = SyntheticImage::generate(params.canny.0, params.canny.1, params.seed + 2);

    let jpeg1 = build_jpeg_decoder(&mut builder, &mut space, &sections, &image1, "jpeg1")?;
    let jpeg2 = build_jpeg_decoder(&mut builder, &mut space, &sections, &image2, "jpeg2")?;
    let canny = build_canny(
        &mut builder,
        &mut space,
        &sections,
        &canny_image,
        "canny",
        params.threshold,
    )?;

    let network = builder.build()?;

    let task_names = vec![
        (jpeg1.frontend, "FrontEnd1".to_string()),
        (jpeg1.idct, "IDCT1".to_string()),
        (jpeg1.raster, "Raster1".to_string()),
        (jpeg1.backend, "BackEnd1".to_string()),
        (jpeg2.frontend, "FrontEnd2".to_string()),
        (jpeg2.idct, "IDCT2".to_string()),
        (jpeg2.raster, "Raster2".to_string()),
        (jpeg2.backend, "BackEnd2".to_string()),
        (canny.frontend, "Fr.canny".to_string()),
        (canny.lowpass, "LowPass".to_string()),
        (canny.horiz_sobel, "HorizSobel".to_string()),
        (canny.vert_sobel, "VertSobel".to_string()),
        (canny.horiz_nms, "HorizNMS".to_string()),
        (canny.vert_nms, "VertNMS".to_string()),
        (canny.max_threshold, "MaxTreshold".to_string()),
    ];

    // Static mapping: one JPEG decoder per processor, the Canny pipeline
    // split over the remaining two.
    let mapping = TaskMapping::new(vec![
        vec![jpeg1.frontend, jpeg1.idct, jpeg1.raster, jpeg1.backend],
        vec![jpeg2.frontend, jpeg2.idct, jpeg2.raster, jpeg2.backend],
        vec![
            canny.frontend,
            canny.lowpass,
            canny.horiz_sobel,
            canny.vert_sobel,
        ],
        vec![canny.horiz_nms, canny.vert_nms, canny.max_threshold],
    ]);

    let os_regions = sections.os_regions(&space, OS_TASK, 8);
    Ok(Application {
        name: "jpeg_canny".to_string(),
        space,
        network,
        mapping,
        sections,
        os_regions,
        task_names,
    })
}

/// Builds the second application of the paper: the MPEG-2 decoder
/// (13 tasks).
///
/// # Errors
///
/// Returns an error for invalid dimensions or allocation failures.
pub fn mpeg2_app(params: &Mpeg2Params) -> Result<Application, WorkloadError> {
    let mut space = AddressSpace::new();
    let sections = shared_sections(&mut space)?;
    let mut builder = compmem_kpn::NetworkBuilder::new();
    let handles = build_mpeg2_decoder(
        &mut builder,
        &mut space,
        &sections,
        params.width,
        params.height,
        params.pictures,
        params.seed,
    )?;
    let network = builder.build()?;

    let task_names = vec![
        (handles.input, "input".to_string()),
        (handles.vld, "vld".to_string()),
        (handles.hdr, "hdr".to_string()),
        (handles.isiq, "isiq".to_string()),
        (handles.mem_man, "memMan".to_string()),
        (handles.idct, "idct".to_string()),
        (handles.add, "add".to_string()),
        (handles.dec_mv, "decMV".to_string()),
        (handles.predict, "predict".to_string()),
        (handles.predict_rd, "predictRD".to_string()),
        (handles.write_mb, "writeMB".to_string()),
        (handles.store, "store".to_string()),
        (handles.output, "output".to_string()),
    ];

    let mapping = TaskMapping::new(vec![
        vec![handles.input, handles.vld, handles.hdr],
        vec![handles.isiq, handles.idct, handles.mem_man],
        vec![handles.dec_mv, handles.predict, handles.predict_rd],
        vec![handles.add, handles.write_mb, handles.store, handles.output],
    ]);

    let os_regions = sections.os_regions(&space, OS_TASK, 8);
    Ok(Application {
        name: "mpeg2".to_string(),
        space,
        network,
        mapping,
        sections,
        os_regions,
        task_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jpeg_canny_app_has_fifteen_tasks_mapped_to_four_processors() {
        let app = jpeg_canny_app(&JpegCannyParams::tiny()).unwrap();
        assert_eq!(app.network.task_count(), 15);
        assert_eq!(app.mapping.task_count(), 15);
        assert_eq!(app.mapping.processors_used(), 4);
        assert!(app.mapping.validate(4).is_ok());
        assert_eq!(app.task_names.len(), 15);
        assert_eq!(app.task_name(app.task_names[0].0), "FrontEnd1");
        assert_eq!(app.task_name(TaskId::new(500)), "?");
        // Regions exist for tasks, FIFOs, frames and the shared sections.
        assert!(app.space.table().len() > 30);
        assert!(app.space.table().by_name("app.data").is_some());
        assert!(app.space.table().by_name("rt.bss").is_some());
    }

    #[test]
    fn mpeg2_app_has_thirteen_tasks_mapped_to_four_processors() {
        let app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
        assert_eq!(app.network.task_count(), 13);
        assert_eq!(app.mapping.task_count(), 13);
        assert_eq!(app.mapping.processors_used(), 4);
        assert!(app.mapping.validate(4).is_ok());
        let names: Vec<&str> = app.task_names.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "input",
                "vld",
                "hdr",
                "isiq",
                "memMan",
                "idct",
                "add",
                "decMV",
                "predict",
                "predictRD",
                "writeMB",
                "store",
                "output"
            ]
        );
    }

    #[test]
    fn tiny_apps_run_functionally_to_completion() {
        let mut app = jpeg_canny_app(&JpegCannyParams::tiny()).unwrap();
        assert!(app.network.run_functional(100_000_000).unwrap());
        let mut app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
        assert!(app.network.run_functional(100_000_000).unwrap());
    }

    #[test]
    fn paper_scale_footprints_exceed_the_l2_capacity() {
        // The combined footprint of each application must exceed the 512 KB
        // shared L2 for the shared-cache baseline to thrash, as in the paper.
        let app1 = jpeg_canny_app(&JpegCannyParams::paper_scale()).unwrap();
        assert!(app1.space.table().total_footprint() > 512 * 1024);
        let app2 = mpeg2_app(&Mpeg2Params::paper_scale()).unwrap();
        assert!(app2.space.table().total_footprint() > 512 * 1024);
    }

    #[test]
    fn os_task_does_not_collide_with_application_tasks() {
        let app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
        assert!(app.tasks().iter().all(|&t| t != OS_TASK));
        assert_eq!(app.os_regions.os_task, OS_TASK);
    }
}
