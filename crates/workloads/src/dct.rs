//! 8x8 DCT/IDCT, quantisation and zig-zag helpers shared by the JPEG and
//! MPEG-2 pipelines.
//!
//! The transforms are straightforward separable floating-point
//! implementations rounded to integers; bit-exactness with any particular
//! standard is not required — what matters for the memory-system study is
//! that the decoders perform real per-block computation over real
//! coefficient data so that their private working sets and instruction
//! counts are representative.

use std::f64::consts::PI;

/// The default luminance quantisation table (the familiar Annex K table of
/// the JPEG standard), stored in raster order.
pub const DEFAULT_QUANT_TABLE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Raster index of the `i`-th coefficient in zig-zag order.
pub fn zigzag_order() -> [usize; 64] {
    let mut order = [0usize; 64];
    let mut idx = 0;
    for s in 0..15 {
        // Diagonals alternate direction: even diagonals run from the top
        // row downwards, odd diagonals from the left column upwards.
        let coords: Vec<(usize, usize)> = (0..=s)
            .filter_map(|i| {
                let (x, y) = (i, s - i);
                (x < 8 && y < 8).then_some((x, y))
            })
            .collect();
        let iter: Box<dyn Iterator<Item = &(usize, usize)>> = if s % 2 == 0 {
            Box::new(coords.iter())
        } else {
            Box::new(coords.iter().rev())
        };
        for &(x, y) in iter {
            order[idx] = y * 8 + x;
            idx += 1;
        }
    }
    order
}

/// Precomputed DCT basis: `basis[k][n] = c(k) * cos((2n+1) k pi / 16)`.
fn basis_table() -> &'static [[f64; 8]; 8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f64; 8]; 8]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[0.0; 8]; 8];
        for (k, row) in table.iter_mut().enumerate() {
            let ck = if k == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            for (n, cell) in row.iter_mut().enumerate() {
                *cell = ck * ((2 * n + 1) as f64 * k as f64 * PI / 16.0).cos();
            }
        }
        table
    })
}

/// Forward 8x8 DCT of level-shifted samples (raster order in, raster order
/// out).
pub fn forward_dct_8x8(samples: &[i32; 64]) -> [i32; 64] {
    let basis = basis_table();
    // Separable transform: rows, then columns.
    let mut rows = [[0.0f64; 8]; 8];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for x in 0..8 {
                acc += f64::from(samples[y * 8 + x]) * basis[u][x];
            }
            rows[y][u] = acc;
        }
    }
    let mut out = [0i32; 64];
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                acc += rows[y][u] * basis[v][y];
            }
            out[v * 8 + u] = acc.round() as i32;
        }
    }
    out
}

/// Inverse 8x8 DCT (raster order in, raster order out).
pub fn idct_8x8(coeffs: &[i32; 64]) -> [i32; 64] {
    let basis = basis_table();
    // Separable transform: columns, then rows.
    let mut cols = [[0.0f64; 8]; 8];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                acc += f64::from(coeffs[v * 8 + u]) * basis[v][y];
            }
            cols[u][y] = acc;
        }
    }
    let mut out = [0i32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                acc += cols[u][y] * basis[u][x];
            }
            out[y * 8 + x] = acc.round() as i32;
        }
    }
    out
}

/// Quantises a coefficient block with the given table (element-wise rounded
/// division).
pub fn quantise(coeffs: &[i32; 64], table: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for i in 0..64 {
        let q = table[i].max(1);
        let c = coeffs[i];
        out[i] = if c >= 0 {
            (c + q / 2) / q
        } else {
            -((-c + q / 2) / q)
        };
    }
    out
}

/// De-quantises a coefficient block with the given table (element-wise
/// multiplication).
pub fn dequantise(quantised: &[i32; 64], table: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for i in 0..64 {
        out[i] = quantised[i] * table[i].max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation_starting_at_dc() {
        let order = zigzag_order();
        let mut seen = [false; 64];
        for &i in &order {
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1, "second zig-zag entry is (1,0) in raster order");
        assert_eq!(order[2], 8);
        assert_eq!(order[63], 63);
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let samples = [100i32; 64];
        let coeffs = forward_dct_8x8(&samples);
        assert_eq!(coeffs[0], 800, "DC of a flat block is 8 * value");
        assert!(coeffs[1..].iter().all(|&c| c.abs() <= 1));
    }

    #[test]
    fn idct_inverts_dct_within_rounding() {
        let mut samples = [0i32; 64];
        for (i, s) in samples.iter_mut().enumerate() {
            *s = ((i as i32 * 37) % 255) - 128;
        }
        let coeffs = forward_dct_8x8(&samples);
        let back = idct_8x8(&coeffs);
        for i in 0..64 {
            assert!(
                (back[i] - samples[i]).abs() <= 2,
                "index {i}: {} vs {}",
                back[i],
                samples[i]
            );
        }
    }

    #[test]
    fn quantise_dequantise_roundtrip_bounded_by_table() {
        let mut coeffs = [0i32; 64];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as i32 - 32) * 13;
        }
        let q = quantise(&coeffs, &DEFAULT_QUANT_TABLE);
        let dq = dequantise(&q, &DEFAULT_QUANT_TABLE);
        for i in 0..64 {
            assert!(
                (dq[i] - coeffs[i]).abs() <= DEFAULT_QUANT_TABLE[i] / 2 + 1,
                "index {i}: {} vs {} (q={})",
                dq[i],
                coeffs[i],
                DEFAULT_QUANT_TABLE[i]
            );
        }
    }

    #[test]
    fn quantisation_zeroes_small_high_frequencies() {
        let mut coeffs = [0i32; 64];
        coeffs[63] = 20; // below the quantisation step of 99
        coeffs[0] = 400;
        let q = quantise(&coeffs, &DEFAULT_QUANT_TABLE);
        assert_eq!(q[63], 0);
        assert_eq!(q[0], 25);
    }
}
