//! Trace record/replay: tapping live runs and replaying encoded traces.
//!
//! Recording and replaying splits the simulator's two jobs — *executing the
//! workload* and *timing the memory hierarchy* — so that organisation
//! sweeps pay the workload cost once:
//!
//! * **Record**: [`System::run_traced`](crate::System::run_traced) drives a
//!   live run while an [`AccessTap`] observes every access entering the
//!   hierarchy, in issue order, with its processor and cycle. The tap for
//!   the binary trace IR is [`TraceWriter`], so recording streams straight
//!   to a file or an in-memory [`EncodedTrace`].
//! * **Replay**: a [`ReplaySystem`] rebuilds the hierarchy (fresh L1s, bus,
//!   any `Box<dyn CacheModel>` L2) and re-issues the decoded trace. Each
//!   processor of the recorded run becomes a [`ReplayProcessor`] actor on
//!   the discrete-event [`EventQueue`]: it consumes its runs of accesses in
//!   recorded global order through
//!   [`MemorySystem::access_burst`](crate::MemorySystem::access_burst), so
//!   the whole hierarchy sees exactly the access sequence of the live run
//!   — cache statistics and snapshots are **bit-identical** to the
//!   recording run under the same organisation — while skipping workload
//!   execution, burst dispatch and per-access virtual calls.
//!
//! Replay *cache state* is exact; replay *timing* is a reconstruction:
//! every run starts at its recorded issue cycle and advances by one cycle
//! per data access plus the stalls recomputed under the replayed
//! organisation, so compute phases between runs are carried by the
//! recorded cycles rather than re-simulated.
//!
//! # The L1 filter
//!
//! An L2-organisation sweep replays one trace many times, but the private
//! L1 caches do not depend on the L2 organisation at all: the L2-bound
//! refill stream — which access misses the L1, in what order, with which
//! dirty victims — is a function of the trace and the L1 configuration
//! alone. A [`PreparedTrace`] therefore filters the decoded runs through
//! the L1s **once** per L1 configuration and caches the result; every
//! [`ReplaySystem`] built from it replays only the refills (via
//! [`MemorySystem::refill_burst`]), typically one to two orders of
//! magnitude fewer accesses, with bus traffic, issue times and L2 state
//! bit-identical to replaying the full run.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use compmem_cache::{
    CacheConfig, CacheError, CacheModel, CacheStats, OrganizationSpec, PartitionSchedule,
    SetAssocCache,
};
use compmem_trace::codec::{EncodedTrace, TraceRun, TraceSummary, TraceWriter};
use compmem_trace::{Access, RegionTable};

use crate::config::PlatformConfig;
use crate::engine::EventQueue;
use crate::error::PlatformError;
use crate::memory::{L1Refill, MemorySystem};
use crate::metrics::{ProcessorReport, SystemReport};

/// Observer of every access entering the memory hierarchy of a live run.
///
/// Taps see accesses in issue order with their processor and issue cycle —
/// exactly the information the trace IR records. The no-op [`NullTap`] is
/// what plain [`System::run`](crate::System::run) uses; it monomorphises
/// away entirely.
pub trait AccessTap {
    /// Observes one access issued by `processor` at `cycle`.
    fn record_access(&mut self, processor: usize, cycle: u64, access: &Access);

    /// Observes a run of accesses issued by `processor`, the first at
    /// `cycle`. The default forwards access by access.
    fn record_run(&mut self, processor: usize, cycle: u64, accesses: &[Access]) {
        for access in accesses {
            self.record_access(processor, cycle, access);
        }
    }
}

/// A tap that observes nothing (the plain, untraced run).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl AccessTap for NullTap {
    #[inline]
    fn record_access(&mut self, _processor: usize, _cycle: u64, _access: &Access) {}

    #[inline]
    fn record_run(&mut self, _processor: usize, _cycle: u64, _accesses: &[Access]) {}
}

/// Streaming a live run into the binary trace IR.
impl<W: Write> AccessTap for TraceWriter<W> {
    fn record_access(&mut self, processor: usize, cycle: u64, access: &Access) {
        self.record(processor as u32, cycle, access);
    }

    fn record_run(&mut self, processor: usize, cycle: u64, accesses: &[Access]) {
        self.record_all(processor as u32, cycle, accesses);
    }
}

/// One recorded run filtered through the private L1s: only the L2-bound
/// refills remain, plus the counts needed to reconstruct timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilteredRun {
    /// Processor that issued the run.
    pub processor: u32,
    /// Cycle at which the first access of the run issued.
    pub start_cycle: u64,
    /// The L1 misses of the run, in issue order.
    pub refills: Vec<L1Refill>,
    /// Loads and stores in the full (unfiltered) run.
    pub data_accesses: u64,
    /// Instruction fetches in the full (unfiltered) run.
    pub instr_fetches: u64,
}

/// A trace filtered through one L1 configuration: the refill runs and the
/// L1 statistics the filter pass accumulated (which are exactly the L1
/// statistics any replay of the trace would produce).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilteredTrace {
    /// The filtered runs in global recorded order.
    pub runs: Vec<FilteredRun>,
    /// Aggregate statistics over all private L1 caches.
    pub l1_aggregate: CacheStats,
    /// Number of processors.
    pub processors: usize,
}

/// The L1 configuration a filter pass was computed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FilterKey {
    l1i: CacheConfig,
    l1d: CacheConfig,
}

/// A mirror of the platform's private L1s that turns a full access stream
/// into its L2-bound refill stream.
///
/// This is the **single** definition of "L2-bound" in the crate: the
/// trace filter pass ([`PreparedTrace::filtered_for`]) and the
/// stack-distance profiler feeds ([`profile_trace`](crate::profile_trace),
/// [`profile_reader`](crate::profile_reader),
/// [`TapProfiler`](crate::TapProfiler)) all route accesses through it, so
/// the streams they see cannot drift apart.
#[derive(Debug)]
pub(crate) struct L1Filter {
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
}

impl L1Filter {
    /// Creates per-processor instruction and data L1s from their
    /// configurations.
    pub(crate) fn new(l1i: CacheConfig, l1d: CacheConfig, processors: usize) -> Self {
        L1Filter {
            l1i: (0..processors).map(|_| SetAssocCache::new(l1i)).collect(),
            l1d: (0..processors).map(|_| SetAssocCache::new(l1d)).collect(),
        }
    }

    /// Builds the filter for a platform's L1 configurations.
    pub(crate) fn for_config(config: &PlatformConfig, processors: usize) -> Self {
        Self::new(config.l1i, config.l1d, processors)
    }

    /// Runs one access through the owning processor's L1 and returns its
    /// outcome (a miss means the access travels to the L2).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProcessorOutOfRange`] if `processor` is
    /// outside the filter's bank.
    pub(crate) fn access(
        &mut self,
        processor: usize,
        access: &Access,
    ) -> Result<compmem_cache::AccessOutcome, PlatformError> {
        let bank = if access.kind.is_instruction() {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let processors = bank.len();
        let l1 = bank
            .get_mut(processor)
            .ok_or(PlatformError::ProcessorOutOfRange {
                processor,
                processors,
            })?;
        Ok(l1.access(access))
    }

    /// Runs one access through the filter; returns `true` if it misses
    /// (and therefore travels to the L2).
    pub(crate) fn refills(
        &mut self,
        processor: usize,
        access: &Access,
    ) -> Result<bool, PlatformError> {
        Ok(!self.access(processor, access)?.hit)
    }

    /// Aggregate statistics over all private L1 caches.
    pub(crate) fn aggregate_stats(&self) -> CacheStats {
        let mut aggregate = CacheStats::new();
        for cache in self.l1i.iter().chain(self.l1d.iter()) {
            aggregate.merge(cache.stats());
        }
        aggregate
    }
}

/// A recorded trace prepared for repeated replay.
///
/// Wraps the [`EncodedTrace`] together with a cache of L1-filtered run
/// lists keyed by L1 configuration, so an organisation sweep pays the
/// decode once (cached inside the trace) and the L1 simulation once per
/// distinct L1 configuration — usually once.
#[derive(Debug)]
pub struct PreparedTrace {
    trace: Arc<EncodedTrace>,
    filtered: Mutex<Vec<(FilterKey, Arc<FilteredTrace>)>>,
}

/// Equality is over the underlying trace (the filter cache derives from
/// it).
impl PartialEq for PreparedTrace {
    fn eq(&self, other: &Self) -> bool {
        self.trace == other.trace
    }
}

impl Eq for PreparedTrace {}

impl From<EncodedTrace> for PreparedTrace {
    fn from(value: EncodedTrace) -> Self {
        PreparedTrace::new(Arc::new(value))
    }
}

impl PreparedTrace {
    /// Prepares a trace for replay.
    pub fn new(trace: Arc<EncodedTrace>) -> Self {
        PreparedTrace {
            trace,
            filtered: Mutex::new(Vec::new()),
        }
    }

    /// The underlying encoded trace.
    pub fn trace(&self) -> &EncodedTrace {
        &self.trace
    }

    /// The region table embedded in the trace.
    pub fn table(&self) -> &RegionTable {
        self.trace.table()
    }

    /// Counters describing the trace.
    pub fn summary(&self) -> TraceSummary {
        self.trace.summary()
    }

    /// Total number of accesses in the trace.
    pub fn accesses(&self) -> u64 {
        self.trace.accesses()
    }

    /// Number of processors the trace was recorded on.
    pub fn processors(&self) -> u32 {
        self.trace.processors()
    }

    /// The trace filtered through the L1 configuration of `config`,
    /// computed on first use and cached.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProcessorOutOfRange`] if a trace run names
    /// a processor outside the trace's declared processor count.
    pub fn filtered_for(
        &self,
        config: &PlatformConfig,
    ) -> Result<Arc<FilteredTrace>, PlatformError> {
        self.filtered_for_jobs(config, 1)
    }

    /// [`filtered_for`](PreparedTrace::filtered_for) with the filter pass
    /// itself split across up to `jobs` worker threads.
    ///
    /// The split is per processor: each recorded processor's private L1
    /// instruction and data caches are touched only by that processor's
    /// accesses, in recorded order, so filtering every processor's run
    /// subsequence on its own thread and reassembling the filtered runs in
    /// recorded global order yields exactly the serial result — refill for
    /// refill, and counter for counter, because L1 statistics are purely
    /// additive across caches. The cache entry this fills is therefore
    /// interchangeable with a serially computed one (and vice versa: a
    /// cached serial pass is reused as-is).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProcessorOutOfRange`] if a trace run names
    /// a processor outside the trace's declared processor count.
    pub fn filtered_for_jobs(
        &self,
        config: &PlatformConfig,
        jobs: usize,
    ) -> Result<Arc<FilteredTrace>, PlatformError> {
        let key = FilterKey {
            l1i: config.l1i,
            l1d: config.l1d,
        };
        let mut cache = self.filtered.lock().expect("filter cache poisoned");
        if let Some((_, filtered)) = cache.iter().find(|(k, _)| *k == key) {
            return Ok(filtered.clone());
        }
        let processors = (self.trace.processors() as usize).max(1);
        let filtered = if jobs.max(1) > 1 && processors > 1 {
            Arc::new(filter_trace_parallel(&self.trace, key, jobs)?)
        } else {
            Arc::new(filter_trace(&self.trace, key)?)
        };
        cache.push((key, filtered.clone()));
        Ok(filtered)
    }
}

/// Filters one recorded run through `filter`, charging processor bank
/// `bank` (the run's global processor index in the serial pass, 0 in the
/// single-bank per-processor workers of the parallel pass).
fn filter_one_run(
    filter: &mut L1Filter,
    bank: usize,
    run: &TraceRun,
) -> Result<FilteredRun, PlatformError> {
    let mut filtered = FilteredRun {
        processor: run.processor,
        start_cycle: run.start_cycle,
        refills: Vec::new(),
        data_accesses: 0,
        instr_fetches: 0,
    };
    for access in &run.accesses {
        let outcome = filter.access(bank, access)?;
        if !outcome.hit {
            filtered.refills.push(L1Refill {
                access: *access,
                data_accesses_before: filtered.data_accesses,
                l1_victim_dirty: outcome.evicted.is_some_and(|e| e.dirty),
            });
        }
        if access.kind.is_instruction() {
            filtered.instr_fetches += 1;
        } else {
            filtered.data_accesses += 1;
        }
    }
    Ok(filtered)
}

/// Runs the decoded trace through fresh private L1s, keeping only the
/// refills.
fn filter_trace(trace: &EncodedTrace, key: FilterKey) -> Result<FilteredTrace, PlatformError> {
    let processors = (trace.processors() as usize).max(1);
    let mut filter = L1Filter::new(key.l1i, key.l1d, processors);
    let mut runs = Vec::with_capacity(trace.runs().len());
    for run in trace.runs() {
        runs.push(filter_one_run(&mut filter, run.processor as usize, run)?);
    }
    Ok(FilteredTrace {
        runs,
        l1_aggregate: filter.aggregate_stats(),
        processors,
    })
}

/// The per-processor-parallel sibling of [`filter_trace`].
///
/// Processor indices are validated up front (the serial pass discovers an
/// out-of-range index mid-walk), after which each worker claims whole
/// processors from a shared cursor and filters that processor's run
/// subsequence through a fresh single-bank [`L1Filter`]. Filtered runs are
/// written back by global run index and the per-processor L1 statistics
/// merged in processor order — both bit-identical to the serial pass.
fn filter_trace_parallel(
    trace: &EncodedTrace,
    key: FilterKey,
    jobs: usize,
) -> Result<FilteredTrace, PlatformError> {
    let processors = (trace.processors() as usize).max(1);
    let runs = trace.runs();
    for run in runs {
        let pi = run.processor as usize;
        if pi >= processors {
            return Err(PlatformError::ProcessorOutOfRange {
                processor: pi,
                processors,
            });
        }
    }
    let mut by_processor: Vec<Vec<usize>> = vec![Vec::new(); processors];
    for (index, run) in runs.iter().enumerate() {
        by_processor[run.processor as usize].push(index);
    }
    let workers = jobs.max(1).min(processors);
    let cursor = AtomicUsize::new(0);
    type ProcessorSlot = Mutex<Option<(Vec<(usize, FilteredRun)>, CacheStats)>>;
    let slots: Vec<ProcessorSlot> = (0..processors).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let p = cursor.fetch_add(1, Ordering::Relaxed);
                if p >= processors {
                    break;
                }
                let mut filter = L1Filter::new(key.l1i, key.l1d, 1);
                let mut filtered_runs = Vec::with_capacity(by_processor[p].len());
                for &index in &by_processor[p] {
                    let filtered = filter_one_run(&mut filter, 0, &runs[index])
                        .expect("processor indices validated before the workers start");
                    filtered_runs.push((index, filtered));
                }
                *slots[p].lock().expect("filter slot poisoned") =
                    Some((filtered_runs, filter.aggregate_stats()));
            });
        }
    });
    let mut out: Vec<Option<FilteredRun>> = (0..runs.len()).map(|_| None).collect();
    let mut l1_aggregate = CacheStats::new();
    for slot in slots {
        let (filtered_runs, stats) = slot
            .into_inner()
            .expect("filter slot poisoned")
            .expect("every processor was claimed by a worker");
        l1_aggregate.merge(&stats);
        for (index, filtered) in filtered_runs {
            out[index] = Some(filtered);
        }
    }
    Ok(FilteredTrace {
        runs: out
            .into_iter()
            .map(|run| run.expect("every recorded run was filtered"))
            .collect(),
        l1_aggregate,
        processors,
    })
}

/// Summary of one replay processor's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounters {
    /// Runs replayed.
    pub runs: u64,
    /// Data accesses (loads and stores) replayed.
    pub data_accesses: u64,
    /// Instruction fetches replayed.
    pub instr_fetches: u64,
    /// Stall cycles recomputed under the replayed organisation.
    pub stall_cycles: u64,
    /// Local clock after the last run (recorded issue time plus replayed
    /// stalls of that run).
    pub clock: u64,
}

/// One recorded processor replayed as a discrete-event actor.
///
/// A replay processor holds the sub-sequence of trace runs its recorded
/// processor issued, as *global sequence numbers* into the trace's decoded
/// run list. The replay event loop keys processors by the sequence number
/// of their next run, so popping the earliest event always yields the
/// globally next run of the recording — the hierarchy sees the exact
/// recorded interleaving.
#[derive(Debug)]
pub struct ReplayProcessor {
    /// Global run indices in recorded order, front = next.
    runs: VecDeque<u64>,
    counters: ReplayCounters,
}

impl ReplayProcessor {
    fn new() -> Self {
        ReplayProcessor {
            runs: VecDeque::new(),
            counters: ReplayCounters::default(),
        }
    }

    /// Sequence number of the next run to replay, if any work remains.
    pub fn next_sequence(&self) -> Option<u64> {
        self.runs.front().copied()
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> ReplayCounters {
        self.counters
    }

    /// Replays this processor's next run through the hierarchy; the actor
    /// is then rescheduled at its next sequence number (or parks when its
    /// share of the trace is exhausted).
    fn replay_next(&mut self, memory: &mut MemorySystem, runs: &[FilteredRun]) {
        let seq = self.runs.pop_front().expect("scheduled with a run pending");
        let run = &runs[seq as usize];
        let stats = memory.refill_burst(
            run.start_cycle,
            &run.refills,
            run.data_accesses,
            run.instr_fetches,
        );
        self.counters.runs += 1;
        self.counters.data_accesses += stats.data_accesses;
        self.counters.instr_fetches += stats.instr_fetches;
        self.counters.stall_cycles += stats.stall_cycles;
        self.counters.clock = run.start_cycle + stats.elapsed;
    }
}

/// One pre-replay observation handed to a [`ReplaySystem::run_controlled`]
/// controller: the globally next recorded run, just before it replays.
///
/// The refills are the run's L2-bound stream — the same
/// organisation-independent data the windowed profilers consume — so a
/// controller can profile the run *before* replaying it without
/// disturbing determinism: profiling depends only on the trace and the
/// L1 filter, never on the L2 organisation the controller is switching.
#[derive(Debug)]
pub struct RunObservation<'a> {
    /// Global sequence number of the run in the recorded interleaving.
    pub sequence: u64,
    /// Recorded processor that issued the run.
    pub processor: usize,
    /// Recorded issue cycle of the run's first access.
    pub start_cycle: u64,
    /// The run's L2-bound refills (its L1 misses), in order.
    pub refills: &'a [L1Refill],
}

/// A multiprocessor system that replays a recorded trace instead of
/// executing a workload.
///
/// The memory hierarchy below the L1s is the live one — the shared bus,
/// any `Box<dyn CacheModel>` L2, DRAM — while the L1s are pre-applied by
/// the [`PreparedTrace`]'s cached filter pass. Traffic comes from
/// [`ReplayProcessor`] actors consuming the filtered runs on the
/// [`EventQueue`].
#[derive(Debug)]
pub struct ReplaySystem {
    memory: MemorySystem,
    processors: Vec<ReplayProcessor>,
    filtered: Arc<FilteredTrace>,
}

impl ReplaySystem {
    /// Builds a replay system for `trace` over the given platform
    /// parameters (L1 geometry, latencies, bus) and L2 organisation.
    ///
    /// The processor count comes from the trace itself, so a recorded
    /// 4-processor run replays on 4 processors' worth of hierarchy
    /// regardless of `config.num_processors`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProcessorOutOfRange`] if a trace run names
    /// a processor outside the trace's declared processor count.
    pub fn new(
        config: &PlatformConfig,
        l2: Box<dyn CacheModel>,
        trace: &PreparedTrace,
    ) -> Result<Self, PlatformError> {
        let num_processors = (trace.processors() as usize).max(1);
        let memory = MemorySystem::new(&config.processors(num_processors), l2);
        let filtered = trace.filtered_for(config)?;
        let mut processors: Vec<ReplayProcessor> = (0..num_processors)
            .map(|_| ReplayProcessor::new())
            .collect();
        for (seq, run) in filtered.runs.iter().enumerate() {
            processors[run.processor as usize]
                .runs
                .push_back(seq as u64);
        }
        Ok(ReplaySystem {
            memory,
            processors,
            filtered,
        })
    }

    /// The memory hierarchy (e.g. to inspect L2 statistics after a replay).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Installs a [`PartitionSchedule`] on the replay: every switch
    /// applies to the live L2 at its boundary on the replayed time axis —
    /// the first refill whose reconstructed issue clock reaches the
    /// boundary already runs under the new organisation, splitting its
    /// run if necessary (see
    /// [`MemorySystem::install_schedule`](crate::MemorySystem::install_schedule)).
    ///
    /// # Errors
    ///
    /// Propagates schedule validation errors, so a switch can never fail
    /// mid-replay.
    pub fn install_schedule(
        &mut self,
        schedule: &PartitionSchedule,
        regions: &RegionTable,
    ) -> Result<(), CacheError> {
        self.memory.install_schedule(schedule, regions)
    }

    /// The replay processors.
    pub fn processors(&self) -> &[ReplayProcessor] {
        &self.processors
    }

    /// Consumes the system and returns the L2 organisation (to recover
    /// organisation-specific state, exactly as
    /// [`System::into_l2`](crate::System::into_l2) does).
    pub fn into_l2(self) -> Box<dyn CacheModel> {
        self.memory.into_l2()
    }

    /// Replays the whole trace and returns the report.
    ///
    /// One discrete-event loop: each replay processor is an event keyed by
    /// the global sequence number of its next run; popping the earliest
    /// event replays the globally next recorded run through
    /// [`MemorySystem::refill_burst`](crate::MemorySystem::refill_burst).
    /// Because every processor's sequence numbers are increasing, the heap
    /// minimum is always the next run of the recording — the replayed
    /// access interleaving is exactly the recorded one.
    pub fn run(&mut self) -> SystemReport {
        let filtered = self.filtered.clone();
        let mut events: EventQueue<usize> = EventQueue::new();
        for (pi, p) in self.processors.iter().enumerate() {
            if let Some(seq) = p.next_sequence() {
                events.push(seq, pi);
            }
        }
        while let Some((_, pi)) = events.pop() {
            self.processors[pi].replay_next(&mut self.memory, &filtered.runs);
            if let Some(seq) = self.processors[pi].next_sequence() {
                events.push(seq, pi);
            }
        }
        // Switches whose boundary lies beyond the last L2-bound refill
        // still fire (flush, write-backs, log record), exactly as the
        // live loop's explicit repartition events do — the same schedule
        // must fire the same switches live and replayed.
        self.memory.apply_due_repartitions(u64::MAX);
        self.report()
    }

    /// Replays the whole trace with an online controller in the loop.
    ///
    /// The event loop is [`run`](ReplaySystem::run)'s, with one extra
    /// step: before each recorded run replays, `controller` observes it
    /// (sequence number, recorded start cycle, L2-bound refills — see
    /// [`RunObservation`]). Returning `Some(organization)` pushes a
    /// repartition at the run's start cycle through
    /// [`MemorySystem::push_switch`]; because the run's refill clocks
    /// start at exactly that cycle, the switch fires at the run's first
    /// refill — with the same flush accounting, bus charging and
    /// [`RepartitionRecord`](crate::RepartitionRecord) logging an
    /// installed schedule's switch gets. Trailing switches fire at the
    /// end, exactly as in `run`.
    ///
    /// # Errors
    ///
    /// Propagates [`MemorySystem::push_switch`] validation errors; the
    /// replay stops at the offending decision.
    pub fn run_controlled<F>(
        &mut self,
        regions: &RegionTable,
        mut controller: F,
    ) -> Result<SystemReport, CacheError>
    where
        F: FnMut(&RunObservation<'_>) -> Option<OrganizationSpec>,
    {
        let filtered = self.filtered.clone();
        let mut events: EventQueue<usize> = EventQueue::new();
        for (pi, p) in self.processors.iter().enumerate() {
            if let Some(seq) = p.next_sequence() {
                events.push(seq, pi);
            }
        }
        while let Some((seq, pi)) = events.pop() {
            let run = &filtered.runs[seq as usize];
            let observation = RunObservation {
                sequence: seq,
                processor: run.processor as usize,
                start_cycle: run.start_cycle,
                refills: &run.refills,
            };
            if let Some(organization) = controller(&observation) {
                self.memory
                    .push_switch(run.start_cycle, organization, regions)?;
            }
            self.processors[pi].replay_next(&mut self.memory, &filtered.runs);
            if let Some(seq) = self.processors[pi].next_sequence() {
                events.push(seq, pi);
            }
        }
        self.memory.apply_due_repartitions(u64::MAX);
        Ok(self.report())
    }

    fn report(&self) -> SystemReport {
        let processors: Vec<ProcessorReport> = self
            .processors
            .iter()
            .map(|p| {
                let c = p.counters();
                ProcessorReport {
                    cycles: c.clock,
                    // A data access is one architectural instruction, as in
                    // live execution; compute phases are not replayed, so
                    // busy cycles cover the replayed instructions only.
                    busy_cycles: c.data_accesses,
                    stall_cycles: c.stall_cycles,
                    switch_cycles: 0,
                    idle_cycles: 0,
                    instructions: c.data_accesses,
                    task_switches: 0,
                }
            })
            .collect();
        let makespan_cycles = processors.iter().map(|p| p.cycles).max().unwrap_or(0);
        let l2 = self.memory.l2();
        SystemReport {
            // The L1s were applied by the filter pass; its statistics are
            // exactly what replaying the full runs would accumulate.
            l1: self.filtered.l1_aggregate,
            l2: *l2.stats(),
            l2_by_task: l2.stats_by_task().iter().map(|(k, v)| (*k, *v)).collect(),
            l2_by_region: l2.stats_by_region().iter().map(|(k, v)| (*k, *v)).collect(),
            dram_accesses: self.memory.dram_accesses(),
            dram_writebacks: self.memory.dram_writebacks(),
            bus_wait_cycles: self.memory.bus().total_wait_cycles(),
            bus_bytes: self.memory.bus().bytes_transferred(),
            makespan_cycles,
            processors,
            repartitions: self.memory.repartition_log().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Burst, BurstOutcome, Op, WorkloadDriver};
    use crate::scheduler::TaskMapping;
    use crate::system::System;
    use compmem_cache::{CacheConfig, CacheModel, SharedCache};
    use compmem_trace::{Addr, RegionId, RegionKind, RegionTable, TaskId};

    fn shared_l2() -> Box<dyn CacheModel> {
        Box::new(SharedCache::new(CacheConfig::new(64, 4).unwrap()))
    }

    /// A two-task driver with interleaving memory and compute work.
    struct MixedDriver {
        remaining: Vec<u32>,
        cursor: Vec<u64>,
    }

    impl WorkloadDriver for MixedDriver {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            let t = task.index();
            if self.remaining[t] == 0 {
                return BurstOutcome::Finished;
            }
            self.remaining[t] -= 1;
            let base = 0x10_0000 * (t as u64 + 1);
            let mut ops = Vec::new();
            for i in 0..12 {
                let addr = base + ((self.cursor[t] + i) % 96) * 64;
                ops.push(Op::Compute(2 + (i % 3) as u32));
                let access = if i % 4 == 0 {
                    Access::store(Addr::new(addr), 4, task, RegionId::new(t as u32))
                } else {
                    Access::load(Addr::new(addr), 4, task, RegionId::new(t as u32))
                };
                ops.push(Op::Mem(access));
            }
            self.cursor[t] += 12;
            BurstOutcome::Ready(Burst::new(ops))
        }
    }

    fn region_table() -> RegionTable {
        let mut table = RegionTable::new();
        for t in 0..2u32 {
            table
                .insert(
                    format!("t{t}.data"),
                    RegionKind::TaskData {
                        task: TaskId::new(t),
                    },
                    96 * 64,
                )
                .unwrap();
        }
        table
    }

    fn record_run() -> (SystemReport, EncodedTrace) {
        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = MixedDriver {
            remaining: vec![30, 30],
            cursor: vec![0, 0],
        };
        let mut writer = TraceWriter::new(Vec::new(), &region_table(), 2).unwrap();
        let report = system.run_traced(&mut driver, &mut writer).unwrap();
        let (bytes, summary) = writer.finish().unwrap();
        assert!(summary.accesses > 0);
        (report, EncodedTrace::from_bytes(bytes).unwrap())
    }

    #[test]
    fn replay_reproduces_the_live_l2_snapshot_exactly() {
        let (live_report, trace) = record_run();
        let prepared = PreparedTrace::from(trace);
        let config = PlatformConfig::default();
        let mut replay = ReplaySystem::new(&config, shared_l2(), &prepared).unwrap();
        let replay_report = replay.run();
        // Cache-side state is bit-identical: L1 aggregate, L2 stats,
        // per-task and per-region attribution, DRAM and bus traffic.
        assert_eq!(live_report.l1, replay_report.l1);
        assert_eq!(live_report.l2, replay_report.l2);
        assert_eq!(live_report.l2_by_task, replay_report.l2_by_task);
        assert_eq!(live_report.l2_by_region, replay_report.l2_by_region);
        assert_eq!(live_report.dram_accesses, replay_report.dram_accesses);
        assert_eq!(live_report.dram_writebacks, replay_report.dram_writebacks);
        assert_eq!(live_report.bus_bytes, replay_report.bus_bytes);
    }

    #[test]
    fn replay_is_deterministic() {
        let (_, trace) = record_run();
        let prepared = PreparedTrace::from(trace);
        let config = PlatformConfig::default();
        let run = |l2: Box<dyn CacheModel>| {
            let mut replay = ReplaySystem::new(&config, l2, &prepared).unwrap();
            replay.run()
        };
        assert_eq!(run(shared_l2()), run(shared_l2()));
    }

    #[test]
    fn replay_counts_every_recorded_access() {
        let (_, trace) = record_run();
        let prepared = PreparedTrace::from(trace);
        let config = PlatformConfig::default();
        let mut replay = ReplaySystem::new(&config, shared_l2(), &prepared).unwrap();
        let report = replay.run();
        let replayed: u64 = replay
            .processors()
            .iter()
            .map(|p| p.counters().data_accesses + p.counters().instr_fetches)
            .sum();
        assert_eq!(replayed, prepared.accesses());
        assert!(report.makespan_cycles > 0);
        assert_eq!(report.processors.len(), 2);
    }

    #[test]
    fn filter_pass_is_cached_per_l1_configuration() {
        let (_, trace) = record_run();
        let prepared = PreparedTrace::from(trace);
        let config = PlatformConfig::default();
        let a = prepared.filtered_for(&config).unwrap();
        let b = prepared.filtered_for(&config).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same L1 config must reuse the filter");
        let other = config.l1(CacheConfig::new(4, 2).unwrap());
        let c = prepared.filtered_for(&other).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different L1 config refilters");
        assert!(c.l1_aggregate.misses > a.l1_aggregate.misses);
        // Refill totals never exceed the unfiltered access count.
        let refills: usize = a.runs.iter().map(|r| r.refills.len()).sum();
        assert!(refills > 0);
        assert!((refills as u64) < prepared.accesses());
    }

    #[test]
    fn parallel_filter_pass_matches_serial_exactly() {
        let (_, trace) = record_run();
        let config = PlatformConfig::default();
        let serial = PreparedTrace::from(trace.clone())
            .filtered_for(&config)
            .unwrap();
        for jobs in [1, 2, 3, 8] {
            let prepared = PreparedTrace::from(trace.clone());
            let parallel = prepared.filtered_for_jobs(&config, jobs).unwrap();
            assert_eq!(*serial, *parallel, "jobs={jobs}");
            // The parallel pass fills the same cache serial consumers read.
            let cached = prepared.filtered_for(&config).unwrap();
            assert!(Arc::ptr_eq(&parallel, &cached));
        }
    }

    #[test]
    fn parallel_filter_pass_rejects_out_of_range_processors() {
        let mut table = RegionTable::new();
        table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                4096,
            )
            .unwrap();
        let mut writer = TraceWriter::new(Vec::new(), &table, 2).unwrap();
        let access = Access::load(Addr::new(0x40), 4, TaskId::new(0), RegionId::new(0));
        writer.record(5, 0, &access);
        let (bytes, _) = writer.finish().unwrap();
        let prepared = PreparedTrace::from(EncodedTrace::from_bytes(bytes).unwrap());
        let err = prepared
            .filtered_for_jobs(&PlatformConfig::default(), 4)
            .unwrap_err();
        assert!(matches!(err, PlatformError::ProcessorOutOfRange { .. }));
    }

    #[test]
    fn untraced_and_null_tapped_runs_agree() {
        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let run = |tapped: bool| {
            let mut system = System::new(config, shared_l2(), mapping.clone()).unwrap();
            let mut driver = MixedDriver {
                remaining: vec![10, 10],
                cursor: vec![0, 0],
            };
            if tapped {
                system.run_traced(&mut driver, &mut NullTap).unwrap()
            } else {
                system.run(&mut driver).unwrap()
            }
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn trace_with_out_of_range_processor_is_rejected() {
        // Hand-craft a trace declaring 1 processor but recording on id 3.
        let mut table = RegionTable::new();
        table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                4096,
            )
            .unwrap();
        let mut writer = TraceWriter::new(Vec::new(), &table, 1).unwrap();
        let access = Access::load(Addr::new(0x40), 4, TaskId::new(0), RegionId::new(0));
        writer.record(3, 0, &access);
        let (bytes, _) = writer.finish().unwrap();
        let prepared = PreparedTrace::from(EncodedTrace::from_bytes(bytes).unwrap());
        let err =
            ReplaySystem::new(&PlatformConfig::default(), shared_l2(), &prepared).unwrap_err();
        assert!(matches!(err, PlatformError::ProcessorOutOfRange { .. }));
    }
}
