//! The scenario-evaluation daemon: a content-addressed trace/curve store,
//! a length-prefixed wire protocol and a concurrent TCP server skeleton.
//!
//! The one-shot CLI pays the full decode + L1-filter cost on every
//! invocation. `compmem serve` amortises it: a long-running daemon owns a
//! [`CurveStore`] — traces and their `.curves` sidecars addressed by
//! [`EncodedTrace::content_hash`] — and evaluates
//! `profile`/`sweep-shapes`/`schedule`/`info` requests from many
//! concurrent clients. Requests a persisted sidecar can answer are served
//! analytically on the connection thread (the **cache-hit** path, no L1
//! filter pass); the rest queue onto a caller-provided worker pool (the
//! daemon wires them to `compmem::executor::WorkQueue`, so concurrent
//! clients share one bounded work-stealing budget).
//!
//! The module is transport and storage only: it knows nothing about
//! scenarios. Command evaluation is injected through [`CommandHandler`],
//! implemented by `compmem-bench` on top of the same command functions
//! the one-shot CLI runs — which is what makes daemon responses
//! **byte-identical** to the equivalent CLI invocation, the correctness
//! contract CI's `serve-smoke` job diffs end to end.
//!
//! # Wire protocol
//!
//! Every message is one frame: a tag byte, a big-endian `u32` payload
//! length, then the payload (strings are length-prefixed UTF-8; integers
//! big-endian). Frames above [`MAX_FRAME_BYTES`] and unknown tags are
//! typed [`PlatformError::Wire`] errors, never a panic — a malformed
//! client cannot take the daemon down, and a request that fails (or
//! panics) server-side comes back as a typed [`ServeResponse::Error`]
//! while the connection and the daemon live on.
//!
//! # Isolation and shutdown
//!
//! Each connection runs on its own thread; each command evaluation is
//! wrapped in `catch_unwind`, so one bad request fails alone with a
//! [`ServeErrorKind::Panic`] error. A [`ServeRequest::Shutdown`] drains
//! the accept loop and makes [`Server::run`] return cleanly; SIGTERM
//! terminates the process, which is equally safe because every store
//! write is atomic (temp file + rename — a reader observes the old or
//! the new bytes, never a torn file).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use compmem_trace::{write_file_atomic, EncodedTrace};

use crate::error::PlatformError;
use crate::replay::PreparedTrace;

/// Hard cap on a single wire frame (requests carry whole encoded traces,
/// responses whole command outputs; 1 GiB bounds a hostile length field).
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

const TAG_PUT: u8 = 0x01;
const TAG_COMMAND: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_OUTPUT: u8 = 0x81;
const TAG_ERROR: u8 = 0x82;
const TAG_PUT_OK: u8 = 0x83;
const TAG_STATS_OK: u8 = 0x84;
const TAG_BYE: u8 = 0x85;

fn wire(message: impl Into<String>) -> PlatformError {
    PlatformError::Wire {
        message: message.into(),
    }
}

fn store_error(message: impl Into<String>) -> PlatformError {
    PlatformError::Store {
        message: message.into(),
    }
}

// --- frame primitives ---------------------------------------------------

fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<(), PlatformError> {
    if payload.len() > MAX_FRAME_BYTES as usize {
        return Err(wire(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            payload.len()
        )));
    }
    let mut header = [0u8; 5];
    header[0] = tag;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| wire(format!("frame write failed: {e}")))
}

/// Reads one frame; `Ok(None)` on clean EOF before any header byte.
fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, PlatformError> {
    let mut header = [0u8; 5];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(wire("connection closed mid-frame")),
            Ok(n) => filled += n,
            Err(e) => return Err(wire(format!("frame read failed: {e}"))),
        }
    }
    let length = u32::from_be_bytes([header[1], header[2], header[3], header[4]]);
    if length > MAX_FRAME_BYTES {
        return Err(wire(format!(
            "incoming frame claims {length} bytes, above the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; length as usize];
    r.read_exact(&mut payload)
        .map_err(|e| wire(format!("frame payload read failed: {e}")))?;
    Ok(Some((header[0], payload)))
}

struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PlatformError> {
        if self.bytes.len() < n {
            return Err(wire("frame payload truncated"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, PlatformError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PlatformError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PlatformError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, PlatformError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, PlatformError> {
        String::from_utf8(self.bytes()?).map_err(|_| wire("string field is not UTF-8"))
    }

    fn finish(self) -> Result<(), PlatformError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(wire("frame payload has trailing bytes"))
        }
    }
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    push_bytes(out, s.as_bytes());
}

// --- messages -----------------------------------------------------------

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeRequest {
    /// Store an encoded trace; the daemon answers with its content hash.
    /// Idempotent: re-putting known bytes is a no-op.
    PutTrace {
        /// The encoded trace stream (the exact bytes of a `.cmt` file).
        bytes: Vec<u8>,
    },
    /// Evaluate a command over a stored trace.
    Command {
        /// Content hash of the stored trace the command targets.
        trace: u64,
        /// Command verb (`profile`, `sweep-shapes`, `schedule`, `info`).
        verb: String,
        /// Flag arguments, exactly as the one-shot CLI would receive them
        /// (minus `--trace`, which the daemon supplies from the store).
        args: Vec<String>,
    },
    /// Ask for the daemon's request counters.
    Stats,
    /// Ask the daemon to stop accepting connections and exit cleanly.
    Shutdown,
}

impl ServeRequest {
    fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            ServeRequest::PutTrace { bytes } => {
                let mut payload = Vec::with_capacity(bytes.len() + 4);
                push_bytes(&mut payload, bytes);
                (TAG_PUT, payload)
            }
            ServeRequest::Command { trace, verb, args } => {
                let mut payload = Vec::new();
                payload.extend_from_slice(&trace.to_be_bytes());
                push_string(&mut payload, verb);
                payload.extend_from_slice(&(args.len() as u32).to_be_bytes());
                for arg in args {
                    push_string(&mut payload, arg);
                }
                (TAG_COMMAND, payload)
            }
            ServeRequest::Stats => (TAG_STATS, Vec::new()),
            ServeRequest::Shutdown => (TAG_SHUTDOWN, Vec::new()),
        }
    }

    fn decode(tag: u8, payload: &[u8]) -> Result<Self, PlatformError> {
        let mut cursor = Cursor { bytes: payload };
        let request = match tag {
            TAG_PUT => ServeRequest::PutTrace {
                bytes: cursor.bytes()?,
            },
            TAG_COMMAND => {
                let trace = cursor.u64()?;
                let verb = cursor.string()?;
                let count = cursor.u32()?;
                if count > 4096 {
                    return Err(wire("command carries an absurd argument count"));
                }
                let mut args = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    args.push(cursor.string()?);
                }
                ServeRequest::Command { trace, verb, args }
            }
            TAG_STATS => ServeRequest::Stats,
            TAG_SHUTDOWN => ServeRequest::Shutdown,
            other => return Err(wire(format!("unknown request tag 0x{other:02x}"))),
        };
        cursor.finish()?;
        Ok(request)
    }
}

/// What failed, in a form a client can act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// The request itself was malformed (unknown verb, forbidden flag).
    BadRequest,
    /// The referenced trace hash is not in the store.
    UnknownTrace,
    /// The command ran and failed (the message is the CLI error text).
    Evaluation,
    /// The command panicked; the daemon caught it and lives on.
    Panic,
    /// The store could not read or write a file.
    Store,
}

impl ServeErrorKind {
    fn code(self) -> u8 {
        match self {
            ServeErrorKind::BadRequest => 0,
            ServeErrorKind::UnknownTrace => 1,
            ServeErrorKind::Evaluation => 2,
            ServeErrorKind::Panic => 3,
            ServeErrorKind::Store => 4,
        }
    }

    fn from_code(code: u8) -> Result<Self, PlatformError> {
        Ok(match code {
            0 => ServeErrorKind::BadRequest,
            1 => ServeErrorKind::UnknownTrace,
            2 => ServeErrorKind::Evaluation,
            3 => ServeErrorKind::Panic,
            4 => ServeErrorKind::Store,
            other => return Err(wire(format!("unknown error kind {other}"))),
        })
    }

    /// Stable lowercase label (used in CLI error messages and tests).
    pub fn label(self) -> &'static str {
        match self {
            ServeErrorKind::BadRequest => "bad-request",
            ServeErrorKind::UnknownTrace => "unknown-trace",
            ServeErrorKind::Evaluation => "evaluation",
            ServeErrorKind::Panic => "panic",
            ServeErrorKind::Store => "store",
        }
    }
}

/// The daemon's request counters, as returned by [`ServeRequest::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Traces currently in the store.
    pub traces: u64,
    /// `PutTrace` requests handled.
    pub puts: u64,
    /// Commands answered analytically from a persisted sidecar.
    pub cache_hits: u64,
    /// Commands that had to queue measurement/replay work.
    pub cache_misses: u64,
    /// Requests that came back as typed errors (panics included).
    pub errors: u64,
}

/// A daemon-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeResponse {
    /// Command output: the exact bytes the one-shot CLI would print.
    Output {
        /// The captured stdout of the command.
        bytes: Vec<u8>,
    },
    /// A stored trace's identity.
    PutOk {
        /// Content hash of the stored trace.
        hash: u64,
        /// Whether the trace was already present.
        existed: bool,
    },
    /// The daemon's counters.
    Stats(ServeStats),
    /// Acknowledgement of a shutdown request; the daemon exits after it.
    ShuttingDown,
    /// The request failed; the daemon lives on.
    Error {
        /// What class of failure this is.
        kind: ServeErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl ServeResponse {
    fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            ServeResponse::Output { bytes } => {
                let mut payload = Vec::with_capacity(bytes.len() + 4);
                push_bytes(&mut payload, bytes);
                (TAG_OUTPUT, payload)
            }
            ServeResponse::PutOk { hash, existed } => {
                let mut payload = Vec::with_capacity(9);
                payload.extend_from_slice(&hash.to_be_bytes());
                payload.push(u8::from(*existed));
                (TAG_PUT_OK, payload)
            }
            ServeResponse::Stats(stats) => {
                let mut payload = Vec::with_capacity(40);
                for field in [
                    stats.traces,
                    stats.puts,
                    stats.cache_hits,
                    stats.cache_misses,
                    stats.errors,
                ] {
                    payload.extend_from_slice(&field.to_be_bytes());
                }
                (TAG_STATS_OK, payload)
            }
            ServeResponse::ShuttingDown => (TAG_BYE, Vec::new()),
            ServeResponse::Error { kind, message } => {
                let mut payload = Vec::new();
                payload.push(kind.code());
                push_string(&mut payload, message);
                (TAG_ERROR, payload)
            }
        }
    }

    fn decode(tag: u8, payload: &[u8]) -> Result<Self, PlatformError> {
        let mut cursor = Cursor { bytes: payload };
        let response = match tag {
            TAG_OUTPUT => ServeResponse::Output {
                bytes: cursor.bytes()?,
            },
            TAG_PUT_OK => ServeResponse::PutOk {
                hash: cursor.u64()?,
                existed: cursor.u8()? != 0,
            },
            TAG_STATS_OK => ServeResponse::Stats(ServeStats {
                traces: cursor.u64()?,
                puts: cursor.u64()?,
                cache_hits: cursor.u64()?,
                cache_misses: cursor.u64()?,
                errors: cursor.u64()?,
            }),
            TAG_BYE => ServeResponse::ShuttingDown,
            TAG_ERROR => ServeResponse::Error {
                kind: ServeErrorKind::from_code(cursor.u8()?)?,
                message: cursor.string()?,
            },
            other => return Err(wire(format!("unknown response tag 0x{other:02x}"))),
        };
        cursor.finish()?;
        Ok(response)
    }
}

// --- content-addressed store --------------------------------------------

/// A content-hash-addressed store of traces and their curve sidecars.
///
/// A trace with content hash `h` lives at `<root>/<h as 016x>.cmt`; its
/// sidecars use the CLI's own naming convention next to it
/// (`<h>.curves`, `<h>.w400.curves`, ...), so a one-shot CLI invocation
/// pointed at the stored trace reads and writes **exactly** the files
/// the daemon does — shared cache, shared parity. Decoded traces are
/// memoised as [`PreparedTrace`]s so repeated requests skip the decode
/// (and, per L1 configuration, the filter pass).
pub struct CurveStore {
    root: PathBuf,
    prepared: Mutex<HashMap<u64, Arc<PreparedTrace>>>,
}

impl CurveStore {
    /// Opens (creating if needed) a store rooted at `root`. The path is
    /// kept exactly as given — not canonicalised — so every file path the
    /// daemon prints matches what a CLI invocation using the same root
    /// string would print.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Store`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, PlatformError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| store_error(format!("cannot create store {}: {e}", root.display())))?;
        Ok(CurveStore {
            root,
            prepared: Mutex::new(HashMap::new()),
        })
    }

    /// The store's root directory, as given to [`CurveStore::open`].
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the trace with content hash `hash` (whether or not it is
    /// stored yet).
    pub fn trace_path(&self, hash: u64) -> PathBuf {
        self.root.join(format!("{hash:016x}.cmt"))
    }

    /// Validates and stores encoded trace bytes; returns the content hash
    /// and whether the trace was already present. The write is atomic and
    /// idempotent — content addressing means equal hashes are equal bytes.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Store`] when the bytes do not decode as a trace
    /// or the file cannot be written.
    pub fn put_bytes(&self, bytes: Vec<u8>) -> Result<(u64, bool), PlatformError> {
        let trace = EncodedTrace::from_bytes(bytes)
            .map_err(|e| store_error(format!("rejected trace upload: {e}")))?;
        let hash = trace.content_hash();
        let path = self.trace_path(hash);
        let existed = path.exists();
        if !existed {
            write_file_atomic(&path, trace.bytes())
                .map_err(|e| store_error(format!("cannot write {}: {e}", path.display())))?;
        }
        self.prepared
            .lock()
            .expect("store cache poisoned")
            .entry(hash)
            .or_insert_with(|| Arc::new(PreparedTrace::from(trace)));
        Ok((hash, existed))
    }

    /// Whether the store holds a trace with this content hash.
    pub fn contains(&self, hash: u64) -> bool {
        self.prepared
            .lock()
            .expect("store cache poisoned")
            .contains_key(&hash)
            || self.trace_path(hash).exists()
    }

    /// The prepared (decoded, filter-cached) trace for `hash`, memoised
    /// across requests.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Store`] when the trace is not stored or its file
    /// no longer decodes.
    pub fn get(&self, hash: u64) -> Result<Arc<PreparedTrace>, PlatformError> {
        if let Some(prepared) = self
            .prepared
            .lock()
            .expect("store cache poisoned")
            .get(&hash)
        {
            return Ok(Arc::clone(prepared));
        }
        let path = self.trace_path(hash);
        let trace = EncodedTrace::read_from(&path)
            .map_err(|e| store_error(format!("trace {hash:016x} unavailable in the store: {e}")))?;
        let prepared = Arc::new(PreparedTrace::from(trace));
        self.prepared
            .lock()
            .expect("store cache poisoned")
            .entry(hash)
            .or_insert_with(|| Arc::clone(&prepared));
        Ok(prepared)
    }

    /// Content hashes of every trace file currently in the store
    /// directory (scanned from disk, so it sees traces stored by earlier
    /// daemon processes too).
    pub fn trace_hashes(&self) -> Vec<u64> {
        let mut hashes = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return hashes;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".cmt")) else {
                continue;
            };
            if stem.len() == 16 {
                if let Ok(hash) = u64::from_str_radix(stem, 16) {
                    hashes.push(hash);
                }
            }
        }
        hashes.sort_unstable();
        hashes
    }
}

// --- server -------------------------------------------------------------

/// Where a successful command was served from (drives the hit/miss
/// counters of [`ServeStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Answered analytically from a persisted sidecar on the connection
    /// thread — no measurement work queued.
    Cache,
    /// Queued measurement/replay work onto the shared worker pool.
    Pool,
}

/// A typed command failure (maps straight onto [`ServeResponse::Error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandFailure {
    /// What class of failure this is.
    pub kind: ServeErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl CommandFailure {
    /// Convenience constructor.
    pub fn new(kind: ServeErrorKind, message: impl Into<String>) -> Self {
        CommandFailure {
            kind,
            message: message.into(),
        }
    }
}

/// Evaluates wire commands against the store. Implemented by the CLI
/// layer on top of the exact command functions the one-shot binary runs;
/// the server wraps every call in `catch_unwind`, so implementations may
/// panic without taking the daemon down.
pub trait CommandHandler: Send + Sync + 'static {
    /// Evaluates `verb` with `args` over the stored trace `trace` and
    /// returns the output bytes plus whether a cached sidecar answered.
    fn evaluate(
        &self,
        store: &CurveStore,
        trace: u64,
        verb: &str,
        args: &[String],
    ) -> Result<(Vec<u8>, ServedFrom), CommandFailure>;
}

#[derive(Default)]
struct Counters {
    puts: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
}

/// The daemon: a TCP accept loop over a [`CurveStore`] and a
/// [`CommandHandler`], one thread per connection, panic isolation per
/// request.
pub struct Server<H: CommandHandler> {
    listener: TcpListener,
    store: Arc<CurveStore>,
    handler: Arc<H>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
}

impl<H: CommandHandler> Server<H> {
    /// Binds the daemon to `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// [`PlatformError::Wire`] when the socket cannot be bound.
    pub fn bind(addr: &str, store: Arc<CurveStore>, handler: H) -> Result<Self, PlatformError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| wire(format!("cannot bind {addr}: {e}")))?;
        Ok(Server {
            listener,
            store,
            handler: Arc::new(handler),
            counters: Arc::new(Counters::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the daemon is listening on.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Wire`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, PlatformError> {
        self.listener
            .local_addr()
            .map_err(|e| wire(format!("no local address: {e}")))
    }

    /// Runs the accept loop until a [`ServeRequest::Shutdown`] arrives.
    /// Every connection gets its own thread; the loop itself never
    /// evaluates commands, so a slow request cannot starve `accept`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Wire`] when `accept` fails irrecoverably.
    pub fn run(self) -> Result<(), PlatformError> {
        let local = self.local_addr()?;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| wire(format!("accept failed: {e}")))?;
            // One small request frame, one response frame: Nagle's
            // algorithm would serialise every exchange behind the peer's
            // delayed ACK (~40 ms per stall on loopback).
            let _ = stream.set_nodelay(true);
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let store = Arc::clone(&self.store);
            let handler = Arc::clone(&self.handler);
            let counters = Arc::clone(&self.counters);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || {
                serve_connection(stream, &store, &*handler, &counters, &shutdown, local);
            });
        }
    }
}

/// Handles one client connection: a sequence of request frames, one
/// response frame each, until EOF or a shutdown request.
fn serve_connection<H: CommandHandler>(
    mut stream: TcpStream,
    store: &CurveStore,
    handler: &H,
    counters: &Counters,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    loop {
        let request = match read_frame(&mut stream) {
            Ok(None) => return,
            Ok(Some((tag, payload))) => match ServeRequest::decode(tag, &payload) {
                Ok(request) => request,
                Err(e) => {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                    let response = ServeResponse::Error {
                        kind: ServeErrorKind::BadRequest,
                        message: e.to_string(),
                    };
                    let (tag, payload) = response.encode();
                    let _ = write_frame(&mut stream, tag, &payload);
                    return;
                }
            },
            // A vanished client is not a daemon problem.
            Err(_) => return,
        };
        let response = match request {
            ServeRequest::PutTrace { bytes } => match store.put_bytes(bytes) {
                Ok((hash, existed)) => {
                    counters.puts.fetch_add(1, Ordering::Relaxed);
                    ServeResponse::PutOk { hash, existed }
                }
                Err(e) => {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                    ServeResponse::Error {
                        kind: ServeErrorKind::Store,
                        message: e.to_string(),
                    }
                }
            },
            ServeRequest::Command { trace, verb, args } => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    handler.evaluate(store, trace, &verb, &args)
                }));
                match outcome {
                    Ok(Ok((bytes, from))) => {
                        match from {
                            ServedFrom::Cache => &counters.cache_hits,
                            ServedFrom::Pool => &counters.cache_misses,
                        }
                        .fetch_add(1, Ordering::Relaxed);
                        ServeResponse::Output { bytes }
                    }
                    Ok(Err(failure)) => {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        ServeResponse::Error {
                            kind: failure.kind,
                            message: failure.message,
                        }
                    }
                    Err(payload) => {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        let message = if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "command panicked with a non-string payload".to_string()
                        };
                        ServeResponse::Error {
                            kind: ServeErrorKind::Panic,
                            message: format!("command `{verb}` panicked: {message}"),
                        }
                    }
                }
            }
            ServeRequest::Stats => ServeResponse::Stats(ServeStats {
                traces: store.trace_hashes().len() as u64,
                puts: counters.puts.load(Ordering::Relaxed),
                cache_hits: counters.cache_hits.load(Ordering::Relaxed),
                cache_misses: counters.cache_misses.load(Ordering::Relaxed),
                errors: counters.errors.load(Ordering::Relaxed),
            }),
            ServeRequest::Shutdown => {
                let (tag, payload) = ServeResponse::ShuttingDown.encode();
                let _ = write_frame(&mut stream, tag, &payload);
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so Server::run observes the flag.
                let _ = TcpStream::connect(local);
                return;
            }
        };
        let (tag, payload) = response.encode();
        if write_frame(&mut stream, tag, &payload).is_err() {
            return;
        }
    }
}

// --- client -------------------------------------------------------------

/// A blocking client connection to a `compmem serve` daemon. One
/// connection carries any number of sequential request/response pairs.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a daemon at `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// [`PlatformError::Wire`] when the connection fails.
    pub fn connect(addr: &str) -> Result<Self, PlatformError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| wire(format!("cannot connect to {addr}: {e}")))?;
        // Request/response frames are small; see the matching nodelay on
        // the daemon side.
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { stream })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// [`PlatformError::Wire`] on transport or framing failures (typed
    /// daemon-side failures come back as [`ServeResponse::Error`], not as
    /// an `Err`).
    pub fn request(&mut self, request: &ServeRequest) -> Result<ServeResponse, PlatformError> {
        let (tag, payload) = request.encode();
        write_frame(&mut self.stream, tag, &payload)?;
        match read_frame(&mut self.stream)? {
            Some((tag, payload)) => ServeResponse::decode(tag, &payload),
            None => Err(wire("daemon closed the connection without responding")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::{Access, Addr, RegionId, RegionKind, RegionTable, TaskId, TraceWriter};

    fn tiny_trace_bytes() -> Vec<u8> {
        let mut table = RegionTable::new();
        let task = TaskId::new(0);
        table
            .insert("t0.data", RegionKind::TaskData { task }, 4096)
            .expect("region fits");
        let mut writer = TraceWriter::new(Vec::new(), &table, 1).expect("writer opens");
        for i in 0..16u64 {
            writer.record(
                0,
                i * 4,
                &Access::load(Addr::new(i % 8 * 64), 4, task, RegionId::new(0)),
            );
        }
        let (bytes, _) = writer.finish().expect("finish succeeds");
        bytes
    }

    fn temp_dir(label: &str) -> PathBuf {
        static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "compmem-serve-{label}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn requests_roundtrip_through_the_wire_encoding() {
        let requests = vec![
            ServeRequest::PutTrace {
                bytes: vec![1, 2, 3],
            },
            ServeRequest::Command {
                trace: 0xdead_beef,
                verb: "profile".to_string(),
                args: vec!["--l2-kb".to_string(), "32".to_string()],
            },
            ServeRequest::Stats,
            ServeRequest::Shutdown,
        ];
        for request in requests {
            let (tag, payload) = request.encode();
            assert_eq!(ServeRequest::decode(tag, &payload).unwrap(), request);
        }
    }

    #[test]
    fn responses_roundtrip_through_the_wire_encoding() {
        let responses = vec![
            ServeResponse::Output {
                bytes: b"hello".to_vec(),
            },
            ServeResponse::PutOk {
                hash: 42,
                existed: true,
            },
            ServeResponse::Stats(ServeStats {
                traces: 1,
                puts: 2,
                cache_hits: 3,
                cache_misses: 4,
                errors: 5,
            }),
            ServeResponse::ShuttingDown,
            ServeResponse::Error {
                kind: ServeErrorKind::Panic,
                message: "boom".to_string(),
            },
        ];
        for response in responses {
            let (tag, payload) = response.encode();
            assert_eq!(ServeResponse::decode(tag, &payload).unwrap(), response);
        }
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        assert!(ServeRequest::decode(0x7f, &[]).is_err());
        assert!(ServeResponse::decode(0x7f, &[]).is_err());
        // Truncated command payload.
        assert!(ServeRequest::decode(TAG_COMMAND, &[1, 2, 3]).is_err());
        // Trailing garbage.
        let (tag, mut payload) = ServeRequest::Stats.encode();
        payload.push(9);
        assert!(ServeRequest::decode(tag, &payload).is_err());
        // Oversized length field.
        let mut framed = Vec::new();
        framed.push(TAG_STATS);
        framed.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        let mut reader = &framed[..];
        assert!(matches!(
            read_frame(&mut reader),
            Err(PlatformError::Wire { .. })
        ));
    }

    #[test]
    fn store_is_content_addressed_and_idempotent() {
        let store = CurveStore::open(temp_dir("store")).unwrap();
        let bytes = tiny_trace_bytes();
        let (hash, existed) = store.put_bytes(bytes.clone()).unwrap();
        assert!(!existed);
        let (hash2, existed2) = store.put_bytes(bytes.clone()).unwrap();
        assert_eq!(hash, hash2);
        assert!(existed2);
        assert!(store.contains(hash));
        assert_eq!(store.trace_hashes(), vec![hash]);
        let prepared = store.get(hash).unwrap();
        assert_eq!(prepared.trace().content_hash(), hash);
        assert_eq!(prepared.trace().bytes(), &bytes[..]);
        // Garbage is rejected with a typed error, not stored.
        assert!(matches!(
            store.put_bytes(vec![0; 8]),
            Err(PlatformError::Store { .. })
        ));
        assert_eq!(store.trace_hashes(), vec![hash]);
        std::fs::remove_dir_all(store.root()).unwrap();
    }

    #[test]
    fn a_second_store_sees_traces_from_disk() {
        let dir = temp_dir("reopen");
        let first = CurveStore::open(&dir).unwrap();
        let (hash, _) = first.put_bytes(tiny_trace_bytes()).unwrap();
        drop(first);
        let second = CurveStore::open(&dir).unwrap();
        assert!(second.contains(hash));
        assert_eq!(second.get(hash).unwrap().trace().content_hash(), hash);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A handler that echoes, fails or panics on demand — exercises the
    /// server's isolation without any scenario machinery.
    struct TestHandler;

    impl CommandHandler for TestHandler {
        fn evaluate(
            &self,
            store: &CurveStore,
            trace: u64,
            verb: &str,
            args: &[String],
        ) -> Result<(Vec<u8>, ServedFrom), CommandFailure> {
            if !store.contains(trace) {
                return Err(CommandFailure::new(
                    ServeErrorKind::UnknownTrace,
                    format!("trace {trace:016x} is not stored"),
                ));
            }
            match verb {
                "echo" => Ok((args.join(" ").into_bytes(), ServedFrom::Cache)),
                "work" => Ok((b"worked".to_vec(), ServedFrom::Pool)),
                "panic" => panic!("handler exploded on purpose"),
                other => Err(CommandFailure::new(
                    ServeErrorKind::BadRequest,
                    format!("unknown verb `{other}`"),
                )),
            }
        }
    }

    #[test]
    fn server_isolates_panics_counts_requests_and_shuts_down() {
        let store = Arc::new(CurveStore::open(temp_dir("server")).unwrap());
        let root = store.root().to_path_buf();
        let server = Server::bind("127.0.0.1:0", Arc::clone(&store), TestHandler).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let runner = std::thread::spawn(move || server.run());

        let mut client = ServeClient::connect(&addr).unwrap();
        let bytes = tiny_trace_bytes();
        let ServeResponse::PutOk { hash, existed } = client
            .request(&ServeRequest::PutTrace {
                bytes: bytes.clone(),
            })
            .unwrap()
        else {
            panic!("expected PutOk");
        };
        assert!(!existed);

        // A panicking command fails alone...
        let response = client
            .request(&ServeRequest::Command {
                trace: hash,
                verb: "panic".to_string(),
                args: vec![],
            })
            .unwrap();
        match response {
            ServeResponse::Error { kind, message } => {
                assert_eq!(kind, ServeErrorKind::Panic);
                assert!(message.contains("exploded"), "message: {message}");
            }
            other => panic!("expected a panic error, got {other:?}"),
        }

        // ...and the same connection keeps serving.
        let response = client
            .request(&ServeRequest::Command {
                trace: hash,
                verb: "echo".to_string(),
                args: vec!["a".to_string(), "b".to_string()],
            })
            .unwrap();
        assert_eq!(
            response,
            ServeResponse::Output {
                bytes: b"a b".to_vec()
            }
        );
        let response = client
            .request(&ServeRequest::Command {
                trace: hash,
                verb: "work".to_string(),
                args: vec![],
            })
            .unwrap();
        assert_eq!(
            response,
            ServeResponse::Output {
                bytes: b"worked".to_vec()
            }
        );

        // An unknown trace is a typed error.
        let response = client
            .request(&ServeRequest::Command {
                trace: hash ^ 1,
                verb: "echo".to_string(),
                args: vec![],
            })
            .unwrap();
        assert!(matches!(
            response,
            ServeResponse::Error {
                kind: ServeErrorKind::UnknownTrace,
                ..
            }
        ));

        // Counters reflect all of the above.
        let ServeResponse::Stats(stats) = client.request(&ServeRequest::Stats).unwrap() else {
            panic!("expected Stats");
        };
        assert_eq!(stats.traces, 1);
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.errors, 2);

        // Shutdown is acknowledged and run() returns cleanly.
        assert_eq!(
            client.request(&ServeRequest::Shutdown).unwrap(),
            ServeResponse::ShuttingDown
        );
        runner
            .join()
            .expect("server thread joins")
            .expect("server run() returns Ok");
        std::fs::remove_dir_all(root).unwrap();
    }
}
