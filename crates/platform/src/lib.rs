//! Cycle-approximate multiprocessor memory-hierarchy simulator.
//!
//! This crate models the experimental platform of *"Compositional memory
//! systems for multimedia communicating tasks"* (Molnos et al., DATE 2005):
//! one tile of the CAKE architecture — a homogeneous set of processors with
//! private L1 instruction and data caches, a shared unified L2 cache held
//! as a `Box<dyn CacheModel>` (conventional, set-partitioned,
//! way-partitioned or profiling, see `compmem-cache`), a shared arbitrated
//! memory bus and off-chip DRAM.
//!
//! Execution is **discrete-event**: an [`EventQueue`] (a min-heap of
//! `(ready_cycle, processor)` entries) drives the run loop. The earliest
//! -ready processor executes a chunk of its current burst against the
//! single timing path (L1 → bus arbitration → L2 → DRAM) and is pushed
//! back at its advanced local clock; processors whose tasks are all
//! blocked park and are woken by burst-completion and task-retirement
//! events. The same queue powers the functional scheduler of
//! `compmem-kpn`, so per-processor task firing, FIFO stalls and bus
//! contention are all ordered by one global clock.
//!
//! The simulator is *workload driven*: tasks are supplied by a
//! [`WorkloadDriver`] that hands out [`Burst`]s of operations (compute
//! instructions and memory accesses). The Kahn-process-network runtime of
//! `compmem-kpn` implements this trait; synthetic drivers are used in unit
//! tests.
//!
//! What is modelled, and what deliberately is not:
//!
//! * Processors execute one instruction per cycle when not stalled (the
//!   TriMedia VLIW issue width is folded into the workloads' instruction
//!   counts). Memory stalls come from L1 misses that go to the shared L2 and
//!   possibly to DRAM over the shared bus.
//! * The shared bus serialises L2/DRAM transfers (round-robin by request
//!   time), so co-running tasks perturb each other's *timing* — but under a
//!   partitioned L2 they can no longer perturb each other's *miss counts*,
//!   which is the compositionality property the paper establishes.
//! * Task switching costs a configurable number of cycles and (optionally)
//!   touches the run-time-system data/bss regions, as in the paper's
//!   experimental set-up where the RT system has its own cache partition.
//!
//! (The workspace-level architecture guide — layers, dataflow, the
//! one-pass profiling invariant — lives in `docs/ARCHITECTURE.md`; the
//! CLI walkthrough in `docs/CLI.md`.)
//!
//! # Example
//!
//! ```
//! use compmem_cache::{CacheConfig, SharedCache};
//! use compmem_platform::{Burst, BurstOutcome, Op, PlatformConfig, System, TaskMapping,
//!     WorkloadDriver};
//! use compmem_trace::{Access, Addr, RegionId, TaskId};
//!
//! /// A driver with a single task that loads one line and finishes.
//! struct OneShot { fired: bool }
//! impl WorkloadDriver for OneShot {
//!     fn next_burst(&mut self, _task: TaskId) -> BurstOutcome {
//!         if self.fired { return BurstOutcome::Finished; }
//!         self.fired = true;
//!         BurstOutcome::Ready(Burst::new(vec![
//!             Op::Compute(10),
//!             Op::Mem(Access::load(Addr::new(0x1000), 4, TaskId::new(0), RegionId::new(0))),
//!         ]))
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = PlatformConfig::default().processors(1);
//! let l2 = Box::new(SharedCache::new(CacheConfig::paper_l2()));
//! let mapping = TaskMapping::single_processor(&[TaskId::new(0)]);
//! let mut system = System::new(config, l2, mapping)?;
//! let report = system.run(&mut OneShot { fired: false })?;
//! assert_eq!(report.total_instructions(), 11);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod config;
mod engine;
mod error;
pub mod lanes;
mod memory;
mod metrics;
mod op;
mod processor;
pub mod profile;
pub mod replay;
mod scheduler;
pub mod serve;
mod system;

pub use bus::Bus;
pub use config::{OsRegions, PlatformConfig};
pub use engine::EventQueue;
pub use error::PlatformError;
pub use lanes::{
    lane_eligibility, lane_keys, replay_lanes, replay_lanes_required, LaneDecision,
    LaneIneligibility, LaneReport,
};
pub use memory::{BurstStats, L1Refill, MemoryLevel, MemorySystem};
pub use metrics::{ProcessorReport, RepartitionRecord, SystemReport};
pub use op::{Burst, BurstOutcome, Op, WorkloadDriver};
pub use processor::ProcessorId;
pub use profile::{
    l1_filter_signature, profile_reader, profile_reader_windowed, profile_trace,
    profile_trace_lanes, profile_trace_windowed, profile_trace_windowed_lanes,
    profile_trace_with_sidecar, profile_trace_with_sidecar_lanes, SidecarOutcome, TapProfiler,
    WindowedTapProfiler,
};
pub use replay::{
    AccessTap, FilteredRun, FilteredTrace, NullTap, PreparedTrace, ReplayCounters, ReplayProcessor,
    ReplaySystem, RunObservation,
};
pub use scheduler::TaskMapping;
pub use serve::{
    CommandFailure, CommandHandler, CurveStore, ServeClient, ServeErrorKind, ServeRequest,
    ServeResponse, ServeStats, ServedFrom, Server,
};
pub use system::{System, SystemController};
