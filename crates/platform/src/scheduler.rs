//! Task-to-processor mapping.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use compmem_trace::TaskId;

use crate::error::PlatformError;

/// A static assignment of tasks to processors.
///
/// The paper's analytical throughput model (§3.1) requires a static
/// assignment so that the execution time of a processor is the sum of its
/// tasks' execution times; the simulator uses the same model: each task runs
/// only on its assigned processor, scheduled data-driven (run until blocked)
/// with an optional quantum.
///
/// ```
/// use compmem_platform::TaskMapping;
/// use compmem_trace::TaskId;
/// let tasks: Vec<TaskId> = (0..6).map(TaskId::new).collect();
/// let mapping = TaskMapping::round_robin(&tasks, 4);
/// assert_eq!(mapping.processors_used(), 4);
/// assert_eq!(mapping.tasks_of(0).len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskMapping {
    assignments: Vec<Vec<TaskId>>,
}

impl TaskMapping {
    /// Creates a mapping from explicit per-processor task lists.
    pub fn new(assignments: Vec<Vec<TaskId>>) -> Self {
        TaskMapping { assignments }
    }

    /// Maps every task onto a single processor.
    pub fn single_processor(tasks: &[TaskId]) -> Self {
        TaskMapping {
            assignments: vec![tasks.to_vec()],
        }
    }

    /// Distributes tasks round-robin over `processors` processors.
    pub fn round_robin(tasks: &[TaskId], processors: usize) -> Self {
        assert!(processors > 0, "at least one processor is required");
        let mut assignments = vec![Vec::new(); processors.min(tasks.len().max(1))];
        for (i, &t) in tasks.iter().enumerate() {
            let p = i % assignments.len();
            assignments[p].push(t);
        }
        TaskMapping { assignments }
    }

    /// Number of processors that have at least one task (trailing empty
    /// processors are not counted).
    pub fn processors_used(&self) -> usize {
        self.assignments.len()
    }

    /// Tasks assigned to processor `processor` (empty slice if none).
    pub fn tasks_of(&self, processor: usize) -> &[TaskId] {
        self.assignments
            .get(processor)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All tasks in the mapping, in processor order.
    pub fn all_tasks(&self) -> Vec<TaskId> {
        self.assignments.iter().flatten().copied().collect()
    }

    /// Total number of tasks.
    pub fn task_count(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }

    /// The processor a task is assigned to, if any.
    pub fn processor_of(&self, task: TaskId) -> Option<usize> {
        self.assignments
            .iter()
            .position(|tasks| tasks.contains(&task))
    }

    /// Validates the mapping against a processor count.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::EmptyMapping`] if there are no tasks at all,
    /// * [`PlatformError::ProcessorOutOfRange`] if more processors are used
    ///   than exist,
    /// * [`PlatformError::DuplicateTask`] if a task appears twice.
    pub fn validate(&self, num_processors: usize) -> Result<(), PlatformError> {
        if self.task_count() == 0 {
            return Err(PlatformError::EmptyMapping);
        }
        if self.assignments.len() > num_processors {
            return Err(PlatformError::ProcessorOutOfRange {
                processor: self.assignments.len() - 1,
                processors: num_processors,
            });
        }
        let mut seen = BTreeSet::new();
        for &task in self.assignments.iter().flatten() {
            if !seen.insert(task) {
                return Err(PlatformError::DuplicateTask { task });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: u32) -> Vec<TaskId> {
        (0..n).map(TaskId::new).collect()
    }

    #[test]
    fn round_robin_distributes_evenly() {
        let m = TaskMapping::round_robin(&tasks(10), 4);
        assert_eq!(m.processors_used(), 4);
        assert_eq!(m.tasks_of(0).len(), 3);
        assert_eq!(m.tasks_of(1).len(), 3);
        assert_eq!(m.tasks_of(2).len(), 2);
        assert_eq!(m.tasks_of(3).len(), 2);
        assert_eq!(m.task_count(), 10);
        assert!(m.validate(4).is_ok());
    }

    #[test]
    fn round_robin_with_fewer_tasks_than_processors() {
        let m = TaskMapping::round_robin(&tasks(2), 8);
        assert_eq!(m.processors_used(), 2);
        assert!(m.validate(8).is_ok());
    }

    #[test]
    fn processor_of_finds_the_right_processor() {
        let m = TaskMapping::round_robin(&tasks(5), 2);
        assert_eq!(m.processor_of(TaskId::new(0)), Some(0));
        assert_eq!(m.processor_of(TaskId::new(1)), Some(1));
        assert_eq!(m.processor_of(TaskId::new(4)), Some(0));
        assert_eq!(m.processor_of(TaskId::new(99)), None);
    }

    #[test]
    fn validation_catches_errors() {
        assert!(matches!(
            TaskMapping::new(vec![]).validate(4),
            Err(PlatformError::EmptyMapping)
        ));
        let m = TaskMapping::new(vec![vec![TaskId::new(0)], vec![TaskId::new(1)]]);
        assert!(matches!(
            m.validate(1),
            Err(PlatformError::ProcessorOutOfRange { .. })
        ));
        let m = TaskMapping::new(vec![vec![TaskId::new(0), TaskId::new(0)]]);
        assert!(matches!(
            m.validate(1),
            Err(PlatformError::DuplicateTask { .. })
        ));
    }

    #[test]
    fn single_processor_mapping() {
        let m = TaskMapping::single_processor(&tasks(3));
        assert_eq!(m.processors_used(), 1);
        assert_eq!(m.all_tasks(), tasks(3));
        assert!(m.validate(4).is_ok());
    }
}
