//! The shared memory bus connecting the L1 caches to the L2 and DRAM.

use serde::{Deserialize, Serialize};

/// A single shared bus with first-come-first-served arbitration.
///
/// Every L2 access (refill of an L1 line) and every DRAM transfer occupies
/// the bus for `line_bytes / bytes_per_cycle` cycles. Requests are granted
/// in the order they arrive; a request issued at time `t` while the bus is
/// busy until `t_free` starts at `max(t, t_free)`. The resulting queueing
/// delay is how co-running tasks disturb each other's *timing* even when the
/// partitioned L2 keeps their *miss counts* independent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bus {
    bytes_per_cycle: u32,
    busy_until: u64,
    transfers: u64,
    bytes_transferred: u64,
    total_wait_cycles: u64,
}

impl Bus {
    /// Creates a bus with the given bandwidth in bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u32) -> Self {
        assert!(bytes_per_cycle > 0, "bus bandwidth must be non-zero");
        Bus {
            bytes_per_cycle,
            busy_until: 0,
            transfers: 0,
            bytes_transferred: 0,
            total_wait_cycles: 0,
        }
    }

    /// Requests a transfer of `bytes` starting no earlier than `now`.
    ///
    /// Returns `(wait_cycles, transfer_cycles)`: the queueing delay before
    /// the transfer could start and the time the transfer itself occupied
    /// the bus.
    pub fn request(&mut self, now: u64, bytes: u32) -> (u64, u64) {
        let start = now.max(self.busy_until);
        let wait = start - now;
        let duration = u64::from(bytes.div_ceil(self.bytes_per_cycle)).max(1);
        self.busy_until = start + duration;
        self.transfers += 1;
        self.bytes_transferred += u64::from(bytes);
        self.total_wait_cycles += wait;
        (wait, duration)
    }

    /// Time at which the bus becomes idle.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Number of transfers granted.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes transferred.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Total cycles requests spent waiting for the bus.
    pub fn total_wait_cycles(&self) -> u64 {
        self.total_wait_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = Bus::new(8);
        let (wait, dur) = bus.request(100, 64);
        assert_eq!(wait, 0);
        assert_eq!(dur, 8);
        assert_eq!(bus.busy_until(), 108);
    }

    #[test]
    fn overlapping_requests_queue() {
        let mut bus = Bus::new(8);
        bus.request(0, 64); // busy until 8
        let (wait, dur) = bus.request(2, 64);
        assert_eq!(wait, 6);
        assert_eq!(dur, 8);
        assert_eq!(bus.busy_until(), 16);
        assert_eq!(bus.total_wait_cycles(), 6);
        assert_eq!(bus.transfers(), 2);
        assert_eq!(bus.bytes_transferred(), 128);
    }

    #[test]
    fn late_request_after_idle_gap() {
        let mut bus = Bus::new(8);
        bus.request(0, 64);
        let (wait, _) = bus.request(1000, 64);
        assert_eq!(wait, 0);
        assert_eq!(bus.busy_until(), 1008);
    }

    #[test]
    fn small_transfer_takes_at_least_one_cycle() {
        let mut bus = Bus::new(64);
        let (_, dur) = bus.request(0, 4);
        assert_eq!(dur, 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Bus::new(0);
    }
}
