//! Error type of the platform crate.

use std::error::Error;
use std::fmt;

use compmem_trace::TaskId;

/// Errors produced while configuring or running the platform simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Description of the problem.
        reason: String,
    },
    /// A task was mapped to a processor that does not exist.
    ProcessorOutOfRange {
        /// The offending processor index.
        processor: usize,
        /// Number of processors configured.
        processors: usize,
    },
    /// A task appeared more than once in the mapping.
    DuplicateTask {
        /// The duplicated task.
        task: TaskId,
    },
    /// The mapping contained no tasks.
    EmptyMapping,
    /// No task could make progress although none had finished: the workload
    /// deadlocked (e.g. a process network with undersized FIFOs).
    Deadlock {
        /// Tasks that were still blocked when progress stopped.
        blocked: Vec<TaskId>,
    },
    /// The simulation exceeded the configured cycle limit.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A streaming trace could not be decoded (the message of the
    /// underlying [`CodecError`](compmem_trace::CodecError), which is not
    /// `Clone`).
    TraceDecode {
        /// Rendered message of the codec error.
        message: String,
    },
    /// A curve sidecar could not be written (the message of the
    /// underlying [`CodecError`](compmem_trace::CodecError), which is not
    /// `Clone`). Unreadable or mismatched sidecars are *not* errors — the
    /// profiling feeds fall back to measuring and rewriting them.
    SidecarWrite {
        /// Rendered message of the codec error.
        message: String,
    },
    /// A replay lane could not build or reconfigure its L2 organisation
    /// (the message of the underlying
    /// [`CacheError`](compmem_cache::CacheError): an invalid schedule, a
    /// partition map over the wrong geometry, an uncovered region).
    LaneCache {
        /// Rendered message of the cache error.
        message: String,
    },
    /// The caller explicitly required a multi-lane run but the scenario
    /// cannot split into exact per-key lanes (see
    /// [`LaneIneligibility`](crate::lanes::LaneIneligibility) for the
    /// possible reasons). The opportunistic entry points fall back to one
    /// lane and report the fallback instead of raising this.
    LanesIneligible {
        /// Lane count the caller required.
        requested: usize,
        /// Rendered ineligibility reason.
        reason: String,
    },
    /// An online controller (see
    /// [`SystemController`](crate::SystemController)) emitted a
    /// repartition the memory system rejected — an out-of-order boundary
    /// cycle, a wrong-geometry map or an uncovered region (the rendered
    /// [`CacheError`](compmem_cache::CacheError)). The run stops at the
    /// rejecting chunk.
    ControlCache {
        /// Rendered message of the cache error.
        message: String,
    },
    /// A wire-protocol frame could not be read, written or decoded (the
    /// rendered I/O or framing problem; `std::io::Error` is not `Clone`).
    /// Raised by the `compmem serve` transport — a malformed frame is a
    /// typed error back to the client, never a daemon crash.
    Wire {
        /// Rendered message of the transport failure.
        message: String,
    },
    /// The content-addressed curve store could not read, validate or
    /// write a trace file (rendered I/O or codec problem).
    Store {
        /// Rendered message of the store failure.
        message: String,
    },
    /// Parallel profiling shards failed to merge back into one exact
    /// profile (the rendered
    /// [`CacheError::ShardMerge`](compmem_cache::CacheError) reason). This
    /// is an internal invariant violation, not a user error: the lane
    /// split guarantees disjoint per-key streams.
    ProfileMerge {
        /// Rendered message of the shard-merge error.
        message: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid platform configuration: {parameter}: {reason}")
            }
            PlatformError::ProcessorOutOfRange {
                processor,
                processors,
            } => write!(
                f,
                "task mapped to processor {processor} but only {processors} processors exist"
            ),
            PlatformError::DuplicateTask { task } => {
                write!(f, "task {task} is mapped to more than one processor")
            }
            PlatformError::EmptyMapping => write!(f, "task mapping contains no tasks"),
            PlatformError::Deadlock { blocked } => {
                write!(
                    f,
                    "workload deadlocked with {} blocked tasks",
                    blocked.len()
                )
            }
            PlatformError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            PlatformError::TraceDecode { message } => {
                write!(f, "trace decode error: {message}")
            }
            PlatformError::SidecarWrite { message } => {
                write!(f, "curve sidecar write error: {message}")
            }
            PlatformError::LaneCache { message } => {
                write!(f, "lane replay cache error: {message}")
            }
            PlatformError::LanesIneligible { requested, reason } => write!(
                f,
                "{requested} lanes were required but the scenario cannot \
                 split into per-key lanes: {reason}"
            ),
            PlatformError::ControlCache { message } => {
                write!(f, "online controller repartition rejected: {message}")
            }
            PlatformError::Wire { message } => {
                write!(f, "wire protocol error: {message}")
            }
            PlatformError::Store { message } => {
                write!(f, "curve store error: {message}")
            }
            PlatformError::ProfileMerge { message } => {
                write!(f, "parallel profiling shards failed to merge: {message}")
            }
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PlatformError::ProcessorOutOfRange {
            processor: 7,
            processors: 4,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));
        let e = PlatformError::Deadlock {
            blocked: vec![TaskId::new(0), TaskId::new(1)],
        };
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
