//! The simulation engine: processors, scheduler and memory hierarchy tied
//! together.

use std::collections::VecDeque;

use compmem_cache::CacheOrganization;
use compmem_trace::{Access, TaskId, LINE_SIZE_BYTES};

use crate::config::PlatformConfig;
use crate::error::PlatformError;
use crate::memory::MemorySystem;
use crate::metrics::{ProcessorReport, SystemReport};
use crate::op::{BurstOutcome, Op, WorkloadDriver};
use crate::processor::ProcessorCounters;
use crate::scheduler::TaskMapping;

/// Number of operations executed per scheduling turn, so that the L2 access
/// streams of different processors interleave at a fine grain.
const CHUNK_OPS: usize = 64;

#[derive(Debug)]
struct Running {
    ops: Vec<Op>,
    next: usize,
}

#[derive(Debug)]
struct ProcState {
    counters: ProcessorCounters,
    /// Unfinished tasks of this processor, front = next to try.
    queue: VecDeque<TaskId>,
    /// Task currently loaded on the processor (register state resident).
    current_task: Option<TaskId>,
    running: Option<Running>,
    quantum_left: u64,
    /// If the processor found all its tasks blocked, the burst-event count
    /// at which it parked; it is only re-polled after new events.
    parked_at_event: Option<u64>,
}

/// The multiprocessor system: configuration, memory hierarchy and task
/// mapping.
///
/// `System` is generic over the shared-L2 organisation so the same engine
/// runs the paper's baseline (shared cache), its proposal (set-partitioned
/// cache) and the column-caching ablation.
#[derive(Debug)]
pub struct System<L2> {
    config: PlatformConfig,
    memory: MemorySystem<L2>,
    mapping: TaskMapping,
}

impl<L2: CacheOrganization> System<L2> {
    /// Builds a system.
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] if the configuration or the mapping is
    /// invalid.
    pub fn new(
        config: PlatformConfig,
        l2: L2,
        mapping: TaskMapping,
    ) -> Result<Self, PlatformError> {
        config.validate()?;
        mapping.validate(config.num_processors)?;
        let memory = MemorySystem::new(&config, l2);
        Ok(System {
            config,
            memory,
            mapping,
        })
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The memory hierarchy (e.g. to inspect L2 statistics after a run).
    pub fn memory(&self) -> &MemorySystem<L2> {
        &self.memory
    }

    /// The task mapping.
    pub fn mapping(&self) -> &TaskMapping {
        &self.mapping
    }

    /// Consumes the system and returns the shared L2 organisation (used to
    /// recover results accumulated inside the organisation itself, such as
    /// the shadow-cache miss profiles of the profiling organisation).
    pub fn into_l2(self) -> L2 {
        self.memory.into_l2()
    }

    /// Runs the workload to completion and returns the report.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::Deadlock`] if unfinished tasks remain but none can
    ///   make progress,
    /// * [`PlatformError::CycleLimitExceeded`] if a processor's local clock
    ///   exceeds the configured limit.
    pub fn run<D: WorkloadDriver>(&mut self, driver: &mut D) -> Result<SystemReport, PlatformError> {
        let mut procs: Vec<ProcState> = (0..self.config.num_processors)
            .map(|p| ProcState {
                counters: ProcessorCounters::default(),
                queue: self.mapping.tasks_of(p).iter().copied().collect(),
                current_task: None,
                running: None,
                quantum_left: self.config.quantum_instructions.unwrap_or(u64::MAX),
                parked_at_event: None,
            })
            .collect();

        let mut burst_events: u64 = 0;
        let mut last_event_time: u64 = 0;

        loop {
            if procs
                .iter()
                .all(|p| p.queue.is_empty() && p.running.is_none())
            {
                break;
            }

            let candidate = procs
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.running.is_some()
                        || (!p.queue.is_empty()
                            && p.parked_at_event.is_none_or(|e| e < burst_events))
                })
                .min_by_key(|(_, p)| p.counters.time)
                .map(|(i, _)| i);

            let Some(pi) = candidate else {
                let blocked: Vec<TaskId> = procs
                    .iter()
                    .flat_map(|p| p.queue.iter().copied())
                    .collect();
                return Err(PlatformError::Deadlock { blocked });
            };

            if procs[pi].running.is_none() {
                self.dispatch(pi, &mut procs, driver, &mut burst_events, last_event_time);
                continue;
            }

            let finished_burst = self.execute_chunk(pi, &mut procs);
            if procs[pi].counters.time > self.config.cycle_limit {
                return Err(PlatformError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }
            if finished_burst {
                burst_events += 1;
                last_event_time = last_event_time.max(procs[pi].counters.time);
            }
        }

        Ok(self.report(&procs))
    }

    /// Tries to give processor `pi` a new burst; parks it if every one of its
    /// unfinished tasks is blocked.
    fn dispatch<D: WorkloadDriver>(
        &mut self,
        pi: usize,
        procs: &mut [ProcState],
        driver: &mut D,
        burst_events: &mut u64,
        last_event_time: u64,
    ) {
        // Quantum expiry: demote the current task to the back of the queue.
        if self.config.quantum_instructions.is_some() && procs[pi].quantum_left == 0 {
            if let Some(current) = procs[pi].current_task {
                if procs[pi].queue.front() == Some(&current) && procs[pi].queue.len() > 1 {
                    procs[pi].queue.rotate_left(1);
                }
            }
            procs[pi].quantum_left = self.config.quantum_instructions.unwrap_or(u64::MAX);
        }

        let attempts = procs[pi].queue.len();
        for _ in 0..attempts {
            let task = *procs[pi].queue.front().expect("queue checked non-empty");
            match driver.next_burst(task) {
                BurstOutcome::Ready(burst) => {
                    let was_parked = procs[pi].parked_at_event.take().is_some();
                    if was_parked && last_event_time > procs[pi].counters.time {
                        let gap = last_event_time - procs[pi].counters.time;
                        procs[pi].counters.idle_cycles += gap;
                        procs[pi].counters.time = last_event_time;
                    }
                    if procs[pi].current_task != Some(task) {
                        self.perform_task_switch(pi, procs, task);
                    }
                    procs[pi].running = Some(Running {
                        ops: burst.into_ops(),
                        next: 0,
                    });
                    return;
                }
                BurstOutcome::Finished => {
                    procs[pi].queue.pop_front();
                    // Retiring a task is an event: a producer waiting for a
                    // final consumption attempt must be re-polled.
                    *burst_events += 1;
                    if procs[pi].queue.is_empty() {
                        return;
                    }
                }
                BurstOutcome::Blocked => {
                    procs[pi].queue.rotate_left(1);
                }
            }
        }
        if !procs[pi].queue.is_empty() {
            procs[pi].parked_at_event = Some(*burst_events);
        }
    }

    /// Accounts a task switch on processor `pi`, including the run-time
    /// system's memory traffic if configured.
    fn perform_task_switch(&mut self, pi: usize, procs: &mut [ProcState], task: TaskId) {
        let p = &mut procs[pi];
        let first_dispatch = p.current_task.is_none();
        p.current_task = Some(task);
        p.quantum_left = self.config.quantum_instructions.unwrap_or(u64::MAX);
        if first_dispatch {
            return;
        }
        p.counters.task_switches += 1;
        p.counters.switch_cycles += u64::from(self.config.task_switch_cycles);
        p.counters.time += u64::from(self.config.task_switch_cycles);
        if let Some(os) = self.config.os_regions {
            for i in 0..os.lines_per_switch {
                for (region, base) in [(os.rt_data, os.rt_data_base), (os.rt_bss, os.rt_bss_base)]
                {
                    let addr = base.offset(u64::from(i) * LINE_SIZE_BYTES);
                    let access = Access::load(addr, 4, os.os_task, region);
                    let stall = self.memory.access(pi, procs[pi].counters.time, &access);
                    let p = &mut procs[pi];
                    p.counters.switch_cycles += 1 + stall;
                    p.counters.time += 1 + stall;
                }
            }
        }
    }

    /// Executes up to [`CHUNK_OPS`] operations of the running burst of
    /// processor `pi`; returns `true` when the burst completed.
    fn execute_chunk(&mut self, pi: usize, procs: &mut [ProcState]) -> bool {
        let mut executed = 0;
        loop {
            let (op, task_done) = {
                let p = &mut procs[pi];
                let running = p.running.as_mut().expect("execute_chunk requires a burst");
                if running.next >= running.ops.len() {
                    (None, true)
                } else {
                    let op = running.ops[running.next];
                    running.next += 1;
                    (Some(op), false)
                }
            };
            if task_done {
                procs[pi].running = None;
                return true;
            }
            let op = op.expect("op present when burst not done");
            match op {
                Op::Compute(n) => {
                    let p = &mut procs[pi];
                    p.counters.time += u64::from(n);
                    p.counters.busy_cycles += u64::from(n);
                    p.counters.instructions += u64::from(n);
                    p.quantum_left = p.quantum_left.saturating_sub(u64::from(n));
                }
                Op::Mem(access) => {
                    let now = procs[pi].counters.time;
                    let stall = self.memory.access(pi, now, &access);
                    let p = &mut procs[pi];
                    if access.kind.is_instruction() {
                        p.counters.time += stall;
                        p.counters.stall_cycles += stall;
                    } else {
                        p.counters.time += 1 + stall;
                        p.counters.busy_cycles += 1;
                        p.counters.stall_cycles += stall;
                        p.counters.instructions += 1;
                        p.quantum_left = p.quantum_left.saturating_sub(1);
                    }
                }
            }
            executed += 1;
            if executed >= CHUNK_OPS {
                // Chunk budget exhausted; if the burst also happens to be
                // done, report it now so waiters are unparked promptly.
                let p = &mut procs[pi];
                let done = p
                    .running
                    .as_ref()
                    .is_some_and(|r| r.next >= r.ops.len());
                if done {
                    p.running = None;
                }
                return done;
            }
        }
    }

    fn report(&self, procs: &[ProcState]) -> SystemReport {
        let processors: Vec<ProcessorReport> = procs
            .iter()
            .map(|p| ProcessorReport {
                cycles: p.counters.time,
                busy_cycles: p.counters.busy_cycles,
                stall_cycles: p.counters.stall_cycles,
                switch_cycles: p.counters.switch_cycles,
                idle_cycles: p.counters.idle_cycles,
                instructions: p.counters.instructions,
                task_switches: p.counters.task_switches,
            })
            .collect();
        let makespan_cycles = processors.iter().map(|p| p.cycles).max().unwrap_or(0);
        let l2 = self.memory.l2();
        SystemReport {
            l1: self.memory.l1_aggregate_stats(),
            l2: *l2.stats(),
            l2_by_task: l2
                .stats_by_task()
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            l2_by_region: l2
                .stats_by_region()
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            dram_accesses: self.memory.dram_accesses(),
            dram_writebacks: self.memory.dram_writebacks(),
            bus_wait_cycles: self.memory.bus().total_wait_cycles(),
            bus_bytes: self.memory.bus().bytes_transferred(),
            makespan_cycles,
            processors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Burst;
    use compmem_cache::{CacheConfig, SharedCache};
    use compmem_trace::{Addr, RegionId};

    /// A driver where each task performs `bursts` bursts of `ops_per_burst`
    /// strided loads over its own address range, never blocking.
    struct StridedDriver {
        remaining: Vec<u32>,
        ops_per_burst: u32,
        issued: Vec<u64>,
    }

    impl StridedDriver {
        fn new(tasks: usize, bursts: u32, ops_per_burst: u32) -> Self {
            StridedDriver {
                remaining: vec![bursts; tasks],
                ops_per_burst,
                issued: vec![0; tasks],
            }
        }
    }

    impl WorkloadDriver for StridedDriver {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            let t = task.index();
            if self.remaining[t] == 0 {
                return BurstOutcome::Finished;
            }
            self.remaining[t] -= 1;
            let base = 0x10_0000 * (t as u64 + 1);
            let mut ops = Vec::new();
            for _ in 0..self.ops_per_burst {
                let addr = base + self.issued[t] * 64;
                self.issued[t] += 1;
                ops.push(Op::Compute(2));
                ops.push(Op::Mem(Access::load(
                    Addr::new(addr),
                    4,
                    task,
                    RegionId::new(t as u32),
                )));
            }
            BurstOutcome::Ready(Burst::new(ops))
        }
    }

    /// Producer/consumer pair communicating through a one-token mailbox, to
    /// exercise blocking, parking and un-parking.
    struct PingPong {
        tokens: u32,
        mailbox: bool,
        produced: u32,
        consumed: u32,
    }

    impl WorkloadDriver for PingPong {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            match task.index() {
                0 => {
                    if self.produced == self.tokens {
                        return BurstOutcome::Finished;
                    }
                    if self.mailbox {
                        return BurstOutcome::Blocked;
                    }
                    self.mailbox = true;
                    self.produced += 1;
                    BurstOutcome::Ready(Burst::new(vec![
                        Op::Compute(5),
                        Op::Mem(Access::store(
                            Addr::new(0x9000),
                            4,
                            task,
                            RegionId::new(9),
                        )),
                    ]))
                }
                _ => {
                    if self.consumed == self.tokens {
                        return BurstOutcome::Finished;
                    }
                    if !self.mailbox {
                        return BurstOutcome::Blocked;
                    }
                    self.mailbox = false;
                    self.consumed += 1;
                    BurstOutcome::Ready(Burst::new(vec![
                        Op::Mem(Access::load(Addr::new(0x9000), 4, task, RegionId::new(9))),
                        Op::Compute(3),
                    ]))
                }
            }
        }
    }

    fn shared_l2() -> SharedCache {
        SharedCache::new(CacheConfig::new(256, 4).unwrap())
    }

    #[test]
    fn single_task_counts_instructions_and_cycles() {
        let config = PlatformConfig::default().processors(1);
        let mapping = TaskMapping::single_processor(&[TaskId::new(0)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(1, 4, 10);
        let report = system.run(&mut driver).unwrap();
        // 4 bursts * 10 * (2 compute + 1 load) = 120 instructions.
        assert_eq!(report.total_instructions(), 120);
        assert!(report.processors[0].cycles >= 120);
        assert!(report.processors[0].stall_cycles > 0, "cold misses stall");
        assert!(report.l2.misses > 0);
        assert!(report.average_cpi() > 1.0);
        assert_eq!(report.processors[0].task_switches, 0);
    }

    #[test]
    fn tasks_on_different_processors_run_concurrently() {
        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(2, 8, 16);
        let report = system.run(&mut driver).unwrap();
        let p0 = report.processors[0].cycles;
        let p1 = report.processors[1].cycles;
        // Both processors did comparable work; the makespan is far less than
        // the serial sum.
        assert!(p0 > 0 && p1 > 0);
        assert!(report.makespan_cycles < p0 + p1);
        assert_eq!(report.total_instructions(), 2 * 8 * 16 * 3);
    }

    #[test]
    fn two_tasks_on_one_processor_incur_task_switches() {
        let config = PlatformConfig::default().processors(1).quantum(30);
        let mapping =
            TaskMapping::single_processor(&[TaskId::new(0), TaskId::new(1)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(2, 6, 10);
        let report = system.run(&mut driver).unwrap();
        assert!(report.processors[0].task_switches > 0);
        assert!(report.processors[0].switch_cycles > 0);
        assert_eq!(report.total_instructions(), 2 * 6 * 10 * 3);
    }

    #[test]
    fn blocking_producer_consumer_completes() {
        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = PingPong {
            tokens: 25,
            mailbox: false,
            produced: 0,
            consumed: 0,
        };
        let report = system.run(&mut driver).unwrap();
        assert_eq!(driver.produced, 25);
        assert_eq!(driver.consumed, 25);
        // Consumer instructions: 25 * (1 load + 3 compute); producer: 25 * 6.
        assert_eq!(report.total_instructions(), 25 * 6 + 25 * 4);
        assert!(report.processors.iter().any(|p| p.idle_cycles > 0));
    }

    #[test]
    fn deadlocked_workload_is_detected() {
        struct AlwaysBlocked;
        impl WorkloadDriver for AlwaysBlocked {
            fn next_burst(&mut self, _task: TaskId) -> BurstOutcome {
                BurstOutcome::Blocked
            }
        }
        let config = PlatformConfig::default().processors(1);
        let mapping = TaskMapping::single_processor(&[TaskId::new(0), TaskId::new(1)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let err = system.run(&mut AlwaysBlocked).unwrap_err();
        match err {
            PlatformError::Deadlock { blocked } => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let config = PlatformConfig::default()
            .processors(1)
            .with_cycle_limit(100);
        let mapping = TaskMapping::single_processor(&[TaskId::new(0)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(1, 1000, 64);
        let err = system.run(&mut driver).unwrap_err();
        assert!(matches!(err, PlatformError::CycleLimitExceeded { limit: 100 }));
    }

    #[test]
    fn invalid_mapping_is_rejected_at_construction() {
        let config = PlatformConfig::default().processors(1);
        let mapping = TaskMapping::new(vec![vec![TaskId::new(0)], vec![TaskId::new(1)]]);
        assert!(System::new(config, shared_l2(), mapping).is_err());
    }

    #[test]
    fn os_traffic_is_attributed_to_the_os_task() {
        let os_task = TaskId::new(99);
        let config = PlatformConfig::default()
            .processors(1)
            .quantum(20)
            .with_os_regions(crate::OsRegions {
                os_task,
                rt_data: RegionId::new(50),
                rt_data_base: Addr::new(0x50_0000),
                rt_bss: RegionId::new(51),
                rt_bss_base: Addr::new(0x60_0000),
                lines_per_switch: 4,
            });
        let mapping = TaskMapping::single_processor(&[TaskId::new(0), TaskId::new(1)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(2, 10, 10);
        let report = system.run(&mut driver).unwrap();
        assert!(report.processors[0].task_switches > 0);
        let os_accesses = report
            .l2_by_task
            .get(&os_task)
            .map_or(0, |s| s.accesses);
        assert!(os_accesses > 0, "OS traffic must reach the L2 at least once");
        assert!(report.l2_by_region.contains_key(&RegionId::new(50)));
    }
}
