//! The simulation engine: processors, scheduler and memory hierarchy tied
//! together by the discrete-event core.

use std::collections::VecDeque;

use compmem_cache::{CacheError, CacheModel, PartitionSchedule};
use compmem_trace::{Access, RegionTable, TaskId, LINE_SIZE_BYTES};

use crate::config::PlatformConfig;
use crate::engine::EventQueue;
use crate::error::PlatformError;
use crate::memory::MemorySystem;
use crate::metrics::{ProcessorReport, SystemReport};
use crate::op::{BurstOutcome, Op, WorkloadDriver};
use crate::processor::ProcessorCounters;
use crate::replay::AccessTap;
use crate::scheduler::TaskMapping;

/// Number of operations executed per scheduling turn, so that the L2 access
/// streams of different processors interleave at a fine grain.
const CHUNK_OPS: usize = 64;

#[derive(Debug)]
struct Running {
    ops: Vec<Op>,
    next: usize,
}

#[derive(Debug)]
struct ProcState {
    counters: ProcessorCounters,
    /// Unfinished tasks of this processor, front = next to try.
    queue: VecDeque<TaskId>,
    /// Task currently loaded on the processor (register state resident).
    current_task: Option<TaskId>,
    running: Option<Running>,
    quantum_left: u64,
    /// `true` while the processor has no event scheduled because every one
    /// of its unfinished tasks was blocked; cleared when another
    /// processor's event wakes it.
    parked: bool,
    /// `true` from the moment the processor parks until it next obtains a
    /// burst: only a processor that actually slept through other
    /// processors' events fast-forwards (accounting idle cycles) to the
    /// latest wake-up time when it resumes.
    was_parked: bool,
}

/// What a dispatch attempt did, so the event loop knows how to reschedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DispatchOutcome {
    /// The processor obtained a burst and should be rescheduled.
    scheduled: bool,
    /// At least one task retired, which is a wake-up event for parked
    /// processors (a producer waiting for a final consumption attempt must
    /// be re-polled).
    retired_task: bool,
}

/// The multiprocessor system: configuration, memory hierarchy and task
/// mapping.
///
/// The shared L2 is a `Box<dyn CacheModel>`, so one engine — one timing
/// path, one event loop — runs the paper's baseline (shared cache), its
/// proposal (set-partitioned cache), the column-caching ablation and the
/// profiling organisation. Execution is discrete-event: a min-heap of
/// `(ready_cycle, processor)` events (see [`EventQueue`]) drives per-
/// processor task firing; processors whose tasks are all blocked park
/// (leave the heap) and are woken by the events that can unblock them.
#[derive(Debug)]
pub struct System {
    config: PlatformConfig,
    memory: MemorySystem,
    mapping: TaskMapping,
    /// Scratch buffer collecting runs of consecutive memory operations, so
    /// each run traverses the hierarchy through one
    /// [`MemorySystem::access_burst`] call.
    burst_scratch: Vec<Access>,
    /// Boundary cycles of an installed [`PartitionSchedule`]'s switches;
    /// each becomes a repartition event on the run's event heap.
    switch_cycles: Vec<u64>,
}

/// One entry of the run loop's event heap: a processor becoming ready,
/// or a scheduled repartition boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopEvent {
    Processor(usize),
    Repartition,
}

/// An online repartitioning agent driving a live [`System`] run.
///
/// The run loop shows the controller every run of consecutive memory
/// operations just before it is issued (the same stream an
/// [`AccessTap`] records). Returning an organisation appends a switch at
/// the run's issue cycle via [`MemorySystem::push_switch`]; the flush
/// fires inside that very burst, at the first refill whose clock reaches
/// the boundary — identical accounting to a pre-installed
/// [`PartitionSchedule`] step.
pub trait SystemController {
    /// Observes one run of consecutive memory operations about to be
    /// issued at `now` on `processor`; `Some` requests a repartition at
    /// `now`.
    fn observe_run(
        &mut self,
        processor: usize,
        now: u64,
        accesses: &[Access],
    ) -> Option<compmem_cache::OrganizationSpec>;
}

/// Book-keeping of an in-flight controlled run: the controller, the
/// region table its switches validate against, and the first rejected
/// push (the controller goes inert once a push fails, and the error is
/// surfaced when the loop stops).
struct ControlState<'c> {
    controller: &'c mut dyn SystemController,
    regions: &'c RegionTable,
    error: Option<CacheError>,
}

impl System {
    /// Builds a system.
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] if the configuration or the mapping is
    /// invalid.
    pub fn new(
        config: PlatformConfig,
        l2: Box<dyn CacheModel>,
        mapping: TaskMapping,
    ) -> Result<Self, PlatformError> {
        config.validate()?;
        mapping.validate(config.num_processors)?;
        let memory = MemorySystem::new(&config, l2);
        Ok(System {
            config,
            memory,
            mapping,
            burst_scratch: Vec::new(),
            switch_cycles: Vec::new(),
        })
    }

    /// Installs a [`PartitionSchedule`] on the system: every switch of
    /// the schedule becomes a repartition event of the run loop, applied
    /// to the live L2 at its exact cycle boundary (the L2 the system was
    /// built with must be the schedule's step 0). See
    /// [`MemorySystem::install_schedule`] for the flush accounting.
    ///
    /// # Errors
    ///
    /// Propagates schedule validation errors, so a switch can never fail
    /// mid-run.
    pub fn install_schedule(
        &mut self,
        schedule: &PartitionSchedule,
        regions: &RegionTable,
    ) -> Result<(), CacheError> {
        self.memory.install_schedule(schedule, regions)?;
        self.switch_cycles = schedule.switches().iter().map(|s| s.at_cycle).collect();
        Ok(())
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The memory hierarchy (e.g. to inspect L2 statistics after a run).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// The task mapping.
    pub fn mapping(&self) -> &TaskMapping {
        &self.mapping
    }

    /// Consumes the system and returns the shared L2 organisation (used to
    /// recover results accumulated inside the organisation itself, such as
    /// the shadow-cache miss profiles of the profiling organisation, via
    /// [`CacheModel::into_any`]).
    pub fn into_l2(self) -> Box<dyn CacheModel> {
        self.memory.into_l2()
    }

    /// Runs the workload to completion and returns the report.
    ///
    /// The run is one discrete-event loop: the earliest-ready processor is
    /// popped from the event heap, executes a chunk of its current burst
    /// (or dispatches a new one), and is pushed back at its advanced local
    /// clock. Burst completions and task retirements are the events that
    /// wake parked processors, so producer/consumer stalls resolve in
    /// global-clock order.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::Deadlock`] if unfinished tasks remain but none can
    ///   make progress,
    /// * [`PlatformError::CycleLimitExceeded`] if a processor's local clock
    ///   exceeds the configured limit.
    pub fn run<D: WorkloadDriver>(
        &mut self,
        driver: &mut D,
    ) -> Result<SystemReport, PlatformError> {
        self.run_traced(driver, &mut crate::replay::NullTap)
    }

    /// Runs the workload exactly like [`run`](System::run) while `tap`
    /// observes every access entering the memory hierarchy (processor,
    /// issue cycle, access — in issue order).
    ///
    /// This is the recording half of the trace record/replay pipeline:
    /// passing a [`TraceWriter`](compmem_trace::TraceWriter) as the tap
    /// streams the run into the binary trace IR. The tap does not perturb
    /// the simulation — a run under [`NullTap`](crate::replay::NullTap) is
    /// byte-identical to a plain [`run`](System::run).
    ///
    /// # Errors
    ///
    /// As for [`run`](System::run).
    pub fn run_traced<D: WorkloadDriver, T: AccessTap>(
        &mut self,
        driver: &mut D,
        tap: &mut T,
    ) -> Result<SystemReport, PlatformError> {
        self.run_inner(driver, tap, None)
    }

    /// Runs the workload exactly like [`run_traced`](System::run_traced)
    /// while `controller` observes every run of memory operations and may
    /// repartition the live L2 online (see [`SystemController`]).
    ///
    /// A controller that never switches does not perturb the simulation:
    /// the run is byte-identical to [`run`](System::run).
    ///
    /// # Errors
    ///
    /// As for [`run`](System::run), plus
    /// [`PlatformError::ControlCache`] when the controller emits a switch
    /// the memory system rejects (out-of-order cycle, geometry or
    /// coverage violation); the run stops at the rejecting chunk.
    pub fn run_controlled<D: WorkloadDriver, T: AccessTap>(
        &mut self,
        driver: &mut D,
        tap: &mut T,
        regions: &RegionTable,
        controller: &mut dyn SystemController,
    ) -> Result<SystemReport, PlatformError> {
        self.run_inner(
            driver,
            tap,
            Some(ControlState {
                controller,
                regions,
                error: None,
            }),
        )
    }

    fn run_inner<D: WorkloadDriver, T: AccessTap>(
        &mut self,
        driver: &mut D,
        tap: &mut T,
        mut ctrl: Option<ControlState<'_>>,
    ) -> Result<SystemReport, PlatformError> {
        let mut procs: Vec<ProcState> = (0..self.config.num_processors)
            .map(|p| ProcState {
                counters: ProcessorCounters::default(),
                queue: self.mapping.tasks_of(p).iter().copied().collect(),
                current_task: None,
                running: None,
                quantum_left: self.config.quantum_instructions.unwrap_or(u64::MAX),
                parked: false,
                was_parked: false,
            })
            .collect();

        let mut ready: EventQueue<LoopEvent> = EventQueue::new();
        for (pi, p) in procs.iter().enumerate() {
            if !p.queue.is_empty() {
                ready.push(0, LoopEvent::Processor(pi));
            }
        }
        // Each scheduled switch is its own event, so a repartition fires
        // at its exact boundary even across gaps with no memory traffic
        // (the memory system additionally applies due switches at every
        // access's issue clock, which is what makes mid-burst boundaries
        // exact).
        for &at_cycle in &self.switch_cycles {
            ready.push(at_cycle, LoopEvent::Repartition);
        }
        // Latest cycle at which a wake-up event happened; parked processors
        // fast-forward (accounting idle cycles) to it when they resume.
        let mut last_event_time: u64 = 0;

        while let Some((at, event)) = ready.pop() {
            let pi = match event {
                LoopEvent::Repartition => {
                    self.memory.apply_due_repartitions(at);
                    continue;
                }
                LoopEvent::Processor(pi) => pi,
            };
            if procs[pi].running.is_none() && procs[pi].queue.is_empty() {
                continue; // processor finished all of its tasks
            }

            if procs[pi].running.is_none() {
                let outcome = self.dispatch(pi, &mut procs, driver, tap, last_event_time);
                if outcome.retired_task {
                    last_event_time = last_event_time.max(procs[pi].counters.time);
                    Self::wake_parked(&mut procs, &mut ready);
                }
                if outcome.scheduled {
                    ready.push(procs[pi].counters.time, LoopEvent::Processor(pi));
                } else if !procs[pi].queue.is_empty() {
                    procs[pi].parked = true;
                    procs[pi].was_parked = true;
                }
                continue;
            }

            let finished_burst = self.execute_chunk(pi, &mut procs, tap, ctrl.as_mut());
            if let Some(error) = ctrl.as_ref().and_then(|c| c.error.as_ref()) {
                return Err(PlatformError::ControlCache {
                    message: error.to_string(),
                });
            }
            if procs[pi].counters.time > self.config.cycle_limit {
                return Err(PlatformError::CycleLimitExceeded {
                    limit: self.config.cycle_limit,
                });
            }
            if finished_burst {
                last_event_time = last_event_time.max(procs[pi].counters.time);
                Self::wake_parked(&mut procs, &mut ready);
            }
            ready.push(procs[pi].counters.time, LoopEvent::Processor(pi));
        }

        // The heap drained: every processor either finished or parked with
        // all of its tasks blocked. Anything still queued is deadlocked.
        let blocked: Vec<TaskId> = procs.iter().flat_map(|p| p.queue.iter().copied()).collect();
        if !blocked.is_empty() {
            return Err(PlatformError::Deadlock { blocked });
        }

        Ok(self.report(&procs))
    }

    /// Re-inserts every parked processor into the event heap at its current
    /// local clock (idle-time accounting happens when it next dispatches).
    fn wake_parked(procs: &mut [ProcState], ready: &mut EventQueue<LoopEvent>) {
        for (pi, p) in procs.iter_mut().enumerate() {
            if p.parked {
                p.parked = false;
                ready.push(p.counters.time, LoopEvent::Processor(pi));
            }
        }
    }

    /// Tries to give processor `pi` a new burst; reports whether it was
    /// scheduled and whether any task retired while trying.
    fn dispatch<D: WorkloadDriver, T: AccessTap>(
        &mut self,
        pi: usize,
        procs: &mut [ProcState],
        driver: &mut D,
        tap: &mut T,
        last_event_time: u64,
    ) -> DispatchOutcome {
        let mut retired_task = false;

        // Quantum expiry: demote the current task to the back of the queue.
        if self.config.quantum_instructions.is_some() && procs[pi].quantum_left == 0 {
            if let Some(current) = procs[pi].current_task {
                if procs[pi].queue.front() == Some(&current) && procs[pi].queue.len() > 1 {
                    procs[pi].queue.rotate_left(1);
                }
            }
            procs[pi].quantum_left = self.config.quantum_instructions.unwrap_or(u64::MAX);
        }

        let attempts = procs[pi].queue.len();
        for _ in 0..attempts {
            let task = *procs[pi].queue.front().expect("queue checked non-empty");
            match driver.next_burst(task) {
                BurstOutcome::Ready(burst) => {
                    // Only a processor that actually parked and slept
                    // through other processors' events was idle until the
                    // latest of them; a processor that kept running must
                    // not be dragged forward.
                    if procs[pi].was_parked {
                        procs[pi].was_parked = false;
                        if last_event_time > procs[pi].counters.time {
                            let gap = last_event_time - procs[pi].counters.time;
                            procs[pi].counters.idle_cycles += gap;
                            procs[pi].counters.time = last_event_time;
                        }
                    }
                    if procs[pi].current_task != Some(task) {
                        self.perform_task_switch(pi, procs, tap, task);
                    }
                    procs[pi].running = Some(Running {
                        ops: burst.into_ops(),
                        next: 0,
                    });
                    return DispatchOutcome {
                        scheduled: true,
                        retired_task,
                    };
                }
                BurstOutcome::Finished => {
                    procs[pi].queue.pop_front();
                    // Retiring a task is an event: a producer waiting for a
                    // final consumption attempt must be re-polled.
                    retired_task = true;
                    if procs[pi].queue.is_empty() {
                        return DispatchOutcome {
                            scheduled: false,
                            retired_task,
                        };
                    }
                }
                BurstOutcome::Blocked => {
                    procs[pi].queue.rotate_left(1);
                }
            }
        }
        DispatchOutcome {
            scheduled: false,
            retired_task,
        }
    }

    /// Accounts a task switch on processor `pi`, including the run-time
    /// system's memory traffic if configured.
    fn perform_task_switch<T: AccessTap>(
        &mut self,
        pi: usize,
        procs: &mut [ProcState],
        tap: &mut T,
        task: TaskId,
    ) {
        let p = &mut procs[pi];
        let first_dispatch = p.current_task.is_none();
        p.current_task = Some(task);
        p.quantum_left = self.config.quantum_instructions.unwrap_or(u64::MAX);
        if first_dispatch {
            return;
        }
        p.counters.task_switches += 1;
        p.counters.switch_cycles += u64::from(self.config.task_switch_cycles);
        p.counters.time += u64::from(self.config.task_switch_cycles);
        if let Some(os) = self.config.os_regions {
            for i in 0..os.lines_per_switch {
                for (region, base) in [(os.rt_data, os.rt_data_base), (os.rt_bss, os.rt_bss_base)] {
                    let addr = base.offset(u64::from(i) * LINE_SIZE_BYTES);
                    let access = Access::load(addr, 4, os.os_task, region);
                    let now = procs[pi].counters.time;
                    tap.record_access(pi, now, &access);
                    let stall = self.memory.access(pi, now, &access);
                    let p = &mut procs[pi];
                    p.counters.switch_cycles += 1 + stall;
                    p.counters.time += 1 + stall;
                }
            }
        }
    }

    /// Executes up to [`CHUNK_OPS`] operations of the running burst of
    /// processor `pi`; returns `true` when the burst completed.
    ///
    /// Runs of consecutive memory operations are gathered and issued
    /// through [`MemorySystem::access_burst`] — one virtual L2 dispatch per
    /// run — with timing identical to per-operation execution.
    fn execute_chunk<T: AccessTap>(
        &mut self,
        pi: usize,
        procs: &mut [ProcState],
        tap: &mut T,
        mut ctrl: Option<&mut ControlState<'_>>,
    ) -> bool {
        let mut executed = 0;
        while executed < CHUNK_OPS {
            let p = &mut procs[pi];
            let running = p.running.as_mut().expect("execute_chunk requires a burst");
            if running.next >= running.ops.len() {
                p.running = None;
                return true;
            }
            match running.ops[running.next] {
                Op::Compute(n) => {
                    running.next += 1;
                    p.counters.time += u64::from(n);
                    p.counters.busy_cycles += u64::from(n);
                    p.counters.instructions += u64::from(n);
                    p.quantum_left = p.quantum_left.saturating_sub(u64::from(n));
                    executed += 1;
                }
                Op::Mem(_) => {
                    // Gather the maximal run of consecutive memory
                    // operations that fits the remaining chunk budget.
                    let start = running.next;
                    let limit = (start + (CHUNK_OPS - executed)).min(running.ops.len());
                    let mut end = start;
                    self.burst_scratch.clear();
                    while end < limit {
                        let Op::Mem(access) = running.ops[end] else {
                            break;
                        };
                        self.burst_scratch.push(access);
                        end += 1;
                    }
                    running.next = end;
                    let now = p.counters.time;
                    tap.record_run(pi, now, &self.burst_scratch);
                    if let Some(state) = ctrl.as_deref_mut() {
                        if state.error.is_none() {
                            if let Some(org) =
                                state.controller.observe_run(pi, now, &self.burst_scratch)
                            {
                                if let Err(e) = self.memory.push_switch(now, org, state.regions) {
                                    state.error = Some(e);
                                    return true; // abort: the loop surfaces the error
                                }
                            }
                        }
                    }
                    let stats = self.memory.access_burst(pi, now, &self.burst_scratch);
                    let p = &mut procs[pi];
                    p.counters.time += stats.elapsed;
                    p.counters.stall_cycles += stats.stall_cycles;
                    p.counters.busy_cycles += stats.data_accesses;
                    p.counters.instructions += stats.data_accesses;
                    p.quantum_left = p.quantum_left.saturating_sub(stats.data_accesses);
                    executed += end - start;
                }
            }
        }
        // Chunk budget exhausted; if the burst also happens to be done,
        // report it now so waiters are unparked promptly.
        let p = &mut procs[pi];
        let done = p.running.as_ref().is_some_and(|r| r.next >= r.ops.len());
        if done {
            p.running = None;
        }
        done
    }

    fn report(&self, procs: &[ProcState]) -> SystemReport {
        let processors: Vec<ProcessorReport> = procs
            .iter()
            .map(|p| ProcessorReport {
                cycles: p.counters.time,
                busy_cycles: p.counters.busy_cycles,
                stall_cycles: p.counters.stall_cycles,
                switch_cycles: p.counters.switch_cycles,
                idle_cycles: p.counters.idle_cycles,
                instructions: p.counters.instructions,
                task_switches: p.counters.task_switches,
            })
            .collect();
        let makespan_cycles = processors.iter().map(|p| p.cycles).max().unwrap_or(0);
        let l2 = self.memory.l2();
        SystemReport {
            l1: self.memory.l1_aggregate_stats(),
            l2: *l2.stats(),
            l2_by_task: l2.stats_by_task().iter().map(|(k, v)| (*k, *v)).collect(),
            l2_by_region: l2.stats_by_region().iter().map(|(k, v)| (*k, *v)).collect(),
            dram_accesses: self.memory.dram_accesses(),
            dram_writebacks: self.memory.dram_writebacks(),
            bus_wait_cycles: self.memory.bus().total_wait_cycles(),
            bus_bytes: self.memory.bus().bytes_transferred(),
            makespan_cycles,
            processors,
            repartitions: self.memory.repartition_log().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Burst;
    use compmem_cache::{CacheConfig, CacheModel, SharedCache};
    use compmem_trace::{Addr, RegionId};

    /// A driver where each task performs `bursts` bursts of `ops_per_burst`
    /// strided loads over its own address range, never blocking.
    struct StridedDriver {
        remaining: Vec<u32>,
        ops_per_burst: u32,
        issued: Vec<u64>,
    }

    impl StridedDriver {
        fn new(tasks: usize, bursts: u32, ops_per_burst: u32) -> Self {
            StridedDriver {
                remaining: vec![bursts; tasks],
                ops_per_burst,
                issued: vec![0; tasks],
            }
        }
    }

    impl WorkloadDriver for StridedDriver {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            let t = task.index();
            if self.remaining[t] == 0 {
                return BurstOutcome::Finished;
            }
            self.remaining[t] -= 1;
            let base = 0x10_0000 * (t as u64 + 1);
            let mut ops = Vec::new();
            for _ in 0..self.ops_per_burst {
                let addr = base + self.issued[t] * 64;
                self.issued[t] += 1;
                ops.push(Op::Compute(2));
                ops.push(Op::Mem(Access::load(
                    Addr::new(addr),
                    4,
                    task,
                    RegionId::new(t as u32),
                )));
            }
            BurstOutcome::Ready(Burst::new(ops))
        }
    }

    /// Producer/consumer pair communicating through a one-token mailbox, to
    /// exercise blocking, parking and un-parking.
    struct PingPong {
        tokens: u32,
        mailbox: bool,
        produced: u32,
        consumed: u32,
    }

    impl WorkloadDriver for PingPong {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            match task.index() {
                0 => {
                    if self.produced == self.tokens {
                        return BurstOutcome::Finished;
                    }
                    if self.mailbox {
                        return BurstOutcome::Blocked;
                    }
                    self.mailbox = true;
                    self.produced += 1;
                    BurstOutcome::Ready(Burst::new(vec![
                        Op::Compute(5),
                        Op::Mem(Access::store(Addr::new(0x9000), 4, task, RegionId::new(9))),
                    ]))
                }
                _ => {
                    if self.consumed == self.tokens {
                        return BurstOutcome::Finished;
                    }
                    if !self.mailbox {
                        return BurstOutcome::Blocked;
                    }
                    self.mailbox = false;
                    self.consumed += 1;
                    BurstOutcome::Ready(Burst::new(vec![
                        Op::Mem(Access::load(Addr::new(0x9000), 4, task, RegionId::new(9))),
                        Op::Compute(3),
                    ]))
                }
            }
        }
    }

    fn shared_l2() -> Box<dyn CacheModel> {
        Box::new(SharedCache::new(CacheConfig::new(256, 4).unwrap()))
    }

    #[test]
    fn single_task_counts_instructions_and_cycles() {
        let config = PlatformConfig::default().processors(1);
        let mapping = TaskMapping::single_processor(&[TaskId::new(0)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(1, 4, 10);
        let report = system.run(&mut driver).unwrap();
        // 4 bursts * 10 * (2 compute + 1 load) = 120 instructions.
        assert_eq!(report.total_instructions(), 120);
        assert!(report.processors[0].cycles >= 120);
        assert!(report.processors[0].stall_cycles > 0, "cold misses stall");
        assert!(report.l2.misses > 0);
        assert!(report.average_cpi() > 1.0);
        assert_eq!(report.processors[0].task_switches, 0);
    }

    #[test]
    fn tasks_on_different_processors_run_concurrently() {
        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(2, 8, 16);
        let report = system.run(&mut driver).unwrap();
        let p0 = report.processors[0].cycles;
        let p1 = report.processors[1].cycles;
        // Both processors did comparable work; the makespan is far less than
        // the serial sum.
        assert!(p0 > 0 && p1 > 0);
        assert!(report.makespan_cycles < p0 + p1);
        assert_eq!(report.total_instructions(), 2 * 8 * 16 * 3);
    }

    #[test]
    fn two_tasks_on_one_processor_incur_task_switches() {
        let config = PlatformConfig::default().processors(1).quantum(30);
        let mapping = TaskMapping::single_processor(&[TaskId::new(0), TaskId::new(1)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(2, 6, 10);
        let report = system.run(&mut driver).unwrap();
        assert!(report.processors[0].task_switches > 0);
        assert!(report.processors[0].switch_cycles > 0);
        assert_eq!(report.total_instructions(), 2 * 6 * 10 * 3);
    }

    #[test]
    fn blocking_producer_consumer_completes() {
        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = PingPong {
            tokens: 25,
            mailbox: false,
            produced: 0,
            consumed: 0,
        };
        let report = system.run(&mut driver).unwrap();
        assert_eq!(driver.produced, 25);
        assert_eq!(driver.consumed, 25);
        // Consumer instructions: 25 * (1 load + 3 compute); producer: 25 * 6.
        assert_eq!(report.total_instructions(), 25 * 6 + 25 * 4);
        assert!(report.processors.iter().any(|p| p.idle_cycles > 0));
    }

    #[test]
    fn deadlocked_workload_is_detected() {
        struct AlwaysBlocked;
        impl WorkloadDriver for AlwaysBlocked {
            fn next_burst(&mut self, _task: TaskId) -> BurstOutcome {
                BurstOutcome::Blocked
            }
        }
        let config = PlatformConfig::default().processors(1);
        let mapping = TaskMapping::single_processor(&[TaskId::new(0), TaskId::new(1)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let err = system.run(&mut AlwaysBlocked).unwrap_err();
        match err {
            PlatformError::Deadlock { blocked } => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let config = PlatformConfig::default()
            .processors(1)
            .with_cycle_limit(100);
        let mapping = TaskMapping::single_processor(&[TaskId::new(0)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(1, 1000, 64);
        let err = system.run(&mut driver).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::CycleLimitExceeded { limit: 100 }
        ));
    }

    #[test]
    fn invalid_mapping_is_rejected_at_construction() {
        let config = PlatformConfig::default().processors(1);
        let mapping = TaskMapping::new(vec![vec![TaskId::new(0)], vec![TaskId::new(1)]]);
        assert!(System::new(config, shared_l2(), mapping).is_err());
    }

    #[test]
    fn os_traffic_is_attributed_to_the_os_task() {
        let os_task = TaskId::new(99);
        let config = PlatformConfig::default()
            .processors(1)
            .quantum(20)
            .with_os_regions(crate::OsRegions {
                os_task,
                rt_data: RegionId::new(50),
                rt_data_base: Addr::new(0x50_0000),
                rt_bss: RegionId::new(51),
                rt_bss_base: Addr::new(0x60_0000),
                lines_per_switch: 4,
            });
        let mapping = TaskMapping::single_processor(&[TaskId::new(0), TaskId::new(1)]);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let mut driver = StridedDriver::new(2, 10, 10);
        let report = system.run(&mut driver).unwrap();
        assert!(report.processors[0].task_switches > 0);
        let os_accesses = report.l2_by_task.get(&os_task).map_or(0, |s| s.accesses);
        assert!(
            os_accesses > 0,
            "OS traffic must reach the L2 at least once"
        );
        assert!(report.l2_by_region.contains_key(&RegionId::new(50)));
    }

    #[test]
    fn never_blocked_processors_accrue_no_idle_time() {
        // Regression: the idle fast-forward must only apply to processors
        // that actually parked. Proc 0 runs memory-heavy bursts (frequent
        // burst-completion events); proc 1 runs pure-compute bursts and is
        // never blocked — it must end with zero idle cycles, not be dragged
        // to every event time of proc 0.
        struct ComputeOnly {
            remaining: u32,
        }
        impl WorkloadDriver for ComputeOnly {
            fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
                match task.index() {
                    0 => {
                        if self.remaining == 0 {
                            return BurstOutcome::Finished;
                        }
                        self.remaining -= 1;
                        BurstOutcome::Ready(Burst::new(vec![
                            Op::Mem(Access::load(
                                Addr::new(0x10_0000 + u64::from(self.remaining) * 64),
                                4,
                                task,
                                RegionId::new(0),
                            )),
                            Op::Compute(2),
                        ]))
                    }
                    _ => {
                        if self.remaining == 0 {
                            return BurstOutcome::Finished;
                        }
                        BurstOutcome::Ready(Burst::new(vec![Op::Compute(7)]))
                    }
                }
            }
        }
        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let mut system = System::new(config, shared_l2(), mapping).unwrap();
        let report = system.run(&mut ComputeOnly { remaining: 500 }).unwrap();
        assert_eq!(
            report.processors[1].idle_cycles, 0,
            "a never-blocked processor must not be charged idle time"
        );
        assert_eq!(
            report.processors[1].cycles, report.processors[1].busy_cycles,
            "pure compute: local clock equals busy cycles"
        );
    }

    #[test]
    fn event_loop_is_deterministic() {
        let run = || {
            let config = PlatformConfig::default().processors(3);
            let tasks: Vec<TaskId> = (0..6).map(TaskId::new).collect();
            let mapping = TaskMapping::round_robin(&tasks, 3);
            let mut system = System::new(config, shared_l2(), mapping).unwrap();
            let mut driver = StridedDriver::new(6, 5, 12);
            system.run(&mut driver).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "two identical runs must produce identical reports");
    }

    fn two_task_table() -> compmem_trace::RegionTable {
        let mut table = compmem_trace::RegionTable::new();
        for t in 0..2u32 {
            table
                .insert(
                    format!("t{t}.data"),
                    compmem_trace::RegionKind::TaskData {
                        task: TaskId::new(t),
                    },
                    128 * 64,
                )
                .unwrap();
        }
        table
    }

    fn live_partition(
        table: &compmem_trace::RegionTable,
        sets: &[(u32, u32)],
    ) -> compmem_cache::PartitionMap {
        use compmem_cache::{PartitionKey, PartitionMap};
        let geometry = compmem_cache::CacheGeometry::new(256, 4).unwrap();
        let entries: Vec<(PartitionKey, u32)> = sets
            .iter()
            .map(|&(t, s)| (PartitionKey::Task(TaskId::new(t)), s))
            .collect();
        let map = PartitionMap::pack(geometry, &entries).unwrap();
        map.validate_covers(table).unwrap();
        map
    }

    /// A live controller that pushes one repartition the first time it
    /// observes a run at or past `after` cycles.
    struct SwitchOnce {
        after: u64,
        next: compmem_cache::OrganizationSpec,
        fired: bool,
    }

    impl SystemController for SwitchOnce {
        fn observe_run(
            &mut self,
            _processor: usize,
            now: u64,
            _accesses: &[Access],
        ) -> Option<compmem_cache::OrganizationSpec> {
            if !self.fired && now >= self.after {
                self.fired = true;
                return Some(self.next.clone());
            }
            None
        }
    }

    /// The live control loop applies a mid-run repartition in place: the
    /// switch lands in the repartition log with its flush accounting, the
    /// run completes, and a never-switching controller leaves the report
    /// byte-identical to the uncontrolled run.
    #[test]
    fn live_controller_applies_and_logs_a_mid_run_switch() {
        use compmem_cache::{OrganizationSpec, SetPartitionedCache};
        let table = two_task_table();
        let start = live_partition(&table, &[(0, 128), (1, 128)]);
        let next = live_partition(&table, &[(0, 64), (1, 128)]);
        let l2_config = CacheConfig::new(256, 4).unwrap();
        let run = |controller: &mut dyn SystemController| {
            let config = PlatformConfig::default().processors(2);
            let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
            let l2 = Box::new(SetPartitionedCache::new(l2_config, &table, &start).unwrap());
            let mut system = System::new(config, l2, mapping).unwrap();
            let mut driver = StridedDriver::new(2, 8, 16);
            system
                .run_controlled(&mut driver, &mut crate::replay::NullTap, &table, controller)
                .unwrap()
        };

        let controlled = run(&mut SwitchOnce {
            after: 200,
            next: OrganizationSpec::SetPartitioned(next),
            fired: false,
        });
        assert_eq!(controlled.repartitions.len(), 1, "exactly one switch fires");
        let record = &controlled.repartitions[0];
        assert!(record.at_cycle >= 200);
        assert!(record.l2_accesses_before > 0);
        assert!(
            record.l2_accesses_before < controlled.l2.accesses,
            "the switch happened mid-run, not at the end"
        );

        struct NeverLive;
        impl SystemController for NeverLive {
            fn observe_run(
                &mut self,
                _processor: usize,
                _now: u64,
                _accesses: &[Access],
            ) -> Option<compmem_cache::OrganizationSpec> {
                None
            }
        }
        let silent = run(&mut NeverLive);
        let uncontrolled = {
            let config = PlatformConfig::default().processors(2);
            let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
            let l2 = Box::new(SetPartitionedCache::new(l2_config, &table, &start).unwrap());
            let mut system = System::new(config, l2, mapping).unwrap();
            let mut driver = StridedDriver::new(2, 8, 16);
            system.run(&mut driver).unwrap()
        };
        assert_eq!(
            silent, uncontrolled,
            "a silent live controller is invisible"
        );
        assert!(silent.repartitions.is_empty());
        // Identical traffic either way: the switch only moves sets.
        assert_eq!(controlled.l2.accesses, uncontrolled.l2.accesses);
    }

    /// A controller-emitted organisation that fails validation (wrong
    /// geometry here) stops the run with the typed `ControlCache` error
    /// instead of corrupting the cache or being silently dropped.
    #[test]
    fn live_controller_rejection_surfaces_control_cache_error() {
        use compmem_cache::{OrganizationSpec, PartitionKey, PartitionMap, SetPartitionedCache};
        let table = two_task_table();
        let start = live_partition(&table, &[(0, 128), (1, 128)]);
        let wrong_geometry = compmem_cache::CacheGeometry::new(128, 4).unwrap();
        let bogus = PartitionMap::pack(
            wrong_geometry,
            &[
                (PartitionKey::Task(TaskId::new(0)), 64),
                (PartitionKey::Task(TaskId::new(1)), 64),
            ],
        )
        .unwrap();

        let config = PlatformConfig::default().processors(2);
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let l2 = Box::new(
            SetPartitionedCache::new(CacheConfig::new(256, 4).unwrap(), &table, &start).unwrap(),
        );
        let mut system = System::new(config, l2, mapping).unwrap();
        let mut driver = StridedDriver::new(2, 8, 16);
        let mut controller = SwitchOnce {
            after: 1,
            next: OrganizationSpec::SetPartitioned(bogus),
            fired: false,
        };
        let err = system
            .run_controlled(
                &mut driver,
                &mut crate::replay::NullTap,
                &table,
                &mut controller,
            )
            .unwrap_err();
        assert!(
            matches!(err, PlatformError::ControlCache { .. }),
            "expected ControlCache, got {err}"
        );
    }
}
