//! The memory hierarchy: private L1 caches, the shared L2 and DRAM.

use serde::{Deserialize, Serialize};

use compmem_cache::{
    CacheError, CacheModel, CacheStats, OrganizationSpec, PartitionSchedule, ScheduleStep,
    SetAssocCache,
};
use compmem_trace::{Access, RegionTable, LINE_SIZE_BYTES};

use crate::bus::Bus;
use crate::config::PlatformConfig;
use crate::metrics::RepartitionRecord;

/// One level of the hierarchy, used to label aggregated statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryLevel {
    /// Private L1 instruction cache.
    L1Instruction,
    /// Private L1 data cache.
    L1Data,
    /// Shared unified L2 cache.
    L2,
    /// Off-chip DRAM.
    Dram,
}

/// Timing summary of one burst of accesses through the hierarchy (see
/// [`MemorySystem::access_burst`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstStats {
    /// Cycles the issuing processor advanced over the whole burst: one
    /// cycle per data access plus every stall cycle (instruction fetches
    /// contribute stall cycles only, as in the live path).
    pub elapsed: u64,
    /// Total stall cycles of the burst.
    pub stall_cycles: u64,
    /// Data accesses (loads and stores) in the burst.
    pub data_accesses: u64,
    /// Instruction fetches in the burst.
    pub instr_fetches: u64,
}

/// One L1 miss of a pre-filtered trace run: the access that must travel to
/// the shared L2, its position inside the run, and whether refilling it
/// evicted a dirty L1 victim.
///
/// Filtering a recorded run through the (organisation-invariant) private
/// L1s once and replaying only these refills is what makes organisation
/// sweeps fast: the L2, bus and DRAM see exactly the traffic — at exactly
/// the issue times — they would see replaying the full run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L1Refill {
    /// The access that missed in the L1.
    pub access: Access,
    /// Data accesses (loads and stores) preceding this one in its run:
    /// each advances the issuing processor's clock by one cycle, so this
    /// is the hit-path component of the refill's issue time.
    pub data_accesses_before: u64,
    /// Whether the L1 victim was dirty (its write-back consumes bus
    /// bandwidth).
    pub l1_victim_dirty: bool,
}

/// The full memory hierarchy of one tile.
///
/// Each processor has private L1 instruction and data caches; all
/// processors share one L2 organisation held as a `Box<dyn CacheModel>`
/// (conventional, set-partitioned, way-partitioned or profiling — see
/// `compmem-cache`) and the bus to it and to DRAM. Because the L2 is a
/// trait object, the *same* timing path — L1 lookup, bus arbitration, L2
/// lookup, DRAM — serves every organisation; swapping organisations never
/// changes how stall cycles are computed, only how the L2 indexes and
/// evicts.
///
/// Accesses enter either one at a time ([`access`](MemorySystem::access))
/// or as whole runs ([`access_burst`](MemorySystem::access_burst)); the
/// burst entry point produces identical cache state and timing while
/// paying one virtual L2 dispatch per run, which is what makes trace
/// replay fast.
#[derive(Debug)]
pub struct MemorySystem {
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
    l2: Box<dyn CacheModel>,
    bus: Bus,
    l2_hit_latency: u32,
    dram_latency: u32,
    dram_accesses: u64,
    dram_writebacks: u64,
    /// Scratch buffers reused across bursts so the hot replay path does not
    /// allocate per run.
    burst_refills: Vec<BurstRefill>,
    burst_batch: Vec<Access>,
    burst_outcomes: Vec<compmem_cache::AccessOutcome>,
    /// Pending repartition events (the switches of an installed
    /// [`PartitionSchedule`]), plus the region table they reconfigure
    /// over and the log of fired events.
    switches: Vec<ScheduleStep>,
    switch_regions: Option<RegionTable>,
    next_switch: usize,
    /// Boundary cycle of the next pending switch, cached so the hot paths
    /// pay a single `u64` comparison per access (`u64::MAX` when none).
    next_switch_at: u64,
    repartition_log: Vec<RepartitionRecord>,
}

/// One L1 miss of a burst: which access refills and whether the L1 victim
/// was dirty.
#[derive(Debug, Clone, Copy)]
struct BurstRefill {
    index: usize,
    l1_victim_dirty: bool,
}

impl MemorySystem {
    /// Builds the hierarchy for `config.num_processors` processors around the
    /// given shared L2 organisation.
    pub fn new(config: &PlatformConfig, l2: Box<dyn CacheModel>) -> Self {
        let l1i = (0..config.num_processors)
            .map(|_| SetAssocCache::new(config.l1i))
            .collect();
        let l1d = (0..config.num_processors)
            .map(|_| SetAssocCache::new(config.l1d))
            .collect();
        MemorySystem {
            l1i,
            l1d,
            l2,
            bus: Bus::new(config.bus_bytes_per_cycle),
            l2_hit_latency: config.l2_hit_latency,
            dram_latency: config.dram_latency,
            dram_accesses: 0,
            dram_writebacks: 0,
            burst_refills: Vec::new(),
            burst_batch: Vec::new(),
            burst_outcomes: Vec::new(),
            switches: Vec::new(),
            switch_regions: None,
            next_switch: 0,
            next_switch_at: u64::MAX,
            repartition_log: Vec::new(),
        }
    }

    /// Installs the repartition events of `schedule` (every step after
    /// the implicit step 0, whose organisation the L2 was built with).
    /// From then on the hierarchy applies each switch to the live L2 at
    /// its exact cycle boundary — the first access (or burst refill)
    /// whose issue clock reaches the boundary sees the new organisation —
    /// and charges the flush write-backs through the bus/DRAM path.
    ///
    /// # Errors
    ///
    /// Propagates schedule validation errors
    /// ([`PartitionSchedule::validate_for`] against the L2's geometry and
    /// `regions`), so a switch can never fail mid-run.
    pub fn install_schedule(
        &mut self,
        schedule: &PartitionSchedule,
        regions: &RegionTable,
    ) -> Result<(), CacheError> {
        schedule.validate_for(self.l2.geometry(), regions)?;
        // The initial organisation must be reconfigurable into step 1:
        // validated here by label, as in `PartitionSchedule::new`.
        if let Some(first) = schedule.switches().first() {
            let (from, to) = (self.l2.organization(), first.organization.label());
            if from != to {
                return Err(CacheError::ReconfigureUnsupported { from, to });
            }
        }
        self.switches = schedule.switches().to_vec();
        self.switch_regions = Some(regions.clone());
        self.next_switch = 0;
        self.next_switch_at = self.switches.first().map_or(u64::MAX, |step| step.at_cycle);
        self.repartition_log.clear();
        Ok(())
    }

    /// Appends one pending repartition event: from `at_cycle` on, the L2
    /// runs under `organization`.
    ///
    /// This is the incremental sibling of
    /// [`install_schedule`](MemorySystem::install_schedule) for online
    /// controllers that decide switches *during* a run: the step passes
    /// the same geometry/coverage/like-for-like validation a schedule
    /// step does, joins the same pending queue, and fires through the
    /// same [`apply_due_repartitions`](MemorySystem::apply_due_repartitions)
    /// machinery with exact flush accounting — once pending, a pushed
    /// switch and an installed one are indistinguishable. Unlike
    /// `install_schedule`, pushing never resets the repartition log, so
    /// fired events keep accumulating across pushes.
    ///
    /// # Errors
    ///
    /// * [`CacheError::ScheduleOutOfOrder`] if `at_cycle` is 0 (step 0 is
    ///   the organisation the cache was built with) or does not lie
    ///   strictly after the last pushed or installed switch,
    /// * [`CacheError::ReconfigureUnsupported`] if `organization` is not
    ///   like-for-like with the live L2,
    /// * geometry and coverage errors as for
    ///   [`PartitionSchedule::validate_for`].
    pub fn push_switch(
        &mut self,
        at_cycle: u64,
        organization: OrganizationSpec,
        regions: &RegionTable,
    ) -> Result<(), CacheError> {
        if at_cycle == 0 || self.switches.last().is_some_and(|s| at_cycle <= s.at_cycle) {
            return Err(CacheError::ScheduleOutOfOrder { at_cycle });
        }
        let (from, to) = (self.l2.organization(), organization.label());
        if from != to || matches!(organization, OrganizationSpec::Profiling(_)) {
            return Err(CacheError::ReconfigureUnsupported { from, to });
        }
        // Reuse the schedule validator for the geometry/coverage checks:
        // a pushed step must satisfy exactly what an installed one does.
        PartitionSchedule::single(organization.clone())
            .validate_for(self.l2.geometry(), regions)?;
        self.switches.push(ScheduleStep {
            at_cycle,
            organization,
        });
        if self.switch_regions.is_none() {
            self.switch_regions = Some(regions.clone());
        }
        self.next_switch_at = self
            .switches
            .get(self.next_switch)
            .map_or(u64::MAX, |step| step.at_cycle);
        Ok(())
    }

    /// Applies every pending switch whose boundary is `<= now` to the
    /// live L2, charging each switch's dirty write-backs as bus/DRAM
    /// traffic at its boundary cycle.
    pub fn apply_due_repartitions(&mut self, now: u64) {
        // The explicit bound matters at `now == u64::MAX` (the replay
        // loop's "fire everything remaining"): the exhausted sentinel
        // `next_switch_at == u64::MAX` must not index past the switches.
        while self.next_switch < self.switches.len() && self.next_switch_at <= now {
            let step = &self.switches[self.next_switch];
            let regions = self
                .switch_regions
                .as_ref()
                .expect("switches are only installed together with their region table");
            let l2_stats = *self.l2.stats();
            let flush = self
                .l2
                .reconfigure(&step.organization, regions)
                .expect("schedule steps were validated at install time");
            // Flush traffic takes the same path an L2 eviction's
            // write-back does: one bus transfer and one DRAM write-back
            // per dirty line, issued at the boundary cycle.
            for _ in 0..flush.written_back {
                self.dram_writebacks += 1;
                let _ = self.bus.request(step.at_cycle, LINE_SIZE_BYTES as u32);
            }
            self.repartition_log.push(RepartitionRecord {
                step: self.next_switch + 1,
                at_cycle: step.at_cycle,
                flush,
                l2_accesses_before: l2_stats.accesses,
                l2_misses_before: l2_stats.misses,
            });
            self.next_switch += 1;
            self.next_switch_at = self
                .switches
                .get(self.next_switch)
                .map_or(u64::MAX, |step| step.at_cycle);
        }
    }

    /// The repartition events fired so far, in schedule order.
    pub fn repartition_log(&self) -> &[RepartitionRecord] {
        &self.repartition_log
    }

    /// Performs one access from `processor` at time `now` and returns the
    /// stall cycles seen by the processor (zero on an L1 hit).
    ///
    /// This is the single timing path of the simulator: L1 lookup, shared
    /// bus arbitration for the refill, L2 lookup through the
    /// [`CacheModel`], and DRAM plus a second bus transfer on an L2 miss.
    pub fn access(&mut self, processor: usize, now: u64, access: &Access) -> u64 {
        if now >= self.next_switch_at {
            self.apply_due_repartitions(now);
        }
        let l1 = if access.kind.is_instruction() {
            &mut self.l1i[processor]
        } else {
            &mut self.l1d[processor]
        };
        let l1_outcome = l1.access(access);
        if l1_outcome.hit {
            return 0;
        }

        // L1 refill: the line travels over the shared bus from the L2.
        let (bus_wait, bus_duration) = self.bus.request(now, LINE_SIZE_BYTES as u32);
        // A dirty L1 victim is written back to the L2; it consumes bus
        // bandwidth but does not stall the processor (write buffer).
        if l1_outcome.evicted.is_some_and(|e| e.dirty) {
            let _ = self.bus.request(now, LINE_SIZE_BYTES as u32);
        }

        let l2_outcome = self.l2.access(access);
        let mut stall = bus_wait + bus_duration + u64::from(self.l2_hit_latency);
        if !l2_outcome.hit {
            self.dram_accesses += 1;
            stall += u64::from(self.dram_latency);
            let (dram_wait, dram_duration) = self.bus.request(now + stall, LINE_SIZE_BYTES as u32);
            stall += dram_wait + dram_duration;
        }
        if l2_outcome.evicted.is_some_and(|e| e.dirty) {
            // L2 write-back to DRAM: bus traffic only.
            self.dram_writebacks += 1;
            let _ = self.bus.request(now + stall, LINE_SIZE_BYTES as u32);
        }
        stall
    }

    /// Performs a whole run of accesses from `processor`, the first issuing
    /// at time `now`, and returns the burst's timing summary.
    ///
    /// This is the batch entry point of the single timing path: every
    /// access still flows L1 → bus → L2 → DRAM with the issue time
    /// advancing exactly as in per-access execution (one cycle per data
    /// access plus its stall; stall only for instruction fetches), but the
    /// L1 misses of the run reach the shared L2 through **one**
    /// [`CacheModel::access_batch`] call, so replaying a decoded trace run
    /// costs one virtual dispatch instead of one per access. Cache state,
    /// statistics and stall cycles are bit-identical to issuing the same
    /// accesses through [`access`](MemorySystem::access) one by one.
    pub fn access_burst(&mut self, processor: usize, now: u64, accesses: &[Access]) -> BurstStats {
        // Phase 1: private L1 lookups (always per access — each access's
        // hit/miss depends on the previous ones), collecting the misses
        // that must travel to the shared L2.
        let mut refills = std::mem::take(&mut self.burst_refills);
        let mut batch = std::mem::take(&mut self.burst_batch);
        refills.clear();
        batch.clear();
        for (index, access) in accesses.iter().enumerate() {
            let l1 = if access.kind.is_instruction() {
                &mut self.l1i[processor]
            } else {
                &mut self.l1d[processor]
            };
            let outcome = l1.access(access);
            if !outcome.hit {
                refills.push(BurstRefill {
                    index,
                    l1_victim_dirty: outcome.evicted.is_some_and(|e| e.dirty),
                });
                batch.push(*access);
            }
        }

        // Phase 2: one virtual dispatch hands the whole miss stream to the
        // L2 organisation, in order. With repartition events pending the
        // batch cannot be dispatched up front — a boundary may fall
        // mid-burst — so the L2 is accessed refill by refill in phase 3
        // instead, at the exact issue clock.
        let batched = self.next_switch_at == u64::MAX;
        let mut outcomes = std::mem::take(&mut self.burst_outcomes);
        if batched {
            self.l2.access_batch(&batch, &mut outcomes);
        } else {
            outcomes.clear();
        }

        // Phase 3: timing. The bus sees exactly the request sequence of the
        // per-access path (refill, optional L1 write-back, optional DRAM
        // fill, optional L2 write-back — per miss, in order), with the
        // issue clock advancing across the run.
        let mut stats = BurstStats::default();
        let mut clock = now;
        let mut refill_cursor = 0usize;
        for (index, access) in accesses.iter().enumerate() {
            let mut stall = 0u64;
            if refills.get(refill_cursor).is_some_and(|r| r.index == index) {
                let refill = refills[refill_cursor];
                let l2_outcome = if batched {
                    outcomes[refill_cursor]
                } else {
                    if clock >= self.next_switch_at {
                        self.apply_due_repartitions(clock);
                    }
                    self.l2.access(access)
                };
                refill_cursor += 1;
                let (bus_wait, bus_duration) = self.bus.request(clock, LINE_SIZE_BYTES as u32);
                if refill.l1_victim_dirty {
                    let _ = self.bus.request(clock, LINE_SIZE_BYTES as u32);
                }
                stall = bus_wait + bus_duration + u64::from(self.l2_hit_latency);
                if !l2_outcome.hit {
                    self.dram_accesses += 1;
                    stall += u64::from(self.dram_latency);
                    let (dram_wait, dram_duration) =
                        self.bus.request(clock + stall, LINE_SIZE_BYTES as u32);
                    stall += dram_wait + dram_duration;
                }
                if l2_outcome.evicted.is_some_and(|e| e.dirty) {
                    self.dram_writebacks += 1;
                    let _ = self.bus.request(clock + stall, LINE_SIZE_BYTES as u32);
                }
            }
            stats.stall_cycles += stall;
            if access.kind.is_instruction() {
                clock += stall;
                stats.instr_fetches += 1;
            } else {
                clock += 1 + stall;
                stats.data_accesses += 1;
            }
        }
        stats.elapsed = clock - now;

        self.burst_refills = refills;
        self.burst_batch = batch;
        self.burst_outcomes = outcomes;
        stats
    }

    /// Issues the pre-filtered L2-bound refills of one run, whose first
    /// access issued at `now` and which contained `data_accesses` loads and
    /// stores and `instr_fetches` instruction fetches in total.
    ///
    /// This is [`access_burst`](MemorySystem::access_burst) with the L1
    /// phase already performed (once, when the trace was filtered): the
    /// bus request sequence, the L2 access stream and the returned timing
    /// are bit-identical to replaying the full run — the private L1s of
    /// this hierarchy are bypassed and left untouched.
    pub fn refill_burst(
        &mut self,
        now: u64,
        refills: &[L1Refill],
        data_accesses: u64,
        instr_fetches: u64,
    ) -> BurstStats {
        // As in `access_burst`: pending repartition events force the L2
        // accesses to happen refill by refill at their exact issue
        // clocks, so a boundary falling inside the run splits it.
        let batched = self.next_switch_at == u64::MAX;
        let mut batch = std::mem::take(&mut self.burst_batch);
        batch.clear();
        let mut outcomes = std::mem::take(&mut self.burst_outcomes);
        if batched {
            batch.extend(refills.iter().map(|r| r.access));
            self.l2.access_batch(&batch, &mut outcomes);
        } else {
            outcomes.clear();
        }

        let mut stall_total = 0u64;
        for (i, refill) in refills.iter().enumerate() {
            // Hits before this refill advance the clock one cycle per data
            // access; earlier refills advance it by their stalls.
            let clock = now + refill.data_accesses_before + stall_total;
            let l2_outcome = if batched {
                outcomes[i]
            } else {
                if clock >= self.next_switch_at {
                    self.apply_due_repartitions(clock);
                }
                self.l2.access(&refill.access)
            };
            let (bus_wait, bus_duration) = self.bus.request(clock, LINE_SIZE_BYTES as u32);
            if refill.l1_victim_dirty {
                let _ = self.bus.request(clock, LINE_SIZE_BYTES as u32);
            }
            let mut stall = bus_wait + bus_duration + u64::from(self.l2_hit_latency);
            if !l2_outcome.hit {
                self.dram_accesses += 1;
                stall += u64::from(self.dram_latency);
                let (dram_wait, dram_duration) =
                    self.bus.request(clock + stall, LINE_SIZE_BYTES as u32);
                stall += dram_wait + dram_duration;
            }
            if l2_outcome.evicted.is_some_and(|e| e.dirty) {
                self.dram_writebacks += 1;
                let _ = self.bus.request(clock + stall, LINE_SIZE_BYTES as u32);
            }
            stall_total += stall;
        }

        self.burst_batch = batch;
        self.burst_outcomes = outcomes;
        BurstStats {
            elapsed: data_accesses + stall_total,
            stall_cycles: stall_total,
            data_accesses,
            instr_fetches,
        }
    }

    /// Shared L2 organisation.
    pub fn l2(&self) -> &dyn CacheModel {
        self.l2.as_ref()
    }

    /// Mutable access to the shared L2 organisation.
    pub fn l2_mut(&mut self) -> &mut dyn CacheModel {
        self.l2.as_mut()
    }

    /// Consumes the hierarchy and returns the shared L2 organisation (e.g.
    /// to downcast a profiling cache and recover its miss profiles).
    pub fn into_l2(self) -> Box<dyn CacheModel> {
        self.l2
    }

    /// Statistics of the L1 instruction cache of `processor`.
    pub fn l1i_stats(&self, processor: usize) -> &CacheStats {
        self.l1i[processor].stats()
    }

    /// Statistics of the L1 data cache of `processor`.
    pub fn l1d_stats(&self, processor: usize) -> &CacheStats {
        self.l1d[processor].stats()
    }

    /// Aggregate L1 statistics over all processors and both L1 caches.
    pub fn l1_aggregate_stats(&self) -> CacheStats {
        let mut agg = CacheStats::new();
        for c in self.l1i.iter().chain(self.l1d.iter()) {
            agg.merge(c.stats());
        }
        agg
    }

    /// Number of accesses served by DRAM (L2 misses).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Number of dirty L2 lines written back to DRAM.
    pub fn dram_writebacks(&self) -> u64 {
        self.dram_writebacks
    }

    /// The shared bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Number of processors the hierarchy was built for.
    pub fn processors(&self) -> usize {
        self.l1d.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_cache::{CacheConfig, SharedCache};
    use compmem_trace::{Addr, RegionId, TaskId};

    fn tiny_system() -> MemorySystem {
        let config = PlatformConfig::default()
            .processors(2)
            .l1(CacheConfig::new(4, 2).unwrap());
        MemorySystem::new(
            &config,
            Box::new(SharedCache::new(CacheConfig::new(64, 4).unwrap())),
        )
    }

    fn load(addr: u64, task: u32) -> Access {
        Access::load(Addr::new(addr), 4, TaskId::new(task), RegionId::new(0))
    }

    #[test]
    fn l1_hit_has_no_stall() {
        let mut m = tiny_system();
        let a = load(0x1000, 0);
        let first = m.access(0, 0, &a);
        assert!(first > 0, "cold miss must stall");
        let second = m.access(0, 10_000, &a);
        assert_eq!(second, 0, "L1 hit must not stall");
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        let mut m = tiny_system();
        let a = load(0x2000, 0);
        let cold = m.access(0, 0, &a); // misses both levels -> DRAM
                                       // Evict it from the tiny L1 of processor 0 by touching conflicting
                                       // lines (same L1 set: L1 has 4 sets of 64 B => 256 B stride).
        for i in 1..=2 {
            let _ = m.access(0, 10_000 * i, &load(0x2000 + i * 256, 0));
        }
        let warm = m.access(0, 100_000, &a); // misses L1, hits L2
        assert!(warm > 0);
        assert!(
            warm < cold,
            "L2 hit ({warm}) should be cheaper than DRAM ({cold})"
        );
        assert_eq!(m.dram_accesses(), 3);
    }

    #[test]
    fn l1_caches_are_private_per_processor() {
        let mut m = tiny_system();
        let a = load(0x3000, 0);
        let _ = m.access(0, 0, &a);
        // Processor 1 misses its own L1 but hits the shared L2.
        let stall = m.access(1, 1_000, &a);
        assert!(stall > 0);
        assert_eq!(m.l1d_stats(1).misses, 1);
        assert_eq!(m.l1d_stats(0).misses, 1);
        assert_eq!(m.l2().stats().accesses, 2);
        assert_eq!(m.l2().stats().misses, 1);
    }

    #[test]
    fn instruction_fetches_use_the_instruction_cache() {
        let mut m = tiny_system();
        let i = Access::ifetch(Addr::new(0x4000), 64, TaskId::new(0), RegionId::new(1));
        let _ = m.access(0, 0, &i);
        assert_eq!(m.l1i_stats(0).accesses, 1);
        assert_eq!(m.l1d_stats(0).accesses, 0);
        let agg = m.l1_aggregate_stats();
        assert_eq!(agg.accesses, 1);
    }

    #[test]
    fn bus_contention_inflates_stalls() {
        let mut m = tiny_system();
        // Two processors miss at the same instant: the second pays a
        // queueing delay on the shared bus.
        let s0 = m.access(0, 0, &load(0x8000, 0));
        let s1 = m.access(1, 0, &load(0x9000, 1));
        assert!(s1 > s0 - 8, "second request cannot be faster");
        assert!(m.bus().total_wait_cycles() > 0);
        assert!(m.bus().transfers() >= 2);
    }

    #[test]
    fn dirty_writebacks_reach_dram_counter() {
        let config = PlatformConfig::default()
            .processors(1)
            .l1(CacheConfig::new(1, 1).unwrap());
        let mut m = MemorySystem::new(
            &config,
            Box::new(SharedCache::new(CacheConfig::new(1, 1).unwrap())),
        );
        let w = Access::store(Addr::new(0), 4, TaskId::new(0), RegionId::new(0));
        let _ = m.access(0, 0, &w);
        // Conflicting store evicts the dirty line from the one-line L2.
        let w2 = Access::store(Addr::new(64), 4, TaskId::new(0), RegionId::new(0));
        let _ = m.access(0, 100, &w2);
        assert_eq!(m.dram_writebacks(), 1);
        assert_eq!(m.processors(), 1);
    }

    #[test]
    fn access_burst_matches_per_access_execution_exactly() {
        // Same mixed stream (loads, stores, ifetches, conflict evictions)
        // through both entry points: identical stall totals, cache state
        // and bus traffic.
        let stream: Vec<Access> = (0..200)
            .map(|i| {
                let addr = Addr::new(0x1000 + (i % 7) * 256 + (i % 3) * 64);
                let task = TaskId::new((i % 2) as u32);
                match i % 5 {
                    0 => Access::store(addr, 4, task, RegionId::new(0)),
                    1 | 2 => Access::load(addr, 4, task, RegionId::new(0)),
                    _ => Access::ifetch(addr, 64, task, RegionId::new(1)),
                }
            })
            .collect();

        let mut one_by_one = tiny_system();
        let mut now = 0u64;
        let mut stall_total = 0u64;
        for a in &stream {
            let stall = one_by_one.access(0, now, a);
            stall_total += stall;
            now += if a.kind.is_instruction() {
                stall
            } else {
                1 + stall
            };
        }

        let mut burst = tiny_system();
        // Split the stream into uneven runs to exercise the scratch reuse.
        let mut clock = 0u64;
        let mut burst_stalls = 0u64;
        let mut cursor = 0usize;
        for (i, run_len) in [17usize, 1, 64, 5, 113].iter().enumerate() {
            let run = &stream[cursor..cursor + run_len];
            cursor += run_len;
            let stats = burst.access_burst(0, clock, run);
            clock += stats.elapsed;
            burst_stalls += stats.stall_cycles;
            let _ = i;
        }
        assert_eq!(cursor, stream.len());

        assert_eq!(clock, now, "clocks diverged");
        assert_eq!(burst_stalls, stall_total, "stall totals diverged");
        assert_eq!(one_by_one.l2().snapshot(), burst.l2().snapshot());
        assert_eq!(one_by_one.l1d_stats(0), burst.l1d_stats(0));
        assert_eq!(one_by_one.l1i_stats(0), burst.l1i_stats(0));
        assert_eq!(one_by_one.dram_accesses(), burst.dram_accesses());
        assert_eq!(one_by_one.dram_writebacks(), burst.dram_writebacks());
        assert_eq!(
            one_by_one.bus().total_wait_cycles(),
            burst.bus().total_wait_cycles()
        );
        assert_eq!(
            one_by_one.bus().bytes_transferred(),
            burst.bus().bytes_transferred()
        );
    }

    #[test]
    fn scheduled_repartition_applies_at_the_boundary_and_charges_writebacks() {
        use compmem_cache::{OrganizationSpec, PartitionKey, PartitionMap, PartitionSchedule};
        use compmem_trace::{RegionKind, RegionTable};
        let mut table = RegionTable::new();
        let region = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let l2 = CacheConfig::new(64, 4).unwrap();
        let key = PartitionKey::Task(TaskId::new(0));
        let map_a = PartitionMap::pack(l2.geometry(), &[(key, 16)]).unwrap();
        let map_b = {
            let mut m = PartitionMap::new(l2.geometry());
            m.assign(key, 32, 16).unwrap();
            m
        };
        let schedule = PartitionSchedule::new(vec![
            (0, OrganizationSpec::SetPartitioned(map_a.clone())),
            (10_000, OrganizationSpec::SetPartitioned(map_b)),
        ])
        .unwrap();
        let config = PlatformConfig::default()
            .processors(1)
            .l1(CacheConfig::new(1, 1).unwrap());
        let mut m = MemorySystem::new(
            &config,
            OrganizationSpec::SetPartitioned(map_a)
                .build(l2, &table)
                .unwrap(),
        );
        m.install_schedule(&schedule, &table).unwrap();

        let base = table.region(region).base;
        // Dirty a line before the boundary, then alternate two conflicting
        // L1 lines so every access reaches the L2.
        let store = Access::store(base, 4, TaskId::new(0), region);
        let _ = m.access(0, 0, &store);
        let load = Access::load(base.offset(64), 4, TaskId::new(0), region);
        let _ = m.access(0, 100, &load);
        assert!(m.repartition_log().is_empty(), "boundary not reached yet");
        let writebacks_before = m.dram_writebacks();

        // The first access at/after the boundary applies the switch: the
        // moved partition is flushed, the dirty line written back, and
        // the re-fetch of the stored line misses (but is not cold).
        let _ = m.access(0, 10_000, &load);
        let log = m.repartition_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].step, 1);
        assert_eq!(log[0].at_cycle, 10_000);
        assert_eq!(log[0].flush.invalidated, 2);
        assert_eq!(log[0].flush.written_back, 1);
        assert_eq!(log[0].l2_accesses_before, 2);
        assert_eq!(m.dram_writebacks(), writebacks_before + 1);
        let misses_before = m.l2().stats().misses;
        let _ = m.access(0, 10_100, &store);
        assert_eq!(
            m.l2().stats().misses,
            misses_before + 1,
            "the flushed dirty line must be re-fetched"
        );
    }

    #[test]
    fn scheduled_access_burst_matches_per_access_execution_exactly() {
        use compmem_cache::{OrganizationSpec, PartitionKey, PartitionMap, PartitionSchedule};
        use compmem_trace::{RegionKind, RegionTable};
        let mut table = RegionTable::new();
        let region = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                512 * 1024,
            )
            .unwrap();
        let l2 = CacheConfig::new(64, 4).unwrap();
        let key = PartitionKey::Task(TaskId::new(0));
        let map = |base_set| {
            let mut m = PartitionMap::new(l2.geometry());
            m.assign(key, base_set, 16).unwrap();
            m
        };
        let schedule = PartitionSchedule::new(vec![
            (0, OrganizationSpec::SetPartitioned(map(0))),
            (150, OrganizationSpec::SetPartitioned(map(16))),
            (900, OrganizationSpec::SetPartitioned(map(32))),
        ])
        .unwrap();
        let base = table.region(region).base;
        let stream: Vec<Access> = (0..160)
            .map(|i| {
                let addr = base.offset((i % 9) * 256 + (i % 5) * 64);
                if i % 4 == 0 {
                    Access::store(addr, 4, TaskId::new(0), region)
                } else {
                    Access::load(addr, 4, TaskId::new(0), region)
                }
            })
            .collect();
        let config = PlatformConfig::default()
            .processors(1)
            .l1(CacheConfig::new(4, 2).unwrap());
        let fresh = || {
            let mut m = MemorySystem::new(
                &config,
                OrganizationSpec::SetPartitioned(map(0))
                    .build(l2, &table)
                    .unwrap(),
            );
            m.install_schedule(&schedule, &table).unwrap();
            m
        };

        // Per-access execution (boundaries applied at each access clock)...
        let mut one_by_one = fresh();
        let mut now = 0u64;
        for a in &stream {
            let stall = one_by_one.access(0, now, a);
            now += if a.kind.is_instruction() {
                stall
            } else {
                1 + stall
            };
        }
        // ...must match burst execution, which detects the pending
        // schedule and issues L2 accesses refill by refill.
        let mut burst = fresh();
        let mut clock = 0u64;
        let mut cursor = 0usize;
        for run_len in [13usize, 1, 70, 76] {
            let run = &stream[cursor..cursor + run_len];
            cursor += run_len;
            let stats = burst.access_burst(0, clock, run);
            clock += stats.elapsed;
        }
        assert_eq!(cursor, stream.len());
        assert_eq!(clock, now, "clocks diverged");
        assert_eq!(one_by_one.l2().snapshot(), burst.l2().snapshot());
        assert_eq!(one_by_one.repartition_log(), burst.repartition_log());
        assert_eq!(burst.repartition_log().len(), 2, "both switches fired");
        assert_eq!(one_by_one.dram_writebacks(), burst.dram_writebacks());
        assert_eq!(
            one_by_one.bus().bytes_transferred(),
            burst.bus().bytes_transferred()
        );
    }

    #[test]
    fn organisations_swap_behind_the_same_hierarchy() {
        use compmem_cache::{OrganizationSpec, PartitionKey, PartitionMap};
        use compmem_trace::{RegionKind, RegionTable};
        let mut table = RegionTable::new();
        let region = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let l2 = CacheConfig::new(64, 4).unwrap();
        let map =
            PartitionMap::pack(l2.geometry(), &[(PartitionKey::Task(TaskId::new(0)), 16)]).unwrap();
        let config = PlatformConfig::default()
            .processors(1)
            .l1(CacheConfig::new(4, 2).unwrap());
        let base = table.region(region).base;
        for spec in [
            OrganizationSpec::Shared,
            OrganizationSpec::SetPartitioned(map),
        ] {
            let mut m = MemorySystem::new(&config, spec.build(l2, &table).unwrap());
            let a = Access::load(base, 4, TaskId::new(0), region);
            assert!(m.access(0, 0, &a) > 0);
            assert_eq!(m.l2().organization(), spec.label());
            assert_eq!(m.l2().stats().accesses, 1);
        }
    }
}
