//! The memory hierarchy: private L1 caches, the shared L2 and DRAM.

use serde::{Deserialize, Serialize};

use compmem_cache::{CacheModel, CacheStats, SetAssocCache};
use compmem_trace::{Access, LINE_SIZE_BYTES};

use crate::bus::Bus;
use crate::config::PlatformConfig;

/// One level of the hierarchy, used to label aggregated statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryLevel {
    /// Private L1 instruction cache.
    L1Instruction,
    /// Private L1 data cache.
    L1Data,
    /// Shared unified L2 cache.
    L2,
    /// Off-chip DRAM.
    Dram,
}

/// The full memory hierarchy of one tile.
///
/// Each processor has private L1 instruction and data caches; all
/// processors share one L2 organisation held as a `Box<dyn CacheModel>`
/// (conventional, set-partitioned, way-partitioned or profiling — see
/// `compmem-cache`) and the bus to it and to DRAM. Because the L2 is a
/// trait object, the *same* timing path — L1 lookup, bus arbitration, L2
/// lookup, DRAM — serves every organisation; swapping organisations never
/// changes how stall cycles are computed, only how the L2 indexes and
/// evicts.
#[derive(Debug)]
pub struct MemorySystem {
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
    l2: Box<dyn CacheModel>,
    bus: Bus,
    l2_hit_latency: u32,
    dram_latency: u32,
    dram_accesses: u64,
    dram_writebacks: u64,
}

impl MemorySystem {
    /// Builds the hierarchy for `config.num_processors` processors around the
    /// given shared L2 organisation.
    pub fn new(config: &PlatformConfig, l2: Box<dyn CacheModel>) -> Self {
        let l1i = (0..config.num_processors)
            .map(|_| SetAssocCache::new(config.l1i))
            .collect();
        let l1d = (0..config.num_processors)
            .map(|_| SetAssocCache::new(config.l1d))
            .collect();
        MemorySystem {
            l1i,
            l1d,
            l2,
            bus: Bus::new(config.bus_bytes_per_cycle),
            l2_hit_latency: config.l2_hit_latency,
            dram_latency: config.dram_latency,
            dram_accesses: 0,
            dram_writebacks: 0,
        }
    }

    /// Performs one access from `processor` at time `now` and returns the
    /// stall cycles seen by the processor (zero on an L1 hit).
    ///
    /// This is the single timing path of the simulator: L1 lookup, shared
    /// bus arbitration for the refill, L2 lookup through the
    /// [`CacheModel`], and DRAM plus a second bus transfer on an L2 miss.
    pub fn access(&mut self, processor: usize, now: u64, access: &Access) -> u64 {
        let l1 = if access.kind.is_instruction() {
            &mut self.l1i[processor]
        } else {
            &mut self.l1d[processor]
        };
        let l1_outcome = l1.access(access);
        if l1_outcome.hit {
            return 0;
        }

        // L1 refill: the line travels over the shared bus from the L2.
        let (bus_wait, bus_duration) = self.bus.request(now, LINE_SIZE_BYTES as u32);
        // A dirty L1 victim is written back to the L2; it consumes bus
        // bandwidth but does not stall the processor (write buffer).
        if l1_outcome.evicted.is_some_and(|e| e.dirty) {
            let _ = self.bus.request(now, LINE_SIZE_BYTES as u32);
        }

        let l2_outcome = self.l2.access(access);
        let mut stall = bus_wait + bus_duration + u64::from(self.l2_hit_latency);
        if !l2_outcome.hit {
            self.dram_accesses += 1;
            stall += u64::from(self.dram_latency);
            let (dram_wait, dram_duration) = self.bus.request(now + stall, LINE_SIZE_BYTES as u32);
            stall += dram_wait + dram_duration;
        }
        if l2_outcome.evicted.is_some_and(|e| e.dirty) {
            // L2 write-back to DRAM: bus traffic only.
            self.dram_writebacks += 1;
            let _ = self.bus.request(now + stall, LINE_SIZE_BYTES as u32);
        }
        stall
    }

    /// Shared L2 organisation.
    pub fn l2(&self) -> &dyn CacheModel {
        self.l2.as_ref()
    }

    /// Mutable access to the shared L2 organisation.
    pub fn l2_mut(&mut self) -> &mut dyn CacheModel {
        self.l2.as_mut()
    }

    /// Consumes the hierarchy and returns the shared L2 organisation (e.g.
    /// to downcast a profiling cache and recover its miss profiles).
    pub fn into_l2(self) -> Box<dyn CacheModel> {
        self.l2
    }

    /// Statistics of the L1 instruction cache of `processor`.
    pub fn l1i_stats(&self, processor: usize) -> &CacheStats {
        self.l1i[processor].stats()
    }

    /// Statistics of the L1 data cache of `processor`.
    pub fn l1d_stats(&self, processor: usize) -> &CacheStats {
        self.l1d[processor].stats()
    }

    /// Aggregate L1 statistics over all processors and both L1 caches.
    pub fn l1_aggregate_stats(&self) -> CacheStats {
        let mut agg = CacheStats::new();
        for c in self.l1i.iter().chain(self.l1d.iter()) {
            agg.merge(c.stats());
        }
        agg
    }

    /// Number of accesses served by DRAM (L2 misses).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Number of dirty L2 lines written back to DRAM.
    pub fn dram_writebacks(&self) -> u64 {
        self.dram_writebacks
    }

    /// The shared bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Number of processors the hierarchy was built for.
    pub fn processors(&self) -> usize {
        self.l1d.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_cache::{CacheConfig, SharedCache};
    use compmem_trace::{Addr, RegionId, TaskId};

    fn tiny_system() -> MemorySystem {
        let config = PlatformConfig::default()
            .processors(2)
            .l1(CacheConfig::new(4, 2).unwrap());
        MemorySystem::new(
            &config,
            Box::new(SharedCache::new(CacheConfig::new(64, 4).unwrap())),
        )
    }

    fn load(addr: u64, task: u32) -> Access {
        Access::load(Addr::new(addr), 4, TaskId::new(task), RegionId::new(0))
    }

    #[test]
    fn l1_hit_has_no_stall() {
        let mut m = tiny_system();
        let a = load(0x1000, 0);
        let first = m.access(0, 0, &a);
        assert!(first > 0, "cold miss must stall");
        let second = m.access(0, 10_000, &a);
        assert_eq!(second, 0, "L1 hit must not stall");
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        let mut m = tiny_system();
        let a = load(0x2000, 0);
        let cold = m.access(0, 0, &a); // misses both levels -> DRAM
                                       // Evict it from the tiny L1 of processor 0 by touching conflicting
                                       // lines (same L1 set: L1 has 4 sets of 64 B => 256 B stride).
        for i in 1..=2 {
            let _ = m.access(0, 10_000 * i, &load(0x2000 + i * 256, 0));
        }
        let warm = m.access(0, 100_000, &a); // misses L1, hits L2
        assert!(warm > 0);
        assert!(
            warm < cold,
            "L2 hit ({warm}) should be cheaper than DRAM ({cold})"
        );
        assert_eq!(m.dram_accesses(), 3);
    }

    #[test]
    fn l1_caches_are_private_per_processor() {
        let mut m = tiny_system();
        let a = load(0x3000, 0);
        let _ = m.access(0, 0, &a);
        // Processor 1 misses its own L1 but hits the shared L2.
        let stall = m.access(1, 1_000, &a);
        assert!(stall > 0);
        assert_eq!(m.l1d_stats(1).misses, 1);
        assert_eq!(m.l1d_stats(0).misses, 1);
        assert_eq!(m.l2().stats().accesses, 2);
        assert_eq!(m.l2().stats().misses, 1);
    }

    #[test]
    fn instruction_fetches_use_the_instruction_cache() {
        let mut m = tiny_system();
        let i = Access::ifetch(Addr::new(0x4000), 64, TaskId::new(0), RegionId::new(1));
        let _ = m.access(0, 0, &i);
        assert_eq!(m.l1i_stats(0).accesses, 1);
        assert_eq!(m.l1d_stats(0).accesses, 0);
        let agg = m.l1_aggregate_stats();
        assert_eq!(agg.accesses, 1);
    }

    #[test]
    fn bus_contention_inflates_stalls() {
        let mut m = tiny_system();
        // Two processors miss at the same instant: the second pays a
        // queueing delay on the shared bus.
        let s0 = m.access(0, 0, &load(0x8000, 0));
        let s1 = m.access(1, 0, &load(0x9000, 1));
        assert!(s1 > s0 - 8, "second request cannot be faster");
        assert!(m.bus().total_wait_cycles() > 0);
        assert!(m.bus().transfers() >= 2);
    }

    #[test]
    fn dirty_writebacks_reach_dram_counter() {
        let config = PlatformConfig::default()
            .processors(1)
            .l1(CacheConfig::new(1, 1).unwrap());
        let mut m = MemorySystem::new(
            &config,
            Box::new(SharedCache::new(CacheConfig::new(1, 1).unwrap())),
        );
        let w = Access::store(Addr::new(0), 4, TaskId::new(0), RegionId::new(0));
        let _ = m.access(0, 0, &w);
        // Conflicting store evicts the dirty line from the one-line L2.
        let w2 = Access::store(Addr::new(64), 4, TaskId::new(0), RegionId::new(0));
        let _ = m.access(0, 100, &w2);
        assert_eq!(m.dram_writebacks(), 1);
        assert_eq!(m.processors(), 1);
    }

    #[test]
    fn organisations_swap_behind_the_same_hierarchy() {
        use compmem_cache::{OrganizationSpec, PartitionKey, PartitionMap};
        use compmem_trace::{RegionKind, RegionTable};
        let mut table = RegionTable::new();
        let region = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let l2 = CacheConfig::new(64, 4).unwrap();
        let map =
            PartitionMap::pack(l2.geometry(), &[(PartitionKey::Task(TaskId::new(0)), 16)]).unwrap();
        let config = PlatformConfig::default()
            .processors(1)
            .l1(CacheConfig::new(4, 2).unwrap());
        let base = table.region(region).base;
        for spec in [
            OrganizationSpec::Shared,
            OrganizationSpec::SetPartitioned(map),
        ] {
            let mut m = MemorySystem::new(&config, spec.build(l2, &table).unwrap());
            let a = Access::load(base, 4, TaskId::new(0), region);
            assert!(m.access(0, 0, &a) > 0);
            assert_eq!(m.l2().organization(), spec.label());
            assert_eq!(m.l2().stats().accesses, 1);
        }
    }
}
