//! Processor identifiers and per-processor execution counters.

use serde::{Deserialize, Serialize};

/// Identifier of a processor on the tile (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId(usize);

impl ProcessorId {
    /// Creates a processor identifier from a dense index.
    pub const fn new(index: usize) -> Self {
        ProcessorId(index)
    }

    /// Returns the dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Execution counters of one processor, accumulated by the simulation loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct ProcessorCounters {
    /// Local clock (cycles simulated so far).
    pub time: u64,
    /// Cycles spent executing instructions.
    pub busy_cycles: u64,
    /// Cycles spent stalled on the memory hierarchy.
    pub stall_cycles: u64,
    /// Cycles spent in task switches (including run-time-system traffic).
    pub switch_cycles: u64,
    /// Cycles spent idle (no runnable task).
    pub idle_cycles: u64,
    /// Architectural instructions executed.
    pub instructions: u64,
    /// Number of task switches performed.
    pub task_switches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_id_roundtrip_and_display() {
        let p = ProcessorId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "cpu3");
    }

    #[test]
    fn counters_default_to_zero() {
        let c = ProcessorCounters::default();
        assert_eq!(c.time, 0);
        assert_eq!(c.instructions, 0);
    }
}
