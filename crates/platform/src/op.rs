//! The workload interface: operations, bursts and the driver trait.

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, TaskId};

/// One operation executed by a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `n` back-to-back compute instructions with no memory reference
    /// (one cycle each).
    Compute(u32),
    /// One memory reference. Loads and stores count as one instruction plus
    /// any memory stall; instruction fetches model the fetch of a code line
    /// and contribute stall cycles only.
    Mem(Access),
}

impl Op {
    /// Number of architectural instructions this operation represents.
    pub fn instructions(&self) -> u64 {
        match self {
            Op::Compute(n) => u64::from(*n),
            Op::Mem(a) if a.kind.is_instruction() => 0,
            Op::Mem(_) => 1,
        }
    }
}

/// A sequence of operations a task executes without any possibility of
/// blocking — in the Kahn-process-network runtime, one firing of a process.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Burst {
    ops: Vec<Op>,
}

impl Burst {
    /// Creates a burst from a list of operations.
    pub fn new(ops: Vec<Op>) -> Self {
        Burst { ops }
    }

    /// Creates an empty burst (the task made progress without touching
    /// memory, e.g. consumed a control token).
    pub fn empty() -> Self {
        Burst { ops: Vec::new() }
    }

    /// Operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the burst contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total number of architectural instructions in the burst.
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(Op::instructions).sum()
    }

    /// Number of memory operations (including instruction fetches).
    pub fn memory_ops(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Mem(_))).count()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Consumes the burst and returns its operations.
    pub fn into_ops(self) -> Vec<Op> {
        self.ops
    }
}

impl FromIterator<Op> for Burst {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Burst {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for Burst {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

/// What a task can offer the scheduler when asked for work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BurstOutcome {
    /// The task has a burst of operations ready to execute.
    Ready(Burst),
    /// The task cannot progress until some other task produces or consumes
    /// data (blocking read from an empty FIFO / write to a full FIFO).
    Blocked,
    /// The task has completed all its work.
    Finished,
}

impl BurstOutcome {
    /// Returns `true` for [`BurstOutcome::Finished`].
    pub fn is_finished(&self) -> bool {
        matches!(self, BurstOutcome::Finished)
    }

    /// Returns `true` for [`BurstOutcome::Blocked`].
    pub fn is_blocked(&self) -> bool {
        matches!(self, BurstOutcome::Blocked)
    }
}

/// Source of work for the platform: the application side of the simulator.
///
/// The scheduler calls [`next_burst`](WorkloadDriver::next_burst) whenever
/// the processor owning `task` is ready to execute it. Returning
/// [`BurstOutcome::Blocked`] parks the task until some other task has
/// executed a burst (at which point it will be asked again); returning
/// [`BurstOutcome::Finished`] retires it permanently.
pub trait WorkloadDriver {
    /// Produces the next burst of work for `task`.
    fn next_burst(&mut self, task: TaskId) -> BurstOutcome;
}

impl<D: WorkloadDriver + ?Sized> WorkloadDriver for &mut D {
    fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
        (**self).next_burst(task)
    }
}

impl<D: WorkloadDriver + ?Sized> WorkloadDriver for Box<D> {
    fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
        (**self).next_burst(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_trace::{Addr, RegionId};

    fn load() -> Op {
        Op::Mem(Access::load(
            Addr::new(0x100),
            4,
            TaskId::new(0),
            RegionId::new(0),
        ))
    }

    fn ifetch() -> Op {
        Op::Mem(Access::ifetch(
            Addr::new(0x200),
            64,
            TaskId::new(0),
            RegionId::new(1),
        ))
    }

    #[test]
    fn instruction_counting() {
        assert_eq!(Op::Compute(5).instructions(), 5);
        assert_eq!(load().instructions(), 1);
        assert_eq!(ifetch().instructions(), 0);
        let b = Burst::new(vec![Op::Compute(3), load(), ifetch(), load()]);
        assert_eq!(b.instructions(), 5);
        assert_eq!(b.memory_ops(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn burst_collect_and_extend() {
        let mut b: Burst = vec![Op::Compute(1)].into_iter().collect();
        b.extend(vec![load()]);
        b.push(ifetch());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Burst::empty().is_empty());
        assert_eq!(b.clone().into_ops().len(), 3);
    }

    #[test]
    fn outcome_predicates() {
        assert!(BurstOutcome::Finished.is_finished());
        assert!(BurstOutcome::Blocked.is_blocked());
        assert!(!BurstOutcome::Ready(Burst::empty()).is_finished());
    }

    #[test]
    fn driver_usable_through_references_and_boxes() {
        struct D(u32);
        impl WorkloadDriver for D {
            fn next_burst(&mut self, _task: TaskId) -> BurstOutcome {
                self.0 += 1;
                BurstOutcome::Finished
            }
        }
        let mut d = D(0);
        let by_ref: &mut D = &mut d;
        assert!(by_ref.next_burst(TaskId::new(0)).is_finished());
        let mut boxed: Box<dyn WorkloadDriver> = Box::new(D(0));
        assert!(boxed.next_burst(TaskId::new(0)).is_finished());
    }
}
