//! Platform configuration.

use serde::{Deserialize, Serialize};

use compmem_cache::CacheConfig;
use compmem_trace::{Addr, RegionId, TaskId};

use crate::error::PlatformError;

/// Regions of the run-time system, touched on every task switch.
///
/// The paper's experimental set-up gives the run-time operating system its
/// own exclusive cache partitions (the `rt data` / `rt bss` rows of Tables 1
/// and 2); modelling the switch-time traffic makes those partitions earn
/// their keep in the reproduction as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsRegions {
    /// Task identifier the run-time system's accesses are attributed to.
    pub os_task: TaskId,
    /// Initialised data region of the run-time system.
    pub rt_data: RegionId,
    /// First byte of the run-time system's initialised data region.
    pub rt_data_base: Addr,
    /// Zero-initialised data region of the run-time system.
    pub rt_bss: RegionId,
    /// First byte of the run-time system's zero-initialised data region.
    pub rt_bss_base: Addr,
    /// Number of distinct lines of each region touched per task switch.
    pub lines_per_switch: u32,
}

/// Configuration of one CAKE tile.
///
/// The defaults reproduce the instance used in the paper's evaluation:
/// four processors, 16 KB 4-way private L1 I/D caches, a 12-cycle shared L2
/// and 90-cycle DRAM behind an 8-byte-per-cycle arbitrated bus, and a
/// 200-cycle task-switch penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of processors on the tile.
    pub num_processors: usize,
    /// Configuration of each private L1 instruction cache.
    pub l1i: CacheConfig,
    /// Configuration of each private L1 data cache.
    pub l1d: CacheConfig,
    /// Latency of an L2 hit in cycles (includes the translation-table
    /// lookup of the partitioned organisation).
    pub l2_hit_latency: u32,
    /// Additional latency of an access served by DRAM, in cycles.
    pub dram_latency: u32,
    /// Bus bandwidth in bytes per cycle for L2 refills and write-backs.
    pub bus_bytes_per_cycle: u32,
    /// Cycles consumed by a task switch (scheduler plus register save).
    pub task_switch_cycles: u32,
    /// Scheduling quantum in executed instructions; `None` means tasks run
    /// until they block or finish (plain data-driven scheduling).
    pub quantum_instructions: Option<u64>,
    /// Hard limit on simulated cycles per processor (deadlock backstop).
    pub cycle_limit: u64,
    /// Run-time-system regions touched on every task switch, if modelled.
    pub os_regions: Option<OsRegions>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            num_processors: 4,
            l1i: CacheConfig::paper_l1(),
            l1d: CacheConfig::paper_l1(),
            l2_hit_latency: 12,
            dram_latency: 90,
            bus_bytes_per_cycle: 8,
            task_switch_cycles: 200,
            quantum_instructions: None,
            cycle_limit: 20_000_000_000,
            os_regions: None,
        }
    }
}

impl PlatformConfig {
    /// Creates the default (paper) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of processors.
    #[must_use]
    pub fn processors(mut self, n: usize) -> Self {
        self.num_processors = n;
        self
    }

    /// Sets the L1 instruction- and data-cache configuration (both levels use
    /// the same organisation).
    #[must_use]
    pub fn l1(mut self, config: CacheConfig) -> Self {
        self.l1i = config;
        self.l1d = config;
        self
    }

    /// Sets the L2 hit latency in cycles.
    #[must_use]
    pub fn l2_latency(mut self, cycles: u32) -> Self {
        self.l2_hit_latency = cycles;
        self
    }

    /// Sets the DRAM latency in cycles.
    #[must_use]
    pub fn dram(mut self, cycles: u32) -> Self {
        self.dram_latency = cycles;
        self
    }

    /// Sets the task-switch penalty in cycles.
    #[must_use]
    pub fn task_switch(mut self, cycles: u32) -> Self {
        self.task_switch_cycles = cycles;
        self
    }

    /// Sets the scheduling quantum in instructions.
    #[must_use]
    pub fn quantum(mut self, instructions: u64) -> Self {
        self.quantum_instructions = Some(instructions);
        self
    }

    /// Sets the run-time-system regions touched on each task switch.
    #[must_use]
    pub fn with_os_regions(mut self, os: OsRegions) -> Self {
        self.os_regions = Some(os);
        self
    }

    /// Sets the cycle limit used as a deadlock backstop.
    #[must_use]
    pub fn with_cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidConfig`] if the processor count or
    /// bus bandwidth is zero.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.num_processors == 0 {
            return Err(PlatformError::InvalidConfig {
                parameter: "num_processors",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.bus_bytes_per_cycle == 0 {
            return Err(PlatformError::InvalidConfig {
                parameter: "bus_bytes_per_cycle",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.cycle_limit == 0 {
            return Err(PlatformError::InvalidConfig {
                parameter: "cycle_limit",
                reason: "must be non-zero".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = PlatformConfig::default();
        assert_eq!(c.num_processors, 4);
        assert_eq!(c.l1d.geometry().size_bytes(), 16 * 1024);
        assert_eq!(c.l2_hit_latency, 12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides() {
        let c = PlatformConfig::default()
            .processors(2)
            .l2_latency(20)
            .dram(120)
            .task_switch(100)
            .quantum(50_000)
            .with_cycle_limit(1_000);
        assert_eq!(c.num_processors, 2);
        assert_eq!(c.l2_hit_latency, 20);
        assert_eq!(c.dram_latency, 120);
        assert_eq!(c.task_switch_cycles, 100);
        assert_eq!(c.quantum_instructions, Some(50_000));
        assert_eq!(c.cycle_limit, 1_000);
    }

    #[test]
    fn zero_processors_rejected() {
        assert!(PlatformConfig::default().processors(0).validate().is_err());
        let c = PlatformConfig {
            bus_bytes_per_cycle: 0,
            ..PlatformConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(PlatformConfig::default()
            .with_cycle_limit(0)
            .validate()
            .is_err());
    }
}
