//! Per-key parallel replay lanes: splitting one trace replay across
//! threads along partition boundaries.
//!
//! A partitioned L2 is *compositional*: accesses of one partition key
//! cannot change another key's cache state (that is the paper's point).
//! The replay of a recorded trace under a partitioned organisation
//! therefore factors into independent **lanes** — one per
//! [`PartitionKey`] — each replaying only the refills of its key against
//! its own copy of the L2 organisation, on its own thread. Merging the
//! lanes' statistics reproduces the serial replay's cache-side numbers
//! *exactly*, because the serial cache never lets the keys interact:
//!
//! * **Set-partitioned** (any replacement policy): partitions are
//!   exclusive set ranges, and every piece of per-set replacement state
//!   (LRU/FIFO stamps, PLRU bits, the per-set random state seeded from
//!   `seed ^ set_index`) is touched only by accesses that index into the
//!   set — i.e. only by the owning key.
//! * **Way-partitioned** with pairwise-disjoint way masks (in *every*
//!   schedule step) under LRU, FIFO or tree-PLRU: tags are full line
//!   addresses (a key can only hit its own lines), victims are chosen
//!   among the accessing key's ways by relative stamp order, and a
//!   disjoint mask is never the full mask, so tree-PLRU takes its
//!   documented stamp fallback. **Random** replacement is excluded: its
//!   per-set generator is shared by every key that touches the set, so
//!   the interleaving matters.
//! * **Shared** and **profiling** organisations (and overlapping way
//!   masks) are not compositional at all; [`replay_lanes`] transparently
//!   falls back to a single lane.
//!
//! What merges exactly: the L2 aggregate [`CacheStats`], the per-task /
//! per-region / per-partition attributions, DRAM accesses and
//! write-backs, and bus *bytes* (every bus transfer of the serial timing
//! path is a per-refill or per-flush constant). What does not: timing —
//! bus wait cycles, stall cycles and the makespan depend on the global
//! interleaving of transfers and are reported by the serial
//! [`ReplaySystem`](crate::ReplaySystem) only.
//!
//! Repartition events of a [`PartitionSchedule`] are applied on the
//! **recorded issue axis** (`run.start_cycle + data_accesses_before`),
//! which every lane can compute locally. The serial replay applies them
//! on the stall-inflated reconstructed clock, so a boundary that falls
//! *inside* a run's stall window may split that run's refills differently;
//! boundaries placed in the gaps between runs — where phase schedules put
//! them — agree exactly, and switches past the last refill still fire, as
//! in the serial loop.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use compmem_cache::{
    CacheConfig, CacheError, CacheModel, CacheStats, FlushStats, OrganizationSpec, PartitionKey,
    PartitionSchedule, ReplacementPolicy, StatsByKey,
};
use compmem_trace::{RegionId, RegionTable, TaskId, LINE_SIZE_BYTES};
use serde::{Deserialize, Serialize};

use crate::config::PlatformConfig;
use crate::error::PlatformError;
use crate::replay::{FilteredTrace, PreparedTrace};

/// Why a replay or profile cannot split into exact per-key lanes.
///
/// Rendered by [`lane_eligibility`]; `compmem info` prints it so users can
/// predict whether `--lanes` will engage, and [`LaneDecision`] carries it
/// whenever a run fell back to one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaneIneligibility {
    /// Fewer than two distinct partition keys — one lane *is* the serial
    /// run, so there is nothing to split.
    SingleKey,
    /// A schedule step uses the shared organisation, where every key can
    /// evict every other key's lines.
    SharedOrganization,
    /// A schedule step uses the profiling organisation, whose shadow banks
    /// observe the global interleaving.
    ProfilingOrganization,
    /// A way-partitioned step under Random replacement: the per-set
    /// generator state is shared by every key that touches the set.
    RandomPolicy,
    /// A way-partitioned step with overlapping way masks, which let keys
    /// evict each other's lines.
    OverlappingWayMasks,
}

impl fmt::Display for LaneIneligibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaneIneligibility::SingleKey => {
                write!(f, "fewer than two distinct partition keys")
            }
            LaneIneligibility::SharedOrganization => {
                write!(f, "shared organisation (keys evict each other freely)")
            }
            LaneIneligibility::ProfilingOrganization => {
                write!(
                    f,
                    "profiling organisation (observes the global interleaving)"
                )
            }
            LaneIneligibility::RandomPolicy => write!(
                f,
                "random replacement (per-set generator state is shared across keys)"
            ),
            LaneIneligibility::OverlappingWayMasks => {
                write!(f, "overlapping way masks (keys evict each other's lines)")
            }
        }
    }
}

/// How a lane-capable run resolved its lane split: what was asked for,
/// what actually ran, and — when it fell back to one serial lane — why.
///
/// Reported on every [`LaneReport`] so an ineligible scenario never
/// degrades to a silent serial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneDecision {
    /// Upper bound on parallel lanes the caller asked for.
    pub requested: usize,
    /// Lanes the run actually split into (1 on fallback).
    pub lanes: usize,
    /// Why the run fell back to a single serial lane, when it did.
    pub fallback: Option<LaneIneligibility>,
}

/// Cache-side result of a lane replay, merged over all lanes.
///
/// Field for field this matches the corresponding members of
/// [`SystemReport`](crate::SystemReport) (timing fields excluded, see the
/// module docs); the parity tests assert byte-for-byte equality against a
/// serial [`ReplaySystem`](crate::ReplaySystem) run.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    /// Aggregate statistics over all private L1 caches (from the shared
    /// filter pass; identical for every lane count).
    pub l1: CacheStats,
    /// Aggregate L2 statistics, merged over the lanes.
    pub l2: CacheStats,
    /// Per-task L2 statistics (a task may appear in several lanes, e.g.
    /// through communication buffers).
    pub l2_by_task: StatsByKey<TaskId>,
    /// Per-region L2 statistics (each region lives in exactly one lane).
    pub l2_by_region: StatsByKey<RegionId>,
    /// Per-partition-key L2 statistics, for organisations that attribute
    /// accesses to partitions.
    pub l2_by_partition: Option<StatsByKey<PartitionKey>>,
    /// Accesses served by DRAM (L2 misses).
    pub dram_accesses: u64,
    /// Dirty L2 lines written back to DRAM (evictions plus repartition
    /// flushes).
    pub dram_writebacks: u64,
    /// Bytes transferred over the shared bus.
    pub bus_bytes: u64,
    /// Lines flushed by the schedule's repartition events, summed over
    /// the lanes.
    pub flushes: FlushStats,
    /// Number of lanes the replay actually used (1 when the organisation
    /// is not compositional).
    pub lanes: usize,
    /// How the lane split was decided, including the fallback reason when
    /// the organisation forced a single serial lane.
    pub decision: LaneDecision,
}

/// The partition keys along which a replay of `schedule` over `regions`
/// splits into exact per-key lanes, or `None` when it must stay serial.
///
/// Per-key lanes are exact when every step of the schedule is
/// compositional for the cache's replacement policy: set-partitioned
/// steps always are; way-partitioned steps require pairwise-disjoint way
/// masks and a non-[`Random`](ReplacementPolicy::Random) policy; shared
/// and profiling organisations never are (see the module docs for the
/// reasoning). A single distinct key yields `None` — one lane *is* the
/// serial replay.
pub fn lane_keys(
    l2: CacheConfig,
    schedule: &PartitionSchedule,
    regions: &RegionTable,
) -> Option<Vec<PartitionKey>> {
    lane_eligibility(l2, schedule, regions).ok()
}

/// The lane-eligibility *verdict* behind [`lane_keys`]: the per-key lanes
/// when the scenario splits exactly, or the specific
/// [`LaneIneligibility`] reason when it must stay serial.
///
/// The first ineligible condition encountered wins: the key count is
/// checked before the schedule, and schedule steps are scanned in order.
pub fn lane_eligibility(
    l2: CacheConfig,
    schedule: &PartitionSchedule,
    regions: &RegionTable,
) -> Result<Vec<PartitionKey>, LaneIneligibility> {
    let keys = PartitionKey::distinct_keys(regions);
    if keys.len() <= 1 {
        return Err(LaneIneligibility::SingleKey);
    }
    for step in schedule.steps() {
        match &step.organization {
            OrganizationSpec::Shared => return Err(LaneIneligibility::SharedOrganization),
            OrganizationSpec::Profiling(_) => return Err(LaneIneligibility::ProfilingOrganization),
            OrganizationSpec::SetPartitioned(_) => {}
            OrganizationSpec::WayPartitioned(allocation) => {
                if l2.replacement_policy() == ReplacementPolicy::Random {
                    return Err(LaneIneligibility::RandomPolicy);
                }
                let mut claimed = 0u64;
                for (_, mask) in allocation.iter() {
                    if claimed & mask != 0 {
                        return Err(LaneIneligibility::OverlappingWayMasks);
                    }
                    claimed |= mask;
                }
            }
        }
    }
    Ok(keys)
}

/// Per-lane accumulation: the lane's own L2 plus the additive bus/DRAM
/// counters of the serial timing path.
struct LaneTotals {
    l2: CacheStats,
    by_task: StatsByKey<TaskId>,
    by_region: StatsByKey<RegionId>,
    by_partition: Option<StatsByKey<PartitionKey>>,
    dram_accesses: u64,
    dram_writebacks: u64,
    bus_bytes: u64,
    flushes: FlushStats,
}

fn lane_cache_error(error: CacheError) -> PlatformError {
    PlatformError::LaneCache {
        message: error.to_string(),
    }
}

/// Replays the refills of one lane (`key = None` replays everything)
/// against a fresh copy of the scheduled L2 organisation.
fn replay_one_lane(
    l2: CacheConfig,
    schedule: &PartitionSchedule,
    regions: &RegionTable,
    filtered: &FilteredTrace,
    region_keys: &[PartitionKey],
    key: Option<PartitionKey>,
) -> Result<LaneTotals, PlatformError> {
    let mut cache = schedule
        .initial()
        .build(l2, regions)
        .map_err(lane_cache_error)?;
    let mut switches = schedule.switches().iter();
    let mut next_switch = switches.next();
    let mut dram_accesses = 0u64;
    let mut dram_writebacks = 0u64;
    let mut bus_bytes = 0u64;
    let mut flushes = FlushStats::default();

    let apply_switch = |cache: &mut Box<dyn CacheModel>,
                        organization: &OrganizationSpec,
                        dram_writebacks: &mut u64,
                        bus_bytes: &mut u64,
                        flushes: &mut FlushStats|
     -> Result<(), PlatformError> {
        let flush = cache
            .reconfigure(organization, regions)
            .map_err(lane_cache_error)?;
        // Flush traffic takes the same path as in the serial replay: one
        // bus transfer and one DRAM write-back per dirty line.
        *dram_writebacks += flush.written_back;
        *bus_bytes += flush.written_back * LINE_SIZE_BYTES;
        flushes.absorb(flush);
        Ok(())
    };

    for run in &filtered.runs {
        for refill in &run.refills {
            if let Some(key) = key {
                if region_keys[refill.access.region.index()] != key {
                    continue;
                }
            }
            // The recorded issue axis: hits before this refill advance
            // the clock one cycle per data access (see the module docs
            // for how this relates to the serial, stall-inflated clock).
            let clock = run.start_cycle + refill.data_accesses_before;
            while let Some(step) = next_switch {
                if clock < step.at_cycle {
                    break;
                }
                apply_switch(
                    &mut cache,
                    &step.organization,
                    &mut dram_writebacks,
                    &mut bus_bytes,
                    &mut flushes,
                )?;
                next_switch = switches.next();
            }
            // The bus request sequence of the serial path, as bytes:
            // refill transfer, optional L1 write-back, optional DRAM
            // fill, optional L2 write-back.
            bus_bytes += LINE_SIZE_BYTES;
            if refill.l1_victim_dirty {
                bus_bytes += LINE_SIZE_BYTES;
            }
            let outcome = cache.access(&refill.access);
            if !outcome.hit {
                dram_accesses += 1;
                bus_bytes += LINE_SIZE_BYTES;
            }
            if outcome.evicted.is_some_and(|e| e.dirty) {
                dram_writebacks += 1;
                bus_bytes += LINE_SIZE_BYTES;
            }
        }
    }
    // Switches whose boundary lies beyond the lane's last refill still
    // fire, exactly as the serial replay loop fires them at the end.
    while let Some(step) = next_switch {
        apply_switch(
            &mut cache,
            &step.organization,
            &mut dram_writebacks,
            &mut bus_bytes,
            &mut flushes,
        )?;
        next_switch = switches.next();
    }

    Ok(LaneTotals {
        l2: *cache.stats(),
        by_task: cache.stats_by_task().clone(),
        by_region: cache.stats_by_region().clone(),
        by_partition: cache.stats_by_partition().cloned(),
        dram_accesses,
        dram_writebacks,
        bus_bytes,
        flushes,
    })
}

/// Replays `trace` under the scheduled L2 organisation on up to `jobs`
/// parallel per-key lanes and returns the merged cache-side report.
///
/// When the organisation is compositional (see [`lane_keys`]) each
/// [`PartitionKey`] replays on its own lane; otherwise everything replays
/// on one lane, so the result is *always* exact — the lane count is a
/// performance detail, never a semantics switch, and `jobs = 1` produces
/// byte-identical results to any other lane count.
///
/// # Errors
///
/// * [`PlatformError::LaneCache`] if the schedule does not fit the cache
///   geometry or does not cover every region of the trace,
/// * [`PlatformError::ProcessorOutOfRange`] if a trace run names a
///   processor outside the trace's declared processor count.
pub fn replay_lanes(
    config: &PlatformConfig,
    l2: CacheConfig,
    schedule: &PartitionSchedule,
    trace: &PreparedTrace,
    jobs: usize,
) -> Result<LaneReport, PlatformError> {
    let regions = trace.table();
    schedule
        .validate_for(l2.geometry(), regions)
        .map_err(lane_cache_error)?;
    let filtered = trace.filtered_for(config)?;
    let region_keys: Vec<PartitionKey> = regions
        .iter()
        .map(|region| PartitionKey::from_region_kind(region.kind))
        .collect();
    let (lanes, fallback): (Vec<Option<PartitionKey>>, Option<LaneIneligibility>) =
        match lane_eligibility(l2, schedule, regions) {
            Ok(keys) => (keys.into_iter().map(Some).collect(), None),
            Err(reason) => (vec![None], Some(reason)),
        };

    let run_lane = |key: Option<PartitionKey>| {
        replay_one_lane(l2, schedule, regions, &filtered, &region_keys, key)
    };
    let workers = jobs.max(1).min(lanes.len());
    let results: Vec<Result<LaneTotals, PlatformError>> = if workers <= 1 {
        lanes.iter().map(|key| run_lane(*key)).collect()
    } else {
        // Lanes are few (one per partition key), so a shared cursor over
        // the lane list is all the scheduling needed.
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<LaneTotals, PlatformError>>>> =
            lanes.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(key) = lanes.get(index) else { break };
                    let result = run_lane(*key);
                    *slots[index].lock().expect("lane slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("lane slot poisoned")
                    .expect("every lane index was claimed by a worker")
            })
            .collect()
    };

    // Merge in lane (key) order, so the merged report is deterministic
    // and independent of which thread ran which lane.
    let mut report = LaneReport {
        l1: filtered.l1_aggregate,
        l2: CacheStats::new(),
        l2_by_task: StatsByKey::new(),
        l2_by_region: StatsByKey::new(),
        l2_by_partition: None,
        dram_accesses: 0,
        dram_writebacks: 0,
        bus_bytes: 0,
        flushes: FlushStats::default(),
        lanes: lanes.len(),
        decision: LaneDecision {
            requested: jobs,
            lanes: lanes.len(),
            fallback,
        },
    };
    for result in results {
        let totals = result?;
        report.l2.merge(&totals.l2);
        report.l2_by_task.merge(&totals.by_task);
        report.l2_by_region.merge(&totals.by_region);
        if let Some(by_partition) = &totals.by_partition {
            report
                .l2_by_partition
                .get_or_insert_with(StatsByKey::new)
                .merge(by_partition);
        }
        report.dram_accesses += totals.dram_accesses;
        report.dram_writebacks += totals.dram_writebacks;
        report.bus_bytes += totals.bus_bytes;
        report.flushes.absorb(totals.flushes);
    }
    Ok(report)
}

/// Like [`replay_lanes`], but the lane split is a *requirement*: when the
/// caller asked for more than one lane and the scenario is ineligible,
/// the silent single-lane fallback becomes a typed
/// [`PlatformError::LanesIneligible`] naming the reason. `jobs <= 1`
/// never errors — one lane is exactly what was asked for.
///
/// # Errors
///
/// [`PlatformError::LanesIneligible`] as above, plus everything
/// [`replay_lanes`] can return.
pub fn replay_lanes_required(
    config: &PlatformConfig,
    l2: CacheConfig,
    schedule: &PartitionSchedule,
    trace: &PreparedTrace,
    jobs: usize,
) -> Result<LaneReport, PlatformError> {
    if jobs > 1 {
        if let Err(reason) = lane_eligibility(l2, schedule, trace.table()) {
            return Err(PlatformError::LanesIneligible {
                requested: jobs,
                reason: reason.to_string(),
            });
        }
    }
    replay_lanes(config, l2, schedule, trace, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SystemReport;
    use crate::op::{Burst, BurstOutcome, Op, WorkloadDriver};
    use crate::replay::ReplaySystem;
    use crate::scheduler::TaskMapping;
    use crate::system::System;
    use compmem_cache::{CacheSizeLattice, KeyStats, PartitionMap, SharedCache, WayAllocation};
    use compmem_trace::codec::{EncodedTrace, TraceWriter};
    use compmem_trace::{Access, Addr, BufferId, RegionKind, TaskId};

    /// Two tasks on two processors, each touching its own data region and
    /// a shared FIFO region (three partition keys), with an optional long
    /// compute-only phase in the middle whose recorded-cycle gap hosts
    /// schedule boundaries.
    struct PhasedDriver {
        remaining: Vec<u32>,
        total: u32,
        cursor: Vec<u64>,
        own: Vec<(Addr, compmem_trace::RegionId)>,
        buffer: (Addr, compmem_trace::RegionId),
        gap_cycles: u32,
    }

    impl WorkloadDriver for PhasedDriver {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            let t = task.index();
            if self.remaining[t] == 0 {
                return BurstOutcome::Finished;
            }
            self.remaining[t] -= 1;
            if self.gap_cycles > 0 && self.remaining[t] == self.total / 2 {
                return BurstOutcome::Ready(Burst::new(vec![Op::Compute(self.gap_cycles)]));
            }
            let mut ops = Vec::new();
            for i in 0..12u64 {
                ops.push(Op::Compute(1 + (i % 3) as u32));
                let (base, region, lines) = if i % 5 == 4 {
                    (self.buffer.0, self.buffer.1, 64)
                } else {
                    (self.own[t].0, self.own[t].1, 96)
                };
                let addr = base.offset(((self.cursor[t] + i) % lines) * 64);
                let access = if i % 4 == 0 {
                    Access::store(addr, 4, task, region)
                } else {
                    Access::load(addr, 4, task, region)
                };
                ops.push(Op::Mem(access));
            }
            self.cursor[t] += 7;
            BurstOutcome::Ready(Burst::new(ops))
        }
    }

    fn platform() -> PlatformConfig {
        PlatformConfig::default()
            .processors(2)
            .l1(CacheConfig::new(4, 2).unwrap())
    }

    fn record(gap_cycles: u32) -> PreparedTrace {
        let mut table = RegionTable::new();
        let r0 = table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                96 * 64,
            )
            .unwrap();
        let r1 = table
            .insert(
                "t1.data",
                RegionKind::TaskData {
                    task: TaskId::new(1),
                },
                96 * 64,
            )
            .unwrap();
        let rb = table
            .insert(
                "fifo",
                RegionKind::Fifo {
                    buffer: BufferId::new(0),
                },
                64 * 64,
            )
            .unwrap();
        let mapping = TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2);
        let mut system = System::new(
            platform(),
            Box::new(SharedCache::new(CacheConfig::new(64, 4).unwrap())),
            mapping,
        )
        .unwrap();
        let mut driver = PhasedDriver {
            remaining: vec![40, 40],
            total: 40,
            cursor: vec![0, 0],
            own: vec![(table.region(r0).base, r0), (table.region(r1).base, r1)],
            buffer: (table.region(rb).base, rb),
            gap_cycles,
        };
        let mut writer = TraceWriter::new(Vec::new(), &table, 2).unwrap();
        system.run_traced(&mut driver, &mut writer).unwrap();
        let (bytes, summary) = writer.finish().unwrap();
        assert!(summary.accesses > 0);
        PreparedTrace::from(EncodedTrace::from_bytes(bytes).unwrap())
    }

    fn task(i: u32) -> PartitionKey {
        PartitionKey::Task(TaskId::new(i))
    }

    fn buffer() -> PartitionKey {
        PartitionKey::Buffer(BufferId::new(0))
    }

    /// Serial reference: a [`ReplaySystem`] over the same platform, L2 and
    /// schedule.
    fn serial(
        l2: CacheConfig,
        schedule: &PartitionSchedule,
        trace: &PreparedTrace,
    ) -> (SystemReport, Option<StatsByKey<PartitionKey>>) {
        let model = schedule.initial().build(l2, trace.table()).unwrap();
        let mut replay = ReplaySystem::new(&platform(), model, trace).unwrap();
        replay.install_schedule(schedule, trace.table()).unwrap();
        let report = replay.run();
        let by_partition = replay.memory().l2().stats_by_partition().cloned();
        (report, by_partition)
    }

    fn assert_parity(
        serial: &SystemReport,
        serial_by_partition: &Option<StatsByKey<PartitionKey>>,
        lanes: &LaneReport,
    ) {
        assert_eq!(serial.l1, lanes.l1);
        assert_eq!(serial.l2, lanes.l2);
        let by_task: std::collections::BTreeMap<TaskId, KeyStats> =
            lanes.l2_by_task.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(serial.l2_by_task, by_task);
        let by_region: std::collections::BTreeMap<compmem_trace::RegionId, KeyStats> =
            lanes.l2_by_region.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(serial.l2_by_region, by_region);
        assert_eq!(*serial_by_partition, lanes.l2_by_partition);
        assert_eq!(serial.dram_accesses, lanes.dram_accesses);
        assert_eq!(serial.dram_writebacks, lanes.dram_writebacks);
        assert_eq!(serial.bus_bytes, lanes.bus_bytes);
    }

    #[test]
    fn set_partitioned_lanes_match_serial_for_every_policy() {
        let trace = record(0);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Random,
        ] {
            let l2 = CacheConfig::new(64, 4).unwrap().policy(policy);
            let map = PartitionMap::pack(
                l2.geometry(),
                &[(task(0), 16), (task(1), 16), (buffer(), 16)],
            )
            .unwrap();
            let schedule = PartitionSchedule::single(OrganizationSpec::SetPartitioned(map));
            let (serial_report, serial_bp) = serial(l2, &schedule, &trace);
            let lanes = replay_lanes(&platform(), l2, &schedule, &trace, 4).unwrap();
            assert_eq!(lanes.lanes, 3, "policy {policy:?} should lane per key");
            assert_eq!(
                lanes.decision,
                LaneDecision {
                    requested: 4,
                    lanes: 3,
                    fallback: None
                }
            );
            assert_parity(&serial_report, &serial_bp, &lanes);
            assert!(lanes.l2.misses > 0, "the workload must exercise the L2");
        }
    }

    #[test]
    fn way_partitioned_lanes_match_serial_with_disjoint_masks() {
        let trace = record(0);
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::TreePlru,
        ] {
            let l2 = CacheConfig::new(64, 4).unwrap().policy(policy);
            let alloc = WayAllocation::equal_split(l2.geometry(), &[task(0), task(1), buffer()]);
            let schedule = PartitionSchedule::single(OrganizationSpec::WayPartitioned(alloc));
            let (serial_report, serial_bp) = serial(l2, &schedule, &trace);
            let lanes = replay_lanes(&platform(), l2, &schedule, &trace, 4).unwrap();
            assert_eq!(lanes.lanes, 3, "policy {policy:?} should lane per key");
            assert_parity(&serial_report, &serial_bp, &lanes);
        }
    }

    #[test]
    fn shared_and_profiling_replay_on_one_lane() {
        let trace = record(0);
        let l2 = CacheConfig::new(64, 4).unwrap();
        let lattice = CacheSizeLattice::new(l2.geometry(), 4);
        for (spec, reason) in [
            (
                OrganizationSpec::Shared,
                LaneIneligibility::SharedOrganization,
            ),
            (
                OrganizationSpec::Profiling(lattice),
                LaneIneligibility::ProfilingOrganization,
            ),
        ] {
            let schedule = PartitionSchedule::single(spec);
            assert_eq!(lane_keys(l2, &schedule, trace.table()), None);
            assert_eq!(lane_eligibility(l2, &schedule, trace.table()), Err(reason));
            let (serial_report, serial_bp) = serial(l2, &schedule, &trace);
            let lanes = replay_lanes(&platform(), l2, &schedule, &trace, 4).unwrap();
            assert_eq!(lanes.lanes, 1);
            assert_eq!(
                lanes.decision,
                LaneDecision {
                    requested: 4,
                    lanes: 1,
                    fallback: Some(reason)
                },
                "the single-lane fallback must be reported, not silent"
            );
            assert_parity(&serial_report, &serial_bp, &lanes);

            // Explicitly *requiring* lanes on the same scenario is a typed
            // error naming the reason...
            let err = replay_lanes_required(&platform(), l2, &schedule, &trace, 4).unwrap_err();
            match &err {
                PlatformError::LanesIneligible { requested, reason } => {
                    assert_eq!(*requested, 4);
                    assert!(!reason.is_empty());
                }
                other => panic!("expected LanesIneligible, got {other:?}"),
            }
            // ...while requiring a single lane is satisfiable as-is.
            let one = replay_lanes_required(&platform(), l2, &schedule, &trace, 1).unwrap();
            assert_parity(&serial_report, &serial_bp, &one);
        }
    }

    #[test]
    fn non_compositional_way_allocations_stay_serial() {
        let trace = record(0);
        let table = trace.table();
        // Random replacement shares per-set generator state across keys.
        let random_l2 = CacheConfig::new(64, 4)
            .unwrap()
            .policy(ReplacementPolicy::Random);
        let disjoint =
            WayAllocation::equal_split(random_l2.geometry(), &[task(0), task(1), buffer()]);
        let schedule = PartitionSchedule::single(OrganizationSpec::WayPartitioned(disjoint));
        assert_eq!(lane_keys(random_l2, &schedule, table), None);
        assert_eq!(
            lane_eligibility(random_l2, &schedule, table),
            Err(LaneIneligibility::RandomPolicy)
        );
        let (serial_report, serial_bp) = serial(random_l2, &schedule, &trace);
        let lanes = replay_lanes(&platform(), random_l2, &schedule, &trace, 4).unwrap();
        assert_eq!(lanes.lanes, 1);
        assert_eq!(
            lanes.decision.fallback,
            Some(LaneIneligibility::RandomPolicy)
        );
        assert_parity(&serial_report, &serial_bp, &lanes);

        // Overlapping masks let keys evict each other's lines.
        let l2 = CacheConfig::new(64, 4).unwrap();
        let mut overlapping = WayAllocation::new(l2.geometry());
        overlapping.assign(task(0), 0b0011).unwrap();
        overlapping.assign(task(1), 0b0110).unwrap();
        overlapping.assign(buffer(), 0b1000).unwrap();
        let schedule = PartitionSchedule::single(OrganizationSpec::WayPartitioned(overlapping));
        assert_eq!(lane_keys(l2, &schedule, table), None);
        assert_eq!(
            lane_eligibility(l2, &schedule, table),
            Err(LaneIneligibility::OverlappingWayMasks)
        );
        let (serial_report, serial_bp) = serial(l2, &schedule, &trace);
        let lanes = replay_lanes(&platform(), l2, &schedule, &trace, 4).unwrap();
        assert_eq!(lanes.lanes, 1);
        assert_eq!(
            lanes.decision.fallback,
            Some(LaneIneligibility::OverlappingWayMasks)
        );
        assert_parity(&serial_report, &serial_bp, &lanes);
    }

    #[test]
    fn scheduled_lanes_match_serial_across_repartitions() {
        // Record with a long compute-only phase; its recorded-cycle gap is
        // orders of magnitude wider than any intra-run stall shift, so the
        // serial (stall-inflated) and lane (recorded-axis) clocks cross the
        // boundary at the same refill.
        let trace = record(400_000);
        let runs = trace.trace().runs();
        let mut widest = (0u64, 0u64);
        for pair in runs.windows(2) {
            let gap = pair[1].start_cycle.saturating_sub(pair[0].start_cycle);
            if gap > widest.0 {
                widest = (gap, pair[0].start_cycle + gap / 2);
            }
        }
        assert!(widest.0 > 100_000, "the compute phase must leave a gap");
        let mid_boundary = widest.1;
        let end_boundary = runs.last().unwrap().start_cycle + 10_000_000;

        let l2 = CacheConfig::new(64, 4).unwrap();
        let map = |sizes: &[(PartitionKey, u32)]| {
            OrganizationSpec::SetPartitioned(PartitionMap::pack(l2.geometry(), sizes).unwrap())
        };
        let schedule = PartitionSchedule::new(vec![
            (0, map(&[(task(0), 16), (task(1), 16), (buffer(), 16)])),
            (
                mid_boundary,
                map(&[(task(0), 8), (task(1), 32), (buffer(), 8)]),
            ),
            (
                end_boundary,
                map(&[(task(0), 32), (task(1), 8), (buffer(), 16)]),
            ),
        ])
        .unwrap();

        let (serial_report, serial_bp) = serial(l2, &schedule, &trace);
        assert_eq!(
            serial_report.repartitions.len(),
            2,
            "both switches must fire (the second past the last refill)"
        );
        let lanes = replay_lanes(&platform(), l2, &schedule, &trace, 4).unwrap();
        assert_eq!(lanes.lanes, 3);
        assert_parity(&serial_report, &serial_bp, &lanes);
        let mut serial_flushes = FlushStats::default();
        for record in &serial_report.repartitions {
            serial_flushes.absorb(record.flush);
        }
        assert_eq!(serial_flushes, lanes.flushes);
    }

    #[test]
    fn lane_count_does_not_change_results() {
        let trace = record(0);
        let l2 = CacheConfig::new(64, 4).unwrap();
        let map = PartitionMap::pack(
            l2.geometry(),
            &[(task(0), 16), (task(1), 16), (buffer(), 16)],
        )
        .unwrap();
        let schedule = PartitionSchedule::single(OrganizationSpec::SetPartitioned(map));
        let one = replay_lanes(&platform(), l2, &schedule, &trace, 1).unwrap();
        let mut eight = replay_lanes(&platform(), l2, &schedule, &trace, 8).unwrap();
        // Only the recorded request differs — every measured number is
        // byte-identical across worker counts.
        assert_eq!(
            eight.decision,
            LaneDecision {
                requested: 8,
                lanes: 3,
                fallback: None
            }
        );
        eight.decision = one.decision;
        assert_eq!(one, eight);
        assert_eq!(one.lanes, 3);
    }

    #[test]
    fn invalid_schedules_surface_as_lane_cache_errors() {
        let trace = record(0);
        let l2 = CacheConfig::new(64, 4).unwrap();
        // A map that covers only one of the three keys.
        let map = PartitionMap::pack(l2.geometry(), &[(task(0), 16)]).unwrap();
        let schedule = PartitionSchedule::single(OrganizationSpec::SetPartitioned(map));
        let err = replay_lanes(&platform(), l2, &schedule, &trace, 4).unwrap_err();
        assert!(matches!(err, PlatformError::LaneCache { .. }));
        assert!(err.to_string().contains("lane replay cache error"));
    }
}
