//! Streaming feeds for the single-pass stack-distance profiler.
//!
//! The [`StackDistanceProfiler`] consumes the **L2-bound** access stream —
//! the L1 misses, in global issue order — which is exactly the stream the
//! [`ProfilingCache`](compmem_cache::ProfilingCache) sees when it is
//! mounted as the live L2. This module provides the three ways to produce
//! that stream without mounting anything in the hierarchy:
//!
//! * [`profile_trace`] profiles a recorded [`PreparedTrace`] through the
//!   trace's cached L1 filter (the same
//!   [`filtered_for`](PreparedTrace::filtered_for) pass replays use), so
//!   profiling a trace that has already been replayed — or replaying a
//!   trace that has been profiled — pays the L1 simulation only once;
//! * [`profile_reader`] profiles straight from a streaming
//!   [`TraceReader`], decoding record by record and never materialising
//!   the trace in memory;
//! * [`TapProfiler`] profiles a **live** run: it is an [`AccessTap`] for
//!   [`System::run_traced`](crate::System::run_traced) that carries its
//!   own bank of private L1s (mirror images of the system's, fed in the
//!   same order, hence bit-identical) and forwards only the refills to the
//!   profiler — one live run yields the shared-cache baseline *and* the
//!   full miss-rate curves, with no trace on disk or in memory.
//!
//! # Windowed profiling
//!
//! Each feed has a **windowed** sibling producing a
//! [`WindowedCurves`] — a [`MissRateCurves`] snapshot per fixed-size
//! window plus the exact whole-run curves — for phase-aware partitioning:
//! [`profile_trace_windowed`], [`profile_reader_windowed`] and
//! [`WindowedTapProfiler`]. Access-count windows are exact everywhere.
//! Cycle-based windows use the real issue cycles for the reader and tap
//! feeds, but multiprocessor streams are observed in *issue order*, which
//! is only approximately chronological (a processor's chunk runs ahead of
//! a peer's clock), so a window can absorb slightly earlier-cycled
//! accesses from another processor — see
//! [`WindowKind::Cycles`](compmem_cache::WindowKind) for the boundary
//! semantics. The prepared-trace feed additionally attributes every
//! refill of a run to the run's start cycle (runs are short, so that
//! coarsening is one run long at worst).
//!
//! # Lane-parallel profiling
//!
//! The profiler's per-key stack banks are disjoint across
//! [`PartitionKey`]s by construction (an access only touches its own
//! key's stacks), so the trace feed also comes in a lane-parallel
//! flavour: [`profile_trace_lanes`] / [`profile_trace_windowed_lanes`]
//! split the L2-bound stream by key the way
//! [`replay_lanes`](crate::lanes::replay_lanes) does, profile each key on
//! its own shard ([`StackDistanceProfiler::keys_only`]) on a scoped
//! worker pool, and merge the shards back
//! ([`StackDistanceProfiler::merge`] /
//! [`WindowedCurves::absorb_shard`]) into *exactly* the serial result.
//! The aggregate whole-L2 curve is the documented exception — all keys
//! fold into one reuse stack, so it rides a designated full-stream shard
//! ([`StackDistanceProfiler::aggregate_only`]); that shard is the
//! critical path, which caps the speedup at roughly 2× regardless of the
//! key count. Unlike replay lanes, profiling lanes need no eligibility
//! check: the split is exact for every organisation, because the
//! profiler models LRU reuse stacks, not the mounted L2.
//!
//! # Persisted curve sidecars
//!
//! Profiling a trace pays the L1 filter simulation before the profiler
//! sees an access, but the curves are a pure function of the trace
//! bytes, the **L1 filter configuration** (which L2-bound stream the
//! trace reduces to) and the profiling resolution/window configuration.
//! [`profile_trace_with_sidecar`] therefore persists them in a `.curves`
//! file next to the trace (the binary sidecar IR of
//! `compmem_trace::curves`, keyed by a content hash of the trace bytes
//! plus [`l1_filter_signature`]): when a matching sidecar exists the
//! curves are loaded back and the **L1 filter pass is skipped
//! entirely**; corrupt, foreign or configuration-mismatched sidecars are
//! silently re-measured and rewritten (their parse failure is a
//! [`CodecError`] [`SidecarOutcome::Rewritten`] records, never a panic).
//!
//! [`CodecError`]: compmem_trace::CodecError

use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use compmem_cache::{
    CurveResolution, MissRateCurves, PartitionKey, PlannedWindowedProfiler, StackDistanceProfiler,
    WindowConfig, WindowPlan, WindowedCurves, WindowedProfiler,
};
use compmem_trace::codec::{TraceReader, TraceRecord};
use compmem_trace::curves::{trace_content_hash, EncodedCurves};
use compmem_trace::{Access, CodecError};

use crate::config::PlatformConfig;
use crate::error::PlatformError;
use crate::replay::{AccessTap, L1Filter, PreparedTrace};

/// An [`AccessTap`] that measures miss-rate curves during a live run.
///
/// The tap owns a mirror of the private L1s — the same `L1Filter` the
/// trace filter pass uses, configured identically to the system's.
/// [`System::run_traced`](crate::System::run_traced) hands every access to
/// the tap in the same order it enters the hierarchy, so the filter's
/// caches evolve bit-identically to the system's and the profiler sees
/// exactly the access stream the shared L2 serves. The tap never perturbs
/// the simulation.
#[derive(Debug)]
pub struct TapProfiler {
    filter: L1Filter,
    profiler: StackDistanceProfiler,
}

impl TapProfiler {
    /// Creates a tap for a live run under `config` feeding `profiler`.
    pub fn new(config: &PlatformConfig, profiler: StackDistanceProfiler) -> Self {
        TapProfiler {
            filter: L1Filter::for_config(config, config.num_processors),
            profiler,
        }
    }

    /// The profiler accumulated so far.
    pub fn profiler(&self) -> &StackDistanceProfiler {
        &self.profiler
    }

    /// Consumes the tap and extracts the measured curves.
    pub fn into_curves(self) -> MissRateCurves {
        self.profiler.into_curves()
    }
}

impl AccessTap for TapProfiler {
    fn record_access(&mut self, processor: usize, _cycle: u64, access: &Access) {
        // The live system validated the processor index before issuing;
        // the expect documents the invariant rather than handling input.
        let refills = self
            .filter
            .refills(processor, access)
            .expect("live runs only issue from configured processors");
        if refills {
            self.profiler.observe(access);
        }
    }
}

/// An [`AccessTap`] that measures **windowed** miss-rate curves during a
/// live run (the phase-aware sibling of [`TapProfiler`]).
///
/// Accesses carry their real issue cycle; access-count windows are
/// exact, cycle windows follow issue order (see the module docs).
#[derive(Debug)]
pub struct WindowedTapProfiler {
    filter: L1Filter,
    profiler: WindowedProfiler,
}

impl WindowedTapProfiler {
    /// Creates a tap for a live run under `config` feeding `profiler`.
    pub fn new(config: &PlatformConfig, profiler: WindowedProfiler) -> Self {
        WindowedTapProfiler {
            filter: L1Filter::for_config(config, config.num_processors),
            profiler,
        }
    }

    /// The windowed profiler accumulated so far.
    pub fn profiler(&self) -> &WindowedProfiler {
        &self.profiler
    }

    /// Consumes the tap and extracts the windowed curves.
    pub fn into_windows(self) -> WindowedCurves {
        self.profiler.finish()
    }
}

impl AccessTap for WindowedTapProfiler {
    fn record_access(&mut self, processor: usize, cycle: u64, access: &Access) {
        let refills = self
            .filter
            .refills(processor, access)
            .expect("live runs only issue from configured processors");
        if refills {
            self.profiler.observe_at(cycle, access);
        }
    }
}

/// Profiles a recorded trace in one pass and returns the miss-rate curves
/// of every partition key, using the trace's cached per-L1-configuration
/// filter (shared with replays of the same trace).
///
/// # Errors
///
/// Returns [`PlatformError::ProcessorOutOfRange`] if a trace run names a
/// processor outside the trace's declared processor count.
pub fn profile_trace(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
) -> Result<MissRateCurves, PlatformError> {
    profile_trace_windowed(config, trace, resolution, WindowConfig::whole_run())
        .map(|windowed| windowed.total)
}

/// Profiles a recorded trace in windows (see the module docs): the
/// whole-run pass of [`profile_trace`] plus one [`MissRateCurves`]
/// snapshot per window.
///
/// Refills are clocked at their run's start cycle (the prepared trace's
/// filter pass does not retain per-access cycles), so cycle windows are
/// run-granular here; access-count windows are exact.
///
/// # Errors
///
/// Returns [`PlatformError::ProcessorOutOfRange`] if a trace run names a
/// processor outside the trace's declared processor count.
pub fn profile_trace_windowed(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
    window: WindowConfig,
) -> Result<WindowedCurves, PlatformError> {
    let filtered = trace.filtered_for(config)?;
    let mut profiler = WindowedProfiler::new(window, resolution, trace.table());
    for run in &filtered.runs {
        for refill in &run.refills {
            profiler.observe_at(run.start_cycle, &refill.access);
        }
    }
    Ok(profiler.finish())
}

/// One unit of lane-parallel profiling work: the designated full-stream
/// shard carrying the aggregate whole-L2 curve, or one per-key shard.
#[derive(Clone, Copy)]
enum ProfileLane {
    Aggregate,
    Key(PartitionKey),
}

/// The lane list of a lane-parallel profile: the aggregate shard first
/// (it is the longest-running lane, so it must start first), then one
/// shard per distinct partition key.
fn profile_lanes_of(keys: Vec<PartitionKey>) -> Vec<ProfileLane> {
    std::iter::once(ProfileLane::Aggregate)
        .chain(keys.into_iter().map(ProfileLane::Key))
        .collect()
}

/// Runs one closure per lane on up to `jobs` scoped worker threads and
/// returns the results in lane order — the same shared-cursor pool
/// [`replay_lanes`](crate::lanes::replay_lanes) uses (this crate sits
/// below the batch executor of `compmem-core`, so it brings its own).
fn run_profile_lanes<T, F>(lanes: &[ProfileLane], jobs: usize, run_lane: F) -> Vec<T>
where
    T: Send,
    F: Fn(ProfileLane) -> T + Sync,
{
    let workers = jobs.max(1).min(lanes.len());
    if workers <= 1 {
        return lanes.iter().map(|lane| run_lane(*lane)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = lanes.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(lane) = lanes.get(index) else { break };
                let result = run_lane(*lane);
                *slots[index].lock().expect("profile lane slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("profile lane slot poisoned")
                .expect("every lane index was claimed by a worker")
        })
        .collect()
}

fn profile_merge_error(error: compmem_cache::CacheError) -> PlatformError {
    PlatformError::ProfileMerge {
        message: error.to_string(),
    }
}

/// The per-region partition keys of a table, indexable by
/// [`RegionId`](compmem_trace::RegionId) index.
fn region_key_map(regions: &compmem_trace::RegionTable) -> Vec<PartitionKey> {
    regions
        .iter()
        .map(|region| PartitionKey::from_region_kind(region.kind))
        .collect()
}

/// Lane-parallel sibling of [`profile_trace`]: splits the L2-bound stream
/// by [`PartitionKey`], profiles each key's sub-stream on its own shard on
/// up to `jobs` worker threads, and merges the shards into curves
/// **point-for-point identical** to the serial pass (the merge
/// cross-validates coverage and fails loudly rather than approximating —
/// see [`StackDistanceProfiler::merge`]).
///
/// `jobs <= 1` (or a single-key trace) delegates to the serial
/// [`profile_trace`], so the job count is a performance knob, never a
/// semantics switch.
///
/// # Errors
///
/// As for [`profile_trace`], plus [`PlatformError::ProfileMerge`] if the
/// shards fail their merge cross-validation (an internal invariant
/// violation).
pub fn profile_trace_lanes(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
    jobs: usize,
) -> Result<MissRateCurves, PlatformError> {
    let keys = PartitionKey::distinct_keys(trace.table());
    if jobs.max(1) <= 1 || keys.len() <= 1 {
        return profile_trace(config, trace, resolution);
    }
    let filtered = trace.filtered_for(config)?;
    let regions = trace.table();
    let region_keys = region_key_map(regions);
    let lanes = profile_lanes_of(keys);
    let run_lane = |lane: ProfileLane| -> StackDistanceProfiler {
        let mut shard = match lane {
            ProfileLane::Aggregate => StackDistanceProfiler::aggregate_only(resolution, regions),
            ProfileLane::Key(_) => StackDistanceProfiler::keys_only(resolution, regions),
        };
        for run in &filtered.runs {
            for refill in &run.refills {
                let observe = match lane {
                    ProfileLane::Aggregate => true,
                    ProfileLane::Key(key) => region_keys[refill.access.region.index()] == key,
                };
                if observe {
                    shard.observe(&refill.access);
                }
            }
        }
        shard
    };
    let mut shards = run_profile_lanes(&lanes, jobs, run_lane).into_iter();
    let mut merged = shards.next().expect("the aggregate shard always exists");
    for shard in shards {
        merged = merged.merge(shard).map_err(profile_merge_error)?;
    }
    Ok(merged.into_curves())
}

/// Lane-parallel sibling of [`profile_trace_windowed`]: every shard
/// closes its windows at the *globally planned* access ordinals (a
/// [`WindowPlan`] distilled from the cycle stream alone, which every lane
/// shares), so the per-window curves merge window-for-window into exactly
/// the serial result.
///
/// # Errors
///
/// As for [`profile_trace_lanes`].
pub fn profile_trace_windowed_lanes(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
    window: WindowConfig,
    jobs: usize,
) -> Result<WindowedCurves, PlatformError> {
    let keys = PartitionKey::distinct_keys(trace.table());
    if jobs.max(1) <= 1 || keys.len() <= 1 {
        return profile_trace_windowed(config, trace, resolution, window);
    }
    let filtered = trace.filtered_for(config)?;
    let regions = trace.table();
    let region_keys = region_key_map(regions);
    // The plan sees the same clocking the serial pass uses — every refill
    // at its run's start cycle — so window boundaries land on identical
    // global ordinals for every shard.
    let plan = WindowPlan::from_cycles(
        window,
        filtered
            .runs
            .iter()
            .flat_map(|run| run.refills.iter().map(move |_| run.start_cycle)),
    );
    let lanes = profile_lanes_of(keys);
    let run_lane = |lane: ProfileLane| -> WindowedCurves {
        let shard = match lane {
            ProfileLane::Aggregate => StackDistanceProfiler::aggregate_only(resolution, regions),
            ProfileLane::Key(_) => StackDistanceProfiler::keys_only(resolution, regions),
        };
        let mut planned = PlannedWindowedProfiler::new(shard, plan.clone());
        let mut ordinal = 0u64;
        for run in &filtered.runs {
            for refill in &run.refills {
                let observe = match lane {
                    ProfileLane::Aggregate => true,
                    ProfileLane::Key(key) => region_keys[refill.access.region.index()] == key,
                };
                if observe {
                    planned.observe(ordinal, &refill.access);
                }
                ordinal += 1;
            }
        }
        planned.finish()
    };
    let mut shards = run_profile_lanes(&lanes, jobs, run_lane).into_iter();
    let mut merged = shards.next().expect("the aggregate shard always exists");
    for shard in shards {
        merged.absorb_shard(&shard).map_err(profile_merge_error)?;
    }
    Ok(merged)
}

/// Profiles a trace straight from a streaming [`TraceReader`] — record by
/// record, without materialising the decoded trace — and returns the
/// miss-rate curves of every partition key.
///
/// ```
/// use compmem_cache::CurveResolution;
/// use compmem_platform::{profile_reader, PlatformConfig};
/// use compmem_trace::{Access, Addr, RegionId, RegionKind, RegionTable, TaskId};
/// use compmem_trace::codec::{TraceReader, TraceWriter};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = RegionTable::new();
/// let task = TaskId::new(0);
/// table.insert("t0.data", RegionKind::TaskData { task }, 4096)?;
/// let mut writer = TraceWriter::new(Vec::new(), &table, 1)?;
/// for i in 0..64u64 {
///     let access = Access::load(Addr::new(i % 32 * 64), 4, task, RegionId::new(0));
///     writer.record(0, i, &access);
/// }
/// let (bytes, _) = writer.finish()?;
///
/// let resolution = CurveResolution::new(4, 16, 2)?;
/// let mut reader = TraceReader::new(bytes.as_slice())?;
/// let curves = profile_reader(&PlatformConfig::default(), &mut reader, resolution)?;
/// // Every record missed the (initially cold) L1 or hit it; the curves
/// // see exactly the misses, and resolve every shape in the resolution.
/// assert!(curves.accesses() > 0);
/// assert!(curves.shared_misses(16, 2)? <= curves.accesses());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PlatformError::ProcessorOutOfRange`] if a record names a
/// processor outside the trace's declared processor count, and
/// [`PlatformError::TraceDecode`] if the stream is corrupt.
pub fn profile_reader<R: Read>(
    config: &PlatformConfig,
    reader: &mut TraceReader<R>,
    resolution: CurveResolution,
) -> Result<MissRateCurves, PlatformError> {
    profile_reader_windowed(config, reader, resolution, WindowConfig::whole_run())
        .map(|windowed| windowed.total)
}

/// Profiles a streaming [`TraceReader`] in windows. Records carry their
/// issue cycle; access-count windows are exact, cycle windows follow the
/// recorded issue order (see the module docs).
///
/// # Errors
///
/// As for [`profile_reader`].
pub fn profile_reader_windowed<R: Read>(
    config: &PlatformConfig,
    reader: &mut TraceReader<R>,
    resolution: CurveResolution,
    window: WindowConfig,
) -> Result<WindowedCurves, PlatformError> {
    let processors = (reader.processors() as usize).max(1);
    let mut filter = L1Filter::for_config(config, processors);
    let mut profiler = WindowedProfiler::new(window, resolution, reader.table());
    while let Some(TraceRecord {
        processor,
        cycle,
        access,
    }) = reader
        .next_record()
        .map_err(|e| PlatformError::TraceDecode {
            message: e.to_string(),
        })?
    {
        if filter.refills(processor as usize, &access)? {
            profiler.observe_at(cycle, &access);
        }
    }
    Ok(profiler.finish())
}

/// What [`profile_trace_with_sidecar`] did to satisfy the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SidecarOutcome {
    /// A matching sidecar existed: its curves were loaded and the L1
    /// filter pass was skipped.
    Reused,
    /// No sidecar existed: the trace was profiled and the sidecar
    /// written.
    Written,
    /// A sidecar existed but could not be used; the trace was re-profiled
    /// and the sidecar replaced.
    Rewritten {
        /// Why the existing sidecar was rejected (the rendered
        /// [`CodecError`] — e.g. corrupt
        /// bytes, a foreign trace hash, or a different profiling
        /// configuration).
        reason: String,
    },
}

/// Profiles a prepared trace with a persisted curve sidecar: loads the
/// curves from `sidecar` when it matches the trace and the requested
/// configuration — **skipping the L1 filter pass entirely** — and
/// otherwise profiles the trace and (re)writes the sidecar.
///
/// A sidecar matches when its embedded content hash equals the trace's
/// ([`EncodedTrace::content_hash`](compmem_trace::EncodedTrace::content_hash)),
/// its L1 signature equals [`l1_filter_signature`] of `config` (the
/// L2-bound stream — and hence every curve — depends on the private L1
/// geometry the filter mirrors), and its resolution and window
/// configuration equal the requested ones. The sidecar encoding is
/// deterministic, so reusing and rewriting are byte-for-byte idempotent.
///
/// ```
/// use compmem_cache::{CurveResolution, WindowConfig};
/// use compmem_platform::{profile_trace_with_sidecar, PlatformConfig, PreparedTrace,
///     SidecarOutcome};
/// use compmem_trace::codec::{EncodedTrace, TraceWriter};
/// use compmem_trace::{Access, Addr, RegionId, RegionKind, RegionTable, TaskId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = RegionTable::new();
/// let task = TaskId::new(0);
/// table.insert("t0.data", RegionKind::TaskData { task }, 4096)?;
/// let mut writer = TraceWriter::new(Vec::new(), &table, 1)?;
/// for i in 0..64u64 {
///     writer.record(0, i, &Access::load(Addr::new(i % 48 * 64), 4, task, RegionId::new(0)));
/// }
/// let (bytes, _) = writer.finish()?;
/// let trace = PreparedTrace::from(EncodedTrace::from_bytes(bytes)?);
///
/// let dir = std::env::temp_dir().join("compmem-sidecar-doctest");
/// std::fs::create_dir_all(&dir)?;
/// let sidecar = dir.join("doctest.curves");
/// let _ = std::fs::remove_file(&sidecar);
///
/// let config = PlatformConfig::default();
/// let resolution = CurveResolution::new(4, 16, 2)?;
/// let window = WindowConfig::whole_run();
/// // First call measures and persists...
/// let (first, outcome) =
///     profile_trace_with_sidecar(&config, &trace, resolution, window, &sidecar)?;
/// assert_eq!(outcome, SidecarOutcome::Written);
/// // ...the second loads the sidecar back, skipping the L1 filter.
/// let (second, outcome) =
///     profile_trace_with_sidecar(&config, &trace, resolution, window, &sidecar)?;
/// assert_eq!(outcome, SidecarOutcome::Reused);
/// assert_eq!(second, first);
/// # let _ = std::fs::remove_file(&sidecar);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`PlatformError::ProcessorOutOfRange`] for an unprofilable
/// trace and [`PlatformError::SidecarWrite`] if the freshly measured
/// sidecar cannot be written. A corrupt or mismatched *existing* sidecar
/// is never an error — it is re-measured and reported through
/// [`SidecarOutcome::Rewritten`].
pub fn profile_trace_with_sidecar(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
    window: WindowConfig,
    sidecar: &Path,
) -> Result<(WindowedCurves, SidecarOutcome), PlatformError> {
    profile_trace_with_sidecar_lanes(config, trace, resolution, window, sidecar, 1)
}

/// Lane-parallel sibling of [`profile_trace_with_sidecar`]: a missing or
/// mismatched sidecar is re-measured by
/// [`profile_trace_windowed_lanes`] on up to `jobs` workers. Lane-measured
/// curves equal serial ones point-for-point and the sidecar encoding is
/// deterministic, so the written sidecar is **byte-identical** for every
/// job count — and a sidecar written serially is reused as-is.
///
/// # Errors
///
/// As for [`profile_trace_with_sidecar`], plus
/// [`PlatformError::ProfileMerge`] from the lane merge.
pub fn profile_trace_with_sidecar_lanes(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
    window: WindowConfig,
    sidecar: &Path,
    jobs: usize,
) -> Result<(WindowedCurves, SidecarOutcome), PlatformError> {
    let rejection = match try_load_sidecar(config, trace, resolution, window, sidecar) {
        Ok(Some(windowed)) => return Ok((windowed, SidecarOutcome::Reused)),
        Ok(None) => None,
        Err(reason) => Some(reason),
    };
    let windowed = profile_trace_windowed_lanes(config, trace, resolution, window, jobs)?;
    windowed
        .to_sidecar(trace.trace().content_hash(), l1_filter_signature(config))
        .write_to(sidecar)
        .map_err(|e| PlatformError::SidecarWrite {
            message: e.to_string(),
        })?;
    let outcome = match rejection {
        None => SidecarOutcome::Written,
        Some(reason) => SidecarOutcome::Rewritten { reason },
    };
    Ok((windowed, outcome))
}

/// Stable signature of the L1 filter configuration a profiling pass runs
/// behind: the instruction and data L1 geometries, replacement policies
/// and seeds, hashed in a fixed field order. Embedded in every curve
/// sidecar so curves measured behind one L1 configuration are never
/// reused for another (a different L1 produces a different L2-bound
/// stream from the same trace).
pub fn l1_filter_signature(config: &PlatformConfig) -> u64 {
    let mut fields = Vec::with_capacity(2 * 4 * 8);
    for l1 in [config.l1i, config.l1d] {
        fields.extend_from_slice(&u64::from(l1.geometry().sets()).to_le_bytes());
        fields.extend_from_slice(&u64::from(l1.geometry().ways()).to_le_bytes());
        fields.extend_from_slice(&(l1.replacement_policy() as u64).to_le_bytes());
        fields.extend_from_slice(&l1.random_seed().to_le_bytes());
    }
    trace_content_hash(&fields)
}

/// Attempts to load a matching sidecar: `Ok(None)` when the file does not
/// exist, `Err(reason)` when it exists but is corrupt or mismatched.
fn try_load_sidecar(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
    window: WindowConfig,
    sidecar: &Path,
) -> Result<Option<WindowedCurves>, String> {
    if !sidecar.exists() {
        return Ok(None);
    }
    let mismatch = |field: &'static str| CodecError::SidecarMismatch { field }.to_string();
    let encoded = EncodedCurves::read_from(sidecar).map_err(|e| e.to_string())?;
    encoded
        .validate_for_trace(trace.trace().bytes())
        .map_err(|e| e.to_string())?;
    if encoded.header().l1_signature != l1_filter_signature(config) {
        return Err(mismatch("l1 configuration"));
    }
    let windowed = WindowedCurves::from_sidecar(&encoded).map_err(|e| e.to_string())?;
    if windowed.resolution != resolution {
        return Err(mismatch("resolution"));
    }
    if windowed.config != window {
        return Err(mismatch("window config"));
    }
    Ok(Some(windowed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Burst, BurstOutcome, Op, WorkloadDriver};
    use crate::replay::ReplaySystem;
    use crate::scheduler::TaskMapping;
    use crate::system::System;
    use compmem_cache::{
        CacheConfig, CacheModel, CacheSizeLattice, OrganizationSpec, PartitionKey, ProfilingCache,
    };
    use compmem_trace::codec::{EncodedTrace, TraceWriter};
    use compmem_trace::{Addr, RegionId, RegionKind, RegionTable, TaskId};

    /// Two tasks with interleaving loads, stores and compute over distinct
    /// regions (the same shape as the replay tests).
    struct MixedDriver {
        remaining: Vec<u32>,
        cursor: Vec<u64>,
    }

    impl WorkloadDriver for MixedDriver {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            let t = task.index();
            if self.remaining[t] == 0 {
                return BurstOutcome::Finished;
            }
            self.remaining[t] -= 1;
            let base = 0x10_0000 * (t as u64 + 1);
            let mut ops = Vec::new();
            for i in 0..12 {
                let addr = base + ((self.cursor[t] + i * 3) % 160) * 64;
                ops.push(Op::Compute(1 + (i % 2) as u32));
                let access = if i % 4 == 0 {
                    Access::store(Addr::new(addr), 4, task, RegionId::new(t as u32))
                } else {
                    Access::load(Addr::new(addr), 4, task, RegionId::new(t as u32))
                };
                ops.push(Op::Mem(access));
            }
            self.cursor[t] += 12;
            BurstOutcome::Ready(Burst::new(ops))
        }
    }

    fn driver() -> MixedDriver {
        MixedDriver {
            remaining: vec![40, 40],
            cursor: vec![0, 0],
        }
    }

    fn region_table() -> RegionTable {
        let mut table = RegionTable::new();
        for t in 0..2u32 {
            table
                .insert(
                    format!("t{t}.data"),
                    RegionKind::TaskData {
                        task: TaskId::new(t),
                    },
                    160 * 64,
                )
                .unwrap();
        }
        table
    }

    fn l2_config() -> CacheConfig {
        CacheConfig::new(64, 4).unwrap()
    }

    fn resolution() -> CurveResolution {
        CurveResolution::for_geometry(l2_config().geometry(), 4).unwrap()
    }

    fn platform() -> PlatformConfig {
        PlatformConfig::default().processors(2)
    }

    fn mapping() -> TaskMapping {
        TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2)
    }

    /// Runs the workload live with a `TraceWriter` tap and returns the
    /// encoded trace.
    fn record() -> EncodedTrace {
        let mut system = System::new(
            platform(),
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            mapping(),
        )
        .unwrap();
        let mut writer = TraceWriter::new(Vec::new(), &region_table(), 2).unwrap();
        system.run_traced(&mut driver(), &mut writer).unwrap();
        let (bytes, _) = writer.finish().unwrap();
        EncodedTrace::from_bytes(bytes).unwrap()
    }

    /// Reference profiles: the live run with the ProfilingCache as L2.
    fn shadow_profiles(lattice: &CacheSizeLattice) -> compmem_cache::MissProfiles {
        let l2: Box<dyn CacheModel> = OrganizationSpec::Profiling(lattice.clone())
            .build(l2_config(), &region_table())
            .unwrap();
        let mut system = System::new(platform(), l2, mapping()).unwrap();
        system.run(&mut driver()).unwrap();
        system
            .into_l2()
            .into_any()
            .downcast::<ProfilingCache>()
            .unwrap()
            .into_profiles()
    }

    #[test]
    fn live_tap_matches_the_shadow_cache_profiling_run() {
        let lattice = CacheSizeLattice::new(l2_config().geometry(), 4);
        let expected = shadow_profiles(&lattice);

        // The profiling run again, but with the shared baseline as L2 and
        // the tap measuring the curves on the side.
        let mut system = System::new(
            platform(),
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            mapping(),
        )
        .unwrap();
        let mut tap = TapProfiler::new(
            &platform(),
            StackDistanceProfiler::new(resolution(), &region_table()),
        );
        system.run_traced(&mut driver(), &mut tap).unwrap();
        let profiles = tap.into_curves().to_profiles(&lattice, 4).unwrap();
        assert_eq!(profiles, expected);
    }

    #[test]
    fn trace_and_reader_profiles_match_the_live_tap() {
        let trace = record();
        let prepared = PreparedTrace::from(trace.clone());
        let from_trace = profile_trace(&platform(), &prepared, resolution()).unwrap();

        let mut reader = TraceReader::new(trace.bytes()).unwrap();
        let from_reader = profile_reader(&platform(), &mut reader, resolution()).unwrap();
        assert_eq!(from_trace, from_reader);

        let mut system = System::new(
            platform(),
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            mapping(),
        )
        .unwrap();
        let mut tap = TapProfiler::new(
            &platform(),
            StackDistanceProfiler::new(resolution(), &region_table()),
        );
        system.run_traced(&mut driver(), &mut tap).unwrap();
        assert!(tap.profiler().accesses() > 0);
        assert_eq!(tap.into_curves(), from_trace);
    }

    #[test]
    fn profiling_shares_the_replay_l1_filter() {
        let prepared = PreparedTrace::from(record());
        let config = platform();
        // Replay first: the filter pass is computed and cached...
        let mut replay = ReplaySystem::new(
            &config,
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            &prepared,
        )
        .unwrap();
        let report = replay.run();
        // ...then profiling reuses it (same Arc), and its per-key access
        // totals are exactly the L2 accesses of the replay.
        let before = prepared.filtered_for(&config).unwrap();
        let curves = profile_trace(&config, &prepared, resolution()).unwrap();
        let after = prepared.filtered_for(&config).unwrap();
        assert!(std::sync::Arc::ptr_eq(&before, &after));
        let profiled: u64 = curves.curves.values().map(|c| c.accesses).sum();
        assert_eq!(profiled, report.l2.accesses);
    }

    #[test]
    fn out_of_range_processor_is_reported() {
        let mut table = RegionTable::new();
        table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                4096,
            )
            .unwrap();
        let mut writer = TraceWriter::new(Vec::new(), &table, 1).unwrap();
        let access = Access::load(Addr::new(0x40), 4, TaskId::new(0), RegionId::new(0));
        writer.record(5, 0, &access);
        let (bytes, _) = writer.finish().unwrap();
        let trace = EncodedTrace::from_bytes(bytes).unwrap();

        // A trace naming a region outside its embedded table is rejected
        // at decode time — no profiler or replay consumer can be handed a
        // bogus region index.
        let empty = RegionTable::new();
        let mut corrupt_writer = TraceWriter::new(Vec::new(), &empty, 1).unwrap();
        corrupt_writer.record(0, 0, &access);
        let (corrupt_bytes, _) = corrupt_writer.finish().unwrap();
        assert!(EncodedTrace::from_bytes(corrupt_bytes).is_err());
        let prepared = PreparedTrace::from(trace.clone());
        assert!(matches!(
            profile_trace(&PlatformConfig::default(), &prepared, resolution()),
            Err(PlatformError::ProcessorOutOfRange { .. })
        ));
        let mut reader = TraceReader::new(trace.bytes()).unwrap();
        assert!(matches!(
            profile_reader(&PlatformConfig::default(), &mut reader, resolution()),
            Err(PlatformError::ProcessorOutOfRange { .. })
        ));
    }

    #[test]
    fn windowed_totals_match_the_plain_pass_across_all_feeds() {
        let trace = record();
        let prepared = PreparedTrace::from(trace.clone());
        let window = compmem_cache::WindowConfig::accesses(40).unwrap();

        let plain = profile_trace(&platform(), &prepared, resolution()).unwrap();
        let windowed =
            profile_trace_windowed(&platform(), &prepared, resolution(), window).unwrap();
        assert!(windowed.windows.len() > 1, "enough traffic for 2+ windows");
        assert_eq!(windowed.total, plain);
        assert_eq!(windowed.reconstruct_total(), plain);

        let mut reader = TraceReader::new(trace.bytes()).unwrap();
        let from_reader =
            profile_reader_windowed(&platform(), &mut reader, resolution(), window).unwrap();
        assert_eq!(from_reader.total, plain);
        assert_eq!(
            from_reader
                .windows
                .iter()
                .map(|w| w.curves.accesses())
                .collect::<Vec<_>>(),
            windowed
                .windows
                .iter()
                .map(|w| w.curves.accesses())
                .collect::<Vec<_>>(),
            "access-count windows slice both feeds identically"
        );

        // The live windowed tap agrees on the whole-run curves too.
        let mut system = System::new(
            platform(),
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            mapping(),
        )
        .unwrap();
        let mut tap = WindowedTapProfiler::new(
            &platform(),
            compmem_cache::WindowedProfiler::new(window, resolution(), &region_table()),
        );
        system.run_traced(&mut driver(), &mut tap).unwrap();
        assert!(tap.profiler().accesses() > 0);
        assert_eq!(tap.into_windows().total, plain);
    }

    #[test]
    fn sidecar_is_written_then_reused_byte_identically() {
        let dir = std::env::temp_dir().join("compmem-sidecar-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.curves");
        let _ = std::fs::remove_file(&path);

        let prepared = PreparedTrace::from(record());
        let window = compmem_cache::WindowConfig::accesses(64).unwrap();
        let (first, outcome) =
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), window, &path)
                .unwrap();
        assert_eq!(outcome, SidecarOutcome::Written);
        let bytes = std::fs::read(&path).unwrap();

        // Second invocation: loaded back, file untouched, curves equal.
        let (second, outcome) =
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), window, &path)
                .unwrap();
        assert_eq!(outcome, SidecarOutcome::Reused);
        assert_eq!(second, first);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);

        // A different profiling configuration rejects the sidecar and
        // rewrites it.
        let other = compmem_cache::WindowConfig::accesses(32).unwrap();
        let (_, outcome) =
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), other, &path).unwrap();
        assert!(matches!(outcome, SidecarOutcome::Rewritten { ref reason }
            if reason.contains("window config")));

        // A different *L1 configuration* rejects it too: the L2-bound
        // stream (and hence every curve) depends on the private L1s, so
        // curves measured behind one L1 must never answer for another.
        std::fs::write(&path, &bytes).unwrap();
        let small_l1 = platform().l1(CacheConfig::new(4, 2).unwrap());
        assert_ne!(
            l1_filter_signature(&small_l1),
            l1_filter_signature(&platform())
        );
        let (refiltered, outcome) =
            profile_trace_with_sidecar(&small_l1, &prepared, resolution(), window, &path).unwrap();
        assert!(matches!(outcome, SidecarOutcome::Rewritten { ref reason }
            if reason.contains("l1 configuration")));
        assert_ne!(
            refiltered.total, first.total,
            "a smaller L1 passes more refills through to the profiler"
        );

        // Restore, then corrupt the file: silently re-measured, never a
        // panic.
        std::fs::write(&path, &bytes).unwrap();
        let (_, outcome) =
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), window, &path)
                .unwrap();
        assert_eq!(outcome, SidecarOutcome::Reused);
        std::fs::write(&path, b"garbage").unwrap();
        let (_, outcome) =
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), window, &path)
                .unwrap();
        assert!(matches!(outcome, SidecarOutcome::Rewritten { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sidecar_reuse_skips_the_l1_filter_entirely() {
        // A trace whose run names processor 5 on a 1-processor recording
        // cannot pass the L1 filter (ProcessorOutOfRange) — but a valid
        // sidecar for its bytes loads fine, proving the reuse path never
        // touches the filter.
        let mut table = RegionTable::new();
        table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                4096,
            )
            .unwrap();
        let mut writer = TraceWriter::new(Vec::new(), &table, 1).unwrap();
        let access = Access::load(Addr::new(0x40), 4, TaskId::new(0), RegionId::new(0));
        writer.record(5, 0, &access);
        let (bytes, _) = writer.finish().unwrap();
        let prepared = PreparedTrace::from(EncodedTrace::from_bytes(bytes).unwrap());

        let window = compmem_cache::WindowConfig::whole_run();
        let dir = std::env::temp_dir().join("compmem-sidecar-skip-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.curves");

        // Without a sidecar, profiling must fail in the filter.
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), window, &path),
            Err(PlatformError::ProcessorOutOfRange { .. })
        ));

        // Plant a (trivial) sidecar bound to the trace's content hash
        // and the platform's L1 configuration.
        let empty = compmem_cache::WindowedProfiler::new(window, resolution(), &table).finish();
        empty
            .to_sidecar(
                prepared.trace().content_hash(),
                l1_filter_signature(&platform()),
            )
            .write_to(&path)
            .unwrap();
        let (loaded, outcome) =
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), window, &path)
                .unwrap();
        assert_eq!(outcome, SidecarOutcome::Reused);
        assert_eq!(loaded, empty);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lane_parallel_profiles_match_serial_point_for_point() {
        let prepared = PreparedTrace::from(record());
        let serial = profile_trace(&platform(), &prepared, resolution()).unwrap();
        assert!(serial.accesses() > 0, "the workload must reach the L2");
        for jobs in [1, 2, 4, 8] {
            let laned = profile_trace_lanes(&platform(), &prepared, resolution(), jobs).unwrap();
            assert_eq!(laned, serial, "jobs = {jobs} must not change the curves");
        }
    }

    #[test]
    fn lane_parallel_windowed_profiles_match_serial_window_for_window() {
        let prepared = PreparedTrace::from(record());
        for window in [
            compmem_cache::WindowConfig::whole_run(),
            compmem_cache::WindowConfig::accesses(40).unwrap(),
            compmem_cache::WindowConfig::cycles(200).unwrap(),
        ] {
            let serial =
                profile_trace_windowed(&platform(), &prepared, resolution(), window).unwrap();
            for jobs in [2, 4] {
                let laned = profile_trace_windowed_lanes(
                    &platform(),
                    &prepared,
                    resolution(),
                    window,
                    jobs,
                )
                .unwrap();
                assert_eq!(laned, serial, "window {window:?}, jobs = {jobs}");
            }
        }
    }

    #[test]
    fn lane_profiled_sidecar_is_byte_identical_to_serial() {
        let dir = std::env::temp_dir().join("compmem-sidecar-lanes-test");
        std::fs::create_dir_all(&dir).unwrap();
        let serial_path = dir.join("serial.curves");
        let laned_path = dir.join("laned.curves");
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&laned_path);

        let prepared = PreparedTrace::from(record());
        let window = compmem_cache::WindowConfig::accesses(64).unwrap();
        let (serial, outcome) =
            profile_trace_with_sidecar(&platform(), &prepared, resolution(), window, &serial_path)
                .unwrap();
        assert_eq!(outcome, SidecarOutcome::Written);
        let (laned, outcome) = profile_trace_with_sidecar_lanes(
            &platform(),
            &prepared,
            resolution(),
            window,
            &laned_path,
            4,
        )
        .unwrap();
        assert_eq!(outcome, SidecarOutcome::Written);
        assert_eq!(laned, serial);
        assert_eq!(
            std::fs::read(&serial_path).unwrap(),
            std::fs::read(&laned_path).unwrap(),
            "lane-measured sidecars must be byte-identical to serial ones"
        );

        // A serially written sidecar satisfies a lane-parallel request.
        let (reused, outcome) = profile_trace_with_sidecar_lanes(
            &platform(),
            &prepared,
            resolution(),
            window,
            &serial_path,
            4,
        )
        .unwrap();
        assert_eq!(outcome, SidecarOutcome::Reused);
        assert_eq!(reused, serial);
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&laned_path);
    }

    #[test]
    fn curves_name_every_active_key() {
        let prepared = PreparedTrace::from(record());
        let curves = profile_trace(&platform(), &prepared, resolution()).unwrap();
        for t in 0..2 {
            assert!(
                curves.curve(PartitionKey::Task(TaskId::new(t))).is_some(),
                "task {t} reached the L2"
            );
        }
    }
}
