//! Streaming feeds for the single-pass stack-distance profiler.
//!
//! The [`StackDistanceProfiler`] consumes the **L2-bound** access stream —
//! the L1 misses, in global issue order — which is exactly the stream the
//! [`ProfilingCache`](compmem_cache::ProfilingCache) sees when it is
//! mounted as the live L2. This module provides the three ways to produce
//! that stream without mounting anything in the hierarchy:
//!
//! * [`profile_trace`] profiles a recorded [`PreparedTrace`] through the
//!   trace's cached L1 filter (the same
//!   [`filtered_for`](PreparedTrace::filtered_for) pass replays use), so
//!   profiling a trace that has already been replayed — or replaying a
//!   trace that has been profiled — pays the L1 simulation only once;
//! * [`profile_reader`] profiles straight from a streaming
//!   [`TraceReader`], decoding record by record and never materialising
//!   the trace in memory;
//! * [`TapProfiler`] profiles a **live** run: it is an [`AccessTap`] for
//!   [`System::run_traced`](crate::System::run_traced) that carries its
//!   own bank of private L1s (mirror images of the system's, fed in the
//!   same order, hence bit-identical) and forwards only the refills to the
//!   profiler — one live run yields the shared-cache baseline *and* the
//!   full miss-rate curves, with no trace on disk or in memory.

use std::io::Read;

use compmem_cache::{CurveResolution, MissRateCurves, StackDistanceProfiler};
use compmem_trace::codec::{TraceReader, TraceRecord};
use compmem_trace::Access;

use crate::config::PlatformConfig;
use crate::error::PlatformError;
use crate::replay::{AccessTap, L1Filter, PreparedTrace};

/// An [`AccessTap`] that measures miss-rate curves during a live run.
///
/// The tap owns a mirror of the private L1s — the same `L1Filter` the
/// trace filter pass uses, configured identically to the system's.
/// [`System::run_traced`](crate::System::run_traced) hands every access to
/// the tap in the same order it enters the hierarchy, so the filter's
/// caches evolve bit-identically to the system's and the profiler sees
/// exactly the access stream the shared L2 serves. The tap never perturbs
/// the simulation.
#[derive(Debug)]
pub struct TapProfiler {
    filter: L1Filter,
    profiler: StackDistanceProfiler,
}

impl TapProfiler {
    /// Creates a tap for a live run under `config` feeding `profiler`.
    pub fn new(config: &PlatformConfig, profiler: StackDistanceProfiler) -> Self {
        TapProfiler {
            filter: L1Filter::for_config(config, config.num_processors),
            profiler,
        }
    }

    /// The profiler accumulated so far.
    pub fn profiler(&self) -> &StackDistanceProfiler {
        &self.profiler
    }

    /// Consumes the tap and extracts the measured curves.
    pub fn into_curves(self) -> MissRateCurves {
        self.profiler.into_curves()
    }
}

impl AccessTap for TapProfiler {
    fn record_access(&mut self, processor: usize, _cycle: u64, access: &Access) {
        // The live system validated the processor index before issuing;
        // the expect documents the invariant rather than handling input.
        let refills = self
            .filter
            .refills(processor, access)
            .expect("live runs only issue from configured processors");
        if refills {
            self.profiler.observe(access);
        }
    }
}

/// Profiles a recorded trace in one pass and returns the miss-rate curves
/// of every partition key, using the trace's cached per-L1-configuration
/// filter (shared with replays of the same trace).
///
/// # Errors
///
/// Returns [`PlatformError::ProcessorOutOfRange`] if a trace run names a
/// processor outside the trace's declared processor count.
pub fn profile_trace(
    config: &PlatformConfig,
    trace: &PreparedTrace,
    resolution: CurveResolution,
) -> Result<MissRateCurves, PlatformError> {
    let filtered = trace.filtered_for(config)?;
    let mut profiler = StackDistanceProfiler::new(resolution, trace.table());
    for run in &filtered.runs {
        for refill in &run.refills {
            profiler.observe(&refill.access);
        }
    }
    Ok(profiler.into_curves())
}

/// Profiles a trace straight from a streaming [`TraceReader`] — record by
/// record, without materialising the decoded trace — and returns the
/// miss-rate curves of every partition key.
///
/// # Errors
///
/// Returns [`PlatformError::ProcessorOutOfRange`] if a record names a
/// processor outside the trace's declared processor count, and
/// [`PlatformError::TraceDecode`] if the stream is corrupt.
pub fn profile_reader<R: Read>(
    config: &PlatformConfig,
    reader: &mut TraceReader<R>,
    resolution: CurveResolution,
) -> Result<MissRateCurves, PlatformError> {
    let processors = (reader.processors() as usize).max(1);
    let mut filter = L1Filter::for_config(config, processors);
    let mut profiler = StackDistanceProfiler::new(resolution, reader.table());
    while let Some(TraceRecord {
        processor, access, ..
    }) = reader
        .next_record()
        .map_err(|e| PlatformError::TraceDecode {
            message: e.to_string(),
        })?
    {
        if filter.refills(processor as usize, &access)? {
            profiler.observe(&access);
        }
    }
    Ok(profiler.into_curves())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Burst, BurstOutcome, Op, WorkloadDriver};
    use crate::replay::ReplaySystem;
    use crate::scheduler::TaskMapping;
    use crate::system::System;
    use compmem_cache::{
        CacheConfig, CacheModel, CacheSizeLattice, OrganizationSpec, PartitionKey, ProfilingCache,
    };
    use compmem_trace::codec::{EncodedTrace, TraceWriter};
    use compmem_trace::{Addr, RegionId, RegionKind, RegionTable, TaskId};

    /// Two tasks with interleaving loads, stores and compute over distinct
    /// regions (the same shape as the replay tests).
    struct MixedDriver {
        remaining: Vec<u32>,
        cursor: Vec<u64>,
    }

    impl WorkloadDriver for MixedDriver {
        fn next_burst(&mut self, task: TaskId) -> BurstOutcome {
            let t = task.index();
            if self.remaining[t] == 0 {
                return BurstOutcome::Finished;
            }
            self.remaining[t] -= 1;
            let base = 0x10_0000 * (t as u64 + 1);
            let mut ops = Vec::new();
            for i in 0..12 {
                let addr = base + ((self.cursor[t] + i * 3) % 160) * 64;
                ops.push(Op::Compute(1 + (i % 2) as u32));
                let access = if i % 4 == 0 {
                    Access::store(Addr::new(addr), 4, task, RegionId::new(t as u32))
                } else {
                    Access::load(Addr::new(addr), 4, task, RegionId::new(t as u32))
                };
                ops.push(Op::Mem(access));
            }
            self.cursor[t] += 12;
            BurstOutcome::Ready(Burst::new(ops))
        }
    }

    fn driver() -> MixedDriver {
        MixedDriver {
            remaining: vec![40, 40],
            cursor: vec![0, 0],
        }
    }

    fn region_table() -> RegionTable {
        let mut table = RegionTable::new();
        for t in 0..2u32 {
            table
                .insert(
                    format!("t{t}.data"),
                    RegionKind::TaskData {
                        task: TaskId::new(t),
                    },
                    160 * 64,
                )
                .unwrap();
        }
        table
    }

    fn l2_config() -> CacheConfig {
        CacheConfig::new(64, 4).unwrap()
    }

    fn resolution() -> CurveResolution {
        CurveResolution::for_geometry(l2_config().geometry(), 4).unwrap()
    }

    fn platform() -> PlatformConfig {
        PlatformConfig::default().processors(2)
    }

    fn mapping() -> TaskMapping {
        TaskMapping::round_robin(&[TaskId::new(0), TaskId::new(1)], 2)
    }

    /// Runs the workload live with a `TraceWriter` tap and returns the
    /// encoded trace.
    fn record() -> EncodedTrace {
        let mut system = System::new(
            platform(),
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            mapping(),
        )
        .unwrap();
        let mut writer = TraceWriter::new(Vec::new(), &region_table(), 2).unwrap();
        system.run_traced(&mut driver(), &mut writer).unwrap();
        let (bytes, _) = writer.finish().unwrap();
        EncodedTrace::from_bytes(bytes).unwrap()
    }

    /// Reference profiles: the live run with the ProfilingCache as L2.
    fn shadow_profiles(lattice: &CacheSizeLattice) -> compmem_cache::MissProfiles {
        let l2: Box<dyn CacheModel> = OrganizationSpec::Profiling(lattice.clone())
            .build(l2_config(), &region_table())
            .unwrap();
        let mut system = System::new(platform(), l2, mapping()).unwrap();
        system.run(&mut driver()).unwrap();
        system
            .into_l2()
            .into_any()
            .downcast::<ProfilingCache>()
            .unwrap()
            .into_profiles()
    }

    #[test]
    fn live_tap_matches_the_shadow_cache_profiling_run() {
        let lattice = CacheSizeLattice::new(l2_config().geometry(), 4);
        let expected = shadow_profiles(&lattice);

        // The profiling run again, but with the shared baseline as L2 and
        // the tap measuring the curves on the side.
        let mut system = System::new(
            platform(),
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            mapping(),
        )
        .unwrap();
        let mut tap = TapProfiler::new(
            &platform(),
            StackDistanceProfiler::new(resolution(), &region_table()),
        );
        system.run_traced(&mut driver(), &mut tap).unwrap();
        let profiles = tap.into_curves().to_profiles(&lattice, 4).unwrap();
        assert_eq!(profiles, expected);
    }

    #[test]
    fn trace_and_reader_profiles_match_the_live_tap() {
        let trace = record();
        let prepared = PreparedTrace::from(trace.clone());
        let from_trace = profile_trace(&platform(), &prepared, resolution()).unwrap();

        let mut reader = TraceReader::new(trace.bytes()).unwrap();
        let from_reader = profile_reader(&platform(), &mut reader, resolution()).unwrap();
        assert_eq!(from_trace, from_reader);

        let mut system = System::new(
            platform(),
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            mapping(),
        )
        .unwrap();
        let mut tap = TapProfiler::new(
            &platform(),
            StackDistanceProfiler::new(resolution(), &region_table()),
        );
        system.run_traced(&mut driver(), &mut tap).unwrap();
        assert!(tap.profiler().accesses() > 0);
        assert_eq!(tap.into_curves(), from_trace);
    }

    #[test]
    fn profiling_shares_the_replay_l1_filter() {
        let prepared = PreparedTrace::from(record());
        let config = platform();
        // Replay first: the filter pass is computed and cached...
        let mut replay = ReplaySystem::new(
            &config,
            Box::new(compmem_cache::SharedCache::new(l2_config())),
            &prepared,
        )
        .unwrap();
        let report = replay.run();
        // ...then profiling reuses it (same Arc), and its per-key access
        // totals are exactly the L2 accesses of the replay.
        let before = prepared.filtered_for(&config).unwrap();
        let curves = profile_trace(&config, &prepared, resolution()).unwrap();
        let after = prepared.filtered_for(&config).unwrap();
        assert!(std::sync::Arc::ptr_eq(&before, &after));
        let profiled: u64 = curves.curves.values().map(|c| c.accesses).sum();
        assert_eq!(profiled, report.l2.accesses);
    }

    #[test]
    fn out_of_range_processor_is_reported() {
        let mut table = RegionTable::new();
        table
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                4096,
            )
            .unwrap();
        let mut writer = TraceWriter::new(Vec::new(), &table, 1).unwrap();
        let access = Access::load(Addr::new(0x40), 4, TaskId::new(0), RegionId::new(0));
        writer.record(5, 0, &access);
        let (bytes, _) = writer.finish().unwrap();
        let trace = EncodedTrace::from_bytes(bytes).unwrap();

        // A trace naming a region outside its embedded table is rejected
        // at decode time — no profiler or replay consumer can be handed a
        // bogus region index.
        let empty = RegionTable::new();
        let mut corrupt_writer = TraceWriter::new(Vec::new(), &empty, 1).unwrap();
        corrupt_writer.record(0, 0, &access);
        let (corrupt_bytes, _) = corrupt_writer.finish().unwrap();
        assert!(EncodedTrace::from_bytes(corrupt_bytes).is_err());
        let prepared = PreparedTrace::from(trace.clone());
        assert!(matches!(
            profile_trace(&PlatformConfig::default(), &prepared, resolution()),
            Err(PlatformError::ProcessorOutOfRange { .. })
        ));
        let mut reader = TraceReader::new(trace.bytes()).unwrap();
        assert!(matches!(
            profile_reader(&PlatformConfig::default(), &mut reader, resolution()),
            Err(PlatformError::ProcessorOutOfRange { .. })
        ));
    }

    #[test]
    fn curves_name_every_active_key() {
        let prepared = PreparedTrace::from(record());
        let curves = profile_trace(&platform(), &prepared, resolution()).unwrap();
        for t in 0..2 {
            assert!(
                curves.curve(PartitionKey::Task(TaskId::new(t))).is_some(),
                "task {t} reached the L2"
            );
        }
    }
}
