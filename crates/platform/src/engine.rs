//! The discrete-event core shared by the platform and the KPN runtime.
//!
//! # The event-driven timing model
//!
//! Everything that happens in the simulated machine is an *event*: "this
//! processor is ready to execute again at cycle `t`", "this task can fire
//! again at cycle `t`". An [`EventQueue`] is a min-heap of
//! `(ready_cycle, payload)` entries; the simulation repeatedly pops the
//! earliest event, performs its work (advancing that actor's local clock),
//! and pushes the follow-up event. Actors that cannot make progress are
//! *parked* — they simply have no event in the queue — and are re-inserted
//! when another actor's event unblocks them (a FIFO gains tokens or space,
//! a burst completes, a task retires).
//!
//! The global clock is therefore implicit: it is the timestamp of the event
//! currently being processed, and it only ever moves forward. Shared
//! resources such as the memory bus serialise against this clock (see
//! [`Bus::request`](crate::Bus::request)), which is how bus contention,
//! FIFO stalls and per-processor firing are all driven off one timeline.
//!
//! Ties are broken by insertion order (FIFO), which keeps runs
//! deterministic: two events at the same cycle are processed in the order
//! they were scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry of the queue.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (and, on ties, first-scheduled) entry on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap of `(ready_cycle, payload)` events.
///
/// ```
/// use compmem_platform::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(30, "c");
/// q.push(10, "a");
/// q.push(10, "b");
/// assert_eq!(q.pop(), Some((10, "a"))); // earliest first, FIFO on ties
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((30, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to become ready at cycle `at`.
    pub fn push(&mut self, at: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Ready cycle of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, 'b');
        q.push(1, 'a');
        q.push(9, 'c');
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.pop(), Some((1, 'a')));
        assert_eq!(q.pop(), Some((5, 'b')));
        assert_eq!(q.pop(), Some((9, 'c')));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.push(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..16).collect::<Vec<i32>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_determinism() {
        let mut q = EventQueue::new();
        q.push(10, "x");
        q.push(10, "y");
        assert_eq!(q.pop(), Some((10, "x")));
        q.push(10, "z");
        assert_eq!(q.pop(), Some((10, "y")));
        assert_eq!(q.pop(), Some((10, "z")));
        assert_eq!(q.len(), 0);
    }
}
