//! Simulation reports: the quantities the paper's evaluation tables are
//! built from.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use compmem_cache::{CacheStats, FlushStats, KeyStats};
use compmem_trace::{RegionId, TaskId};

/// One fired repartition event of a
/// [`PartitionSchedule`](compmem_cache::PartitionSchedule) run: when it
/// applied, what it flushed, and the L2 counters at the boundary (so
/// per-segment miss counts fall out as differences).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepartitionRecord {
    /// The schedule step that fired (1-based: step 0 is the organisation
    /// the run started under).
    pub step: usize,
    /// The scheduled boundary cycle the step applied at.
    pub at_cycle: u64,
    /// Lines invalidated / written back by the switch.
    pub flush: FlushStats,
    /// L2 accesses accumulated before the switch.
    pub l2_accesses_before: u64,
    /// L2 misses accumulated before the switch.
    pub l2_misses_before: u64,
}

/// Execution summary of one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorReport {
    /// Total simulated cycles on this processor (its local clock at the end).
    pub cycles: u64,
    /// Cycles spent executing instructions.
    pub busy_cycles: u64,
    /// Cycles stalled on the memory hierarchy.
    pub stall_cycles: u64,
    /// Cycles spent switching tasks.
    pub switch_cycles: u64,
    /// Cycles spent idle.
    pub idle_cycles: u64,
    /// Architectural instructions executed.
    pub instructions: u64,
    /// Number of task switches.
    pub task_switches: u64,
}

impl ProcessorReport {
    /// Cycles per instruction, counting busy, stall and switch cycles (the
    /// processor-centric CPI the paper reports), or zero if the processor
    /// executed nothing.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.busy_cycles + self.stall_cycles + self.switch_cycles) as f64
                / self.instructions as f64
        }
    }

    /// Fraction of cycles the processor was not idle.
    pub fn utilisation(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            1.0 - self.idle_cycles as f64 / self.cycles as f64
        }
    }
}

/// Full result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Per-processor execution summaries.
    pub processors: Vec<ProcessorReport>,
    /// Aggregate statistics of all private L1 caches.
    pub l1: CacheStats,
    /// Statistics of the shared L2 cache.
    pub l2: CacheStats,
    /// L2 accesses and misses per task.
    pub l2_by_task: BTreeMap<TaskId, KeyStats>,
    /// L2 accesses and misses per region.
    pub l2_by_region: BTreeMap<RegionId, KeyStats>,
    /// Number of accesses served by DRAM.
    pub dram_accesses: u64,
    /// Number of dirty L2 lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Total cycles requests waited for the shared bus.
    pub bus_wait_cycles: u64,
    /// Total bytes moved over the shared bus.
    pub bus_bytes: u64,
    /// Wall-clock of the run: the largest processor local clock.
    pub makespan_cycles: u64,
    /// The repartition events that fired during the run, in schedule
    /// order (empty for static runs).
    pub repartitions: Vec<RepartitionRecord>,
}

impl SystemReport {
    /// Total instructions executed over all processors.
    pub fn total_instructions(&self) -> u64 {
        self.processors.iter().map(|p| p.instructions).sum()
    }

    /// Average CPI over all processors that executed instructions.
    pub fn average_cpi(&self) -> f64 {
        let active: Vec<&ProcessorReport> = self
            .processors
            .iter()
            .filter(|p| p.instructions > 0)
            .collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().map(|p| p.cpi()).sum::<f64>() / active.len() as f64
        }
    }

    /// Miss rate of the shared L2.
    pub fn l2_miss_rate(&self) -> f64 {
        self.l2.miss_rate()
    }

    /// Total L2 misses.
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses
    }

    /// L2 misses of one task (zero if the task never reached the L2).
    pub fn l2_misses_of_task(&self, task: TaskId) -> u64 {
        self.l2_by_task.get(&task).map_or(0, |s| s.misses)
    }

    /// L2 misses of one region (zero if the region never reached the L2).
    pub fn l2_misses_of_region(&self, region: RegionId) -> u64 {
        self.l2_by_region.get(&region).map_or(0, |s| s.misses)
    }

    /// The throughput figure of §3.1: the inverse of the largest
    /// per-processor completion time (application executions per cycle).
    pub fn throughput(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            1.0 / self.makespan_cycles as f64
        }
    }

    /// The memory-traffic-dominated power proxy of §3.1: total execution
    /// cycles plus a weighted count of off-chip transfers.
    pub fn power_proxy(&self, cycle_weight: f64, dram_weight: f64) -> f64 {
        let cycles: u64 = self.processors.iter().map(|p| p.cycles).sum();
        cycle_weight * cycles as f64
            + dram_weight * (self.dram_accesses + self.dram_writebacks) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_counts_busy_stall_and_switch() {
        let p = ProcessorReport {
            cycles: 250,
            busy_cycles: 100,
            stall_cycles: 40,
            switch_cycles: 10,
            idle_cycles: 100,
            instructions: 100,
            task_switches: 1,
        };
        assert!((p.cpi() - 1.5).abs() < 1e-12);
        assert!((p.utilisation() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_instruction_processor_has_zero_cpi() {
        let p = ProcessorReport::default();
        assert_eq!(p.cpi(), 0.0);
        assert_eq!(p.utilisation(), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let mut r = SystemReport::default();
        r.processors.push(ProcessorReport {
            cycles: 100,
            busy_cycles: 80,
            stall_cycles: 20,
            switch_cycles: 0,
            idle_cycles: 0,
            instructions: 80,
            task_switches: 0,
        });
        r.processors.push(ProcessorReport::default());
        r.makespan_cycles = 100;
        assert_eq!(r.total_instructions(), 80);
        assert!((r.average_cpi() - 1.25).abs() < 1e-12);
        assert!((r.throughput() - 0.01).abs() < 1e-12);
        assert_eq!(r.l2_misses_of_task(TaskId::new(0)), 0);
        assert_eq!(r.l2_misses_of_region(RegionId::new(0)), 0);
        assert!(r.power_proxy(1.0, 10.0) >= 100.0);
    }
}
