//! The self-tuning online cache controller: closing the paper's loop.
//!
//! The offline pipeline of [`experiment`](crate::experiment) measures a
//! whole recorded run, segments it into phases and *then* derives a
//! [`PartitionSchedule`] — it knows the future. This module runs the same
//! machinery **online**: a [`WindowedProfiler`] rides the replayed access
//! stream, and every time a profiling window closes a
//! [`ControllerPolicy`] may re-solve the allocation problem on the
//! *measured* curves of that window and repartition the live L2 at the
//! very next run boundary. The loop is strictly causal — the policy that
//! acts at the boundary of window `N + 1` has only seen windows
//! `0 ..= N` — so its decisions lag the offline oracle by one window,
//! and the gap between the two is the controller's *regret*, measured by
//! [`compete`] in misses plus flush write-backs on identical traffic.
//!
//! Three reference policies span the design space:
//!
//! * [`Greedy`] re-solves and repartitions at **every** window boundary —
//!   maximal adaptivity, maximal flush traffic;
//! * [`Hysteresis`] re-solves only when the [`OnlinePhaseDetector`]
//!   reports a phase change, and switches only when the predicted miss
//!   savings exceed the predicted flush cost by a margin;
//! * [`Oracle`] replays the best offline schedule
//!   ([`validate_phase_plan`]'s static-vs-scheduled winner) — zero
//!   regret by construction, the yardstick the others are charged
//!   against.
//!
//! Everything runs through the exact-replay engine
//! ([`ReplaySystem::run_controlled`]), so competing policies see
//! byte-identical traffic and their miss deltas are attributable to the
//! control decisions alone.

use std::sync::Arc;

use compmem_cache::FlushStats;
use compmem_cache::{
    CacheConfig, CacheGeometry, CacheSizeLattice, CurveResolution, MissRateCurves,
    OnlinePhaseDetector, OrganizationSpec, PartitionKey, PartitionMap, PartitionSchedule,
    ReplacementPolicy, ScheduleStep, WindowConfig, WindowKind, WindowedProfiler,
};
use compmem_platform::{profile_trace_windowed, PlatformConfig, PreparedTrace, ReplaySystem};
use compmem_trace::RegionTable;

use crate::error::CoreError;
use crate::experiment::{
    allocation_problem_for_table, by_key_from_regions, phase_allocations_for_table,
    validate_phase_plan, RunOutcome,
};
use crate::optimizer::{self, Allocation, OptimizerKind};

/// Everything a policy needs to turn measured curves into an installable
/// [`PartitionMap`]: the trace's region table, the allocation-unit
/// lattice, the L2 geometry and the solver to use. The solve-and-pack
/// path is **the same code path** as the offline
/// [`PhasePlan::to_schedule`](crate::experiment::PhasePlan) pipeline
/// (profiles → [`allocation_problem_for_table`] → [`optimizer::solve`] →
/// capacity check → [`PartitionMap::pack`]/[`pack_stable`]), which is
/// what makes online-vs-offline parity a meaningful test.
///
/// [`pack_stable`]: PartitionMap::pack_stable
#[derive(Debug, Clone, Copy)]
pub struct SolverContext<'a> {
    /// Region table of the replayed trace (names the partition keys).
    pub table: &'a RegionTable,
    /// The allocation-unit lattice partition sizes are drawn from.
    pub lattice: &'a CacheSizeLattice,
    /// Geometry of the L2 being controlled.
    pub geometry: CacheGeometry,
    /// Solver used for every re-solve.
    pub optimizer: OptimizerKind,
}

impl SolverContext<'_> {
    /// Solves the allocation problem on one window's measured curves.
    ///
    /// # Errors
    ///
    /// Propagates curve-conversion and optimizer errors.
    pub fn solve(&self, curves: &MissRateCurves) -> Result<Allocation, CoreError> {
        let profiles = curves.to_profiles(self.lattice, self.geometry.ways())?;
        let problem =
            allocation_problem_for_table(self.table, self.lattice, self.geometry, profiles);
        optimizer::solve(&problem, self.optimizer)
    }

    /// Packs an allocation into a partition map — laid out fresh
    /// ([`PartitionMap::pack`]) when `previous` is `None`, or stably
    /// against the currently installed map
    /// ([`PartitionMap::pack_stable`]) so unchanged keys keep their
    /// exact sets and the switch flushes only what actually moved.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CapacityExceeded`] if the allocation does
    /// not fit the lattice, and propagates map-packing errors.
    pub fn pack(
        &self,
        allocation: &Allocation,
        previous: Option<&PartitionMap>,
    ) -> Result<PartitionMap, CoreError> {
        if allocation.total_units > self.lattice.total_units {
            return Err(CoreError::CapacityExceeded {
                requested: allocation.total_units,
                available: self.lattice.total_units,
            });
        }
        let sizes: Vec<(PartitionKey, u32)> = allocation
            .iter()
            .map(|(key, &units)| (*key, self.lattice.sets_of(units)))
            .collect();
        match previous {
            None => PartitionMap::pack(self.geometry, &sizes).map_err(CoreError::from),
            Some(previous) => {
                PartitionMap::pack_stable(self.geometry, &sizes, previous).map_err(CoreError::from)
            }
        }
    }

    /// The profile-free fallback start map: every key of the table gets
    /// an equal share of the sets.
    ///
    /// # Errors
    ///
    /// Propagates map construction errors (an empty table has no keys).
    pub fn equal_split(&self) -> Result<PartitionMap, CoreError> {
        let keys = PartitionKey::distinct_keys(self.table);
        PartitionMap::equal_split(self.geometry, &keys).map_err(CoreError::from)
    }
}

/// One observation handed to a policy: a profiling window just closed
/// (or, under [`CurveFeed::Oracle`], is just opening) and the engine is
/// at a run boundary where a repartition can be installed.
#[derive(Debug)]
pub struct ControllerTick<'a> {
    /// Index of the window `curves` describe.
    pub window: usize,
    /// The window's measured miss-rate curves.
    pub curves: &'a MissRateCurves,
    /// Cycle of the run boundary the decision would be installed at.
    pub at_cycle: u64,
    /// The map currently installed on the L2.
    pub current: &'a PartitionMap,
}

/// Which window's curves a tick carries — the causality knob of the
/// controller loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveFeed {
    /// **Causal** (the default): at the boundary opening window `N + 1`
    /// the policy sees the measured curves of the just-closed window
    /// `N`. This is what a real controller can know; its one-window lag
    /// is the source of regret.
    Measured,
    /// **Clairvoyant**: the whole trace is profiled up front and the
    /// tick at the same boundary carries the curves of the *opening*
    /// window `N + 1`. A [`Greedy`] policy on this feed reproduces the
    /// offline per-window schedule switch for switch (the parity test),
    /// isolating the lag from every other difference.
    Oracle,
}

/// Configuration of a controlled replay.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How the stream is sliced into profiling windows. Must be
    /// [`WindowKind::Cycles`]: a cycle grid closes windows exactly at
    /// run boundaries of the replayed stream (every refill of a run
    /// carries the run's start cycle), so the switch the policy emits
    /// installs at the true window edge. An access-count window can
    /// close *mid*-run, after boundary refills already replayed — the
    /// driver rejects the configuration rather than silently lag.
    pub window: WindowConfig,
    /// Resolution of the online profiler.
    pub resolution: CurveResolution,
    /// Solver used for every re-solve.
    pub optimizer: OptimizerKind,
    /// Which window's curves each tick carries.
    pub feed: CurveFeed,
}

impl ControllerConfig {
    /// A causal controller re-solving every `window_cycles` cycles with
    /// the exact DP solver.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`](compmem_cache::CacheError) if
    /// `window_cycles` is zero.
    pub fn cycles(window_cycles: u64, resolution: CurveResolution) -> Result<Self, CoreError> {
        Ok(ControllerConfig {
            window: WindowConfig::cycles(window_cycles)?,
            resolution,
            optimizer: OptimizerKind::ExactIlp,
            feed: CurveFeed::Measured,
        })
    }

    /// The same controller on the clairvoyant feed (see
    /// [`CurveFeed::Oracle`]).
    pub fn oracle_feed(mut self) -> Self {
        self.feed = CurveFeed::Oracle;
        self
    }
}

/// An online repartitioning policy driven by the controller loop.
pub trait ControllerPolicy {
    /// Display name of the policy (used in regret tables and the CLI).
    fn name(&self) -> &str;

    /// The map the run starts under. With curves available (the
    /// clairvoyant feed profiles window 0 up front) the default solves
    /// them; otherwise it falls back to an equal split — a causal
    /// controller knows nothing before the first window closes.
    ///
    /// # Errors
    ///
    /// Propagates solver and map-packing errors.
    fn initial_map(
        &mut self,
        solver: &SolverContext<'_>,
        curves: Option<&MissRateCurves>,
    ) -> Result<PartitionMap, CoreError> {
        match curves {
            Some(curves) => {
                let allocation = solver.solve(curves)?;
                solver.pack(&allocation, None)
            }
            None => solver.equal_split(),
        }
    }

    /// A policy that replays a precomputed offline schedule instead of
    /// deciding online ([`Oracle`]). When this returns `Some`, the
    /// driver installs the schedule through the ordinary
    /// [`ReplaySystem::install_schedule`] path and never calls
    /// [`observe`](ControllerPolicy::observe).
    fn preinstalled_schedule(&self) -> Option<&PartitionSchedule> {
        None
    }

    /// Reacts to one window boundary; `Some` installs the map at the
    /// tick's cycle.
    ///
    /// # Errors
    ///
    /// Propagates solver and map-packing errors; the driver aborts the
    /// decision loop and surfaces the first error after the replay.
    fn observe(
        &mut self,
        solver: &SolverContext<'_>,
        tick: &ControllerTick<'_>,
    ) -> Result<Option<PartitionMap>, CoreError>;
}

/// Re-solves and repartitions at **every** window boundary, mirroring
/// the offline per-phase schedule's behaviour (identical maps are still
/// re-installed: they flush nothing and their fired boundary records
/// segment the run for measurement, exactly as
/// [`PhasePlan::to_schedule`](crate::experiment::PhasePlan::to_schedule)
/// keeps same-allocation steps).
#[derive(Debug, Default)]
pub struct Greedy;

impl ControllerPolicy for Greedy {
    fn name(&self) -> &str {
        "greedy"
    }

    fn observe(
        &mut self,
        solver: &SolverContext<'_>,
        tick: &ControllerTick<'_>,
    ) -> Result<Option<PartitionMap>, CoreError> {
        let allocation = solver.solve(tick.curves)?;
        Ok(Some(solver.pack(&allocation, Some(tick.current))?))
    }
}

/// Sums the misses the curves predict for the next window under `map`:
/// each key's curve evaluated at its partition's set count. `None` when
/// any partition's shape falls outside the profiled resolution (e.g. a
/// non-power-of-two equal-split share).
fn predicted_misses(curves: &MissRateCurves, map: &PartitionMap, ways: u32) -> Option<u64> {
    let mut total = 0u64;
    for (key, curve) in &curves.curves {
        let partition = map.partition_for(*key)?;
        total += curve.misses(partition.sets, ways).ok()?;
    }
    Some(total)
}

/// Switches only on detected phase changes, and only when it pays:
/// the [`OnlinePhaseDetector`] gates re-solving, and a candidate map is
/// installed only if the miss savings its curves predict for the next
/// window exceed the predicted flush cost (sets moved × ways, the upper
/// bound on lines invalidated by the switch) by `margin`.
#[derive(Debug)]
pub struct Hysteresis {
    detector: OnlinePhaseDetector,
    margin: f64,
}

impl Hysteresis {
    /// A detector-gated policy: phase threshold `threshold` (see
    /// [`curve_delta`](compmem_cache::curve_delta)), switch margin
    /// `margin` (a switch needs `savings > margin × flush_cost`).
    /// Uses an unsmoothed detector (`alpha = 1.0`), whose decisions
    /// match the offline segmentation window for window.
    pub fn new(threshold: f64, margin: f64) -> Self {
        Self::with_smoothing(threshold, 1.0, margin)
    }

    /// As [`new`](Hysteresis::new) with EWMA smoothing factor `alpha`
    /// on the detector's deltas.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_smoothing(threshold: f64, alpha: f64, margin: f64) -> Self {
        Hysteresis {
            detector: OnlinePhaseDetector::with_smoothing(threshold, alpha),
            margin,
        }
    }
}

impl ControllerPolicy for Hysteresis {
    fn name(&self) -> &str {
        "hysteresis"
    }

    fn observe(
        &mut self,
        solver: &SolverContext<'_>,
        tick: &ControllerTick<'_>,
    ) -> Result<Option<PartitionMap>, CoreError> {
        if self.detector.observe(tick.curves).is_none() {
            return Ok(None); // still inside the current phase
        }
        let allocation = solver.solve(tick.curves)?;
        let candidate = solver.pack(&allocation, Some(tick.current))?;
        if candidate == *tick.current {
            return Ok(None);
        }
        let ways = solver.geometry.ways();
        let stay = predicted_misses(tick.curves, tick.current, ways);
        let go = predicted_misses(tick.curves, &candidate, ways);
        let switch = match (stay, go) {
            // The currently installed map cannot be priced on the curves
            // (off-lattice shapes, e.g. the equal-split start): escape it.
            (None, _) => true,
            // The candidate cannot be priced: stay put.
            (Some(_), None) => false,
            (Some(stay), Some(go)) => {
                let savings = stay.saturating_sub(go);
                let flush = u64::from(tick.current.moved_sets(&candidate)) * u64::from(ways);
                savings as f64 > self.margin * flush as f64
            }
        };
        Ok(switch.then_some(candidate))
    }
}

/// The offline clairvoyant: replays the better of
/// [`validate_phase_plan`]'s static-best and phase-scheduled runs (by
/// measured misses plus flush write-backs). Its regret is zero by
/// construction — [`compete`] charges every other policy against it.
#[derive(Debug)]
pub struct Oracle {
    schedule: PartitionSchedule,
    /// Measured cost of the chosen schedule in the planning replay
    /// (misses + flush write-backs); the competition replay reproduces
    /// it exactly, which the competition test asserts.
    pub planned_cost: u64,
}

/// Misses plus repartition write-backs of one outcome — the single
/// scalar cost the regret harness optimises.
fn cost_of(outcome: &RunOutcome) -> u64 {
    let flushed: u64 = outcome
        .report
        .repartitions
        .iter()
        .map(|r| r.flush.written_back)
        .sum();
    outcome.report.l2.misses + flushed
}

impl Oracle {
    /// Plans the oracle schedule for a trace: profiles it windowed,
    /// segments phases at `threshold`, runs the static-vs-scheduled
    /// validation replay and keeps the cheaper policy.
    ///
    /// # Errors
    ///
    /// Propagates profiling, solver, schedule and platform errors.
    pub fn plan(
        platform: &PlatformConfig,
        l2: CacheConfig,
        lattice: &CacheSizeLattice,
        trace: &PreparedTrace,
        threshold: f64,
        config: &ControllerConfig,
    ) -> Result<Self, CoreError> {
        let geometry = l2.geometry();
        let windowed = profile_trace_windowed(platform, trace, config.resolution, config.window)?;
        let plan = phase_allocations_for_table(
            &windowed,
            threshold,
            trace.table(),
            lattice,
            geometry,
            config.optimizer,
        )?;
        let validation = validate_phase_plan(platform, l2, lattice, &plan, trace)?;
        let static_cost = cost_of(&validation.static_outcome);
        let scheduled_cost = cost_of(&validation.scheduled_outcome);
        if scheduled_cost <= static_cost {
            Ok(Oracle {
                schedule: validation.schedule,
                planned_cost: scheduled_cost,
            })
        } else {
            let sizes: Vec<(PartitionKey, u32)> = plan
                .whole_run
                .iter()
                .map(|(key, &units)| (*key, lattice.sets_of(units)))
                .collect();
            let map = PartitionMap::pack(geometry, &sizes)?;
            Ok(Oracle {
                schedule: PartitionSchedule::single(OrganizationSpec::SetPartitioned(map)),
                planned_cost: static_cost,
            })
        }
    }

    /// The schedule the oracle replays.
    pub fn schedule(&self) -> &PartitionSchedule {
        &self.schedule
    }
}

impl ControllerPolicy for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn preinstalled_schedule(&self) -> Option<&PartitionSchedule> {
        Some(&self.schedule)
    }

    fn observe(
        &mut self,
        _solver: &SolverContext<'_>,
        _tick: &ControllerTick<'_>,
    ) -> Result<Option<PartitionMap>, CoreError> {
        Ok(None) // never reached: the driver takes the preinstalled path
    }
}

/// Result of one controlled replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlledOutcome {
    /// Name of the policy that drove the run.
    pub policy: String,
    /// The replay outcome (report, per-key statistics, repartition log).
    pub outcome: RunOutcome,
    /// Window boundaries the policy was shown (0 for a preinstalled
    /// schedule, which bypasses the online loop).
    pub ticks: usize,
    /// The run's partitioning as an offline-equivalent schedule: the
    /// initial map plus every switch the controller installed, in the
    /// exact form [`PhasePlan::to_schedule`] would produce — the parity
    /// test compares the two byte for byte.
    ///
    /// [`PhasePlan::to_schedule`]: crate::experiment::PhasePlan::to_schedule
    pub schedule: PartitionSchedule,
}

impl ControlledOutcome {
    /// Every switch fired during the run, folded into one flush total.
    pub fn total_flush(&self) -> FlushStats {
        let mut total = FlushStats::default();
        for record in &self.outcome.report.repartitions {
            total.absorb(record.flush);
        }
        total
    }

    /// The scalar the regret harness charges: L2 misses plus flush
    /// write-backs (each written-back line is one extra bus/DRAM
    /// transfer the switch caused).
    pub fn cost(&self) -> u64 {
        cost_of(&self.outcome)
    }

    /// Switches the run actually fired.
    pub fn switches(&self) -> usize {
        self.outcome.report.repartitions.len()
    }
}

/// Replays a recorded trace under an online controller policy.
///
/// The engine observes every run of the replayed stream *before* it
/// executes (profiling is organisation-independent, so feeding the
/// profiler ahead of the replay does not peek at timing the controller
/// could not know). When the profiler closes a window, the policy is
/// shown the window's curves ([`ControllerTick`]) and may answer with a
/// map, which is pushed as a switch at the observed run's start cycle —
/// it fires inside the engine at the first refill reaching that
/// boundary, with exact [`FlushStats`] accounting, precisely like a
/// pre-installed [`PartitionSchedule`] step.
///
/// # Errors
///
/// * [`CoreError::NonLruProfiling`] if the L2's replacement policy is
///   not LRU — the controller's curves would be fiction;
/// * [`CoreError::Infeasible`] if the window kind is not
///   [`WindowKind::Cycles`] (see [`ControllerConfig::window`]);
/// * solver, map-packing, schedule and platform errors from the
///   decision loop and the replay.
pub fn replay_controlled(
    platform: &PlatformConfig,
    l2: CacheConfig,
    lattice: &CacheSizeLattice,
    trace: &Arc<PreparedTrace>,
    policy: &mut dyn ControllerPolicy,
    config: &ControllerConfig,
) -> Result<ControlledOutcome, CoreError> {
    if l2.replacement_policy() != ReplacementPolicy::Lru {
        return Err(CoreError::NonLruProfiling {
            policy: l2.replacement_policy().to_string(),
        });
    }
    let table = trace.table();
    let geometry = l2.geometry();
    let solver = SolverContext {
        table,
        lattice,
        geometry,
        optimizer: config.optimizer,
    };

    // A preinstalled schedule (the oracle) replays through the ordinary
    // scheduled path: same engine, no online loop.
    if let Some(schedule) = policy.preinstalled_schedule() {
        let schedule = schedule.clone();
        let l2_model = schedule.initial().build(l2, table)?;
        let mut system = ReplaySystem::new(platform, l2_model, trace)?;
        if !schedule.is_static() {
            system.install_schedule(&schedule, table)?;
        }
        let report = system.run();
        let by_key = by_key_from_regions(table, &report);
        let l2_snapshot = system.into_l2().snapshot();
        return Ok(ControlledOutcome {
            policy: policy.name().to_string(),
            outcome: RunOutcome {
                report,
                by_key,
                l2_snapshot,
                lane_decision: None,
            },
            ticks: 0,
            schedule,
        });
    }

    if config.window.kind != WindowKind::Cycles {
        return Err(CoreError::Infeasible {
            reason: format!(
                "the online controller requires cycle windows ({:?} windows can close \
                 mid-run, after the boundary's refills already replayed)",
                config.window.kind
            ),
        });
    }

    // The clairvoyant feed profiles the whole trace up front; the causal
    // feed starts blind.
    let precomputed = match config.feed {
        CurveFeed::Oracle => Some(profile_trace_windowed(
            platform,
            trace,
            config.resolution,
            config.window,
        )?),
        CurveFeed::Measured => None,
    };
    let initial_curves = precomputed
        .as_ref()
        .and_then(|w| w.windows.first())
        .map(|w| &w.curves);
    let initial = policy.initial_map(&solver, initial_curves)?;

    let l2_model = OrganizationSpec::SetPartitioned(initial.clone()).build(l2, table)?;
    let mut system = ReplaySystem::new(platform, l2_model, trace)?;

    let mut profiler = WindowedProfiler::new(config.window, config.resolution, table);
    let mut closed = 0usize; // windows already shown to the policy
    let mut ticks = 0usize;
    let mut current = initial.clone();
    let mut installed: Vec<ScheduleStep> = Vec::new();
    let mut decision_error: Option<CoreError> = None;

    let report = system.run_controlled(table, |obs| {
        if decision_error.is_some() {
            return None; // inert after the first failed decision
        }
        for refill in obs.refills {
            profiler.observe_at(obs.start_cycle, &refill.access);
        }
        let mut decided: Option<PartitionMap> = None;
        while closed < profiler.windows().len() {
            let tick_source = match (&precomputed, config.feed) {
                (Some(windowed), CurveFeed::Oracle) => windowed
                    .windows
                    .get(closed + 1)
                    .map(|w| (closed + 1, &w.curves)),
                _ => Some((closed, &profiler.windows()[closed].curves)),
            };
            closed += 1;
            let Some((window, curves)) = tick_source else {
                continue; // clairvoyant feed past the last window: nothing to open
            };
            ticks += 1;
            let tick = ControllerTick {
                window,
                curves,
                at_cycle: obs.start_cycle,
                current: decided.as_ref().unwrap_or(&current),
            };
            match policy.observe(&solver, &tick) {
                // First decision of the boundary wins, mirroring the
                // offline schedule's folding of same-cycle steps.
                Ok(Some(map)) if decided.is_none() => decided = Some(map),
                Ok(_) => {}
                Err(e) => {
                    decision_error = Some(e);
                    return None;
                }
            }
        }
        decided.map(|map| {
            current = map.clone();
            let organization = OrganizationSpec::SetPartitioned(map);
            installed.push(ScheduleStep {
                at_cycle: obs.start_cycle,
                organization: organization.clone(),
            });
            organization
        })
    })?;
    if let Some(error) = decision_error {
        return Err(error);
    }

    let mut steps: Vec<(u64, OrganizationSpec)> =
        vec![(0, OrganizationSpec::SetPartitioned(initial))];
    steps.extend(installed.into_iter().map(|s| (s.at_cycle, s.organization)));
    let schedule = PartitionSchedule::new(steps)?;

    let by_key = by_key_from_regions(table, &report);
    let l2_snapshot = system.into_l2().snapshot();
    Ok(ControlledOutcome {
        policy: policy.name().to_string(),
        outcome: RunOutcome {
            report,
            by_key,
            l2_snapshot,
            lane_decision: None,
        },
        ticks,
        schedule,
    })
}

/// Replays a precomputed schedule by **pushing** each switch at the
/// first run boundary reaching its cycle — the stream-order firing
/// semantics of the online controller — instead of pre-installing it.
///
/// The two semantics differ only in *where inside the stream* a switch
/// lands: [`ReplaySystem::install_schedule`] fires on the replayed
/// clock, which can be mid-way through an earlier run whose replayed
/// timing overshoots the boundary; the push path fires at the boundary
/// run's first refill, which is all a causal controller can do (its
/// decision needs the window that the boundary run closes). Replaying
/// the *offline* schedule through this function therefore gives the
/// exact reference an online policy must match byte for byte — the
/// parity test's yardstick.
///
/// # Errors
///
/// Propagates cache-model, schedule and platform errors.
pub fn replay_pushed(
    platform: &PlatformConfig,
    l2: CacheConfig,
    schedule: &PartitionSchedule,
    trace: &Arc<PreparedTrace>,
) -> Result<ControlledOutcome, CoreError> {
    let table = trace.table();
    let l2_model = schedule.initial().build(l2, table)?;
    let mut system = ReplaySystem::new(platform, l2_model, trace)?;
    let switches: Vec<ScheduleStep> = schedule.switches().to_vec();
    let mut next = 0usize;
    let report = system.run_controlled(table, |obs| {
        let mut due: Option<OrganizationSpec> = None;
        // Several boundaries may fall inside one run gap; the last due
        // organisation is the one that should be in force.
        while next < switches.len() && switches[next].at_cycle <= obs.start_cycle {
            due = Some(switches[next].organization.clone());
            next += 1;
        }
        due
    })?;
    let by_key = by_key_from_regions(table, &report);
    let l2_snapshot = system.into_l2().snapshot();
    Ok(ControlledOutcome {
        policy: "pushed".to_string(),
        outcome: RunOutcome {
            report,
            by_key,
            l2_snapshot,
            lane_decision: None,
        },
        ticks: 0,
        schedule: schedule.clone(),
    })
}

/// One row of a [`RegretReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRegret {
    /// Policy name.
    pub policy: String,
    /// Measured L2 misses of the policy's run.
    pub misses: u64,
    /// Lines written back by the policy's repartition flushes.
    pub flush_written_back: u64,
    /// Switches the run fired.
    pub switches: usize,
    /// Misses plus flush write-backs.
    pub cost: u64,
    /// `cost − oracle_cost`; the oracle's own row is zero by
    /// construction.
    pub regret: i64,
}

/// The competition's verdict: every policy's measured cost charged
/// against the oracle's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegretReport {
    /// Name of the baseline the others are charged against (`"oracle"`
    /// when present, otherwise the cheapest entry).
    pub baseline: String,
    /// The baseline's cost.
    pub oracle_cost: u64,
    /// One row per competed policy, in competition order.
    pub entries: Vec<PolicyRegret>,
}

impl RegretReport {
    /// Builds the report from competed outcomes: the entry named
    /// `"oracle"` is the baseline; without one, the cheapest entry is.
    pub fn from_outcomes(outcomes: &[ControlledOutcome]) -> RegretReport {
        let baseline = outcomes
            .iter()
            .find(|o| o.policy == "oracle")
            .or_else(|| outcomes.iter().min_by_key(|o| o.cost()));
        let (baseline, oracle_cost) =
            baseline.map_or_else(|| ("none".to_string(), 0), |o| (o.policy.clone(), o.cost()));
        let entries = outcomes
            .iter()
            .map(|o| PolicyRegret {
                policy: o.policy.clone(),
                misses: o.outcome.report.l2.misses,
                flush_written_back: o.total_flush().written_back,
                switches: o.switches(),
                cost: o.cost(),
                regret: o.cost() as i64 - oracle_cost as i64,
            })
            .collect();
        RegretReport {
            baseline,
            oracle_cost,
            entries,
        }
    }

    /// The report as a fixed-width text table (one header line, one row
    /// per policy), for the CLI and the CI smoke log.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<12} {:>12} {:>12} {:>8} {:>12} {:>10}\n",
            "policy", "misses", "flushed", "switches", "cost", "regret"
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{:<12} {:>12} {:>12} {:>8} {:>12} {:>10}\n",
                e.policy, e.misses, e.flush_written_back, e.switches, e.cost, e.regret
            ));
        }
        out
    }
}

/// Runs every policy on the **same** recorded trace under one
/// configuration and charges each against the oracle (any policy whose
/// [`preinstalled_schedule`](ControllerPolicy::preinstalled_schedule)
/// is set and whose name is `"oracle"`).
///
/// # Errors
///
/// As for [`replay_controlled`], for whichever policy fails first.
pub fn compete(
    platform: &PlatformConfig,
    l2: CacheConfig,
    lattice: &CacheSizeLattice,
    trace: &Arc<PreparedTrace>,
    policies: &mut [&mut dyn ControllerPolicy],
    config: &ControllerConfig,
) -> Result<(Vec<ControlledOutcome>, RegretReport), CoreError> {
    let mut outcomes = Vec::with_capacity(policies.len());
    for policy in policies.iter_mut() {
        outcomes.push(replay_controlled(
            platform, l2, lattice, trace, *policy, config,
        )?);
    }
    let report = RegretReport::from_outcomes(&outcomes);
    Ok((outcomes, report))
}
