//! Compositional memory systems for multimedia communicating tasks.
//!
//! This crate is the top of the reproduction of Molnos et al., *DATE 2005*:
//! it combines the cache models (`compmem-cache`), the CAKE-like
//! multiprocessor simulator (`compmem-platform`), the YAPI runtime
//! (`compmem-kpn`) and the multimedia workloads (`compmem-workloads`) into
//! the method the paper proposes:
//!
//! 1. **Miss profiling** ([`profile`]) — measure, for every memory-active
//!    entity (task, communication buffer, shared static section), the number
//!    of L2 misses as a function of the exclusively allocated cache size
//!    (power-of-two allocation units), exactly the `m_i(S_k)` inputs of the
//!    paper's ILP. The profiles come from a **single-pass stack-distance
//!    profiler** (`StackDistanceProfiler` riding the shared baseline run
//!    as an access tap, or fed from a recorded trace) whose
//!    `MissRateCurves` resolve every power-of-two cache shape at once;
//!    the shadow-cache `ProfilingCache` organisation is retained as the
//!    cross-validation oracle.
//! 2. **Partition sizing** ([`optimizer`]) — minimise the total number of
//!    misses subject to the cache capacity, with an exact
//!    dynamic-programming solver equivalent to the paper's (M)ILP, a greedy
//!    marginal-gain approximation and an equal-split strawman.
//! 3. **Compositional execution** — run the application on the
//!    set-partitioned L2 and verify that per-task misses match the
//!    stand-alone expectation ([`compositionality`]), which is the paper's
//!    Figure 3 result (≤ 2 % deviation).
//! 4. **Experiments** ([`experiment`]) — a single spec-driven driver:
//!    every run is described by a [`experiment::ScenarioSpec`] (L2
//!    configuration, a `PartitionSchedule` — partitioning as a
//!    **time-varying policy**, where a plain `OrganizationSpec` is the
//!    single-step schedule — and a [`experiment::TrafficSource`] naming
//!    live execution or replay of a recorded trace) and executed through
//!    one `Box<dyn CacheModel>` timing path; batches of independent runs
//!    fan out across threads ([`experiment::Experiment::run_all`]), and
//!    [`experiment::Experiment::record_trace`] /
//!    [`experiment::run_replay`] implement the record-once / sweep-many
//!    workflow. Phase-aware execution rides the same driver:
//!    [`experiment::PhasePlan::to_schedule`] converts per-phase sizings
//!    into repartition events,
//!    [`experiment::Experiment::run_scheduled`] executes them, and
//!    [`experiment::validate_phase_plan`] replays static-best vs
//!    phase-scheduled on one trace with per-phase predicted vs measured
//!    miss deltas. The drivers regenerate every table and figure of the
//!    paper's evaluation (Tables 1–2, Figures 2–3, the headline
//!    miss-rate/CPI numbers) plus the ablations.
//!
//! (The workspace-level architecture guide — layers, dataflow, the
//! one-pass profiling invariant — lives in `docs/ARCHITECTURE.md`; the
//! CLI walkthrough in `docs/CLI.md`.)
//!
//! # Quickstart
//!
//! ```no_run
//! use compmem::experiment::{Experiment, ExperimentConfig};
//! use compmem_workloads::apps::{jpeg_canny_app, JpegCannyParams};
//!
//! # fn main() -> Result<(), compmem::CoreError> {
//! let params = JpegCannyParams::tiny();
//! let experiment = Experiment::new(ExperimentConfig::default(), move || {
//!     jpeg_canny_app(&params).expect("valid parameters")
//! });
//! let outcome = experiment.run_paper_flow()?;
//! println!("{}", outcome.summary());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compositionality;
pub mod controller;
mod error;
pub mod executor;
pub mod experiment;
pub mod isolation;
pub mod model;
pub mod optimizer;
pub mod profile;
pub mod report;

pub use controller::{
    compete, replay_controlled, replay_pushed, ControlledOutcome, ControllerConfig,
    ControllerPolicy, ControllerTick, CurveFeed, Greedy, Hysteresis, Oracle, PolicyRegret,
    RegretReport, SolverContext,
};
pub use error::CoreError;
pub use isolation::{run_isolation, IsolationReport, IsolationRun, IsolationSpec};
pub use optimizer::{
    apply_qos_floors, solve_with_floors, Allocation, AllocationProblem, OptimizerKind, QosFloor,
};
pub use profile::{
    CacheSizeLattice, CurveResolution, MissProfile, MissProfiles, MissRateCurve, MissRateCurves,
    ProfilingCache, StackDistanceProfiler, WindowConfig, WindowedCurves,
};
