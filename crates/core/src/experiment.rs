//! Experiment drivers that regenerate the paper's evaluation.
//!
//! The central entry point is [`Experiment::run_paper_flow`], which performs
//! the full method of the paper on one application:
//!
//! 1. run the application on the conventional **shared** L2 (this run also
//!    measures the per-entity miss profiles through the
//!    [`ProfilingCache`](crate::profile::ProfilingCache)),
//! 2. size the partitions by minimising the total predicted misses
//!    (FIFOs pinned to their own size, everything else optimised),
//! 3. run the application on the **set-partitioned** L2 with that
//!    allocation,
//! 4. compare expected and simulated per-entity misses (compositionality).
//!
//! Individual runs (shared with a different L2 size, way-partitioned
//! column-caching baseline, alternative optimisers) are exposed for the
//! ablation experiments of DESIGN.md.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use compmem_cache::{
    CacheConfig, CacheOrganization, KeyStats, PartitionKey, PartitionMap, SetPartitionedCache,
    WayAllocation, WayPartitionedCache,
};
use compmem_platform::{PlatformConfig, System, SystemReport};
use compmem_trace::{RegionKind, RegionTable};
use compmem_workloads::apps::Application;

use crate::compositionality::CompositionalityReport;
use crate::error::CoreError;
use crate::optimizer::{self, Allocation, AllocationEntity, AllocationProblem, OptimizerKind};
use crate::profile::{CacheSizeLattice, MissProfiles, ProfilingCache};

/// Configuration shared by all experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Platform (processors, L1s, latencies, task switching).
    pub platform: PlatformConfig,
    /// Shared L2 configuration.
    pub l2: CacheConfig,
    /// Cache sets per allocation unit.
    pub sets_per_unit: u32,
    /// Solver used to size the partitions.
    pub optimizer: OptimizerKind,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            platform: PlatformConfig::default(),
            l2: CacheConfig::paper_l2(),
            sets_per_unit: 16,
            optimizer: OptimizerKind::ExactIlp,
        }
    }
}

/// The result of one simulation run with per-entity L2 statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The platform report (cycles, CPI, cache statistics).
    pub report: SystemReport,
    /// L2 accesses and misses per partition key (task, buffer, section).
    pub by_key: BTreeMap<PartitionKey, KeyStats>,
}

impl RunOutcome {
    /// L2 misses of one entity.
    pub fn misses_of(&self, key: PartitionKey) -> u64 {
        self.by_key.get(&key).map_or(0, |s| s.misses)
    }

    /// Per-entity misses (for the compositionality comparison).
    pub fn misses_by_key(&self) -> BTreeMap<PartitionKey, u64> {
        self.by_key.iter().map(|(k, s)| (*k, s.misses)).collect()
    }
}

/// Complete outcome of the paper's method on one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperFlowOutcome {
    /// Application name (`"jpeg_canny"` or `"mpeg2"`).
    pub app_name: String,
    /// Shared-cache baseline run.
    pub shared: RunOutcome,
    /// Per-entity miss profiles measured during the shared run.
    pub profiles: MissProfiles,
    /// Chosen partition sizes.
    pub allocation: Allocation,
    /// Set-partitioned run with that allocation.
    pub partitioned: RunOutcome,
    /// Expected-versus-simulated comparison (Figure 3).
    pub compositionality: CompositionalityReport,
    /// Display names of every partition key, following the paper's tables.
    pub key_names: BTreeMap<PartitionKey, String>,
    /// Sets per allocation unit (to convert units to the tables' set counts).
    pub sets_per_unit: u32,
}

impl PaperFlowOutcome {
    /// Display name of a partition key.
    pub fn key_name(&self, key: PartitionKey) -> String {
        self.key_names
            .get(&key)
            .cloned()
            .unwrap_or_else(|| key.to_string())
    }

    /// Ratio of shared-cache misses to partitioned-cache misses (the "N
    /// times less misses" headline).
    pub fn miss_improvement_factor(&self) -> f64 {
        let partitioned = self.partitioned.report.l2.misses;
        if partitioned == 0 {
            return f64::INFINITY;
        }
        self.shared.report.l2.misses as f64 / partitioned as f64
    }

    /// Shared-cache L2 miss rate.
    pub fn shared_miss_rate(&self) -> f64 {
        self.shared.report.l2_miss_rate()
    }

    /// Partitioned-cache L2 miss rate.
    pub fn partitioned_miss_rate(&self) -> f64 {
        self.partitioned.report.l2_miss_rate()
    }

    /// Average CPI of the shared-cache run.
    pub fn shared_cpi(&self) -> f64 {
        self.shared.report.average_cpi()
    }

    /// Average CPI of the partitioned run.
    pub fn partitioned_cpi(&self) -> f64 {
        self.partitioned.report.average_cpi()
    }

    /// Rows of the allocation table (Tables 1 / 2): entity name, allocation
    /// units and L2 sets.
    pub fn table_rows(&self) -> Vec<(String, u32, u32)> {
        self.allocation
            .iter()
            .map(|(key, &units)| (self.key_name(*key), units, units * self.sets_per_unit))
            .collect()
    }

    /// Rows of Figure 2: entity name, shared-cache misses, partitioned
    /// misses.
    pub fn figure2_rows(&self) -> Vec<(String, u64, u64)> {
        self.allocation
            .iter()
            .map(|(key, _)| {
                (
                    self.key_name(*key),
                    self.shared.misses_of(*key),
                    self.partitioned.misses_of(*key),
                )
            })
            .collect()
    }

    /// Rows of Figure 3: entity name, expected misses, simulated misses.
    pub fn figure3_rows(&self) -> Vec<(String, u64, u64)> {
        self.compositionality
            .entries
            .iter()
            .map(|e| (self.key_name(e.key), e.expected_misses, e.simulated_misses))
            .collect()
    }

    /// One-paragraph human-readable summary of the headline numbers.
    pub fn summary(&self) -> String {
        format!(
            "{}: shared L2 miss rate {:.2}% (CPI {:.2}) -> partitioned {:.2}% (CPI {:.2}); \
             {:.1}x fewer L2 misses; compositionality error {:.2}%",
            self.app_name,
            100.0 * self.shared_miss_rate(),
            self.shared_cpi(),
            100.0 * self.partitioned_miss_rate(),
            self.partitioned_cpi(),
            self.miss_improvement_factor(),
            100.0 * self.compositionality.max_relative_difference(),
        )
    }
}

/// Aggregates per-region statistics into per-partition-key statistics.
fn by_key_from_regions(
    table: &RegionTable,
    report: &SystemReport,
) -> BTreeMap<PartitionKey, KeyStats> {
    let mut out: BTreeMap<PartitionKey, KeyStats> = BTreeMap::new();
    for (region, stats) in &report.l2_by_region {
        if let Some(r) = table.regions().get(region.index()) {
            let key = PartitionKey::from_region_kind(r.kind);
            let entry = out.entry(key).or_default();
            entry.accesses += stats.accesses;
            entry.misses += stats.misses;
        }
    }
    out
}

/// Builds the display-name table for every partition key of an application.
fn key_names(app: &Application) -> BTreeMap<PartitionKey, String> {
    let mut names = BTreeMap::new();
    for region in app.space.table().iter() {
        let key = PartitionKey::from_region_kind(region.kind);
        let name = match region.kind {
            RegionKind::Fifo { .. } | RegionKind::FrameBuffer { .. } => region.name.clone(),
            RegionKind::AppData => "appl data".to_string(),
            RegionKind::AppBss => "appl bss".to_string(),
            RegionKind::RtData => "rt data".to_string(),
            RegionKind::RtBss => "rt bss".to_string(),
            _ => match region.kind.owner_task() {
                Some(task) => app.task_name(task).to_string(),
                None => region.name.clone(),
            },
        };
        names.entry(key).or_insert(name);
    }
    names
}

/// An experiment bound to an application factory.
///
/// The factory is invoked once per simulation run (the process network is
/// consumed by execution); it must be deterministic so that all runs see the
/// same address-space layout.
pub struct Experiment<F> {
    config: ExperimentConfig,
    factory: F,
}

impl<F: Fn() -> Application> Experiment<F> {
    /// Creates an experiment.
    pub fn new(config: ExperimentConfig, factory: F) -> Self {
        Experiment { config, factory }
    }

    /// The configuration of the experiment.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn platform_for(&self, app: &Application) -> PlatformConfig {
        self.config.platform.with_os_regions(app.os_regions)
    }

    fn lattice(&self) -> CacheSizeLattice {
        CacheSizeLattice::new(self.config.l2.geometry(), self.config.sets_per_unit)
    }

    fn run_app<L2: CacheOrganization>(
        &self,
        mut app: Application,
        l2: L2,
    ) -> Result<(RunOutcome, L2, Application), CoreError> {
        let platform = self.platform_for(&app);
        let mut system = System::new(platform, l2, app.mapping.clone())?;
        let report = system.run(&mut app.network)?;
        let by_key = by_key_from_regions(app.space.table(), &report);
        let l2 = system.into_l2();
        Ok((RunOutcome { report, by_key }, l2, app))
    }

    /// Runs the shared-cache baseline and measures the per-entity miss
    /// profiles in the same run.
    ///
    /// # Errors
    ///
    /// Propagates platform and workload errors.
    pub fn run_shared_with_profiles(&self) -> Result<(RunOutcome, MissProfiles), CoreError> {
        let app = (self.factory)();
        let profiler = ProfilingCache::new(self.config.l2, app.space.table(), self.lattice());
        let (outcome, profiler, _) = self.run_app(app, profiler)?;
        Ok((outcome, profiler.into_profiles()))
    }

    /// Runs the shared-cache baseline with an alternative L2 configuration
    /// (e.g. the paper's 1 MB comparison point).
    ///
    /// # Errors
    ///
    /// Propagates platform and workload errors.
    pub fn run_shared_with_l2(&self, l2: CacheConfig) -> Result<RunOutcome, CoreError> {
        let app = (self.factory)();
        let cache = compmem_cache::SharedCache::new(l2);
        let (outcome, _, _) = self.run_app(app, cache)?;
        Ok(outcome)
    }

    /// Builds the allocation problem for the application: FIFOs are pinned
    /// to their own size (the paper's predictability rule), every other
    /// entity may take any candidate size.
    pub fn build_allocation_problem(
        &self,
        app: &Application,
        profiles: MissProfiles,
    ) -> AllocationProblem {
        let lattice = self.lattice();
        let geometry = self.config.l2.geometry();
        let mut entities: Vec<AllocationEntity> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for region in app.space.table().iter() {
            let key = PartitionKey::from_region_kind(region.kind);
            if !seen.insert(key) {
                continue;
            }
            let candidates = match region.kind {
                RegionKind::Fifo { .. } => {
                    vec![lattice.units_for_bytes(geometry, region.size)]
                }
                _ => lattice.candidate_units.clone(),
            };
            entities.push(AllocationEntity { key, candidates });
        }
        AllocationProblem {
            entities,
            profiles,
            total_units: lattice.total_units,
        }
    }

    /// Runs the application on the set-partitioned L2 with the given
    /// allocation.
    ///
    /// # Errors
    ///
    /// Propagates cache, platform and workload errors (e.g. an allocation
    /// that does not fit).
    pub fn run_partitioned(&self, allocation: &Allocation) -> Result<RunOutcome, CoreError> {
        let app = (self.factory)();
        let lattice = self.lattice();
        if allocation.total_units > lattice.total_units {
            return Err(CoreError::CapacityExceeded {
                requested: allocation.total_units,
                available: lattice.total_units,
            });
        }
        let sizes: Vec<(PartitionKey, u32)> = allocation
            .iter()
            .map(|(k, &units)| (*k, lattice.sets_of(units)))
            .collect();
        let map = PartitionMap::pack(self.config.l2.geometry(), &sizes)?;
        let cache = SetPartitionedCache::new(self.config.l2, app.space.table(), &map)?;
        let (outcome, _, _) = self.run_app(app, cache)?;
        Ok(outcome)
    }

    /// Runs the application on the way-partitioned (column caching)
    /// baseline, splitting the ways evenly over all entities.
    ///
    /// # Errors
    ///
    /// Propagates cache, platform and workload errors.
    pub fn run_way_partitioned(&self) -> Result<RunOutcome, CoreError> {
        let app = (self.factory)();
        let mut keys: Vec<PartitionKey> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for region in app.space.table().iter() {
            let key = PartitionKey::from_region_kind(region.kind);
            if seen.insert(key) {
                keys.push(key);
            }
        }
        let allocation = WayAllocation::equal_split(self.config.l2.geometry(), &keys);
        let cache = WayPartitionedCache::new(self.config.l2, app.space.table(), &allocation)?;
        let (outcome, _, _) = self.run_app(app, cache)?;
        Ok(outcome)
    }

    /// Compares the three partition-sizing strategies on already-measured
    /// profiles (the optimiser ablation).
    ///
    /// # Errors
    ///
    /// Propagates optimiser errors.
    pub fn compare_optimizers(
        &self,
        app: &Application,
        profiles: &MissProfiles,
    ) -> Result<Vec<Allocation>, CoreError> {
        let problem = self.build_allocation_problem(app, profiles.clone());
        Ok(vec![
            optimizer::solve(&problem, OptimizerKind::ExactIlp)?,
            optimizer::solve(&problem, OptimizerKind::Greedy)?,
            optimizer::solve(&problem, OptimizerKind::EqualSplit)?,
        ])
    }

    /// Runs the complete method of the paper on the application.
    ///
    /// # Errors
    ///
    /// Propagates all underlying errors.
    pub fn run_paper_flow(&self) -> Result<PaperFlowOutcome, CoreError> {
        let reference_app = (self.factory)();
        let names = key_names(&reference_app);
        let app_name = reference_app.name.clone();

        let (shared, profiles) = self.run_shared_with_profiles()?;
        let problem = self.build_allocation_problem(&reference_app, profiles.clone());
        let allocation = optimizer::solve(&problem, self.config.optimizer)?;
        let partitioned = self.run_partitioned(&allocation)?;
        let compositionality = CompositionalityReport::compare(
            &profiles,
            &allocation,
            &partitioned.misses_by_key(),
        );
        Ok(PaperFlowOutcome {
            app_name,
            shared,
            profiles,
            allocation,
            partitioned,
            compositionality,
            key_names: names,
            sets_per_unit: self.config.sets_per_unit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_workloads::apps::{jpeg_canny_app, mpeg2_app, JpegCannyParams, Mpeg2Params};

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            platform: PlatformConfig::default(),
            // A small L2 so the tiny workloads still exhibit contention, but
            // with enough allocation units for every entity of the tiny apps.
            l2: CacheConfig::with_size_bytes(64 * 1024, 4).unwrap(),
            sets_per_unit: 4,
            optimizer: OptimizerKind::ExactIlp,
        }
    }

    #[test]
    fn paper_flow_on_tiny_jpeg_canny_is_compositional_and_reduces_misses() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let outcome = experiment.run_paper_flow().unwrap();
        assert_eq!(outcome.app_name, "jpeg_canny");
        assert!(outcome.shared.report.l2.accesses > 0);
        assert!(outcome.partitioned.report.l2.misses > 0);
        // Partitioning must not increase misses dramatically and the
        // partitioned run must match the stand-alone expectation closely.
        assert!(
            outcome.compositionality.max_relative_difference() < 0.05,
            "compositionality error {}",
            outcome.compositionality.max_relative_difference()
        );
        assert!(outcome.allocation.total_units <= 64);
        assert!(!outcome.table_rows().is_empty());
        assert_eq!(outcome.figure2_rows().len(), outcome.allocation.units.len());
        assert!(!outcome.summary().is_empty());
    }

    #[test]
    fn paper_flow_on_tiny_mpeg2_runs() {
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            mpeg2_app(&params).expect("valid params")
        });
        let outcome = experiment.run_paper_flow().unwrap();
        assert_eq!(outcome.app_name, "mpeg2");
        assert!(outcome.shared.report.total_instructions() > 0);
        assert!(outcome
            .key_names
            .values()
            .any(|n| n == "vld" || n == "idct"));
        assert!(outcome.compositionality.max_relative_difference() < 0.1);
    }

    #[test]
    fn way_partitioned_and_larger_shared_runs_work() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let way = experiment.run_way_partitioned().unwrap();
        assert!(way.report.l2.accesses > 0);
        let big = experiment
            .run_shared_with_l2(CacheConfig::with_size_bytes(64 * 1024, 4).unwrap())
            .unwrap();
        let small = experiment
            .run_shared_with_l2(CacheConfig::with_size_bytes(8 * 1024, 4).unwrap())
            .unwrap();
        assert!(big.report.l2.misses <= small.report.l2.misses);
    }

    #[test]
    fn optimizer_comparison_orders_strategies() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (_, profiles) = experiment.run_shared_with_profiles().unwrap();
        let app = jpeg_canny_app(&JpegCannyParams::tiny()).unwrap();
        let allocations = experiment.compare_optimizers(&app, &profiles).unwrap();
        assert_eq!(allocations.len(), 3);
        let exact = &allocations[0];
        for other in &allocations[1..] {
            assert!(exact.predicted_misses <= other.predicted_misses);
        }
    }
}
