//! Experiment drivers that regenerate the paper's evaluation.
//!
//! # One driver, four organisations, two traffic sources
//!
//! Every simulation run is described declaratively by a [`ScenarioSpec`] —
//! an L2 configuration, an [`OrganizationSpec`] naming one of the four L2
//! organisations (shared, set-partitioned, way-partitioned, profiling), and
//! a [`TrafficSource`] naming where the memory traffic comes from:
//!
//! * [`TrafficSource::Live`] executes the application functionally through
//!   the Kahn-process-network runtime, as the paper's experiments do;
//! * [`TrafficSource::Replay`] re-issues a recorded
//!   [`EncodedTrace`] through the same hierarchy, skipping workload
//!   execution entirely — record once with
//!   [`Experiment::record_trace`], then sweep any number of organisations
//!   over the same traffic.
//!
//! [`Experiment::run`] is the **single** execution path: it turns the spec
//! into a `Box<dyn CacheModel>` and hands it either to the live
//! discrete-event engine or to the
//! [`ReplaySystem`]. There are no
//! per-organisation drivers; organisation-specific behaviour lives
//! entirely behind the `CacheModel` trait.
//!
//! Because specs are plain data (traces are shared by `Arc`) and the
//! application factory is a pure function, independent runs are
//! embarrassingly parallel: [`Experiment::run_all`] fans a batch of specs
//! out across the bounded work-stealing pool of
//! [`executor`] ([`Experiment::run_all_jobs`] picks the
//! worker count), and [`Experiment::compare_optimizers`] solves the three
//! partition-sizing strategies concurrently on the same pool.
//!
//! The central entry point is [`Experiment::run_paper_flow`], which performs
//! the full method of the paper on one application:
//!
//! 1. run the application on the conventional **shared** L2 while a
//!    [`TapProfiler`] measures the per-entity miss-rate curves in the same
//!    pass (single-pass stack-distance profiling — see
//!    [`StackDistanceProfiler`]),
//! 2. size the partitions by minimising the total predicted misses
//!    (FIFOs pinned to their own size, everything else optimised),
//! 3. run the application on the **set-partitioned** L2 with that
//!    allocation,
//! 4. compare expected and simulated per-entity misses (compositionality).
//!
//! The pre-curve source of the profiles — the [`ProfilingCache`]'s
//! shadow-cache bank — is kept behind
//! [`Experiment::run_profiled_simulated`] as the cross-validation oracle:
//! the parity tests assert both sources agree point for point at every
//! lattice size.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use compmem_cache::{
    CacheConfig, CacheModel, CacheSnapshot, CurveResolution, FlushStats, KeyStats, MissRateCurves,
    OrganizationSpec, PartitionKey, PartitionMap, PartitionSchedule, ProfilingCache,
    ReplacementPolicy, StackDistanceProfiler, WayAllocation, WindowConfig, WindowedCurves,
    WindowedProfiler,
};
use compmem_platform::{
    replay_lanes, replay_lanes_required, LaneDecision, LaneReport, PlatformConfig, PreparedTrace,
    ReplaySystem, System, SystemReport, TapProfiler, WindowedTapProfiler,
};
use compmem_trace::{EncodedTrace, RegionKind, RegionTable, TraceWriter};

use compmem_workloads::apps::Application;

use crate::compositionality::CompositionalityReport;
use crate::error::CoreError;
use crate::executor;
use crate::optimizer::{self, Allocation, AllocationEntity, AllocationProblem, OptimizerKind};
use crate::profile::{CacheSizeLattice, MissProfiles};

/// Configuration shared by all experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Platform (processors, L1s, latencies, task switching).
    pub platform: PlatformConfig,
    /// Shared L2 configuration.
    pub l2: CacheConfig,
    /// Cache sets per allocation unit.
    pub sets_per_unit: u32,
    /// Solver used to size the partitions.
    pub optimizer: OptimizerKind,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            platform: PlatformConfig::default(),
            l2: CacheConfig::paper_l2(),
            sets_per_unit: 16,
            optimizer: OptimizerKind::ExactIlp,
        }
    }
}

/// Where the memory traffic of a scenario comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSource {
    /// Execute the application functionally (the experiment's factory).
    Live,
    /// Replay a recorded trace; the workload is not executed.
    Replay(Arc<PreparedTrace>),
}

impl TrafficSource {
    /// Short name of the traffic source (`"live"` or `"replay"`).
    pub fn label(&self) -> &'static str {
        match self {
            TrafficSource::Live => "live",
            TrafficSource::Replay(_) => "replay",
        }
    }

    /// Returns `true` for replayed traffic.
    pub fn is_replay(&self) -> bool {
        matches!(self, TrafficSource::Replay(_))
    }
}

/// How many parallel replay lanes a scenario asks for, and whether the
/// request is a hard requirement.
///
/// Lane-parallel replay splits one trace replay across threads along
/// partition-key boundaries and is **exact** whenever the scenario is
/// lane-eligible (see [`compmem_platform::lane_eligibility`]); timing
/// fields (stalls, makespan) are not reconstructed by lanes, only the
/// cache-side numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneRequest {
    /// Replay serially through the [`ReplaySystem`] (full timing
    /// reconstruction). The default.
    #[default]
    Serial,
    /// Split into up to this many parallel lanes when the scenario is
    /// lane-eligible; fall back to one lane (with the reason recorded in
    /// [`RunOutcome::lane_decision`]) when it is not.
    Auto(usize),
    /// Split into up to this many parallel lanes, and fail with
    /// [`CoreError::Platform`] carrying
    /// [`LanesIneligible`](compmem_platform::PlatformError::LanesIneligible)
    /// when the scenario cannot split exactly.
    Require(usize),
}

/// The parallelism a replay scenario runs with: lane splitting across
/// partition keys, and worker threads for the per-processor L1 filter
/// pass. The default is fully serial, so existing specs behave exactly as
/// before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayParallelism {
    /// Lane-parallel replay request.
    pub lanes: LaneRequest,
    /// Worker threads for the L1 filter pass (the per-processor split of
    /// [`PreparedTrace::filtered_for_jobs`]); `1` filters serially. The
    /// filtered trace is byte-identical for every job count.
    pub segment_jobs: usize,
}

impl Default for ReplayParallelism {
    fn default() -> Self {
        ReplayParallelism {
            lanes: LaneRequest::Serial,
            segment_jobs: 1,
        }
    }
}

impl ReplayParallelism {
    /// Opportunistic lane-parallel replay on up to `n` lanes (serial
    /// fallback with a recorded reason when ineligible).
    pub fn lanes(n: usize) -> Self {
        ReplayParallelism {
            lanes: LaneRequest::Auto(n),
            ..Self::default()
        }
    }

    /// Lane-parallel replay on up to `n` lanes, failing when the scenario
    /// cannot split exactly.
    pub fn required_lanes(n: usize) -> Self {
        ReplayParallelism {
            lanes: LaneRequest::Require(n),
            ..Self::default()
        }
    }

    /// This request with `jobs` worker threads for the L1 filter pass.
    #[must_use]
    pub fn with_segment_jobs(self, jobs: usize) -> Self {
        ReplayParallelism {
            segment_jobs: jobs.max(1),
            ..self
        }
    }

    /// Returns `true` when this is the fully serial default.
    pub fn is_serial(&self) -> bool {
        *self == Self::default()
    }
}

impl fmt::Display for ReplayParallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lanes {
            LaneRequest::Serial => write!(f, "serial lanes")?,
            LaneRequest::Auto(n) => write!(f, "lanes auto({n})")?,
            LaneRequest::Require(n) => write!(f, "lanes required({n})")?,
        }
        if self.segment_jobs > 1 {
            write!(f, ", filter jobs {}", self.segment_jobs)?;
        }
        Ok(())
    }
}

/// A declarative description of one simulation run: which L2 configuration,
/// which partitioning **policy over time** (a [`PartitionSchedule`]; a
/// plain organisation is the single-step schedule), and which traffic
/// source. Specs are plain data (`Clone + Send + Sync`; traces are shared
/// by `Arc`), so batches of them can be built up front and executed in
/// parallel — in particular, an organisation sweep over **one** recorded
/// trace never re-executes the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The L2 cache configuration of the run.
    pub l2: CacheConfig,
    /// The partitioning policy of the run: the organisation the run
    /// starts under (step 0) plus any repartition events applied to the
    /// live cache at their cycle boundaries.
    pub schedule: PartitionSchedule,
    /// Where the memory traffic comes from.
    pub traffic: TrafficSource,
    /// How a replay of this spec parallelises (lanes and filter jobs);
    /// ignored for live traffic. Defaults to fully serial.
    pub parallelism: ReplayParallelism,
}

/// The pre-replay name of [`ScenarioSpec`], kept for continuity: a
/// `RunSpec` is a scenario whose traffic source defaults to live
/// execution.
pub type RunSpec = ScenarioSpec;

impl ScenarioSpec {
    /// A live-execution scenario under one static organisation.
    pub fn live(l2: CacheConfig, organization: OrganizationSpec) -> Self {
        Self::scheduled_live(l2, PartitionSchedule::single(organization))
    }

    /// A replay scenario over a recorded trace under one static
    /// organisation.
    pub fn replay(
        l2: CacheConfig,
        organization: OrganizationSpec,
        trace: Arc<PreparedTrace>,
    ) -> Self {
        Self::scheduled_replay(l2, PartitionSchedule::single(organization), trace)
    }

    /// A live-execution scenario under a time-varying partitioning
    /// policy.
    pub fn scheduled_live(l2: CacheConfig, schedule: PartitionSchedule) -> Self {
        ScenarioSpec {
            l2,
            schedule,
            traffic: TrafficSource::Live,
            parallelism: ReplayParallelism::default(),
        }
    }

    /// A replay scenario under a time-varying partitioning policy: the
    /// switches apply at their boundaries on the replayed time axis.
    pub fn scheduled_replay(
        l2: CacheConfig,
        schedule: PartitionSchedule,
        trace: Arc<PreparedTrace>,
    ) -> Self {
        ScenarioSpec {
            l2,
            schedule,
            traffic: TrafficSource::Replay(trace),
            parallelism: ReplayParallelism::default(),
        }
    }

    /// This scenario with its traffic switched to replaying `trace`.
    #[must_use]
    pub fn replaying(self, trace: Arc<PreparedTrace>) -> Self {
        ScenarioSpec {
            traffic: TrafficSource::Replay(trace),
            ..self
        }
    }

    /// This scenario with the given replay parallelism.
    #[must_use]
    pub fn with_parallelism(self, parallelism: ReplayParallelism) -> Self {
        ScenarioSpec {
            parallelism,
            ..self
        }
    }

    /// The organisation the run starts under (the schedule's step 0).
    pub fn organization(&self) -> &OrganizationSpec {
        self.schedule.initial()
    }

    /// Short name of the organisation this spec starts under.
    pub fn label(&self) -> &'static str {
        self.schedule.label()
    }
}

impl fmt::Display for ScenarioSpec {
    /// Renders the run's L2 shape, traffic source and full schedule (step
    /// count, switch cycles, per-step organisation labels) — the
    /// inspectable summary the CLI prints for scheduled runs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let geometry = self.l2.geometry();
        write!(
            f,
            "{} KB {}-way L2, {} traffic, schedule {}",
            geometry.size_bytes() / 1024,
            geometry.ways(),
            self.traffic.label(),
            self.schedule
        )?;
        if !self.parallelism.is_serial() {
            write!(f, ", {}", self.parallelism)?;
        }
        Ok(())
    }
}

/// The result of one simulation run with per-entity L2 statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The platform report (cycles, CPI, cache statistics).
    pub report: SystemReport,
    /// L2 accesses and misses per partition key (task, buffer, section).
    pub by_key: BTreeMap<PartitionKey, KeyStats>,
    /// Uniform snapshot of the L2 organisation's counters after the run.
    pub l2_snapshot: CacheSnapshot,
    /// How a lane-parallel replay resolved its lane split (requested
    /// lanes, lanes used, fallback reason). `None` for live runs and
    /// serial replays.
    #[serde(default)]
    pub lane_decision: Option<LaneDecision>,
}

impl RunOutcome {
    /// L2 misses of one entity.
    pub fn misses_of(&self, key: PartitionKey) -> u64 {
        self.by_key.get(&key).map_or(0, |s| s.misses)
    }

    /// Per-entity misses (for the compositionality comparison).
    pub fn misses_by_key(&self) -> BTreeMap<PartitionKey, u64> {
        self.by_key.iter().map(|(k, s)| (*k, s.misses)).collect()
    }
}

/// Complete outcome of the paper's method on one application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperFlowOutcome {
    /// Application name (`"jpeg_canny"` or `"mpeg2"`).
    pub app_name: String,
    /// Shared-cache baseline run.
    pub shared: RunOutcome,
    /// Per-entity miss profiles measured during the shared run.
    pub profiles: MissProfiles,
    /// Chosen partition sizes.
    pub allocation: Allocation,
    /// Set-partitioned run with that allocation.
    pub partitioned: RunOutcome,
    /// Expected-versus-simulated comparison (Figure 3).
    pub compositionality: CompositionalityReport,
    /// Display names of every partition key, following the paper's tables.
    pub key_names: BTreeMap<PartitionKey, String>,
    /// Sets per allocation unit (to convert units to the tables' set counts).
    pub sets_per_unit: u32,
}

impl PaperFlowOutcome {
    /// Display name of a partition key.
    pub fn key_name(&self, key: PartitionKey) -> String {
        self.key_names
            .get(&key)
            .cloned()
            .unwrap_or_else(|| key.to_string())
    }

    /// Ratio of shared-cache misses to partitioned-cache misses (the "N
    /// times less misses" headline).
    pub fn miss_improvement_factor(&self) -> f64 {
        let partitioned = self.partitioned.report.l2.misses;
        if partitioned == 0 {
            return f64::INFINITY;
        }
        self.shared.report.l2.misses as f64 / partitioned as f64
    }

    /// Shared-cache L2 miss rate.
    pub fn shared_miss_rate(&self) -> f64 {
        self.shared.report.l2_miss_rate()
    }

    /// Partitioned-cache L2 miss rate.
    pub fn partitioned_miss_rate(&self) -> f64 {
        self.partitioned.report.l2_miss_rate()
    }

    /// Average CPI of the shared-cache run.
    pub fn shared_cpi(&self) -> f64 {
        self.shared.report.average_cpi()
    }

    /// Average CPI of the partitioned run.
    pub fn partitioned_cpi(&self) -> f64 {
        self.partitioned.report.average_cpi()
    }

    /// Rows of the allocation table (Tables 1 / 2): entity name, allocation
    /// units and L2 sets.
    pub fn table_rows(&self) -> Vec<(String, u32, u32)> {
        self.allocation
            .iter()
            .map(|(key, &units)| (self.key_name(*key), units, units * self.sets_per_unit))
            .collect()
    }

    /// Rows of Figure 2: entity name, shared-cache misses, partitioned
    /// misses.
    pub fn figure2_rows(&self) -> Vec<(String, u64, u64)> {
        self.allocation
            .iter()
            .map(|(key, _)| {
                (
                    self.key_name(*key),
                    self.shared.misses_of(*key),
                    self.partitioned.misses_of(*key),
                )
            })
            .collect()
    }

    /// Rows of Figure 3: entity name, expected misses, simulated misses.
    pub fn figure3_rows(&self) -> Vec<(String, u64, u64)> {
        self.compositionality
            .entries
            .iter()
            .map(|e| (self.key_name(e.key), e.expected_misses, e.simulated_misses))
            .collect()
    }

    /// One-paragraph human-readable summary of the headline numbers.
    pub fn summary(&self) -> String {
        format!(
            "{}: shared L2 miss rate {:.2}% (CPI {:.2}) -> partitioned {:.2}% (CPI {:.2}); \
             {:.1}x fewer L2 misses; compositionality error {:.2}%",
            self.app_name,
            100.0 * self.shared_miss_rate(),
            self.shared_cpi(),
            100.0 * self.partitioned_miss_rate(),
            self.partitioned_cpi(),
            self.miss_improvement_factor(),
            100.0 * self.compositionality.max_relative_difference(),
        )
    }
}

/// Aggregates per-region statistics into per-partition-key statistics.
pub(crate) fn by_key_from_regions(
    table: &RegionTable,
    report: &SystemReport,
) -> BTreeMap<PartitionKey, KeyStats> {
    let mut out: BTreeMap<PartitionKey, KeyStats> = BTreeMap::new();
    for (region, stats) in &report.l2_by_region {
        if let Some(r) = table.regions().get(region.index()) {
            let key = PartitionKey::from_region_kind(r.kind);
            let entry = out.entry(key).or_default();
            entry.accesses += stats.accesses;
            entry.misses += stats.misses;
        }
    }
    out
}

/// Builds the display-name table for every partition key of an application.
fn key_names(app: &Application) -> BTreeMap<PartitionKey, String> {
    let mut names = BTreeMap::new();
    for region in app.space.table().iter() {
        let key = PartitionKey::from_region_kind(region.kind);
        let name = match region.kind {
            RegionKind::Fifo { .. } | RegionKind::FrameBuffer { .. } => region.name.clone(),
            RegionKind::AppData => "appl data".to_string(),
            RegionKind::AppBss => "appl bss".to_string(),
            RegionKind::RtData => "rt data".to_string(),
            RegionKind::RtBss => "rt bss".to_string(),
            _ => match region.kind.owner_task() {
                Some(task) => app.task_name(task).to_string(),
                None => region.name.clone(),
            },
        };
        names.entry(key).or_insert(name);
    }
    names
}

/// Replays a recorded trace under one partitioning schedule and also
/// returns the L2 model.
fn replay_model(
    platform: &PlatformConfig,
    l2_config: CacheConfig,
    schedule: &PartitionSchedule,
    trace: &PreparedTrace,
) -> Result<(RunOutcome, Box<dyn CacheModel>), CoreError> {
    let l2 = schedule.initial().build(l2_config, trace.table())?;
    let mut system = ReplaySystem::new(platform, l2, trace)?;
    if !schedule.is_static() {
        system.install_schedule(schedule, trace.table())?;
    }
    let report = system.run();
    let by_key = by_key_from_regions(trace.table(), &report);
    let l2 = system.into_l2();
    let l2_snapshot = l2.snapshot();
    Ok((
        RunOutcome {
            report,
            by_key,
            l2_snapshot,
            lane_decision: None,
        },
        l2,
    ))
}

/// Converts a merged lane report into a [`RunOutcome`].
///
/// The cache-side fields (L1/L2 statistics, per-entity attribution, DRAM
/// and bus-byte traffic) are exactly the serial replay's; timing fields
/// (stalls, bus waits, makespan, per-processor reports) are zero because
/// lanes do not reconstruct the global transfer interleaving, and the L2
/// snapshot stays empty because each lane owns only its slice of the
/// organisation. [`RunOutcome::lane_decision`] records how the split was
/// resolved.
fn outcome_from_lanes(lanes: LaneReport, table: &RegionTable) -> RunOutcome {
    let report = SystemReport {
        l1: lanes.l1,
        l2: lanes.l2,
        l2_by_task: lanes.l2_by_task.iter().map(|(k, v)| (*k, *v)).collect(),
        l2_by_region: lanes.l2_by_region.iter().map(|(k, v)| (*k, *v)).collect(),
        dram_accesses: lanes.dram_accesses,
        dram_writebacks: lanes.dram_writebacks,
        bus_bytes: lanes.bus_bytes,
        ..SystemReport::default()
    };
    let by_key = by_key_from_regions(table, &report);
    RunOutcome {
        report,
        by_key,
        l2_snapshot: CacheSnapshot::default(),
        lane_decision: Some(lanes.decision),
    }
}

/// Replays a recorded trace under one schedule with the requested
/// parallelism: the L1 filter pass runs on `parallelism.segment_jobs`
/// workers, and the replay itself either goes through the serial
/// [`ReplaySystem`] (full timing reconstruction) or splits into per-key
/// lanes ([`LaneRequest::Auto`] / [`LaneRequest::Require`]).
fn replay_outcome(
    platform: &PlatformConfig,
    l2: CacheConfig,
    schedule: &PartitionSchedule,
    trace: &PreparedTrace,
    parallelism: ReplayParallelism,
) -> Result<RunOutcome, CoreError> {
    // Warm the filter cache with the parallel pass; its result is
    // byte-identical to the serial pass, so every later consumer —
    // serial replay or lanes — reuses it transparently.
    if parallelism.segment_jobs > 1 {
        trace.filtered_for_jobs(platform, parallelism.segment_jobs)?;
    }
    match parallelism.lanes {
        LaneRequest::Serial => {
            replay_model(platform, l2, schedule, trace).map(|(outcome, _)| outcome)
        }
        LaneRequest::Auto(jobs) => {
            let report = replay_lanes(platform, l2, schedule, trace, jobs)?;
            Ok(outcome_from_lanes(report, trace.table()))
        }
        LaneRequest::Require(jobs) => {
            let report = replay_lanes_required(platform, l2, schedule, trace, jobs)?;
            Ok(outcome_from_lanes(report, trace.table()))
        }
    }
}

/// Runs a replay scenario without an [`Experiment`] (no application
/// factory needed): the trace embedded in the spec is the whole workload.
///
/// This is what the `compmem replay` / `compmem sweep` CLI subcommands are
/// built on. The spec's [`ReplayParallelism`] is honoured: lane requests
/// replay per partition key, filter jobs split the L1 pass per processor.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `spec` names live traffic, and
/// propagates cache and platform errors otherwise — including
/// [`LanesIneligible`](compmem_platform::PlatformError::LanesIneligible)
/// when the spec *requires* lanes on an ineligible scenario.
pub fn run_replay(platform: &PlatformConfig, spec: &ScenarioSpec) -> Result<RunOutcome, CoreError> {
    match &spec.traffic {
        TrafficSource::Live => Err(CoreError::Infeasible {
            reason: "run_replay requires a replay scenario; live scenarios need an Experiment"
                .to_string(),
        }),
        TrafficSource::Replay(trace) => {
            replay_outcome(platform, spec.l2, &spec.schedule, trace, spec.parallelism)
        }
    }
}

/// Builds the allocation problem for the entities of a region table on a
/// given lattice: FIFOs are pinned to the smallest candidate covering
/// their byte size (the paper's predictability rule), every other entity
/// may take any candidate size.
///
/// This is the factory-free core of
/// [`Experiment::build_allocation_problem`], usable with the embedded
/// table of a recorded trace.
pub fn allocation_problem_for_table(
    table: &RegionTable,
    lattice: &CacheSizeLattice,
    geometry: compmem_cache::CacheGeometry,
    profiles: MissProfiles,
) -> AllocationProblem {
    let mut entities: Vec<AllocationEntity> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for region in table.iter() {
        let key = PartitionKey::from_region_kind(region.kind);
        if !seen.insert(key) {
            continue;
        }
        let candidates = match region.kind {
            RegionKind::Fifo { .. } => {
                vec![lattice.units_for_bytes(geometry, region.size)]
            }
            _ => lattice.candidate_units.clone(),
        };
        entities.push(AllocationEntity { key, candidates });
    }
    AllocationProblem {
        entities,
        profiles,
        total_units: lattice.total_units,
    }
}

/// One point of the analytic L2 shape sweep: a candidate `(sets, ways)`
/// shape and the exact shared-cache misses the profiled stream would
/// incur on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapePoint {
    /// Number of sets of the candidate L2.
    pub sets: u32,
    /// Associativity of the candidate L2.
    pub ways: u32,
    /// Capacity of the candidate L2 in bytes.
    pub size_bytes: u64,
    /// Exact misses of a shared LRU L2 of this shape over the profiled
    /// stream.
    pub misses: u64,
    /// Miss rate over the profiled (L2-bound) accesses.
    pub miss_rate: f64,
}

/// The analytic L2 size × associativity sweep evaluated from one
/// [`MissRateCurves`] — no replay per shape.
///
/// Every power-of-two set count within the curves' resolution is crossed
/// with every power-of-two associativity up to the resolution's cap; the
/// miss count at each point comes from the aggregate curve's Mattson
/// suffix sums ([`MissRateCurves::shared_misses`]) and is **exact**, not
/// a model: the parity test replays the trace at every shape and asserts
/// equality point for point.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeSweep {
    /// L2-bound accesses of the profiled stream (constant across shapes).
    pub accesses: u64,
    /// One point per resolved shape, sets-major, ascending.
    pub points: Vec<ShapePoint>,
}

impl ShapeSweep {
    /// The point at one shape, if resolved.
    pub fn point(&self, sets: u32, ways: u32) -> Option<&ShapePoint> {
        self.points
            .iter()
            .find(|p| p.sets == sets && p.ways == ways)
    }

    /// The distinct set counts of the sweep, ascending.
    pub fn set_counts(&self) -> Vec<u32> {
        let mut sets: Vec<u32> = self.points.iter().map(|p| p.sets).collect();
        sets.dedup();
        sets
    }

    /// The distinct associativities of the sweep, ascending.
    pub fn way_counts(&self) -> Vec<u32> {
        let mut ways: Vec<u32> = self.points.iter().map(|p| p.ways).collect();
        ways.sort_unstable();
        ways.dedup();
        ways
    }
}

/// Evaluates the analytic shape sweep from one set of curves (the
/// factory-free core of [`Experiment::sweep_shapes`], usable with curves
/// profiled from a recorded trace — the `compmem sweep-shapes` CLI does
/// exactly that).
pub fn sweep_shapes_from_curves(curves: &MissRateCurves) -> ShapeSweep {
    let resolution = curves.resolution;
    let accesses = curves.accesses();
    let mut points = Vec::new();
    let mut sets = resolution.min_sets;
    while sets <= resolution.max_sets {
        let mut ways = 1u32;
        while ways <= resolution.ways_cap {
            let misses = curves
                .shared_misses(sets, ways)
                .expect("shape drawn from the curves' own resolution");
            points.push(ShapePoint {
                sets,
                ways,
                size_bytes: u64::from(sets) * u64::from(ways) * compmem_trace::LINE_SIZE_BYTES,
                misses,
                miss_rate: if accesses == 0 {
                    0.0
                } else {
                    misses as f64 / accesses as f64
                },
            });
            ways *= 2;
        }
        sets = sets.saturating_mul(2);
        if sets == 0 {
            break;
        }
    }
    ShapeSweep { accesses, points }
}

/// Segments a windowed profiling pass into phases and sizes the
/// partitions once per phase plus once for the whole run — the
/// factory-free core of [`Experiment::phase_allocations`], usable with
/// curves profiled from a recorded trace (the `compmem profile
/// --phases` CLI does exactly that).
///
/// # Errors
///
/// Propagates optimizer and curve-conversion errors.
pub fn phase_allocations_for_table(
    windowed: &WindowedCurves,
    threshold: f64,
    table: &RegionTable,
    lattice: &CacheSizeLattice,
    geometry: compmem_cache::CacheGeometry,
    kind: OptimizerKind,
) -> Result<PhasePlan, CoreError> {
    let solve_for = |curves: &MissRateCurves| -> Result<Allocation, CoreError> {
        let profiles = curves.to_profiles(lattice, geometry.ways())?;
        let problem = allocation_problem_for_table(table, lattice, geometry, profiles);
        optimizer::solve(&problem, kind)
    };
    let whole_run = solve_for(&windowed.total)?;
    let mut phases = Vec::new();
    for phase in windowed.phases(threshold) {
        phases.push(PhaseAllocation {
            first_window: phase.first_window,
            last_window: phase.last_window,
            start_cycle: phase.start_cycle,
            end_cycle: phase.end_cycle,
            accesses: phase.curves.accesses(),
            allocation: solve_for(&phase.curves)?,
        });
    }
    Ok(PhasePlan {
        threshold,
        phases,
        whole_run,
    })
}

/// The partition allocation of one detected phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAllocation {
    /// First member window of the phase.
    pub first_window: usize,
    /// Last member window (inclusive).
    pub last_window: usize,
    /// Start cycle of the phase.
    pub start_cycle: u64,
    /// End cycle of the phase.
    pub end_cycle: u64,
    /// L2-bound accesses of the phase.
    pub accesses: u64,
    /// The optimizer's allocation for the phase's curves.
    pub allocation: Allocation,
}

/// Per-phase partition allocations plus the whole-run baseline.
///
/// Produced by [`Experiment::phase_allocations`]: the phase-change
/// detector segments the profiling windows, the optimizer runs once per
/// phase on that phase's curves, and once on the whole-run curves — the
/// paper's repartition-per-phase extension.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// The curve-delta threshold the phases were detected with.
    pub threshold: f64,
    /// One allocation per phase, in stream order.
    pub phases: Vec<PhaseAllocation>,
    /// The allocation the whole-run curves produce (the non-phase-aware
    /// baseline).
    pub whole_run: Allocation,
}

impl PhasePlan {
    /// Total predicted misses if each phase runs under its own
    /// allocation.
    pub fn predicted_misses_per_phase(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.allocation.predicted_misses)
            .sum()
    }

    /// Returns `true` if any two phases chose different allocations (the
    /// signal that repartitioning between phases can pay off).
    pub fn has_distinct_allocations(&self) -> bool {
        self.phases
            .windows(2)
            .any(|pair| pair[0].allocation.units != pair[1].allocation.units)
    }

    /// Converts the plan into an executable [`PartitionSchedule`]: one
    /// set-partitioned step per phase (each phase's allocation packed
    /// into a [`PartitionMap`] on `lattice`/`geometry`), switching at
    /// each phase's start cycle. This is what turns PR 4's analysis-only
    /// per-phase sizings into something the engine can run.
    ///
    /// Each step after the first is laid out with
    /// [`PartitionMap::pack_stable`] against its predecessor, so a key
    /// whose allocation did not change between phases keeps its exact
    /// sets and the switch flushes only the partitions that actually
    /// re-sized or moved.
    ///
    /// Steps are kept even when consecutive phases chose the same
    /// allocation — re-applying an identical map flushes nothing, and
    /// the fired boundary records give the validation driver its
    /// per-phase measurement points. A phase whose start cycle does not
    /// advance past the previous step's (degenerate windows) is folded
    /// into it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CapacityExceeded`] if a phase's allocation
    /// does not fit the lattice, and propagates map-packing and schedule
    /// validation errors (an empty plan has no schedule).
    pub fn to_schedule(
        &self,
        lattice: &CacheSizeLattice,
        geometry: compmem_cache::CacheGeometry,
    ) -> Result<PartitionSchedule, CoreError> {
        let mut steps: Vec<(u64, OrganizationSpec)> = Vec::new();
        let mut previous: Option<PartitionMap> = None;
        for (at_cycle, range) in self.step_groups() {
            let phase = &self.phases[*range.start()];
            if phase.allocation.total_units > lattice.total_units {
                return Err(CoreError::CapacityExceeded {
                    requested: phase.allocation.total_units,
                    available: lattice.total_units,
                });
            }
            let sizes: Vec<(PartitionKey, u32)> = phase
                .allocation
                .iter()
                .map(|(key, &units)| (*key, lattice.sets_of(units)))
                .collect();
            let map = match &previous {
                None => PartitionMap::pack(geometry, &sizes)?,
                Some(previous) => PartitionMap::pack_stable(geometry, &sizes, previous)?,
            };
            previous = Some(map.clone());
            steps.push((at_cycle, OrganizationSpec::SetPartitioned(map)));
        }
        PartitionSchedule::new(steps).map_err(CoreError::from)
    }

    /// Groups phases into schedule steps: each entry is the step's
    /// boundary cycle plus the inclusive range of phase indices it
    /// covers. A phase whose start cycle does not advance past the
    /// previous step's boundary (degenerate windows) folds into that
    /// step. This is the **single** definition of the phase → step
    /// mapping, shared by [`to_schedule`](Self::to_schedule) and
    /// [`validate_phase_plan`] so the two can never drift apart.
    fn step_groups(&self) -> Vec<(u64, std::ops::RangeInclusive<usize>)> {
        let mut groups: Vec<(u64, std::ops::RangeInclusive<usize>)> = Vec::new();
        for (i, phase) in self.phases.iter().enumerate() {
            let at_cycle = if i == 0 { 0 } else { phase.start_cycle };
            match groups.last_mut() {
                Some((last, range)) if at_cycle <= *last => *range = *range.start()..=i,
                _ => groups.push((at_cycle, i..=i)),
            }
        }
        groups
    }
}

/// Predicted versus measured misses of one phase of a scheduled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseComparison {
    /// Phase index (stream order).
    pub phase: usize,
    /// Start cycle of the phase.
    pub start_cycle: u64,
    /// End cycle of the phase.
    pub end_cycle: u64,
    /// Misses the optimizer predicted for the phase under its own
    /// allocation.
    pub predicted_misses: u64,
    /// Misses the scheduled run actually accumulated between this
    /// phase's repartition boundaries.
    pub measured_misses: u64,
}

impl PhaseComparison {
    /// Measured minus predicted misses (positive: the phase missed more
    /// than predicted).
    pub fn delta(&self) -> i64 {
        self.measured_misses as i64 - self.predicted_misses as i64
    }
}

/// Outcome of the static-best versus phase-scheduled validation driver
/// ([`validate_phase_plan`]): both runs replay the **same** recorded
/// trace, so the miss deltas are attributable to the partitioning policy
/// alone.
#[derive(Debug, Clone)]
pub struct ScheduleValidation {
    /// The executable schedule derived from the plan.
    pub schedule: PartitionSchedule,
    /// The whole-run allocation applied statically (the non-phase-aware
    /// best).
    pub static_outcome: RunOutcome,
    /// The per-phase schedule executed on the same trace.
    pub scheduled_outcome: RunOutcome,
    /// Per-phase predicted vs measured misses, segmented at the fired
    /// repartition boundaries. Comparison `i` covers the schedule's
    /// `i`-th step; phases whose step was folded into its predecessor
    /// (degenerate windows sharing a start cycle — see
    /// [`PhasePlan::to_schedule`]) merge their predictions into that
    /// predecessor's comparison, so predicted and measured always
    /// describe the same cycle range.
    pub phases: Vec<PhaseComparison>,
}

impl ScheduleValidation {
    /// Static-run misses minus scheduled-run misses (positive: the
    /// schedule saved misses net of its repartition flushes).
    pub fn measured_improvement(&self) -> i64 {
        self.static_outcome.report.l2.misses as i64 - self.scheduled_outcome.report.l2.misses as i64
    }

    /// Total flush cost of every fired repartition.
    pub fn total_flush(&self) -> FlushStats {
        let mut total = FlushStats::default();
        for record in &self.scheduled_outcome.report.repartitions {
            total.absorb(record.flush);
        }
        total
    }
}

/// Runs the validation driver of the phase-aware execution path: replays
/// `trace` once under the plan's **whole-run** allocation (static best)
/// and once under the plan's [`PartitionSchedule`], then reports
/// per-phase predicted vs measured miss counts (segmented at the fired
/// repartition boundaries) alongside both outcomes.
///
/// This is the factory-free core of
/// [`Experiment::validate_phase_plan`]; the `compmem replay --schedule
/// phases` CLI is built on it.
///
/// # Errors
///
/// Propagates schedule construction, cache and platform errors.
pub fn validate_phase_plan(
    platform: &PlatformConfig,
    l2: CacheConfig,
    lattice: &CacheSizeLattice,
    plan: &PhasePlan,
    trace: &PreparedTrace,
) -> Result<ScheduleValidation, CoreError> {
    let geometry = l2.geometry();
    let schedule = plan.to_schedule(lattice, geometry)?;
    let static_sizes: Vec<(PartitionKey, u32)> = plan
        .whole_run
        .iter()
        .map(|(key, &units)| (*key, lattice.sets_of(units)))
        .collect();
    let static_map = PartitionMap::pack(geometry, &static_sizes)?;
    let (static_outcome, _) = replay_model(
        platform,
        l2,
        &PartitionSchedule::single(OrganizationSpec::SetPartitioned(static_map)),
        trace,
    )?;
    let (scheduled_outcome, _) = replay_model(platform, l2, &schedule, trace)?;

    // Measured misses per boundary segment: differences of the L2 miss
    // counter snapshotted at each fired switch, plus the tail.
    let log = &scheduled_outcome.report.repartitions;
    let mut measured = Vec::with_capacity(log.len() + 1);
    let mut previous = 0u64;
    for record in log {
        measured.push(record.l2_misses_before - previous);
        previous = record.l2_misses_before;
    }
    measured.push(scheduled_outcome.report.l2.misses - previous);
    // One comparison per schedule step (`PhasePlan::step_groups` is the
    // single owner of the phase → step fold rule): folded phases merge
    // their predictions into the step they share.
    let phases = plan
        .step_groups()
        .into_iter()
        .enumerate()
        .map(|(segment, (_, range))| {
            let members = &plan.phases[range];
            PhaseComparison {
                phase: segment,
                start_cycle: members[0].start_cycle,
                end_cycle: members.iter().map(|p| p.end_cycle).max().unwrap_or(0),
                predicted_misses: members.iter().map(|p| p.allocation.predicted_misses).sum(),
                measured_misses: measured.get(segment).copied().unwrap_or(0),
            }
        })
        .collect();
    Ok(ScheduleValidation {
        schedule,
        static_outcome,
        scheduled_outcome,
        phases,
    })
}

/// An experiment bound to an application factory.
///
/// The factory is invoked once per simulation run (the process network is
/// consumed by execution); it must be deterministic so that all runs see the
/// same address-space layout. When the factory is additionally `Sync`,
/// batches of runs execute in parallel worker threads.
pub struct Experiment<F> {
    config: ExperimentConfig,
    factory: F,
    /// Partition keys of the application, derived lazily from one factory
    /// call and cached: spec construction must not pay a full application
    /// build per call.
    entity_keys: OnceLock<Vec<PartitionKey>>,
}

impl<F: Fn() -> Application> Experiment<F> {
    /// Creates an experiment.
    pub fn new(config: ExperimentConfig, factory: F) -> Self {
        Experiment {
            config,
            factory,
            entity_keys: OnceLock::new(),
        }
    }

    /// The configuration of the experiment.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    fn platform_for(&self, app: &Application) -> PlatformConfig {
        self.config.platform.with_os_regions(app.os_regions)
    }

    fn lattice(&self) -> CacheSizeLattice {
        CacheSizeLattice::new(self.config.l2.geometry(), self.config.sets_per_unit)
    }

    /// The resolution the single-pass profiler runs at: every power-of-two
    /// set count from one allocation unit up to the full L2, at the L2's
    /// associativity — a superset of every lattice this experiment can
    /// ask about.
    pub fn curve_resolution(&self) -> CurveResolution {
        CurveResolution::for_geometry(self.config.l2.geometry(), self.config.sets_per_unit)
            .expect("sets per unit must be a power of two no larger than the cache")
    }

    // ----- spec constructors (pure data, no simulation) -----

    /// Spec of the shared-cache baseline on the configured L2.
    pub fn shared_spec(&self) -> ScenarioSpec {
        ScenarioSpec::live(self.config.l2, OrganizationSpec::Shared)
    }

    /// Spec of a shared-cache run with an alternative L2 configuration
    /// (e.g. the paper's 1 MB comparison point).
    pub fn shared_spec_with_l2(&self, l2: CacheConfig) -> ScenarioSpec {
        ScenarioSpec::live(l2, OrganizationSpec::Shared)
    }

    /// Spec of the profiling run: the shared baseline plus shadow caches
    /// measuring per-entity miss-vs-size profiles.
    pub fn profiling_spec(&self) -> ScenarioSpec {
        ScenarioSpec::live(self.config.l2, OrganizationSpec::Profiling(self.lattice()))
    }

    /// Spec of the set-partitioned run with the given allocation (packed
    /// back to back from set 0).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CapacityExceeded`] if the allocation does not
    /// fit, or a cache error if the packed map is invalid.
    pub fn partitioned_spec(&self, allocation: &Allocation) -> Result<RunSpec, CoreError> {
        let lattice = self.lattice();
        if allocation.total_units > lattice.total_units {
            return Err(CoreError::CapacityExceeded {
                requested: allocation.total_units,
                available: lattice.total_units,
            });
        }
        let sizes: Vec<(PartitionKey, u32)> = allocation
            .iter()
            .map(|(k, &units)| (*k, lattice.sets_of(units)))
            .collect();
        let map = PartitionMap::pack(self.config.l2.geometry(), &sizes)?;
        Ok(ScenarioSpec::live(
            self.config.l2,
            OrganizationSpec::SetPartitioned(map),
        ))
    }

    /// Spec of the way-partitioned (column caching) baseline, splitting the
    /// ways evenly over all entities of the application.
    ///
    /// The entity keys come from the application's region table, which is
    /// derived once (the first caller pays one factory invocation) and
    /// cached for the lifetime of the experiment.
    pub fn way_partitioned_spec(&self) -> ScenarioSpec {
        let keys = self
            .entity_keys
            .get_or_init(|| PartitionKey::distinct_keys((self.factory)().space.table()));
        let allocation = WayAllocation::equal_split(self.config.l2.geometry(), keys);
        ScenarioSpec::live(self.config.l2, OrganizationSpec::WayPartitioned(allocation))
    }

    // ----- the single execution path -----

    /// Runs one spec and additionally returns the L2 model, so callers can
    /// recover organisation-specific state (profiles) by downcasting.
    fn run_model(
        &self,
        spec: &ScenarioSpec,
    ) -> Result<(RunOutcome, Box<dyn CacheModel>), CoreError> {
        match &spec.traffic {
            TrafficSource::Live => {
                let mut app = (self.factory)();
                let platform = self.platform_for(&app);
                let l2 = spec.organization().build(spec.l2, app.space.table())?;
                let mut system = System::new(platform, l2, app.mapping.clone())?;
                if !spec.schedule.is_static() {
                    system.install_schedule(&spec.schedule, app.space.table())?;
                }
                let report = system.run(&mut app.network)?;
                let by_key = by_key_from_regions(app.space.table(), &report);
                let l2 = system.into_l2();
                let l2_snapshot = l2.snapshot();
                Ok((
                    RunOutcome {
                        report,
                        by_key,
                        l2_snapshot,
                        lane_decision: None,
                    },
                    l2,
                ))
            }
            TrafficSource::Replay(trace) => {
                replay_model(&self.config.platform, spec.l2, &spec.schedule, trace)
            }
        }
    }

    /// Runs the scenario once as described by `spec`.
    ///
    /// This is the only simulation driver: every organisation — baseline,
    /// partitioned, ablation or profiling — and both traffic sources go
    /// through this path. Replay scenarios never invoke the application
    /// factory, and honour the spec's [`ReplayParallelism`]: lane
    /// requests replay per partition key (cache-side numbers exact,
    /// timing not reconstructed), filter jobs split the L1 pass per
    /// processor (byte-identical for every job count).
    ///
    /// # Errors
    ///
    /// Propagates cache, platform and workload errors — including
    /// [`LanesIneligible`](compmem_platform::PlatformError::LanesIneligible)
    /// when the spec *requires* lanes on an ineligible scenario.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<RunOutcome, CoreError> {
        if let (TrafficSource::Replay(trace), false) = (&spec.traffic, spec.parallelism.is_serial())
        {
            return replay_outcome(
                &self.config.platform,
                spec.l2,
                &spec.schedule,
                trace,
                spec.parallelism,
            );
        }
        self.run_model(spec).map(|(outcome, _)| outcome)
    }

    /// Runs `spec` live while recording every access entering the memory
    /// hierarchy, and returns the run's outcome together with the encoded
    /// trace.
    ///
    /// The trace embeds the application's region table, so it is a
    /// self-contained scenario: replaying it (see
    /// [`ScenarioSpec::replaying`]) against the same platform parameters
    /// and organisation reproduces this run's [`CacheSnapshot`] exactly,
    /// and sweeping other organisations over it skips workload execution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when `spec` names replay traffic
    /// (recording requires live execution), and propagates cache,
    /// platform, workload and trace-encoding errors otherwise.
    pub fn record_trace(
        &self,
        spec: &ScenarioSpec,
    ) -> Result<(RunOutcome, Arc<PreparedTrace>), CoreError> {
        if spec.traffic.is_replay() {
            return Err(CoreError::Infeasible {
                reason: "record_trace requires a live scenario; replaying a trace while \
                         recording it would not execute the workload"
                    .to_string(),
            });
        }
        let mut app = (self.factory)();
        let platform = self.platform_for(&app);
        let l2 = spec.organization().build(spec.l2, app.space.table())?;
        let mut system = System::new(platform, l2, app.mapping.clone())?;
        if !spec.schedule.is_static() {
            system.install_schedule(&spec.schedule, app.space.table())?;
        }
        let mut writer = TraceWriter::new(
            Vec::new(),
            app.space.table(),
            platform.num_processors as u32,
        )?;
        let report = system.run_traced(&mut app.network, &mut writer)?;
        let (bytes, _) = writer.finish()?;
        let trace = PreparedTrace::from(EncodedTrace::from_bytes(bytes)?);
        let by_key = by_key_from_regions(app.space.table(), &report);
        let l2_snapshot = system.into_l2().snapshot();
        Ok((
            RunOutcome {
                report,
                by_key,
                l2_snapshot,
                lane_decision: None,
            },
            Arc::new(trace),
        ))
    }

    /// Checks that the configured L2 replacement policy is LRU, which is
    /// the only policy the stack-distance identity (and the shadow bank
    /// it mirrors) is exact for.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonLruProfiling`] naming the offending
    /// policy.
    fn require_lru_for_profiling(&self) -> Result<(), CoreError> {
        let policy = self.config.l2.replacement_policy();
        if policy != ReplacementPolicy::Lru {
            return Err(CoreError::NonLruProfiling {
                policy: policy.to_string(),
            });
        }
        Ok(())
    }

    /// Runs the shared-cache baseline live while a [`TapProfiler`]
    /// measures the per-entity miss-rate curves in the same pass, and
    /// returns both.
    ///
    /// This is the single-pass replacement for the shadow-cache profiling
    /// run: one live execution yields the shared baseline *and* the exact
    /// miss count of every entity at every resolved cache shape (see
    /// [`Experiment::curve_resolution`]), without materialising a trace.
    /// The curves convert into the [`MissProfiles`] of any lattice via
    /// [`MissRateCurves::to_profiles`].
    ///
    /// # Errors
    ///
    /// Propagates platform and workload errors, and returns
    /// [`CoreError::NonLruProfiling`] when the configured L2 policy is
    /// not LRU (the curves would not describe the real cache).
    pub fn profile_curves(&self) -> Result<(RunOutcome, MissRateCurves), CoreError> {
        self.require_lru_for_profiling()?;
        let mut app = (self.factory)();
        let platform = self.platform_for(&app);
        let l2 = OrganizationSpec::Shared.build(self.config.l2, app.space.table())?;
        let mut system = System::new(platform, l2, app.mapping.clone())?;
        let mut tap = TapProfiler::new(
            &platform,
            StackDistanceProfiler::new(self.curve_resolution(), app.space.table()),
        );
        let report = system.run_traced(&mut app.network, &mut tap)?;
        let by_key = by_key_from_regions(app.space.table(), &report);
        let l2_snapshot = system.into_l2().snapshot();
        Ok((
            RunOutcome {
                report,
                by_key,
                l2_snapshot,
                lane_decision: None,
            },
            tap.into_curves(),
        ))
    }

    /// Runs the shared-cache baseline live while a windowed profiler tap
    /// measures the per-entity miss-rate curves **per window** — the
    /// phase-aware variant of [`Experiment::profile_curves`].
    ///
    /// The returned [`WindowedCurves`] carries one [`MissRateCurves`]
    /// snapshot per window plus the exact whole-run curves (`total`,
    /// identical to what `profile_curves` measures); feed it to
    /// [`Experiment::phase_allocations`] to re-run the optimizer per
    /// detected phase.
    ///
    /// # Errors
    ///
    /// Propagates platform and workload errors, and returns
    /// [`CoreError::NonLruProfiling`] when the configured L2 policy is
    /// not LRU, as for [`Experiment::profile_curves`].
    pub fn profile_curves_windowed(
        &self,
        window: WindowConfig,
    ) -> Result<(RunOutcome, WindowedCurves), CoreError> {
        self.require_lru_for_profiling()?;
        let mut app = (self.factory)();
        let platform = self.platform_for(&app);
        let l2 = OrganizationSpec::Shared.build(self.config.l2, app.space.table())?;
        let mut system = System::new(platform, l2, app.mapping.clone())?;
        let mut tap = WindowedTapProfiler::new(
            &platform,
            WindowedProfiler::new(window, self.curve_resolution(), app.space.table()),
        );
        let report = system.run_traced(&mut app.network, &mut tap)?;
        let by_key = by_key_from_regions(app.space.table(), &report);
        let l2_snapshot = system.into_l2().snapshot();
        Ok((
            RunOutcome {
                report,
                by_key,
                l2_snapshot,
                lane_decision: None,
            },
            tap.into_windows(),
        ))
    }

    /// Evaluates the analytic L2 size × associativity sweep from one set
    /// of measured curves: the exact shared-cache miss count at **every**
    /// resolved shape, without a replay per shape (see
    /// [`sweep_shapes_from_curves`]).
    pub fn sweep_shapes(&self, curves: &MissRateCurves) -> ShapeSweep {
        sweep_shapes_from_curves(curves)
    }

    /// Segments a windowed profiling pass into phases and sizes the
    /// partitions once per phase plus once for the whole run.
    ///
    /// `threshold` is the [`curve_delta`](compmem_cache::curve_delta)
    /// above which consecutive windows belong to different phases (0.10
    /// is a reasonable default); `table` names the entities and pins the
    /// FIFOs, exactly as in [`Experiment::build_allocation_problem`].
    /// Entities generating no traffic during a phase receive the
    /// optimizer's minimum allocation for that phase.
    ///
    /// # Errors
    ///
    /// Propagates optimizer and curve-conversion errors.
    pub fn phase_allocations(
        &self,
        windowed: &WindowedCurves,
        threshold: f64,
        table: &RegionTable,
    ) -> Result<PhasePlan, CoreError> {
        phase_allocations_for_table(
            windowed,
            threshold,
            table,
            &self.lattice(),
            self.config.l2.geometry(),
            self.config.optimizer,
        )
    }

    /// Spec of the **live** scheduled run executing a phase plan: the
    /// plan's schedule ([`PhasePlan::to_schedule`]) on this experiment's
    /// L2 and lattice.
    ///
    /// # Errors
    ///
    /// Propagates schedule construction errors.
    pub fn scheduled_spec(&self, plan: &PhasePlan) -> Result<ScenarioSpec, CoreError> {
        let schedule = plan.to_schedule(&self.lattice(), self.config.l2.geometry())?;
        Ok(ScenarioSpec::scheduled_live(self.config.l2, schedule))
    }

    /// Replays a recorded trace under a time-varying partitioning policy
    /// on this experiment's L2 — the execution half of the phase-aware
    /// flow: derive a [`PhasePlan`], convert it with
    /// [`PhasePlan::to_schedule`], and run it here (or go through
    /// [`Experiment::validate_phase_plan`] to also get the static-best
    /// comparison).
    ///
    /// # Errors
    ///
    /// Propagates cache and platform errors.
    pub fn run_scheduled(
        &self,
        trace: &Arc<PreparedTrace>,
        schedule: PartitionSchedule,
    ) -> Result<RunOutcome, CoreError> {
        self.run(&ScenarioSpec::scheduled_replay(
            self.config.l2,
            schedule,
            Arc::clone(trace),
        ))
    }

    /// Runs the validation driver on a phase plan: static-best versus
    /// phase-scheduled on the same recorded trace, with per-phase
    /// predicted vs measured miss deltas (see [`validate_phase_plan`]).
    ///
    /// # Errors
    ///
    /// Propagates schedule construction, cache and platform errors.
    pub fn validate_phase_plan(
        &self,
        trace: &PreparedTrace,
        plan: &PhasePlan,
    ) -> Result<ScheduleValidation, CoreError> {
        validate_phase_plan(
            &self.config.platform,
            self.config.l2,
            &self.lattice(),
            plan,
            trace,
        )
    }

    /// Runs the shared-cache baseline and measures the per-entity miss
    /// profiles in the same run, via the single-pass stack-distance
    /// profiler ([`Experiment::profile_curves`] evaluated on this
    /// experiment's lattice).
    ///
    /// # Errors
    ///
    /// Propagates platform and workload errors.
    pub fn run_profiled(&self) -> Result<(RunOutcome, MissProfiles), CoreError> {
        let (outcome, curves) = self.profile_curves()?;
        let profiles = curves.to_profiles(&self.lattice(), self.config.l2.geometry().ways())?;
        Ok((outcome, profiles))
    }

    /// The pre-curve source of the miss profiles: a run of the
    /// [`ProfilingCache`] organisation, whose per-entity shadow-cache bank
    /// simulates every lattice point explicitly (its main cache behaves
    /// exactly like the shared baseline).
    ///
    /// Kept as the cross-validation oracle of [`Experiment::run_profiled`]
    /// — the parity tests assert both produce identical profiles at every
    /// lattice point.
    ///
    /// # Errors
    ///
    /// Propagates platform and workload errors.
    pub fn run_profiled_simulated(&self) -> Result<(RunOutcome, MissProfiles), CoreError> {
        let (outcome, l2) = self.run_model(&self.profiling_spec())?;
        let profiler = l2
            .into_any()
            .downcast::<ProfilingCache>()
            .expect("the profiling spec builds a ProfilingCache");
        Ok((outcome, profiler.into_profiles()))
    }

    /// Builds the allocation problem for the entities of a region table:
    /// FIFOs are pinned to their own size (the paper's predictability
    /// rule), every other entity may take any candidate size.
    ///
    /// Taking the table rather than the application means the problem can
    /// be built for a recorded trace (whose embedded table names the same
    /// entities) just as well as for a live application — the `compmem
    /// profile` CLI does exactly that.
    pub fn build_allocation_problem(
        &self,
        table: &RegionTable,
        profiles: MissProfiles,
    ) -> AllocationProblem {
        allocation_problem_for_table(table, &self.lattice(), self.config.l2.geometry(), profiles)
    }

    /// Runs the complete method of the paper on the application.
    ///
    /// # Errors
    ///
    /// Propagates all underlying errors.
    pub fn run_paper_flow(&self) -> Result<PaperFlowOutcome, CoreError> {
        let reference_app = (self.factory)();
        let names = key_names(&reference_app);
        let app_name = reference_app.name.clone();

        let (shared, profiles) = self.run_profiled()?;
        let problem = self.build_allocation_problem(reference_app.space.table(), profiles.clone());
        let allocation = optimizer::solve(&problem, self.config.optimizer)?;
        let partitioned = self.run(&self.partitioned_spec(&allocation)?)?;
        let compositionality =
            CompositionalityReport::compare(&profiles, &allocation, &partitioned.misses_by_key());
        Ok(PaperFlowOutcome {
            app_name,
            shared,
            profiles,
            allocation,
            partitioned,
            compositionality,
            key_names: names,
            sets_per_unit: self.config.sets_per_unit,
        })
    }
}

impl<F: Fn() -> Application + Sync> Experiment<F> {
    /// Runs a batch of independent specs on the bounded work-stealing
    /// executor with [`executor::default_jobs`] workers and returns the
    /// outcomes in spec order.
    ///
    /// The runs share nothing mutable — each worker builds its own
    /// application (live specs) or reads the shared `Arc`'d trace (replay
    /// specs) and its own `Box<dyn CacheModel>` — which is exactly what the
    /// trait-object refactor buys: no monomorphised type ties the runs
    /// together, so a shared/partitioned pair or a whole organisation sweep
    /// over one recorded trace executes concurrently. A spec that panics
    /// reports [`CoreError::WorkerPanicked`] in its own slot; the rest of
    /// the batch completes.
    pub fn run_all(&self, specs: &[ScenarioSpec]) -> Vec<Result<RunOutcome, CoreError>> {
        self.run_all_jobs(specs, executor::default_jobs())
    }

    /// [`Experiment::run_all`] with an explicit worker count.
    ///
    /// `jobs` bounds the pool (clamped to `1..=specs.len()`); `jobs == 1`
    /// runs the batch serially on the calling thread. The outcome vector is
    /// identical for every `jobs` value — the determinism suite asserts
    /// byte-identical [`CacheSnapshot`]s for 1 vs N workers.
    pub fn run_all_jobs(
        &self,
        specs: &[ScenarioSpec],
        jobs: usize,
    ) -> Vec<Result<RunOutcome, CoreError>> {
        executor::run_batch(specs, jobs, |_, spec| self.run(spec))
    }

    /// Compares the three partition-sizing strategies on already-measured
    /// profiles (the optimiser ablation), solving them in parallel on the
    /// work-stealing executor.
    ///
    /// The profiles are typically curve-derived
    /// ([`Experiment::run_profiled`]); the table names the entities and
    /// pins the FIFOs, and may come from an application
    /// (`app.space.table()`) or from a recorded trace.
    ///
    /// # Errors
    ///
    /// Propagates optimiser errors; a panicking solver surfaces as
    /// [`CoreError::WorkerPanicked`] instead of aborting the batch.
    pub fn compare_optimizers(
        &self,
        table: &RegionTable,
        profiles: &MissProfiles,
    ) -> Result<Vec<Allocation>, CoreError> {
        let problem = self.build_allocation_problem(table, profiles.clone());
        let kinds = [
            OptimizerKind::ExactIlp,
            OptimizerKind::Greedy,
            OptimizerKind::EqualSplit,
        ];
        executor::run_batch(&kinds, executor::default_jobs(), |_, &kind| {
            optimizer::solve(&problem, kind)
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use compmem_workloads::apps::{jpeg_canny_app, mpeg2_app, JpegCannyParams, Mpeg2Params};

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            platform: PlatformConfig::default(),
            // A small L2 so the tiny workloads still exhibit contention, but
            // with enough allocation units for every entity of the tiny apps.
            l2: CacheConfig::with_size_bytes(64 * 1024, 4).unwrap(),
            sets_per_unit: 4,
            optimizer: OptimizerKind::ExactIlp,
        }
    }

    #[test]
    fn paper_flow_on_tiny_jpeg_canny_is_compositional_and_reduces_misses() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let outcome = experiment.run_paper_flow().unwrap();
        assert_eq!(outcome.app_name, "jpeg_canny");
        assert!(outcome.shared.report.l2.accesses > 0);
        assert!(outcome.partitioned.report.l2.misses > 0);
        // Partitioning must not increase misses dramatically and the
        // partitioned run must match the stand-alone expectation closely.
        assert!(
            outcome.compositionality.max_relative_difference() < 0.05,
            "compositionality error {}",
            outcome.compositionality.max_relative_difference()
        );
        assert!(outcome.allocation.total_units <= 64);
        assert!(!outcome.table_rows().is_empty());
        assert_eq!(outcome.figure2_rows().len(), outcome.allocation.units.len());
        assert!(!outcome.summary().is_empty());
        // The runs expose which organisation they went through: profiling
        // is now a tap on the shared baseline, not an L2 organisation.
        assert_eq!(outcome.shared.l2_snapshot.organization, "shared");
        assert_eq!(
            outcome.partitioned.l2_snapshot.organization,
            "set-partitioned"
        );
        assert!(!outcome.partitioned.l2_snapshot.by_partition.is_empty());
    }

    #[test]
    fn paper_flow_on_tiny_mpeg2_runs() {
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            mpeg2_app(&params).expect("valid params")
        });
        let outcome = experiment.run_paper_flow().unwrap();
        assert_eq!(outcome.app_name, "mpeg2");
        assert!(outcome.shared.report.total_instructions() > 0);
        assert!(outcome
            .key_names
            .values()
            .any(|n| n == "vld" || n == "idct"));
        assert!(outcome.compositionality.max_relative_difference() < 0.1);
    }

    #[test]
    fn spec_batch_runs_all_organisations_in_parallel() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let specs = vec![
            experiment.shared_spec(),
            experiment.way_partitioned_spec(),
            experiment.shared_spec_with_l2(CacheConfig::with_size_bytes(8 * 1024, 4).unwrap()),
        ];
        let results = experiment.run_all(&specs);
        assert_eq!(results.len(), 3);
        let shared = results[0].as_ref().unwrap();
        let way = results[1].as_ref().unwrap();
        let small = results[2].as_ref().unwrap();
        assert!(way.report.l2.accesses > 0);
        assert_eq!(way.l2_snapshot.organization, "way-partitioned");
        // A larger shared cache can only help.
        assert!(shared.report.l2.misses <= small.report.l2.misses);
        // All organisations execute the same functional work.
        assert_eq!(
            shared.report.total_instructions(),
            way.report.total_instructions()
        );
    }

    #[test]
    fn parallel_runs_match_sequential_runs() {
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            mpeg2_app(&params).expect("valid params")
        });
        let specs = vec![experiment.shared_spec(), experiment.way_partitioned_spec()];
        let parallel = experiment.run_all(&specs);
        for (spec, outcome) in specs.iter().zip(&parallel) {
            let sequential = experiment.run(spec).unwrap();
            assert_eq!(
                outcome.as_ref().unwrap(),
                &sequential,
                "parallel and sequential runs of `{}` diverged",
                spec.label()
            );
        }
    }

    #[test]
    fn run_all_is_deterministic_across_worker_counts() {
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            mpeg2_app(&params).expect("valid params")
        });
        // Replay traffic so every jobs count sees the identical access
        // stream; a fleet larger than any worker count exercises stealing.
        let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        let mut specs = Vec::new();
        for kb in [16u64, 32, 64] {
            let l2 = CacheConfig::with_size_bytes(kb * 1024, 4).unwrap();
            let mut spec = experiment.shared_spec_with_l2(l2);
            spec.traffic = TrafficSource::Replay(Arc::clone(&trace));
            specs.push(spec);
        }
        let serial = experiment.run_all_jobs(&specs, 1);
        for jobs in [2, 4, specs.len() + 5] {
            let parallel = experiment.run_all_jobs(&specs, jobs);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                let s = s.as_ref().unwrap();
                let p = p.as_ref().unwrap();
                // Byte-identical snapshots: same counters, same per-key
                // stats, same organisation — the executor only reorders
                // *which thread* runs a spec, never what the spec computes.
                assert_eq!(s.l2_snapshot, p.l2_snapshot, "jobs={jobs}");
                assert_eq!(s, p, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn optimizer_comparison_orders_strategies() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (_, profiles) = experiment.run_profiled().unwrap();
        let app = jpeg_canny_app(&JpegCannyParams::tiny()).unwrap();
        let allocations = experiment
            .compare_optimizers(app.space.table(), &profiles)
            .unwrap();
        assert_eq!(allocations.len(), 3);
        let exact = &allocations[0];
        for other in &allocations[1..] {
            assert!(exact.predicted_misses <= other.predicted_misses);
        }
    }

    #[test]
    fn windowed_profiling_leaves_the_whole_run_curves_unchanged() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (plain_outcome, plain) = experiment.profile_curves().unwrap();
        let window = WindowConfig::accesses(2_000).unwrap();
        let (outcome, windowed) = experiment.profile_curves_windowed(window).unwrap();
        // Same baseline run, same whole-run curves; windows tile the run.
        assert_eq!(outcome.report, plain_outcome.report);
        assert_eq!(windowed.total, plain);
        assert_eq!(windowed.reconstruct_total(), plain);
        assert!(windowed.windows.len() > 1, "enough traffic for 2+ windows");
        let per_window: u64 = windowed.windows.iter().map(|w| w.curves.accesses()).sum();
        assert_eq!(per_window, plain.accesses());
    }

    #[test]
    fn phase_allocations_cover_the_run_and_baseline_matches_run_profiled() {
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            mpeg2_app(&params).expect("valid params")
        });
        let app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
        let window = WindowConfig::accesses(1_500).unwrap();
        let (_, windowed) = experiment.profile_curves_windowed(window).unwrap();
        let plan = experiment
            .phase_allocations(&windowed, 0.1, app.space.table())
            .unwrap();
        assert!(!plan.phases.is_empty());
        // Phases tile the windows without gaps or overlaps.
        assert_eq!(plan.phases[0].first_window, 0);
        for pair in plan.phases.windows(2) {
            assert_eq!(pair[0].last_window + 1, pair[1].first_window);
        }
        assert_eq!(
            plan.phases.last().unwrap().last_window,
            windowed.windows.len() - 1
        );
        let phase_accesses: u64 = plan.phases.iter().map(|p| p.accesses).sum();
        assert_eq!(phase_accesses, windowed.total.accesses());
        // Every phase allocation fits the cache.
        let lattice_units = CacheSizeLattice::new(
            experiment.config().l2.geometry(),
            experiment.config().sets_per_unit,
        )
        .total_units;
        for phase in &plan.phases {
            assert!(phase.allocation.total_units <= lattice_units);
        }
        // The whole-run baseline equals the non-windowed paper flow's
        // allocation.
        let (_, profiles) = experiment.run_profiled().unwrap();
        let problem = experiment.build_allocation_problem(app.space.table(), profiles);
        let reference = optimizer::solve(&problem, experiment.config().optimizer).unwrap();
        assert_eq!(plan.whole_run.units, reference.units);
        // Specialising per phase can never predict more misses than the
        // whole-run allocation applied to every phase.
        let whole_on_phases: u64 = plan
            .phases
            .iter()
            .map(|p| {
                let profiles = windowed
                    .merged(p.first_window, p.last_window)
                    .to_profiles(
                        &experiment.lattice(),
                        experiment.config().l2.geometry().ways(),
                    )
                    .unwrap();
                profiles.total_misses(&plan.whole_run.units)
            })
            .sum();
        assert!(plan.predicted_misses_per_phase() <= whole_on_phases);
        let _ = plan.has_distinct_allocations();
    }

    #[test]
    fn shape_sweep_is_monotone_and_matches_the_curves() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (_, curves) = experiment.profile_curves().unwrap();
        let sweep = experiment.sweep_shapes(&curves);
        let resolution = experiment.curve_resolution();
        let expected_points = resolution.levels() * (resolution.ways_cap.ilog2() as usize + 1);
        assert_eq!(sweep.points.len(), expected_points);
        assert_eq!(sweep.accesses, curves.accesses());
        for point in &sweep.points {
            assert_eq!(
                point.misses,
                curves.shared_misses(point.sets, point.ways).unwrap()
            );
            assert_eq!(
                point.size_bytes,
                u64::from(point.sets) * u64::from(point.ways) * 64
            );
        }
        // LRU inclusion: growing either dimension never adds misses.
        for ways in sweep.way_counts() {
            let by_sets: Vec<u64> = sweep
                .points
                .iter()
                .filter(|p| p.ways == ways)
                .map(|p| p.misses)
                .collect();
            assert!(by_sets.windows(2).all(|w| w[0] >= w[1]), "ways={ways}");
        }
        for sets in sweep.set_counts() {
            let by_ways: Vec<u64> = sweep
                .points
                .iter()
                .filter(|p| p.sets == sets)
                .map(|p| p.misses)
                .collect();
            assert!(by_ways.windows(2).all(|w| w[0] >= w[1]), "sets={sets}");
        }
    }

    #[test]
    fn non_lru_profiling_is_a_typed_error() {
        let params = JpegCannyParams::tiny();
        let mut config = tiny_config();
        config.l2 = config.l2.policy(compmem_cache::ReplacementPolicy::Fifo);
        let experiment = Experiment::new(config, move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        for result in [
            experiment.profile_curves().map(|_| ()),
            experiment
                .profile_curves_windowed(WindowConfig::accesses(500).unwrap())
                .map(|_| ()),
            experiment.run_profiled().map(|_| ()),
        ] {
            assert!(
                matches!(result, Err(CoreError::NonLruProfiling { ref policy }) if policy == "fifo"),
                "profiling a FIFO L2 must fail with the typed error, got {result:?}"
            );
        }
        // The shadow-bank oracle takes the same guard implicitly: its
        // shadow caches are LRU regardless of the main cache's policy, so
        // keeping it runnable under FIFO would be the silent mismatch the
        // guard exists to prevent. The scenario still *runs* (only
        // profiling is gated).
        assert!(experiment.run(&experiment.shared_spec()).is_ok());
    }

    #[test]
    fn phase_plan_executes_as_a_schedule_with_measured_per_phase_misses() {
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            mpeg2_app(&params).expect("valid params")
        });
        let app = mpeg2_app(&Mpeg2Params::tiny()).unwrap();
        let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        let window = WindowConfig::accesses(1_500).unwrap();
        let (_, windowed) = experiment.profile_curves_windowed(window).unwrap();
        let plan = experiment
            .phase_allocations(&windowed, 0.1, app.space.table())
            .unwrap();

        let schedule = plan
            .to_schedule(&experiment.lattice(), experiment.config().l2.geometry())
            .unwrap();
        assert_eq!(schedule.len(), plan.phases.len());
        assert_eq!(schedule.label(), "set-partitioned");

        // The scheduled replay completes end-to-end and is deterministic.
        let once = experiment.run_scheduled(&trace, schedule.clone()).unwrap();
        let twice = experiment.run_scheduled(&trace, schedule.clone()).unwrap();
        assert_eq!(once, twice, "scheduled replays must be deterministic");
        assert_eq!(
            once.report.repartitions.len(),
            schedule.switches().len(),
            "every switch boundary lies inside the recorded run"
        );

        // The validation driver reports per-phase predicted vs measured
        // misses; the measured segments tile the scheduled run exactly.
        let validation = experiment.validate_phase_plan(&trace, &plan).unwrap();
        assert_eq!(validation.phases.len(), plan.phases.len());
        let measured_total: u64 = validation.phases.iter().map(|p| p.measured_misses).sum();
        assert_eq!(
            measured_total,
            validation.scheduled_outcome.report.l2.misses
        );
        for (comparison, phase) in validation.phases.iter().zip(&plan.phases) {
            assert_eq!(
                comparison.predicted_misses,
                phase.allocation.predicted_misses
            );
            let _ = comparison.delta();
        }
        // Flush traffic of every fired switch is visible in the timing
        // path: the scheduled run wrote back at least as much as the
        // static one.
        let flush = validation.total_flush();
        assert!(
            validation.scheduled_outcome.report.dram_writebacks
                >= validation
                    .static_outcome
                    .report
                    .dram_writebacks
                    .saturating_sub(flush.written_back)
        );
        assert_eq!(
            validation.static_outcome.l2_snapshot.organization,
            "set-partitioned"
        );
    }

    #[test]
    fn scenario_spec_display_prints_the_schedule() {
        let l2 = CacheConfig::with_size_bytes(64 * 1024, 4).unwrap();
        let static_spec = ScenarioSpec::live(l2, OrganizationSpec::Shared);
        assert_eq!(
            static_spec.to_string(),
            "64 KB 4-way L2, live traffic, schedule shared (static)"
        );
        let key = PartitionKey::AppData;
        let map = |sets: u32| PartitionMap::pack(l2.geometry(), &[(key, sets)]).unwrap();
        let schedule = PartitionSchedule::new(vec![
            (0, OrganizationSpec::SetPartitioned(map(64))),
            (5_000, OrganizationSpec::SetPartitioned(map(128))),
            (9_000, OrganizationSpec::SetPartitioned(map(32))),
        ])
        .unwrap();
        let spec = ScenarioSpec::scheduled_live(l2, schedule);
        assert_eq!(
            spec.to_string(),
            "64 KB 4-way L2, live traffic, schedule set-partitioned x 3 steps \
             (switch at 5000, 9000)"
        );
        assert_eq!(spec.label(), "set-partitioned");
        assert_eq!(spec.organization().label(), "set-partitioned");

        // Non-default parallelism is part of the printed summary; the
        // serial default leaves the strings above untouched.
        let parallel = static_spec
            .clone()
            .with_parallelism(ReplayParallelism::lanes(4).with_segment_jobs(2));
        assert_eq!(
            parallel.to_string(),
            "64 KB 4-way L2, live traffic, schedule shared (static), \
             lanes auto(4), filter jobs 2"
        );
        let required = static_spec.with_parallelism(ReplayParallelism::required_lanes(3));
        assert_eq!(
            required.to_string(),
            "64 KB 4-way L2, live traffic, schedule shared (static), lanes required(3)"
        );
    }

    #[test]
    fn recorded_trace_replays_to_the_identical_snapshot() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let spec = experiment.shared_spec();
        let (live, trace) = experiment.record_trace(&spec).unwrap();
        assert!(trace.accesses() > 0);
        assert!(!trace.table().is_empty(), "trace embeds the region table");

        let replayed = experiment
            .run(&spec.clone().replaying(trace.clone()))
            .unwrap();
        assert_eq!(live.l2_snapshot, replayed.l2_snapshot);
        assert_eq!(live.by_key, replayed.by_key);
        assert_eq!(live.report.l1, replayed.report.l1);
        assert_eq!(live.report.dram_accesses, replayed.report.dram_accesses);

        // The standalone runner (no factory) agrees too.
        let standalone = run_replay(&experiment.config().platform, &spec.replaying(trace)).unwrap();
        assert_eq!(standalone.l2_snapshot, replayed.l2_snapshot);
    }

    #[test]
    fn replay_sweep_runs_organisations_in_parallel_over_one_trace() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        let specs = vec![
            experiment.shared_spec().replaying(trace.clone()),
            experiment.way_partitioned_spec().replaying(trace.clone()),
            experiment
                .shared_spec_with_l2(CacheConfig::with_size_bytes(8 * 1024, 4).unwrap())
                .replaying(trace.clone()),
        ];
        assert!(specs.iter().all(|s| s.traffic.is_replay()));
        let results = experiment.run_all(&specs);
        let shared = results[0].as_ref().unwrap();
        let way = results[1].as_ref().unwrap();
        let small = results[2].as_ref().unwrap();
        // All replays see exactly the recorded traffic.
        assert_eq!(
            shared.report.l1.accesses + way.report.l1.accesses,
            2 * trace.accesses()
        );
        assert_eq!(way.l2_snapshot.organization, "way-partitioned");
        // A larger cache can only help, replayed or live.
        assert!(shared.report.l2.misses <= small.report.l2.misses);
    }

    #[test]
    fn lane_parallel_replay_matches_serial_cache_side() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        // Set-partitioned organisations are always lane-eligible: give
        // every entity of the trace an equal power-of-two set share.
        let geometry = experiment.config().l2.geometry();
        let keys = PartitionKey::distinct_keys(trace.table());
        let share = (geometry.sets() / keys.len().next_power_of_two() as u32).max(1);
        let sizes: Vec<(PartitionKey, u32)> = keys.iter().map(|k| (*k, share)).collect();
        let map = PartitionMap::pack(geometry, &sizes).unwrap();
        let spec = ScenarioSpec::replay(
            experiment.config().l2,
            OrganizationSpec::SetPartitioned(map),
            trace.clone(),
        );
        let serial = experiment.run(&spec).unwrap();
        assert_eq!(serial.lane_decision, None);
        let laned = experiment
            .run(
                &spec
                    .clone()
                    .with_parallelism(ReplayParallelism::lanes(4).with_segment_jobs(2)),
            )
            .unwrap();
        let decision = laned.lane_decision.expect("lane runs report a decision");
        assert_eq!(decision.requested, 4);
        assert_eq!(decision.fallback, None);
        assert!(decision.lanes > 1, "the tiny app has several keys");
        // Cache-side numbers are byte-identical to the serial replay.
        assert_eq!(serial.report.l1, laned.report.l1);
        assert_eq!(serial.report.l2, laned.report.l2);
        assert_eq!(serial.report.l2_by_task, laned.report.l2_by_task);
        assert_eq!(serial.report.l2_by_region, laned.report.l2_by_region);
        assert_eq!(serial.report.dram_accesses, laned.report.dram_accesses);
        assert_eq!(serial.report.dram_writebacks, laned.report.dram_writebacks);
        assert_eq!(serial.report.bus_bytes, laned.report.bus_bytes);
        assert_eq!(serial.by_key, laned.by_key);
        // The standalone runner honours the same spec.
        let standalone = run_replay(
            &experiment.config().platform,
            &spec.with_parallelism(ReplayParallelism::lanes(4)),
        )
        .unwrap();
        assert_eq!(standalone.report.l2, serial.report.l2);
    }

    #[test]
    fn required_lanes_on_an_ineligible_scenario_is_a_typed_error() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        // A shared L2 cannot split into lanes.
        let shared = experiment.shared_spec().replaying(trace.clone());
        let required = shared
            .clone()
            .with_parallelism(ReplayParallelism::required_lanes(4));
        match experiment.run(&required) {
            Err(CoreError::Platform(compmem_platform::PlatformError::LanesIneligible {
                requested,
                reason,
            })) => {
                assert_eq!(requested, 4);
                assert!(!reason.is_empty());
            }
            other => panic!("expected LanesIneligible, got {other:?}"),
        }
        // The opportunistic request records the fallback instead.
        let auto = experiment
            .run(&shared.with_parallelism(ReplayParallelism::lanes(4)))
            .unwrap();
        let decision = auto.lane_decision.unwrap();
        assert_eq!(decision.lanes, 1);
        assert!(decision.fallback.is_some(), "fallback must not be silent");
    }

    #[test]
    fn segment_jobs_leave_the_serial_outcome_unchanged() {
        let params = Mpeg2Params::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            mpeg2_app(&params).expect("valid params")
        });
        let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        let spec = experiment.shared_spec().replaying(trace);
        let serial = experiment.run(&spec).unwrap();
        let jobs = experiment
            .run(&spec.with_parallelism(ReplayParallelism::default().with_segment_jobs(4)))
            .unwrap();
        // The whole outcome — timing included — is identical: the filter
        // pass is the only thing that parallelised.
        assert_eq!(serial, jobs);
    }

    #[test]
    fn record_trace_rejects_replay_scenarios() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let (_, trace) = experiment.record_trace(&experiment.shared_spec()).unwrap();
        let replay_spec = experiment.shared_spec().replaying(trace);
        assert!(matches!(
            experiment.record_trace(&replay_spec),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn run_replay_rejects_live_scenarios() {
        let spec = ScenarioSpec::live(
            CacheConfig::with_size_bytes(64 * 1024, 4).unwrap(),
            OrganizationSpec::Shared,
        );
        assert!(matches!(
            run_replay(&PlatformConfig::default(), &spec),
            Err(CoreError::Infeasible { .. })
        ));
        assert_eq!(spec.traffic.label(), "live");
    }

    #[test]
    fn oversized_allocation_is_rejected() {
        let params = JpegCannyParams::tiny();
        let experiment = Experiment::new(tiny_config(), move || {
            jpeg_canny_app(&params).expect("valid params")
        });
        let mut units = BTreeMap::new();
        units.insert(PartitionKey::AppData, 10_000);
        let allocation = Allocation {
            kind: OptimizerKind::EqualSplit,
            units,
            total_units: 10_000,
            predicted_misses: 0,
        };
        assert!(matches!(
            experiment.partitioned_spec(&allocation),
            Err(CoreError::CapacityExceeded { .. })
        ));
    }
}
