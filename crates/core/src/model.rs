//! The analytical throughput and power formulation of §3.1 of the paper.
//!
//! With a static task-to-processor assignment the completion time of a
//! processor is the sum of its tasks' execution times (which depend on their
//! allocated cache through the number of misses) plus the task-switch and
//! idle time; the application throughput is the inverse of the largest
//! per-processor completion time, and the power proxy follows the total
//! execution time and the off-chip traffic. These formulas are used to
//! predict the effect of an allocation before simulating it and to check the
//! simulator against the model in tests.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use compmem_platform::TaskMapping;
use compmem_trace::TaskId;

/// Per-task inputs of the analytical model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskCost {
    /// Architectural instructions executed by the task for one application
    /// execution.
    pub instructions: u64,
    /// Number of L2 misses of the task under the allocation being evaluated.
    pub l2_misses: u64,
    /// Number of L2 hits of the task (accesses that missed the L1).
    pub l2_hits: u64,
}

/// Platform-cost parameters of the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Average cycles per instruction when not stalled on the L2 (base CPI
    /// including L1 effects).
    pub base_cpi: f64,
    /// Penalty in cycles of an access served by the L2.
    pub l2_hit_penalty: f64,
    /// Penalty in cycles of an access served by DRAM (an L2 miss).
    pub l2_miss_penalty: f64,
    /// Cycles per task switch.
    pub task_switch_cycles: f64,
    /// Relative energy weight of one off-chip transfer versus one cycle.
    pub dram_energy_weight: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            base_cpi: 1.0,
            l2_hit_penalty: 20.0,
            l2_miss_penalty: 110.0,
            task_switch_cycles: 200.0,
            dram_energy_weight: 8.0,
        }
    }
}

/// The analytical model: execution time per task, completion time per
/// processor, throughput and power proxy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnalyticModel {
    /// Per-task costs.
    pub tasks: BTreeMap<TaskId, TaskCost>,
    /// Model parameters.
    pub params: ModelParams,
}

impl AnalyticModel {
    /// Creates a model from per-task costs using default parameters.
    pub fn new(tasks: BTreeMap<TaskId, TaskCost>) -> Self {
        AnalyticModel {
            tasks,
            params: ModelParams::default(),
        }
    }

    /// Execution time of one task in cycles: `t_i(S(t_i))` of §3.1.
    pub fn task_time(&self, task: TaskId) -> f64 {
        let cost = self.tasks.get(&task).copied().unwrap_or_default();
        cost.instructions as f64 * self.params.base_cpi
            + cost.l2_hits as f64 * self.params.l2_hit_penalty
            + cost.l2_misses as f64 * self.params.l2_miss_penalty
    }

    /// Completion time `Y(p_j)` of one processor: the sum of its tasks'
    /// execution times plus the switching overhead (idle time is not known
    /// analytically and is reported by the simulator).
    pub fn processor_time(&self, mapping: &TaskMapping, processor: usize) -> f64 {
        let tasks = mapping.tasks_of(processor);
        let switches = tasks.len().saturating_sub(1) as f64;
        tasks.iter().map(|&t| self.task_time(t)).sum::<f64>()
            + switches * self.params.task_switch_cycles
    }

    /// Application throughput: `1 / max_j Y(p_j)` (executions per cycle).
    pub fn throughput(&self, mapping: &TaskMapping) -> f64 {
        let worst = (0..mapping.processors_used())
            .map(|p| self.processor_time(mapping, p))
            .fold(0.0f64, f64::max);
        if worst == 0.0 {
            0.0
        } else {
            1.0 / worst
        }
    }

    /// Power proxy: total execution time plus energy-weighted off-chip
    /// transfers (minimising the total number of misses minimises this, the
    /// argument of §3.1).
    pub fn power_proxy(&self, mapping: &TaskMapping) -> f64 {
        let total_time: f64 = (0..mapping.processors_used())
            .map(|p| self.processor_time(mapping, p))
            .sum();
        let total_misses: u64 = self.tasks.values().map(|c| c.l2_misses).sum();
        total_time + self.params.dram_energy_weight * total_misses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (AnalyticModel, TaskMapping) {
        let mut tasks = BTreeMap::new();
        tasks.insert(
            TaskId::new(0),
            TaskCost {
                instructions: 1000,
                l2_misses: 10,
                l2_hits: 50,
            },
        );
        tasks.insert(
            TaskId::new(1),
            TaskCost {
                instructions: 2000,
                l2_misses: 100,
                l2_hits: 20,
            },
        );
        tasks.insert(
            TaskId::new(2),
            TaskCost {
                instructions: 500,
                l2_misses: 0,
                l2_hits: 0,
            },
        );
        let mapping = TaskMapping::new(vec![
            vec![TaskId::new(0), TaskId::new(2)],
            vec![TaskId::new(1)],
        ]);
        (AnalyticModel::new(tasks), mapping)
    }

    #[test]
    fn task_time_combines_instructions_and_misses() {
        let (m, _) = model();
        assert!((m.task_time(TaskId::new(0)) - (1000.0 + 50.0 * 20.0 + 10.0 * 110.0)).abs() < 1e-9);
        assert_eq!(m.task_time(TaskId::new(9)), 0.0);
    }

    #[test]
    fn processor_time_sums_tasks_and_switches() {
        let (m, mapping) = model();
        let p0 = m.processor_time(&mapping, 0);
        assert!(
            (p0 - (m.task_time(TaskId::new(0)) + m.task_time(TaskId::new(2)) + 200.0)).abs() < 1e-9
        );
        let p1 = m.processor_time(&mapping, 1);
        assert!((p1 - m.task_time(TaskId::new(1))).abs() < 1e-9);
    }

    #[test]
    fn throughput_follows_the_bottleneck_processor() {
        let (m, mapping) = model();
        let p1 = m.processor_time(&mapping, 1);
        assert!(p1 > m.processor_time(&mapping, 0));
        assert!((m.throughput(&mapping) - 1.0 / p1).abs() < 1e-15);
    }

    #[test]
    fn fewer_misses_improve_throughput_and_power() {
        let (mut better, mapping) = model();
        let baseline = better.clone();
        better.tasks.get_mut(&TaskId::new(1)).unwrap().l2_misses = 10;
        assert!(better.throughput(&mapping) > baseline.throughput(&mapping));
        assert!(better.power_proxy(&mapping) < baseline.power_proxy(&mapping));
    }

    #[test]
    fn empty_model_has_zero_throughput() {
        let m = AnalyticModel::default();
        let mapping = TaskMapping::single_processor(&[]);
        assert_eq!(m.throughput(&mapping), 0.0);
    }
}
