//! The compositionality stress harness: victim vs adversarial streamer.
//!
//! The paper's central claim is that a task with a guaranteed cache
//! partition behaves independently of its co-runners. This module turns
//! that claim into an executable experiment over any pair of traces (in
//! practice the workload zoo's generated scenarios — see
//! `compmem_trace::gen`):
//!
//! 1. **solo** — replay the victim's own trace through a shared L2: the
//!    baseline miss rate the victim would see running alone.
//! 2. **shared** — replay the victim+streamer mix through the same shared
//!    L2: the adversary evicts the victim's working set at will.
//! 3. **partitioned** — profile the mix, solve the allocation under a
//!    [`QosFloor`] for the victim, and replay the mix through the
//!    resulting set-partitioned L2.
//!
//! The report carries the victim's measured miss rate under each
//! configuration and its delta against solo. Compositionality holds when
//! the partitioned run stays within tolerance of solo (and under the
//! floor) while the shared run measurably violates it — asserted by
//! `tests/gen_parity.rs` and CI's `gen-smoke` job.

use std::fmt;
use std::sync::Arc;

use compmem_cache::{
    CacheConfig, CacheSizeLattice, OrganizationSpec, PartitionKey, PartitionMap, ReplacementPolicy,
};
use compmem_platform::{profile_trace, PlatformConfig, PreparedTrace};
use compmem_trace::TaskId;

use crate::error::CoreError;
use crate::experiment::{allocation_problem_for_table, run_replay, ScenarioSpec};
use crate::optimizer::{solve_with_floors, Allocation, OptimizerKind, QosFloor};
use crate::profile::CurveResolution;

/// What to run: the L2 under test, the allocation lattice, the victim and
/// its guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolationSpec {
    /// The L2 configuration every run uses.
    pub l2: CacheConfig,
    /// Allocation-unit granularity of the floor-solved partitioning.
    pub sets_per_unit: u32,
    /// The task whose isolation is under test.
    pub victim: TaskId,
    /// The victim's QoS floor: highest acceptable predicted miss rate.
    pub max_miss_rate: f64,
    /// Solver used for the partitioned configuration.
    pub solver: OptimizerKind,
}

/// The victim's measured L2 behaviour under one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationRun {
    /// Which configuration was run (`solo`, `shared`, `partitioned`).
    pub label: &'static str,
    /// The victim's L2-bound accesses.
    pub accesses: u64,
    /// The victim's L2 misses.
    pub misses: u64,
}

impl IsolationRun {
    /// The victim's measured miss rate (zero when it never reached L2).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The three-configuration comparison [`run_isolation`] produces.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationReport {
    /// The victim's partition key.
    pub victim: PartitionKey,
    /// The floor the partitioned configuration was solved under.
    pub max_miss_rate: f64,
    /// Victim alone through the shared L2.
    pub solo: IsolationRun,
    /// Victim plus streamer through the shared L2.
    pub shared: IsolationRun,
    /// Victim plus streamer through the floor-solved partitioned L2.
    pub partitioned: IsolationRun,
    /// The floor-respecting allocation the partitioned run used.
    pub allocation: Allocation,
    /// The victim's predicted miss rate at its allocated size.
    pub predicted_rate: f64,
}

impl IsolationReport {
    /// Shared-run miss-rate increase over solo (percentage points / 100).
    pub fn shared_delta(&self) -> f64 {
        self.shared.miss_rate() - self.solo.miss_rate()
    }

    /// Partitioned-run miss-rate increase over solo.
    pub fn partitioned_delta(&self) -> f64 {
        self.partitioned.miss_rate() - self.solo.miss_rate()
    }

    /// Whether the victim's measured miss rate under the adversary, with
    /// its guaranteed partition, stays at or under the floor.
    pub fn floor_holds(&self) -> bool {
        self.partitioned.miss_rate() <= self.max_miss_rate
    }

    /// Whether the shared configuration measurably violates the floor —
    /// i.e. the guarantee is doing real work, not holding vacuously.
    pub fn shared_violates_floor(&self) -> bool {
        self.shared.miss_rate() > self.max_miss_rate
    }
}

impl fmt::Display for IsolationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "isolation report for {} (floor {:.2}%):",
            self.victim,
            self.max_miss_rate * 100.0
        )?;
        writeln!(
            f,
            "  {:<16} {:>10} {:>10} {:>10} {:>14}",
            "configuration", "accesses", "misses", "miss rate", "delta vs solo"
        )?;
        for run in [&self.solo, &self.shared, &self.partitioned] {
            let delta = run.miss_rate() - self.solo.miss_rate();
            writeln!(
                f,
                "  {:<16} {:>10} {:>10} {:>9.2}% {:>12.2}pp",
                run.label,
                run.accesses,
                run.misses,
                run.miss_rate() * 100.0,
                delta * 100.0
            )?;
        }
        write!(
            f,
            "  floor {} under the adversary (predicted {:.2}%, measured {:.2}%)",
            if self.floor_holds() { "holds" } else { "FAILS" },
            self.predicted_rate * 100.0,
            self.partitioned.miss_rate() * 100.0
        )
    }
}

/// The victim's stats under one outcome (zeros if it never reached L2).
fn victim_run(
    label: &'static str,
    outcome: &crate::experiment::RunOutcome,
    key: PartitionKey,
) -> IsolationRun {
    let stats = outcome.by_key.get(&key).copied().unwrap_or_default();
    IsolationRun {
        label,
        accesses: stats.accesses,
        misses: stats.misses,
    }
}

/// Runs the three-configuration isolation experiment.
///
/// `solo` is the victim's stand-alone trace; `mix` is the victim plus its
/// adversary (any number of co-runners) with the victim attributed to
/// `spec.victim` in both tables. The partitioned configuration is solved
/// from a profile of `mix` under the victim's floor, so the experiment
/// exercises the complete paper flow: profile → floor-constrained sizing
/// → partitioned execution.
///
/// # Errors
///
/// Returns [`CoreError::NonLruProfiling`] for a non-LRU L2,
/// [`CoreError::QosInfeasible`] when no partition size can honour the
/// floor, and propagates profiling, solver and replay errors.
pub fn run_isolation(
    platform: &PlatformConfig,
    spec: &IsolationSpec,
    solo: Arc<PreparedTrace>,
    mix: Arc<PreparedTrace>,
) -> Result<IsolationReport, CoreError> {
    let policy = spec.l2.replacement_policy();
    if policy != ReplacementPolicy::Lru {
        return Err(CoreError::NonLruProfiling {
            policy: policy.to_string(),
        });
    }
    let key = PartitionKey::Task(spec.victim);
    let geometry = spec.l2.geometry();

    // Profile the mix once and solve the allocation under the floor.
    let resolution = CurveResolution::for_geometry(geometry, spec.sets_per_unit)?;
    let curves = profile_trace(platform, &mix, resolution)?;
    let lattice = CacheSizeLattice::new(geometry, spec.sets_per_unit);
    let profiles = curves.to_profiles(&lattice, geometry.ways())?;
    let problem =
        allocation_problem_for_table(mix.trace().table(), &lattice, geometry, profiles.clone());
    let floor = QosFloor {
        key,
        max_miss_rate: spec.max_miss_rate,
    };
    let allocation = solve_with_floors(&problem, &[floor], spec.solver)?;
    let predicted_rate = profiles
        .profile(key)
        .map_or(0.0, |p| p.miss_rate_at(allocation.units_of(key)));
    let sizes: Vec<(PartitionKey, u32)> = allocation
        .iter()
        .map(|(&k, &units)| (k, lattice.sets_of(units)))
        .collect();
    let map = PartitionMap::pack(geometry, &sizes)?;

    let solo_outcome = run_replay(
        platform,
        &ScenarioSpec::replay(spec.l2, OrganizationSpec::Shared, solo),
    )?;
    let shared_outcome = run_replay(
        platform,
        &ScenarioSpec::replay(spec.l2, OrganizationSpec::Shared, Arc::clone(&mix)),
    )?;
    let partitioned_outcome = run_replay(
        platform,
        &ScenarioSpec::replay(spec.l2, OrganizationSpec::SetPartitioned(map), mix),
    )?;

    Ok(IsolationReport {
        victim: key,
        max_miss_rate: spec.max_miss_rate,
        solo: victim_run("solo/shared", &solo_outcome, key),
        shared: victim_run("mix/shared", &shared_outcome, key),
        partitioned: victim_run("mix/partitioned", &partitioned_outcome, key),
        allocation,
        predicted_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn run(label: &'static str, accesses: u64, misses: u64) -> IsolationRun {
        IsolationRun {
            label,
            accesses,
            misses,
        }
    }

    fn report() -> IsolationReport {
        IsolationReport {
            victim: PartitionKey::Task(TaskId::new(0)),
            max_miss_rate: 0.05,
            solo: run("solo/shared", 10_000, 200),
            shared: run("mix/shared", 10_000, 9_900),
            partitioned: run("mix/partitioned", 10_000, 210),
            allocation: Allocation {
                kind: OptimizerKind::ExactIlp,
                units: BTreeMap::new(),
                total_units: 0,
                predicted_misses: 0,
            },
            predicted_rate: 0.02,
        }
    }

    #[test]
    fn deltas_and_verdicts() {
        let r = report();
        assert!((r.solo.miss_rate() - 0.02).abs() < 1e-12);
        assert!(r.shared_delta() > 0.9);
        assert!(r.partitioned_delta().abs() < 0.01);
        assert!(r.floor_holds());
        assert!(r.shared_violates_floor());
    }

    #[test]
    fn zero_access_runs_have_zero_rate() {
        assert_eq!(run("solo/shared", 0, 0).miss_rate(), 0.0);
    }

    #[test]
    fn report_renders_all_three_configurations() {
        let text = report().to_string();
        assert!(text.contains("solo/shared"));
        assert!(text.contains("mix/shared"));
        assert!(text.contains("mix/partitioned"));
        assert!(text.contains("floor holds under the adversary"));
        let failing = IsolationReport {
            partitioned: run("mix/partitioned", 10_000, 900),
            ..report()
        };
        assert!(failing.to_string().contains("floor FAILS"));
    }
}
