//! Compositionality analysis: expected versus simulated misses per entity
//! (the paper's Figure 3).
//!
//! A memory system is compositional if the performance of a task can be
//! predicted from its stand-alone behaviour. After partitioning, the number
//! of misses each entity *should* experience is simply its miss profile
//! evaluated at its allocated size; the analysis compares that expectation
//! with what the full co-scheduled simulation measured. The paper reports
//! the largest per-task deviation relative to the total number of simulated
//! misses (≤ 2 % in their experiments).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use compmem_cache::PartitionKey;

use crate::optimizer::Allocation;
use crate::profile::MissProfiles;

/// Expected and simulated misses of one entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositionalityEntry {
    /// The entity.
    pub key: PartitionKey,
    /// Units allocated to the entity.
    pub units: u32,
    /// Misses expected from the stand-alone profile at the allocated size.
    pub expected_misses: u64,
    /// Misses measured in the co-scheduled partitioned simulation.
    pub simulated_misses: u64,
}

impl CompositionalityEntry {
    /// Absolute difference between expectation and simulation.
    pub fn absolute_difference(&self) -> u64 {
        self.expected_misses.abs_diff(self.simulated_misses)
    }
}

/// The full expected-versus-simulated comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositionalityReport {
    /// Per-entity comparison.
    pub entries: Vec<CompositionalityEntry>,
    /// Total simulated misses (the denominator of the paper's metric).
    pub total_simulated_misses: u64,
}

impl CompositionalityReport {
    /// Builds the report from the profiles, the chosen allocation and the
    /// per-entity misses measured in the partitioned run.
    pub fn compare(
        profiles: &MissProfiles,
        allocation: &Allocation,
        simulated: &BTreeMap<PartitionKey, u64>,
    ) -> Self {
        let total_simulated_misses = simulated.values().sum();
        let mut entries = Vec::new();
        for (&key, &units) in allocation.iter() {
            let expected = profiles.profile(key).map_or(0, |p| p.misses_at(units));
            let simulated_misses = simulated.get(&key).copied().unwrap_or(0);
            entries.push(CompositionalityEntry {
                key,
                units,
                expected_misses: expected,
                simulated_misses,
            });
        }
        CompositionalityReport {
            entries,
            total_simulated_misses,
        }
    }

    /// The paper's metric: the largest per-entity deviation relative to the
    /// total number of simulated misses.
    pub fn max_relative_difference(&self) -> f64 {
        if self.total_simulated_misses == 0 {
            return 0.0;
        }
        self.entries
            .iter()
            .map(|e| e.absolute_difference() as f64 / self.total_simulated_misses as f64)
            .fold(0.0, f64::max)
    }

    /// Mean per-entity deviation relative to the total simulated misses.
    pub fn mean_relative_difference(&self) -> f64 {
        if self.total_simulated_misses == 0 || self.entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .entries
            .iter()
            .map(|e| e.absolute_difference() as f64 / self.total_simulated_misses as f64)
            .sum();
        sum / self.entries.len() as f64
    }

    /// Returns `true` if every entity's deviation is within `fraction` of
    /// the total simulated misses.
    pub fn is_compositional_within(&self, fraction: f64) -> bool {
        self.max_relative_difference() <= fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::OptimizerKind;
    use crate::profile::MissProfile;
    use compmem_trace::TaskId;

    fn setup() -> (MissProfiles, Allocation, BTreeMap<PartitionKey, u64>) {
        let k0 = PartitionKey::Task(TaskId::new(0));
        let k1 = PartitionKey::Task(TaskId::new(1));
        let mut profiles = MissProfiles::default();
        profiles.profiles.insert(
            k0,
            MissProfile {
                accesses: 1000,
                misses_by_units: [(1, 500), (4, 100)].into_iter().collect(),
            },
        );
        profiles.profiles.insert(
            k1,
            MissProfile {
                accesses: 1000,
                misses_by_units: [(1, 300), (4, 290)].into_iter().collect(),
            },
        );
        let allocation = Allocation {
            kind: OptimizerKind::ExactIlp,
            units: [(k0, 4), (k1, 1)].into_iter().collect(),
            total_units: 5,
            predicted_misses: 400,
        };
        let simulated = [(k0, 102u64), (k1, 306u64)].into_iter().collect();
        (profiles, allocation, simulated)
    }

    #[test]
    fn report_compares_expected_and_simulated() {
        let (profiles, allocation, simulated) = setup();
        let report = CompositionalityReport::compare(&profiles, &allocation, &simulated);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.total_simulated_misses, 408);
        let e0 = &report.entries[0];
        assert_eq!(e0.expected_misses, 100);
        assert_eq!(e0.simulated_misses, 102);
        assert_eq!(e0.absolute_difference(), 2);
        let max = report.max_relative_difference();
        assert!((max - 6.0 / 408.0).abs() < 1e-12);
        assert!(report.is_compositional_within(0.02));
        assert!(!report.is_compositional_within(0.01));
        assert!(report.mean_relative_difference() > 0.0);
        assert!(report.mean_relative_difference() <= max);
    }

    #[test]
    fn empty_report_is_trivially_compositional() {
        let report = CompositionalityReport::default();
        assert_eq!(report.max_relative_difference(), 0.0);
        assert!(report.is_compositional_within(0.0));
    }
}
