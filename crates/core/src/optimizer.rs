//! Partition sizing: the paper's (M)ILP, solved exactly, plus baselines.
//!
//! The paper formulates the choice of per-entity partition sizes as a 0/1
//! integer linear program: pick one candidate size `z_k` per entity such
//! that the total number of misses `sum_i m_i(z_{k(i)})` is minimal and the
//! sizes fit in the cache. With one SOS-1 row per entity and one capacity
//! row this is a grouped (multiple-choice) knapsack; the exact
//! dynamic-programming solver below explores the same solution space an ILP
//! solver would and returns an optimal assignment. A greedy marginal-gain
//! heuristic and an equal-split strawman are provided for the optimiser
//! ablation (E8 in DESIGN.md).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use compmem_cache::PartitionKey;

use crate::error::CoreError;
use crate::profile::MissProfiles;

/// Which solver produced an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Exact dynamic program over the candidate-size lattice (equivalent to
    /// the paper's ILP).
    ExactIlp,
    /// Greedy marginal-gain heuristic.
    Greedy,
    /// Equal split of the available units over all keys.
    EqualSplit,
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OptimizerKind::ExactIlp => "exact-ilp",
            OptimizerKind::Greedy => "greedy",
            OptimizerKind::EqualSplit => "equal-split",
        };
        f.write_str(s)
    }
}

/// One entity of the allocation problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationEntity {
    /// The partition key being sized.
    pub key: PartitionKey,
    /// Candidate unit counts the optimiser may choose from. A single
    /// element pins the entity to that size (the paper's rule for FIFOs:
    /// partition size = FIFO size).
    pub candidates: Vec<u32>,
}

/// The allocation problem: entities, their candidate sizes and profiles, and
/// the capacity of the cache in allocation units.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationProblem {
    /// Entities to size.
    pub entities: Vec<AllocationEntity>,
    /// Miss profiles measured by the profiling run.
    pub profiles: MissProfiles,
    /// Total allocation units available.
    pub total_units: u32,
}

impl AllocationProblem {
    fn misses_of(&self, key: PartitionKey, units: u32) -> u64 {
        self.profiles
            .profile(key)
            .map(|p| p.misses_at(units))
            .unwrap_or(0)
    }
}

/// A chosen per-entity partition sizing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Solver that produced the allocation.
    pub kind: OptimizerKind,
    /// Units allocated to every key.
    pub units: BTreeMap<PartitionKey, u32>,
    /// Total units allocated.
    pub total_units: u32,
    /// Total misses predicted by the profiles for this allocation.
    pub predicted_misses: u64,
}

impl Allocation {
    /// Units allocated to `key` (zero if the key is not part of the
    /// allocation).
    pub fn units_of(&self, key: PartitionKey) -> u32 {
        self.units.get(&key).copied().unwrap_or(0)
    }

    /// Iterates over `(key, units)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PartitionKey, &u32)> {
        self.units.iter()
    }
}

fn finish(
    kind: OptimizerKind,
    problem: &AllocationProblem,
    units: BTreeMap<PartitionKey, u32>,
) -> Allocation {
    let total_units = units.values().sum();
    let predicted_misses = units.iter().map(|(k, &u)| problem.misses_of(*k, u)).sum();
    Allocation {
        kind,
        units,
        total_units,
        predicted_misses,
    }
}

fn check_feasible(problem: &AllocationProblem) -> Result<(), CoreError> {
    if problem.entities.is_empty() {
        return Err(CoreError::Infeasible {
            reason: "no entities to allocate".to_string(),
        });
    }
    let minimum: u32 = problem
        .entities
        .iter()
        .map(|e| e.candidates.iter().copied().min().unwrap_or(1))
        .sum();
    if minimum > problem.total_units {
        return Err(CoreError::Infeasible {
            reason: format!(
                "minimum allocation of {minimum} units exceeds the {} available",
                problem.total_units
            ),
        });
    }
    for e in &problem.entities {
        if e.candidates.is_empty() {
            return Err(CoreError::Infeasible {
                reason: format!("entity {} has no candidate sizes", e.key),
            });
        }
    }
    Ok(())
}

/// Exact multiple-choice-knapsack dynamic program minimising total misses.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] if even the smallest candidate of every
/// entity does not fit.
pub fn solve_exact(problem: &AllocationProblem) -> Result<Allocation, CoreError> {
    check_feasible(problem)?;
    let capacity = problem.total_units as usize;
    let n = problem.entities.len();
    const INFEASIBLE: u64 = u64::MAX;
    // dp[i][c] = minimal misses for entities i.. using at most c units.
    let mut dp = vec![vec![INFEASIBLE; capacity + 1]; n + 1];
    let mut choice = vec![vec![0u32; capacity + 1]; n];
    dp[n].fill(0);
    for i in (0..n).rev() {
        let entity = &problem.entities[i];
        for c in 0..=capacity {
            for &units in &entity.candidates {
                let u = units as usize;
                if u > c || dp[i + 1][c - u] == INFEASIBLE {
                    continue;
                }
                let cost = problem.misses_of(entity.key, units) + dp[i + 1][c - u];
                if cost < dp[i][c] {
                    dp[i][c] = cost;
                    choice[i][c] = units;
                }
            }
        }
    }
    if dp[0][capacity] == INFEASIBLE {
        return Err(CoreError::Infeasible {
            reason: "no combination of candidate sizes fits the cache".to_string(),
        });
    }
    let mut units = BTreeMap::new();
    let mut remaining = capacity;
    for (i, entity) in problem.entities.iter().enumerate() {
        let chosen = choice[i][remaining];
        units.insert(entity.key, chosen);
        remaining -= chosen as usize;
    }
    Ok(finish(OptimizerKind::ExactIlp, problem, units))
}

/// Greedy marginal-gain heuristic: start from every entity's smallest
/// candidate and repeatedly grant the doubling with the best miss reduction
/// per extra unit.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] if even the smallest candidates do not
/// fit.
pub fn solve_greedy(problem: &AllocationProblem) -> Result<Allocation, CoreError> {
    check_feasible(problem)?;
    let mut units: BTreeMap<PartitionKey, u32> = problem
        .entities
        .iter()
        .map(|e| (e.key, *e.candidates.iter().min().expect("non-empty")))
        .collect();
    let mut used: u32 = units.values().sum();
    loop {
        let mut best: Option<(PartitionKey, u32, f64)> = None;
        for e in &problem.entities {
            let current = units[&e.key];
            let Some(&next) = e.candidates.iter().filter(|&&c| c > current).min() else {
                continue;
            };
            let extra = next - current;
            if used + extra > problem.total_units {
                continue;
            }
            let gain = problem.misses_of(e.key, current) - problem.misses_of(e.key, next);
            let density = gain as f64 / f64::from(extra);
            if gain > 0 && best.as_ref().is_none_or(|(_, _, d)| density > *d) {
                best = Some((e.key, next, density));
            }
        }
        match best {
            Some((key, next, _)) => {
                used += next - units[&key];
                units.insert(key, next);
            }
            None => break,
        }
    }
    Ok(finish(OptimizerKind::Greedy, problem, units))
}

/// Equal-split strawman: give every entity the same (largest feasible)
/// candidate size.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] if even the smallest candidates do not
/// fit.
pub fn solve_equal_split(problem: &AllocationProblem) -> Result<Allocation, CoreError> {
    check_feasible(problem)?;
    let n = problem.entities.len() as u32;
    let fair_share = (problem.total_units / n).max(1);
    let units: BTreeMap<PartitionKey, u32> = problem
        .entities
        .iter()
        .map(|e| {
            let size = e
                .candidates
                .iter()
                .copied()
                .filter(|&c| c <= fair_share)
                .max()
                .or_else(|| e.candidates.iter().copied().min())
                .expect("non-empty candidates");
            (e.key, size)
        })
        .collect();
    let total: u32 = units.values().sum();
    if total > problem.total_units {
        return Err(CoreError::Infeasible {
            reason: "equal split does not fit".to_string(),
        });
    }
    Ok(finish(OptimizerKind::EqualSplit, problem, units))
}

/// Solves the problem with the requested solver.
///
/// # Errors
///
/// See the individual solvers.
pub fn solve(problem: &AllocationProblem, kind: OptimizerKind) -> Result<Allocation, CoreError> {
    match kind {
        OptimizerKind::ExactIlp => solve_exact(problem),
        OptimizerKind::Greedy => solve_greedy(problem),
        OptimizerKind::EqualSplit => solve_equal_split(problem),
    }
}

/// A per-entity quality-of-service floor: the chosen partition must keep
/// the entity's **predicted** miss rate (its profile's misses over its
/// profiled L2-bound accesses) at or under `max_miss_rate`.
///
/// This is the paper's compositionality guarantee as a constraint: a task
/// whose floor holds behaves within a stated bound of its solo run no
/// matter what its co-runners do, because its partition is exclusively
/// its own. Floors compose with every solver via [`solve_with_floors`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosFloor {
    /// The entity whose service is guaranteed.
    pub key: PartitionKey,
    /// Highest acceptable predicted miss rate in `[0, 1]`.
    pub max_miss_rate: f64,
}

/// Restricts each floored entity's candidate sizes to those meeting its
/// floor, in place.
///
/// An entity without a profile never reached the L2 during profiling, so
/// every candidate trivially satisfies its floor and the entity is left
/// untouched.
///
/// # Errors
///
/// Returns [`CoreError::QosInfeasible`] when a floor names a key that is
/// not part of the problem, when no candidate size of a floored entity
/// meets its bound, or when the floored minimum sizes no longer fit the
/// cache (a plain [`CoreError::Infeasible`] problem stays `Infeasible`;
/// only floor-caused impossibility gets the QoS error).
pub fn apply_qos_floors(
    problem: &mut AllocationProblem,
    floors: &[QosFloor],
) -> Result<(), CoreError> {
    if floors.is_empty() {
        return Ok(());
    }
    for floor in floors {
        let Some(index) = problem.entities.iter().position(|e| e.key == floor.key) else {
            return Err(CoreError::QosInfeasible {
                key: floor.key.to_string(),
                reason: "the key is not part of the allocation problem".to_string(),
            });
        };
        let Some(profile) = problem.profiles.profile(floor.key) else {
            continue;
        };
        let entity = &problem.entities[index];
        let kept: Vec<u32> = entity
            .candidates
            .iter()
            .copied()
            .filter(|&units| profile.miss_rate_at(units) <= floor.max_miss_rate)
            .collect();
        if kept.is_empty() {
            let best = entity
                .candidates
                .iter()
                .map(|&units| profile.miss_rate_at(units))
                .fold(f64::INFINITY, f64::min);
            return Err(CoreError::QosInfeasible {
                key: floor.key.to_string(),
                reason: format!(
                    "no candidate size meets the {:.2}% floor (best predicted miss \
                     rate over the candidates is {:.2}%)",
                    floor.max_miss_rate * 100.0,
                    best * 100.0
                ),
            });
        }
        problem.entities[index].candidates = kept;
    }
    let minimum: u32 = problem
        .entities
        .iter()
        .map(|e| e.candidates.iter().copied().min().unwrap_or(1))
        .sum();
    if minimum > problem.total_units {
        let demanding = floors
            .iter()
            .max_by_key(|f| {
                problem
                    .entities
                    .iter()
                    .find(|e| e.key == f.key)
                    .and_then(|e| e.candidates.iter().copied().min())
                    .unwrap_or(0)
            })
            .expect("floors is non-empty");
        return Err(CoreError::QosInfeasible {
            key: demanding.key.to_string(),
            reason: format!(
                "honouring every floor needs at least {minimum} units but only {} \
                 are available",
                problem.total_units
            ),
        });
    }
    Ok(())
}

/// Solves the problem with the requested solver under per-entity QoS
/// floors: every floored entity's chosen size must keep its predicted
/// miss rate at or under its bound, and the solver minimises total misses
/// within what the floors leave open.
///
/// # Errors
///
/// As for [`apply_qos_floors`] and the individual solvers.
pub fn solve_with_floors(
    problem: &AllocationProblem,
    floors: &[QosFloor],
    kind: OptimizerKind,
) -> Result<Allocation, CoreError> {
    let mut constrained = problem.clone();
    apply_qos_floors(&mut constrained, floors)?;
    solve(&constrained, kind)
}

/// Brute-force reference solver used in tests (exponential; only for tiny
/// problems).
pub fn solve_exhaustive(problem: &AllocationProblem) -> Result<Allocation, CoreError> {
    check_feasible(problem)?;
    let mut best: Option<(u64, Vec<u32>)> = None;
    let mut current = vec![0u32; problem.entities.len()];
    fn recurse(
        problem: &AllocationProblem,
        index: usize,
        used: u32,
        misses: u64,
        current: &mut Vec<u32>,
        best: &mut Option<(u64, Vec<u32>)>,
    ) {
        if index == problem.entities.len() {
            if best.as_ref().is_none_or(|(m, _)| misses < *m) {
                *best = Some((misses, current.clone()));
            }
            return;
        }
        for &units in &problem.entities[index].candidates {
            if used + units > problem.total_units {
                continue;
            }
            current[index] = units;
            recurse(
                problem,
                index + 1,
                used + units,
                misses + problem.misses_of(problem.entities[index].key, units),
                current,
                best,
            );
        }
    }
    recurse(problem, 0, 0, 0, &mut current, &mut best);
    let (_, sizes) = best.ok_or_else(|| CoreError::Infeasible {
        reason: "no combination of candidate sizes fits the cache".to_string(),
    })?;
    let units: BTreeMap<PartitionKey, u32> = problem
        .entities
        .iter()
        .zip(sizes)
        .map(|(e, u)| (e.key, u))
        .collect();
    Ok(finish(OptimizerKind::ExactIlp, problem, units))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MissProfile;
    use compmem_trace::TaskId;

    fn profile(points: &[(u32, u64)]) -> MissProfile {
        MissProfile {
            accesses: points.iter().map(|(_, m)| m).sum(),
            misses_by_units: points.iter().copied().collect(),
        }
    }

    fn problem(total_units: u32) -> AllocationProblem {
        // Task 0 benefits hugely from 8 units, task 1 saturates at 2, task 2
        // is a streaming task that never benefits.
        let keys = [
            PartitionKey::Task(TaskId::new(0)),
            PartitionKey::Task(TaskId::new(1)),
            PartitionKey::Task(TaskId::new(2)),
        ];
        let mut profiles = MissProfiles {
            lattice_units: vec![1, 2, 4, 8],
            ..Default::default()
        };
        profiles
            .profiles
            .insert(keys[0], profile(&[(1, 1000), (2, 900), (4, 500), (8, 50)]));
        profiles
            .profiles
            .insert(keys[1], profile(&[(1, 400), (2, 80), (4, 75), (8, 70)]));
        profiles
            .profiles
            .insert(keys[2], profile(&[(1, 300), (2, 300), (4, 300), (8, 300)]));
        AllocationProblem {
            entities: keys
                .iter()
                .map(|&key| AllocationEntity {
                    key,
                    candidates: vec![1, 2, 4, 8],
                })
                .collect(),
            profiles,
            total_units,
        }
    }

    #[test]
    fn exact_matches_exhaustive_and_respects_capacity() {
        for capacity in [3, 6, 11, 16, 24] {
            let p = problem(capacity);
            let exact = solve_exact(&p).unwrap();
            let brute = solve_exhaustive(&p).unwrap();
            assert_eq!(
                exact.predicted_misses, brute.predicted_misses,
                "capacity {capacity}"
            );
            assert!(exact.total_units <= capacity);
        }
    }

    #[test]
    fn exact_prefers_the_task_with_the_knee() {
        let p = problem(11);
        let a = solve_exact(&p).unwrap();
        assert_eq!(a.units_of(PartitionKey::Task(TaskId::new(0))), 8);
        assert_eq!(a.units_of(PartitionKey::Task(TaskId::new(1))), 2);
        assert_eq!(a.units_of(PartitionKey::Task(TaskId::new(2))), 1);
        assert_eq!(a.predicted_misses, 50 + 80 + 300);
    }

    #[test]
    fn greedy_is_close_to_exact_here() {
        let p = problem(11);
        let exact = solve_exact(&p).unwrap();
        let greedy = solve_greedy(&p).unwrap();
        assert!(greedy.predicted_misses >= exact.predicted_misses);
        assert!(greedy.total_units <= p.total_units);
        // On this profile shape the greedy heuristic also finds the knee.
        assert_eq!(greedy.units_of(PartitionKey::Task(TaskId::new(0))), 8);
    }

    #[test]
    fn equal_split_is_worse_than_exact() {
        let p = problem(12);
        let exact = solve_exact(&p).unwrap();
        let equal = solve_equal_split(&p).unwrap();
        assert!(equal.predicted_misses > exact.predicted_misses);
        assert!(equal.total_units <= p.total_units);
    }

    #[test]
    fn pinned_entities_keep_their_size() {
        let mut p = problem(16);
        p.entities[2].candidates = vec![4];
        let a = solve_exact(&p).unwrap();
        assert_eq!(a.units_of(PartitionKey::Task(TaskId::new(2))), 4);
    }

    #[test]
    fn infeasible_problems_are_reported() {
        let p = problem(2);
        assert!(matches!(solve_exact(&p), Err(CoreError::Infeasible { .. })));
        let mut empty = problem(8);
        empty.entities.clear();
        assert!(solve(&empty, OptimizerKind::Greedy).is_err());
    }

    #[test]
    fn qos_floor_pins_the_floored_entity_to_meeting_sizes() {
        // Task 1's profile has accesses 625: rates 0.64 / 0.128 / 0.12 /
        // 0.112 over the candidates. A 0.119 floor leaves only 8 units.
        let p = problem(16);
        let key = PartitionKey::Task(TaskId::new(1));
        let floor = QosFloor {
            key,
            max_miss_rate: 0.119,
        };
        let a = solve_with_floors(&p, &[floor], OptimizerKind::ExactIlp).unwrap();
        assert_eq!(a.units_of(key), 8);
        let rate = p.profiles.profile(key).unwrap().miss_rate_at(8);
        assert!(rate <= floor.max_miss_rate);
        // Without the floor the same capacity gives task 1 less.
        let free = solve_exact(&p).unwrap();
        assert!(free.units_of(key) < 8);
        assert!(free.predicted_misses <= a.predicted_misses);
    }

    #[test]
    fn qos_floor_no_candidate_is_a_typed_error() {
        // Task 2 streams: 300/1200 = 25% misses at every size.
        let p = problem(16);
        let key = PartitionKey::Task(TaskId::new(2));
        let err = solve_with_floors(
            &p,
            &[QosFloor {
                key,
                max_miss_rate: 0.2,
            }],
            OptimizerKind::Greedy,
        )
        .unwrap_err();
        match err {
            CoreError::QosInfeasible { key: k, reason } => {
                assert_eq!(k, key.to_string());
                assert!(reason.contains("20.00%"), "{reason}");
            }
            other => panic!("expected QosInfeasible, got {other:?}"),
        }
    }

    #[test]
    fn qos_floors_that_do_not_fit_together_are_a_typed_error() {
        // Floors forcing tasks 0 and 1 to 8 units each leave no room for
        // task 2's smallest candidate in a 16-unit cache.
        let p = problem(16);
        let floors = [
            QosFloor {
                key: PartitionKey::Task(TaskId::new(0)),
                max_miss_rate: 0.05,
            },
            QosFloor {
                key: PartitionKey::Task(TaskId::new(1)),
                max_miss_rate: 0.119,
            },
        ];
        let err = solve_with_floors(&p, &floors, OptimizerKind::ExactIlp).unwrap_err();
        assert!(
            matches!(err, CoreError::QosInfeasible { .. }),
            "expected QosInfeasible, got {err:?}"
        );
    }

    #[test]
    fn qos_floor_on_an_unknown_key_is_a_typed_error() {
        let p = problem(16);
        let err = solve_with_floors(
            &p,
            &[QosFloor {
                key: PartitionKey::Task(TaskId::new(9)),
                max_miss_rate: 0.5,
            }],
            OptimizerKind::ExactIlp,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::QosInfeasible { .. }));
    }

    #[test]
    fn qos_floor_on_an_unprofiled_entity_is_trivially_satisfied() {
        // An entity that never reached the L2 has no profile; any floor
        // holds and its candidates stay untouched.
        let mut p = problem(16);
        let key = PartitionKey::Task(TaskId::new(2));
        p.profiles.profiles.remove(&key);
        let mut constrained = p.clone();
        apply_qos_floors(
            &mut constrained,
            &[QosFloor {
                key,
                max_miss_rate: 0.0,
            }],
        )
        .unwrap();
        assert_eq!(constrained.entities, p.entities);
    }

    #[test]
    fn empty_floors_leave_the_problem_alone() {
        let p = problem(11);
        let with = solve_with_floors(&p, &[], OptimizerKind::ExactIlp).unwrap();
        let without = solve_exact(&p).unwrap();
        assert_eq!(with, without);
        // A plainly infeasible problem stays `Infeasible`, not QoS.
        let tiny = problem(2);
        assert!(matches!(
            solve_with_floors(&tiny, &[], OptimizerKind::ExactIlp),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn solver_dispatch_by_kind() {
        let p = problem(16);
        assert_eq!(
            solve(&p, OptimizerKind::ExactIlp).unwrap().kind,
            OptimizerKind::ExactIlp
        );
        assert_eq!(
            solve(&p, OptimizerKind::Greedy).unwrap().kind,
            OptimizerKind::Greedy
        );
        assert_eq!(
            solve(&p, OptimizerKind::EqualSplit).unwrap().kind,
            OptimizerKind::EqualSplit
        );
        assert_eq!(OptimizerKind::ExactIlp.to_string(), "exact-ilp");
    }
}
