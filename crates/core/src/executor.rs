//! Bounded work-stealing executor for batches of independent work items.
//!
//! [`Experiment::run_all`](crate::experiment::Experiment::run_all), the
//! optimiser ablation and the `compmem sweep` CLI all evaluate a *fleet*
//! of independent (shape × policy × schedule) work items over one shared
//! input. The naive shape — one OS thread per item — oversubscribes the
//! machine as soon as the fleet outgrows the core count and turns a
//! single panicking item into an abort of the whole batch. This module
//! replaces it with a fixed-size pool:
//!
//! * **Bounded**: at most `jobs` worker threads (default
//!   [`default_jobs`], the host's available parallelism), never more
//!   than there are items.
//! * **Work-stealing**: items are seeded round-robin across per-worker
//!   deques; a worker drains its own queue from the front and, when
//!   empty, steals from the *back* of a sibling's queue. Items have
//!   wildly different costs (a 4 MiB way-partitioned replay vs a 32 KiB
//!   shared one), so static striping alone would leave workers idle
//!   while one queue still holds the expensive tail.
//! * **Panic-isolating**: each item runs under
//!   [`catch_unwind`]; a panicking item yields
//!   [`CoreError::WorkerPanicked`] in *its* result slot while the rest of
//!   the batch completes normally.
//!
//! Results come back in input order regardless of which worker ran what,
//! so callers observe the exact same `Vec` a serial loop would produce —
//! the determinism tests in `experiment` assert byte-identical
//! [`CacheSnapshot`](compmem_cache::CacheSnapshot)s for 1 vs N jobs.
//!
//! The pool is deliberately `std`-only (scoped threads + mutex-guarded
//! deques, no channels): batches are coarse-grained — each item is a full
//! cache simulation, milliseconds at minimum — so queue-operation
//! latency is irrelevant and the simple locked deque is indistinguishable
//! from a lock-free one here.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use crate::error::CoreError;

/// Default worker count: the host's available parallelism, or 1 when the
/// platform cannot report it.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Renders a caught panic payload into a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Evaluates `work` over every item of `items` on a bounded work-stealing
/// pool of at most `jobs` threads and returns the results **in input
/// order**.
///
/// `jobs` is clamped to `1..=items.len()`; `jobs <= 1` (or a single
/// item) degenerates to an inline serial loop on the calling thread, so
/// `run_batch(items, 1, f)` is *exactly* `items.map(f)` — no threads are
/// spawned at all. A panic inside `work` is caught per item and surfaces
/// as [`CoreError::WorkerPanicked`] in that item's slot.
///
/// The closure receives the item's input index alongside the item so
/// callers can label diagnostics without searching for the item.
pub fn run_batch<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<Result<R, CoreError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, CoreError> + Sync,
{
    let run_one = |index: usize, item: &T| -> Result<R, CoreError> {
        catch_unwind(AssertUnwindSafe(|| work(index, item))).unwrap_or_else(|payload| {
            Err(CoreError::WorkerPanicked {
                message: panic_message(payload),
            })
        })
    };

    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }

    // Seed the per-worker deques round-robin. No work is ever *added*
    // after this point, so a worker that finds every queue empty can
    // terminate — there is nothing left to wait for, and no parking or
    // wake-up machinery is needed.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    let mut slots: Vec<Option<Result<R, CoreError>>> = (0..items.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let queues = &queues;
        let run_one = &run_one;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut done: Vec<(usize, Result<R, CoreError>)> = Vec::new();
                    loop {
                        // Own queue first (front — preserves the seeded
                        // order), then steal from siblings (back — takes
                        // the work farthest from the owner's cursor).
                        let mut next = queues[w]
                            .lock()
                            .expect("executor queue poisoned")
                            .pop_front();
                        if next.is_none() {
                            for offset in 1..workers {
                                let victim = (w + offset) % workers;
                                next = queues[victim]
                                    .lock()
                                    .expect("executor queue poisoned")
                                    .pop_back();
                                if next.is_some() {
                                    break;
                                }
                            }
                        }
                        match next {
                            Some(i) => done.push((i, run_one(i, &items[i]))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            // The per-item `catch_unwind` means the worker body itself
            // cannot panic; a join error would indicate a bug in the
            // executor, and the affected slots degrade to
            // `WorkerPanicked` below instead of aborting the batch.
            if let Ok(done) = handle.join() {
                for (i, result) in done {
                    slots[i] = Some(result);
                }
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(CoreError::WorkerPanicked {
                    message: "worker thread died before reporting its results".to_string(),
                })
            })
        })
        .collect()
}

type QueuedJob<R> = Box<dyn FnOnce() -> Result<R, CoreError> + Send + 'static>;
type QueuedEntry<R> = (QueuedJob<R>, mpsc::Sender<Result<R, CoreError>>);

struct QueueState<R> {
    pending: Vec<QueuedEntry<R>>,
    closed: bool,
}

struct QueueShared<R> {
    state: Mutex<QueueState<R>>,
    ready: Condvar,
}

/// A long-lived front end over [`run_batch`]: jobs submitted from any
/// thread are batched by a single dispatcher thread and evaluated on the
/// same bounded work-stealing pool, so concurrent producers share one
/// worker budget instead of each spawning their own threads.
///
/// This is the scheduling half of `compmem serve`: every cache-miss
/// request becomes one [`WorkQueue::submit`], and however many clients
/// are connected, at most `jobs` measurement threads ever run. The
/// dispatcher drains *all* pending jobs into each batch, so a burst of
/// requests is load-balanced by `run_batch`'s stealing rather than
/// handled strictly FIFO-serially.
///
/// Panic isolation carries over from [`run_batch`]: a panicking job
/// resolves to [`CoreError::WorkerPanicked`] on its own receiver while
/// every other job completes normally. Dropping the queue finishes the
/// jobs already submitted, then stops the dispatcher.
pub struct WorkQueue<R: Send + 'static> {
    shared: Arc<QueueShared<R>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl<R: Send + 'static> WorkQueue<R> {
    /// Starts a queue whose batches run on at most `jobs` worker threads
    /// (clamped to at least 1). The queue itself owns one extra
    /// dispatcher thread, which is idle whenever no jobs are pending.
    pub fn start(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState {
                pending: Vec::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        });
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = std::thread::spawn(move || loop {
            let batch = {
                let mut state = dispatcher_shared
                    .state
                    .lock()
                    .expect("work queue state poisoned");
                while state.pending.is_empty() && !state.closed {
                    state = dispatcher_shared
                        .ready
                        .wait(state)
                        .expect("work queue state poisoned");
                }
                if state.pending.is_empty() {
                    return;
                }
                std::mem::take(&mut state.pending)
            };
            let (jobs_taken, senders): (Vec<_>, Vec<_>) = batch.into_iter().unzip();
            // run_batch wants `Fn(usize, &T)`, but a job is FnOnce; a
            // per-item Mutex<Option<...>> hands each job to exactly one
            // worker.
            let items: Vec<Mutex<Option<QueuedJob<R>>>> = jobs_taken
                .into_iter()
                .map(|j| Mutex::new(Some(j)))
                .collect();
            let results = run_batch(&items, jobs, |_, slot| {
                let job = slot
                    .lock()
                    .expect("work queue job slot poisoned")
                    .take()
                    .expect("work queue job ran twice");
                job()
            });
            for (sender, result) in senders.into_iter().zip(results) {
                // A submitter that dropped its receiver no longer wants
                // the answer; that is not the queue's problem.
                let _ = sender.send(result);
            }
        });
        WorkQueue {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submits one job and returns the receiver its result will arrive
    /// on. Blocking on the receiver gives exactly the `Result` the job
    /// returned — or [`CoreError::WorkerPanicked`] if it panicked, or (on
    /// a queue that is already shut down) a `WorkerPanicked` with a
    /// shutdown message, so a submitter never hangs.
    pub fn submit(
        &self,
        job: impl FnOnce() -> Result<R, CoreError> + Send + 'static,
    ) -> mpsc::Receiver<Result<R, CoreError>> {
        let (sender, receiver) = mpsc::channel();
        let mut state = self.shared.state.lock().expect("work queue state poisoned");
        if state.closed {
            let _ = sender.send(Err(CoreError::WorkerPanicked {
                message: "work queue is shut down".to_string(),
            }));
        } else {
            state.pending.push((Box::new(job), sender));
            self.shared.ready.notify_one();
        }
        receiver
    }
}

impl<R: Send + 'static> Drop for WorkQueue<R> {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("work queue state poisoned");
            state.closed = true;
            self.shared.ready.notify_one();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let results = run_batch(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                Ok(x * x)
            });
            let squares: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(squares, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<usize> = (0..64).collect();
        let counter = AtomicUsize::new(0);
        let results = run_batch(&items, 4, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        assert_eq!(counter.load(Ordering::SeqCst), items.len());
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn a_panicking_item_fails_alone() {
        let items: Vec<u32> = (0..10).collect();
        for jobs in [1, 4] {
            let results = run_batch(&items, jobs, |_, &x| {
                if x == 3 {
                    panic!("item {x} is poisoned");
                }
                Ok(x)
            });
            for (i, result) in results.iter().enumerate() {
                if i == 3 {
                    match result {
                        Err(CoreError::WorkerPanicked { message }) => {
                            assert!(message.contains("poisoned"), "message: {message}");
                        }
                        other => panic!("expected WorkerPanicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i as u32);
                }
            }
        }
    }

    #[test]
    fn errors_pass_through_untouched() {
        let items = [1u32, 2, 3];
        let results = run_batch(&items, 2, |_, &x| {
            if x == 2 {
                Err(CoreError::Infeasible {
                    reason: "two".to_string(),
                })
            } else {
                Ok(x)
            }
        });
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::Infeasible { .. })));
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_batches_and_zero_jobs_are_fine() {
        let empty: [u32; 0] = [];
        assert!(run_batch(&empty, 4, |_, &x| Ok(x)).is_empty());
        let one = [7u32];
        let results = run_batch(&one, 0, |_, &x| Ok(x));
        assert_eq!(*results[0].as_ref().unwrap(), 7);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn work_queue_returns_each_submitters_own_result() {
        let queue: WorkQueue<u64> = WorkQueue::start(3);
        let receivers: Vec<_> = (0..32u64)
            .map(|x| queue.submit(move || Ok(x * x)))
            .collect();
        for (x, receiver) in receivers.into_iter().enumerate() {
            let result = receiver.recv().expect("dispatcher sends a result");
            assert_eq!(result.unwrap(), (x * x) as u64);
        }
    }

    #[test]
    fn work_queue_isolates_panics_per_job() {
        let queue: WorkQueue<u32> = WorkQueue::start(2);
        let bad = queue.submit(|| panic!("queued job is poisoned"));
        let good = queue.submit(|| Ok(7));
        match bad.recv().unwrap() {
            Err(CoreError::WorkerPanicked { message }) => {
                assert!(message.contains("poisoned"), "message: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(good.recv().unwrap().unwrap(), 7);
    }

    #[test]
    fn work_queue_runs_concurrent_submitters_on_a_shared_pool() {
        let queue: Arc<WorkQueue<usize>> = Arc::new(WorkQueue::start(2));
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let queue = Arc::clone(&queue);
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    let receiver = queue.submit(move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                        Ok(t)
                    });
                    receiver.recv().unwrap().unwrap()
                })
            })
            .collect();
        let mut answers: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        answers.sort_unstable();
        assert_eq!(answers, (0..8).collect::<Vec<_>>());
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn work_queue_drop_finishes_pending_jobs_and_rejects_late_submits() {
        let queue: WorkQueue<u32> = WorkQueue::start(1);
        let receivers: Vec<_> = (0..4).map(|x| queue.submit(move || Ok(x))).collect();
        drop(queue);
        for (x, receiver) in receivers.into_iter().enumerate() {
            assert_eq!(receiver.recv().unwrap().unwrap(), x as u32);
        }
        let queue: WorkQueue<u32> = WorkQueue::start(1);
        // Simulate a submit racing shutdown: close, then submit.
        {
            let mut state = queue.shared.state.lock().unwrap();
            state.closed = true;
        }
        let late = queue.submit(|| Ok(1));
        assert!(matches!(
            late.recv().unwrap(),
            Err(CoreError::WorkerPanicked { .. })
        ));
    }
}
