//! Bounded work-stealing executor for batches of independent work items.
//!
//! [`Experiment::run_all`](crate::experiment::Experiment::run_all), the
//! optimiser ablation and the `compmem sweep` CLI all evaluate a *fleet*
//! of independent (shape × policy × schedule) work items over one shared
//! input. The naive shape — one OS thread per item — oversubscribes the
//! machine as soon as the fleet outgrows the core count and turns a
//! single panicking item into an abort of the whole batch. This module
//! replaces it with a fixed-size pool:
//!
//! * **Bounded**: at most `jobs` worker threads (default
//!   [`default_jobs`], the host's available parallelism), never more
//!   than there are items.
//! * **Work-stealing**: items are seeded round-robin across per-worker
//!   deques; a worker drains its own queue from the front and, when
//!   empty, steals from the *back* of a sibling's queue. Items have
//!   wildly different costs (a 4 MiB way-partitioned replay vs a 32 KiB
//!   shared one), so static striping alone would leave workers idle
//!   while one queue still holds the expensive tail.
//! * **Panic-isolating**: each item runs under
//!   [`catch_unwind`]; a panicking item yields
//!   [`CoreError::WorkerPanicked`] in *its* result slot while the rest of
//!   the batch completes normally.
//!
//! Results come back in input order regardless of which worker ran what,
//! so callers observe the exact same `Vec` a serial loop would produce —
//! the determinism tests in `experiment` assert byte-identical
//! [`CacheSnapshot`](compmem_cache::CacheSnapshot)s for 1 vs N jobs.
//!
//! The pool is deliberately `std`-only (scoped threads + mutex-guarded
//! deques, no channels): batches are coarse-grained — each item is a full
//! cache simulation, milliseconds at minimum — so queue-operation
//! latency is irrelevant and the simple locked deque is indistinguishable
//! from a lock-free one here.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::error::CoreError;

/// Default worker count: the host's available parallelism, or 1 when the
/// platform cannot report it.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Renders a caught panic payload into a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Evaluates `work` over every item of `items` on a bounded work-stealing
/// pool of at most `jobs` threads and returns the results **in input
/// order**.
///
/// `jobs` is clamped to `1..=items.len()`; `jobs <= 1` (or a single
/// item) degenerates to an inline serial loop on the calling thread, so
/// `run_batch(items, 1, f)` is *exactly* `items.map(f)` — no threads are
/// spawned at all. A panic inside `work` is caught per item and surfaces
/// as [`CoreError::WorkerPanicked`] in that item's slot.
///
/// The closure receives the item's input index alongside the item so
/// callers can label diagnostics without searching for the item.
pub fn run_batch<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<Result<R, CoreError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, CoreError> + Sync,
{
    let run_one = |index: usize, item: &T| -> Result<R, CoreError> {
        catch_unwind(AssertUnwindSafe(|| work(index, item))).unwrap_or_else(|payload| {
            Err(CoreError::WorkerPanicked {
                message: panic_message(payload),
            })
        })
    };

    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }

    // Seed the per-worker deques round-robin. No work is ever *added*
    // after this point, so a worker that finds every queue empty can
    // terminate — there is nothing left to wait for, and no parking or
    // wake-up machinery is needed.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    let mut slots: Vec<Option<Result<R, CoreError>>> = (0..items.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let queues = &queues;
        let run_one = &run_one;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut done: Vec<(usize, Result<R, CoreError>)> = Vec::new();
                    loop {
                        // Own queue first (front — preserves the seeded
                        // order), then steal from siblings (back — takes
                        // the work farthest from the owner's cursor).
                        let mut next = queues[w]
                            .lock()
                            .expect("executor queue poisoned")
                            .pop_front();
                        if next.is_none() {
                            for offset in 1..workers {
                                let victim = (w + offset) % workers;
                                next = queues[victim]
                                    .lock()
                                    .expect("executor queue poisoned")
                                    .pop_back();
                                if next.is_some() {
                                    break;
                                }
                            }
                        }
                        match next {
                            Some(i) => done.push((i, run_one(i, &items[i]))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            // The per-item `catch_unwind` means the worker body itself
            // cannot panic; a join error would indicate a bug in the
            // executor, and the affected slots degrade to
            // `WorkerPanicked` below instead of aborting the batch.
            if let Ok(done) = handle.join() {
                for (i, result) in done {
                    slots[i] = Some(result);
                }
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(CoreError::WorkerPanicked {
                    message: "worker thread died before reporting its results".to_string(),
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let results = run_batch(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                Ok(x * x)
            });
            let squares: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(squares, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<usize> = (0..64).collect();
        let counter = AtomicUsize::new(0);
        let results = run_batch(&items, 4, |_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        assert_eq!(counter.load(Ordering::SeqCst), items.len());
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn a_panicking_item_fails_alone() {
        let items: Vec<u32> = (0..10).collect();
        for jobs in [1, 4] {
            let results = run_batch(&items, jobs, |_, &x| {
                if x == 3 {
                    panic!("item {x} is poisoned");
                }
                Ok(x)
            });
            for (i, result) in results.iter().enumerate() {
                if i == 3 {
                    match result {
                        Err(CoreError::WorkerPanicked { message }) => {
                            assert!(message.contains("poisoned"), "message: {message}");
                        }
                        other => panic!("expected WorkerPanicked, got {other:?}"),
                    }
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i as u32);
                }
            }
        }
    }

    #[test]
    fn errors_pass_through_untouched() {
        let items = [1u32, 2, 3];
        let results = run_batch(&items, 2, |_, &x| {
            if x == 2 {
                Err(CoreError::Infeasible {
                    reason: "two".to_string(),
                })
            } else {
                Ok(x)
            }
        });
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(CoreError::Infeasible { .. })));
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_batches_and_zero_jobs_are_fine() {
        let empty: [u32; 0] = [];
        assert!(run_batch(&empty, 4, |_, &x| Ok(x)).is_empty());
        let one = [7u32];
        let results = run_batch(&one, 0, |_, &x| Ok(x));
        assert_eq!(*results[0].as_ref().unwrap(), 7);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
