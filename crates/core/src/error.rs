//! Error type of the top-level crate.

use std::error::Error;
use std::fmt;

use compmem_cache::CacheError;
use compmem_platform::PlatformError;
use compmem_workloads::WorkloadError;

/// Errors produced while sizing partitions and running experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The requested partition sizes do not fit in the cache.
    CapacityExceeded {
        /// Units requested.
        requested: u32,
        /// Units available.
        available: u32,
    },
    /// A partition key has no miss profile (it never reached the L2 during
    /// profiling and was not pinned to a size).
    MissingProfile {
        /// Display name of the key.
        key: String,
    },
    /// The allocation problem has no feasible solution (e.g. more keys than
    /// allocation units).
    Infeasible {
        /// Explanation of the infeasibility.
        reason: String,
    },
    /// Stack-distance profiling was requested for a scenario whose L2
    /// replacement policy is not LRU. The profiler's curves are exact
    /// for LRU only (the Mattson stack-inclusion identity the single
    /// pass relies on — and what the shadow bank models); profiling a
    /// FIFO/PLRU/random L2 would silently produce curves the real cache
    /// does not follow, so it is a typed error instead.
    NonLruProfiling {
        /// Display name of the offending replacement policy.
        policy: String,
    },
    /// A QoS floor cannot be honoured: no candidate size keeps the
    /// entity's predicted miss rate at or under its stated bound, or the
    /// floors' combined minimum sizes exceed the cache. Rates are carried
    /// pre-rendered because this enum is `Eq` (no floats).
    QosInfeasible {
        /// Display name of the floored partition key.
        key: String,
        /// Why the floor is unsatisfiable, with the rates involved.
        reason: String,
    },
    /// An underlying cache-model error.
    Cache(CacheError),
    /// An underlying platform error.
    Platform(PlatformError),
    /// An underlying workload error.
    Workload(WorkloadError),
    /// A trace encode/decode error (the message of the underlying
    /// [`CodecError`](compmem_trace::CodecError), which is not `Clone`).
    Codec {
        /// Rendered message of the codec error.
        message: String,
    },
    /// A worker thread of the batch executor panicked while evaluating one
    /// work item. The panic is caught per item, so a poisoned spec reports
    /// this error in its own result slot instead of aborting the whole
    /// batch (see [`executor`](crate::executor)).
    WorkerPanicked {
        /// Rendered panic payload of the worker.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::CapacityExceeded {
                requested,
                available,
            } => write!(
                f,
                "allocation requests {requested} units but only {available} are available"
            ),
            CoreError::MissingProfile { key } => {
                write!(f, "no miss profile for partition key `{key}`")
            }
            CoreError::Infeasible { reason } => write!(f, "allocation infeasible: {reason}"),
            CoreError::NonLruProfiling { policy } => write!(
                f,
                "stack-distance profiling is exact for LRU only; the scenario's L2 uses \
                 `{policy}` (run the shadow-bank profiler or switch the L2 to LRU)"
            ),
            CoreError::QosInfeasible { key, reason } => {
                write!(f, "QoS floor for `{key}` is unsatisfiable: {reason}")
            }
            CoreError::Cache(e) => write!(f, "cache error: {e}"),
            CoreError::Platform(e) => write!(f, "platform error: {e}"),
            CoreError::Workload(e) => write!(f, "workload error: {e}"),
            CoreError::Codec { message } => write!(f, "trace codec error: {message}"),
            CoreError::WorkerPanicked { message } => {
                write!(f, "batch worker panicked: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Cache(e) => Some(e),
            CoreError::Platform(e) => Some(e),
            CoreError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheError> for CoreError {
    fn from(value: CacheError) -> Self {
        CoreError::Cache(value)
    }
}

impl From<PlatformError> for CoreError {
    fn from(value: PlatformError) -> Self {
        CoreError::Platform(value)
    }
}

impl From<WorkloadError> for CoreError {
    fn from(value: WorkloadError) -> Self {
        CoreError::Workload(value)
    }
}

impl From<compmem_trace::CodecError> for CoreError {
    fn from(value: compmem_trace::CodecError) -> Self {
        CoreError::Codec {
            message: value.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: CoreError = CacheError::PartitionNotPowerOfTwo { sets: 3 }.into();
        assert!(e.to_string().contains('3'));
        assert!(e.source().is_some());
        let e = CoreError::CapacityExceeded {
            requested: 200,
            available: 128,
        };
        assert!(e.to_string().contains("200"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
