//! Plain-text formatting of the reproduced tables and figures.

use crate::experiment::PaperFlowOutcome;

/// Formats the allocation table of an application (the analogue of Tables 1
/// and 2 of the paper): one row per entity with the allocated units and L2
/// sets.
pub fn format_allocation_table(outcome: &PaperFlowOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Allocated L2 sets for `{}` (1 unit = {} sets)\n",
        outcome.app_name, outcome.sets_per_unit
    ));
    out.push_str(&format!(
        "{:<28} {:>8} {:>10}\n",
        "entity", "units", "L2 sets"
    ));
    for (name, units, sets) in outcome.table_rows() {
        out.push_str(&format!("{name:<28} {units:>8} {sets:>10}\n"));
    }
    out.push_str(&format!(
        "{:<28} {:>8} {:>10}\n",
        "total",
        outcome.allocation.total_units,
        outcome.allocation.total_units * outcome.sets_per_unit
    ));
    out
}

/// Formats the shared-versus-partitioned per-entity miss comparison
/// (Figure 2 of the paper).
pub fn format_figure2(outcome: &PaperFlowOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Shared vs best partitioned cache misses for `{}`\n",
        outcome.app_name
    ));
    out.push_str(&format!(
        "{:<28} {:>12} {:>12}\n",
        "entity", "shared", "partitioned"
    ));
    for (name, shared, partitioned) in outcome.figure2_rows() {
        out.push_str(&format!("{name:<28} {shared:>12} {partitioned:>12}\n"));
    }
    out.push_str(&format!(
        "{:<28} {:>12} {:>12}\n",
        "total", outcome.shared.report.l2.misses, outcome.partitioned.report.l2.misses
    ));
    out
}

/// Formats the expected-versus-simulated per-entity comparison (Figure 3 of
/// the paper).
pub fn format_figure3(outcome: &PaperFlowOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Expected vs simulated misses for `{}` (compositionality)\n",
        outcome.app_name
    ));
    out.push_str(&format!(
        "{:<28} {:>12} {:>12} {:>10}\n",
        "entity", "expected", "simulated", "diff/total"
    ));
    let total = outcome.compositionality.total_simulated_misses.max(1);
    for (name, expected, simulated) in outcome.figure3_rows() {
        let rel = expected.abs_diff(simulated) as f64 / total as f64;
        out.push_str(&format!(
            "{name:<28} {expected:>12} {simulated:>12} {:>9.2}%\n",
            100.0 * rel
        ));
    }
    out.push_str(&format!(
        "largest relative difference: {:.2}%\n",
        100.0 * outcome.compositionality.max_relative_difference()
    ));
    out
}

/// Formats the headline miss-rate / CPI comparison reported in the text of
/// §5 of the paper.
pub fn format_headline(outcome: &PaperFlowOutcome) -> String {
    format!(
        "Headline metrics for `{}`\n\
         {:<30} {:>12} {:>12}\n\
         {:<30} {:>11.2}% {:>11.2}%\n\
         {:<30} {:>12.3} {:>12.3}\n\
         {:<30} {:>12} {:>12}\n\
         miss improvement factor: {:.2}x\n",
        outcome.app_name,
        "",
        "shared",
        "partitioned",
        "L2 miss rate",
        100.0 * outcome.shared_miss_rate(),
        100.0 * outcome.partitioned_miss_rate(),
        "CPI (average over CPUs)",
        outcome.shared_cpi(),
        outcome.partitioned_cpi(),
        "L2 misses",
        outcome.shared.report.l2.misses,
        outcome.partitioned.report.l2.misses,
        outcome.miss_improvement_factor(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compositionality::CompositionalityReport;
    use crate::experiment::RunOutcome;
    use crate::optimizer::{Allocation, OptimizerKind};
    use crate::profile::MissProfiles;
    use compmem_cache::PartitionKey;
    use compmem_trace::TaskId;
    use std::collections::BTreeMap;

    fn outcome() -> PaperFlowOutcome {
        let key = PartitionKey::Task(TaskId::new(0));
        let allocation = Allocation {
            kind: OptimizerKind::ExactIlp,
            units: [(key, 4u32)].into_iter().collect(),
            total_units: 4,
            predicted_misses: 100,
        };
        let mut shared = RunOutcome::default();
        shared.report.l2.accesses = 1000;
        shared.report.l2.misses = 500;
        let mut partitioned = RunOutcome::default();
        partitioned.report.l2.accesses = 1000;
        partitioned.report.l2.misses = 100;
        let mut key_names = BTreeMap::new();
        key_names.insert(key, "FrontEnd1".to_string());
        PaperFlowOutcome {
            app_name: "demo".to_string(),
            shared,
            profiles: MissProfiles::default(),
            allocation,
            partitioned,
            compositionality: CompositionalityReport::default(),
            key_names,
            sets_per_unit: 16,
        }
    }

    #[test]
    fn tables_and_figures_contain_entity_names_and_totals() {
        let o = outcome();
        let table = format_allocation_table(&o);
        assert!(table.contains("FrontEnd1"));
        assert!(table.contains("64"), "4 units of 16 sets");
        let fig2 = format_figure2(&o);
        assert!(fig2.contains("500"));
        assert!(fig2.contains("100"));
        let fig3 = format_figure3(&o);
        assert!(fig3.contains("largest relative difference"));
        let headline = format_headline(&o);
        assert!(headline.contains("5.00x") || headline.contains("5.0"));
        assert!(headline.contains("50.00%"));
    }
}
