//! Miss-vs-cache-size profiling (re-exported).
//!
//! The profiling layer moved into `compmem-cache` when the four L2
//! organisations were unified behind the object-safe
//! [`CacheModel`](compmem_cache::CacheModel) trait: the
//! [`ProfilingCache`] is one of those organisations, so it lives next to
//! the others and runs through the same `Box<dyn CacheModel>` timing path.
//! Its shadow-cache bank has since been superseded as the *source* of the
//! profiles by the single-pass [`StackDistanceProfiler`] (per-set bounded
//! Mattson stacks producing a [`MissRateCurve`] per entity, convertible to
//! the profiles of any lattice); the shadow bank remains the
//! cross-validation oracle. This module re-exports the types under their
//! historical `compmem` paths.

pub use compmem_cache::{
    curve_delta, CacheSizeLattice, CurveResolution, CurveWindow, MissProfile, MissProfiles,
    MissRateCurve, MissRateCurves, Phase, ProfilingCache, StackDistanceProfiler, WindowConfig,
    WindowKind, WindowedCurves, WindowedProfiler,
};
