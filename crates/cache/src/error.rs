//! Error type of the cache crate.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring caches and partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// A geometry parameter was zero or not a power of two.
    InvalidGeometry {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Value supplied.
        value: u64,
    },
    /// A partition referenced sets outside the cache.
    PartitionOutOfRange {
        /// First set of the partition.
        base_set: u32,
        /// Number of sets of the partition.
        sets: u32,
        /// Number of sets in the cache.
        cache_sets: u32,
    },
    /// A partition's set count was not a power of two.
    PartitionNotPowerOfTwo {
        /// Number of sets requested.
        sets: u32,
    },
    /// Two partitions overlap.
    PartitionOverlap {
        /// First set of the overlapping range.
        base_set: u32,
        /// Number of sets of the overlapping range.
        sets: u32,
    },
    /// A way-partition mask was empty or referenced ways beyond the
    /// associativity.
    InvalidWayMask {
        /// The offending mask.
        mask: u64,
        /// Associativity of the cache.
        ways: u32,
    },
    /// An access hit a region with no partition assigned.
    UnassignedRegion {
        /// Index of the region.
        region: usize,
    },
    /// A partitioned organisation was requested over an empty key set.
    NoPartitionKeys,
    /// A profiling window configuration was invalid (zero length).
    InvalidWindow {
        /// The offending window length.
        length: u64,
    },
    /// A live reconfiguration was requested between organisations that
    /// cannot morph into one another (only like-for-like repartitioning
    /// is supported: a new `PartitionMap` on a set-partitioned cache, a
    /// new `WayAllocation` on a way-partitioned cache, or the trivial
    /// shared-to-shared no-op).
    ReconfigureUnsupported {
        /// Organisation of the live cache.
        from: &'static str,
        /// Organisation the reconfiguration asked for.
        to: &'static str,
    },
    /// A partition schedule contained no steps.
    EmptySchedule,
    /// A partition schedule's step cycles were not strictly increasing
    /// from an implicit first step at cycle 0.
    ScheduleOutOfOrder {
        /// The offending step cycle.
        at_cycle: u64,
    },
    /// Two profiler shards could not be merged into one exact profile
    /// (mismatched resolutions, overlapping per-key streams, or a
    /// missing/duplicated aggregate shard).
    ShardMerge {
        /// Human-readable explanation of the conflict.
        reason: String,
    },
    /// A miss-rate curve was asked about a cache shape outside the
    /// resolution it was profiled at.
    CurveOutOfRange {
        /// Set count asked about.
        sets: u32,
        /// Associativity asked about.
        ways: u32,
        /// Smallest resolved set count.
        min_sets: u32,
        /// Largest resolved set count.
        max_sets: u32,
        /// Largest resolved associativity.
        ways_cap: u32,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::InvalidGeometry { parameter, value } => {
                write!(
                    f,
                    "cache {parameter} of {value} is not a non-zero power of two"
                )
            }
            CacheError::PartitionOutOfRange {
                base_set,
                sets,
                cache_sets,
            } => write!(
                f,
                "partition [{base_set}, {}) exceeds the {cache_sets} sets of the cache",
                base_set + sets
            ),
            CacheError::PartitionNotPowerOfTwo { sets } => {
                write!(f, "partition size of {sets} sets is not a power of two")
            }
            CacheError::PartitionOverlap { base_set, sets } => {
                write!(
                    f,
                    "partition [{base_set}, {}) overlaps an existing partition",
                    base_set + sets
                )
            }
            CacheError::InvalidWayMask { mask, ways } => {
                write!(f, "way mask {mask:#b} is invalid for a {ways}-way cache")
            }
            CacheError::UnassignedRegion { region } => {
                write!(f, "region {region} has no cache partition assigned")
            }
            CacheError::NoPartitionKeys => {
                write!(
                    f,
                    "a partitioned organisation needs at least one partition key"
                )
            }
            CacheError::InvalidWindow { length } => {
                write!(
                    f,
                    "profiling window length of {length} is invalid (must be > 0)"
                )
            }
            CacheError::ReconfigureUnsupported { from, to } => write!(
                f,
                "a live `{from}` cache cannot be reconfigured into `{to}` \
                 (only like-for-like repartitioning is supported)"
            ),
            CacheError::EmptySchedule => {
                write!(f, "a partition schedule needs at least one step")
            }
            CacheError::ScheduleOutOfOrder { at_cycle } => write!(
                f,
                "partition schedule step at cycle {at_cycle} is out of order \
                 (steps must start at cycle 0 and strictly increase)"
            ),
            CacheError::ShardMerge { reason } => {
                write!(f, "profiler shards cannot merge exactly: {reason}")
            }
            CacheError::CurveOutOfRange {
                sets,
                ways,
                min_sets,
                max_sets,
                ways_cap,
            } => write!(
                f,
                "miss-rate curve does not resolve {sets} sets x {ways} ways \
                 (profiled at {min_sets}..={max_sets} power-of-two sets, up to {ways_cap} ways)"
            ),
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_values() {
        let e = CacheError::InvalidGeometry {
            parameter: "sets",
            value: 3,
        };
        assert!(e.to_string().contains("sets"));
        assert!(e.to_string().contains('3'));
        let e = CacheError::PartitionOutOfRange {
            base_set: 100,
            sets: 64,
            cache_sets: 128,
        };
        assert!(e.to_string().contains("164"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheError>();
    }
}
