//! Single-pass stack-distance profiling: the full miss-rate curve of every
//! partition key from one pass over the access stream.
//!
//! # Why a stack-distance profiler
//!
//! The paper's optimiser needs, for every memory-active entity, the number
//! of L2 misses at *every* candidate partition size (the `m_i(S_k)` inputs
//! of the ILP). The [`ProfilingCache`](crate::ProfilingCache) measures
//! those points by replaying each access into one shadow cache per lattice
//! point — `K` full cache simulations riding along on the profiling run.
//! The [`StackDistanceProfiler`] obtains the same numbers in **one** pass
//! with no shadow cache bank: it exploits Mattson's inclusion property of
//! LRU (an access that hits in a cache of size `S` hits in every larger
//! size) to record a *distance histogram* from which the miss count at any
//! size is a suffix sum. The resulting [`MissRateCurve`] converts into
//! [`MissProfiles`] for **any** [`CacheSizeLattice`] after the fact — pay
//! the pass once, sweep as many lattices as you like.
//!
//! # The algorithm
//!
//! The shadow caches being replaced are set-associative LRU caches with
//! power-of-two set counts, modulo indexing and full-line tags. For such a
//! cache with `S` sets and `W` ways, an access to line `l` misses exactly
//! when fewer than one of the `W` most recently used *distinct* lines of
//! `l`'s set is `l` itself — i.e. when the per-set LRU stack distance of
//! `l` is `>= W` (or `l` was never referenced: a cold miss). The profiler
//! therefore keeps, per partition key and per power-of-two set count
//! ("level") between [`CurveResolution::min_sets`] and
//! [`CurveResolution::max_sets`], a bank of per-set **bounded Mattson
//! stacks**: the `ways_cap` most recently used distinct lines of every
//! set, most recent first. One access then does, per level:
//!
//! 1. index the stack of set `line & (sets - 1)`;
//! 2. scan its `<= ways_cap` entries for the line — the position *is* the
//!    stack distance; record it in the level's distance histogram (the
//!    bucket `ways_cap` means "distance >= ways_cap", see below);
//! 3. rotate the line to the front (LRU update).
//!
//! Because the set counts are nested powers of two, every level sees the
//! same access exactly once, so the whole pass is `O(levels * ways_cap)`
//! per access — independent of the number of lattice points served later.
//!
//! Truncating each stack at `ways_cap` entries loses no information for
//! the question being asked: a line pushed off the end has, by
//! construction, `>= ways_cap` distinct more-recent lines in its set, so
//! any later access to it has distance `>= ways_cap` and misses at every
//! associativity up to `ways_cap` — exactly what the saturated histogram
//! bucket records. Distances below the cap are exact, hence
//! [`MissRateCurve::misses`] is **exact** (not an estimate) for every
//! `ways <= ways_cap` and every power-of-two set count within the
//! resolution, and agrees with the shadow-cache simulation bit for bit.
//! (The shadow banks are always LRU — see
//! [`ProfilingCache`](crate::ProfilingCache) — which is the policy the
//! stack-distance identity holds for.)
//!
//! Cold misses are tracked once per key (first touch of a line misses at
//! every size simultaneously), mirroring the per-shadow cold accounting.

use std::collections::{BTreeMap, HashSet};
use std::hash::BuildHasherDefault;

use serde::{Deserialize, Serialize};

use compmem_trace::{Access, LineAddr, RegionTable};

use crate::cache::LineAddrHasher;
use crate::error::CacheError;
use crate::geometry::CacheGeometry;
use crate::partition::PartitionKey;
use crate::profile::{CacheSizeLattice, MissProfile, MissProfiles};

type LineSet = HashSet<LineAddr, BuildHasherDefault<LineAddrHasher>>;

/// Sentinel for an empty stack slot (no real line address reaches it: line
/// addresses are byte addresses shifted right by the line bits).
const EMPTY: u64 = u64::MAX;

/// The range of cache shapes a profiling pass resolves: every power-of-two
/// set count between `min_sets` and `max_sets`, at every associativity up
/// to `ways_cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurveResolution {
    /// Smallest set count resolved (a power of two).
    pub min_sets: u32,
    /// Largest set count resolved (a power of two, `>= min_sets`).
    pub max_sets: u32,
    /// Largest associativity resolved exactly; distances beyond it
    /// saturate.
    pub ways_cap: u32,
}

impl CurveResolution {
    /// Creates a resolution.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] if either set count is zero
    /// or not a power of two, if `min_sets > max_sets`, or if `ways_cap`
    /// is zero.
    pub fn new(min_sets: u32, max_sets: u32, ways_cap: u32) -> Result<Self, CacheError> {
        for (parameter, value) in [("min_sets", min_sets), ("max_sets", max_sets)] {
            if value == 0 || !value.is_power_of_two() {
                return Err(CacheError::InvalidGeometry {
                    parameter,
                    value: u64::from(value),
                });
            }
        }
        if min_sets > max_sets {
            return Err(CacheError::InvalidGeometry {
                parameter: "min_sets",
                value: u64::from(min_sets),
            });
        }
        if ways_cap == 0 {
            return Err(CacheError::InvalidGeometry {
                parameter: "ways_cap",
                value: 0,
            });
        }
        Ok(CurveResolution {
            min_sets,
            max_sets,
            ways_cap,
        })
    }

    /// The resolution covering every lattice of a cache geometry: set
    /// counts from one allocation unit up to the full cache, at the
    /// cache's associativity.
    ///
    /// # Errors
    ///
    /// As for [`CurveResolution::new`] (e.g. `sets_per_unit` not a power
    /// of two or larger than the cache).
    pub fn for_geometry(geometry: CacheGeometry, sets_per_unit: u32) -> Result<Self, CacheError> {
        if sets_per_unit > geometry.sets() {
            return Err(CacheError::InvalidGeometry {
                parameter: "sets_per_unit",
                value: u64::from(sets_per_unit),
            });
        }
        Self::new(sets_per_unit, geometry.sets(), geometry.ways())
    }

    /// Number of set-count levels resolved.
    pub fn levels(&self) -> usize {
        (self.max_sets.ilog2() - self.min_sets.ilog2() + 1) as usize
    }

    /// The level index of a set count, if it is resolved.
    pub fn level_of(&self, sets: u32) -> Option<usize> {
        if sets < self.min_sets || sets > self.max_sets || !sets.is_power_of_two() {
            return None;
        }
        Some((sets.ilog2() - self.min_sets.ilog2()) as usize)
    }

    /// Set count of a level index.
    fn sets_of_level(&self, level: usize) -> u32 {
        self.min_sets << level
    }
}

/// The exact miss-vs-size/associativity surface of one partition key,
/// extracted from a profiling pass.
///
/// `level_histograms[j][d]` counts the non-cold accesses whose per-set LRU
/// stack distance at set count `min_sets << j` was exactly `d`
/// (`d < ways_cap`) or at least `ways_cap` (the last bucket). The miss
/// count of an `S`-set, `W`-way LRU cache over the profiled stream is the
/// cold count plus the suffix sum from bucket `W` — see
/// [`misses`](MissRateCurve::misses).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissRateCurve {
    /// Accesses of the key during the pass.
    pub accesses: u64,
    /// First-touch (cold) accesses: misses at every size.
    pub cold: u64,
    /// Smallest resolved set count.
    pub min_sets: u32,
    /// Associativity cap of the pass.
    pub ways_cap: u32,
    /// Per-level distance histograms, `ways_cap + 1` buckets each.
    pub level_histograms: Vec<Vec<u64>>,
}

impl MissRateCurve {
    /// Returns `true` if the curve resolves an `sets`-set, `ways`-way
    /// cache.
    pub fn supports(&self, sets: u32, ways: u32) -> bool {
        ways >= 1 && ways <= self.ways_cap && self.level_index(sets).is_some()
    }

    fn level_index(&self, sets: u32) -> Option<usize> {
        if sets < self.min_sets || !sets.is_power_of_two() {
            return None;
        }
        let level = (sets.ilog2() - self.min_sets.ilog2()) as usize;
        (level < self.level_histograms.len()).then_some(level)
    }

    /// The exact number of misses an `sets`-set, `ways`-way LRU cache
    /// incurs over the profiled access stream of this key.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::CurveOutOfRange`] if the shape is outside the
    /// profiled resolution.
    pub fn misses(&self, sets: u32, ways: u32) -> Result<u64, CacheError> {
        let out_of_range = || CacheError::CurveOutOfRange {
            sets,
            ways,
            min_sets: self.min_sets,
            max_sets: self.min_sets << (self.level_histograms.len().max(1) - 1),
            ways_cap: self.ways_cap,
        };
        if ways == 0 || ways > self.ways_cap {
            return Err(out_of_range());
        }
        let level = self.level_index(sets).ok_or_else(out_of_range)?;
        let far: u64 = self.level_histograms[level][ways as usize..].iter().sum();
        Ok(self.cold + far)
    }

    /// Miss rate at the given shape.
    ///
    /// # Errors
    ///
    /// As for [`misses`](MissRateCurve::misses).
    pub fn miss_rate(&self, sets: u32, ways: u32) -> Result<f64, CacheError> {
        let misses = self.misses(sets, ways)?;
        if self.accesses == 0 {
            return Ok(0.0);
        }
        Ok(misses as f64 / self.accesses as f64)
    }
}

/// The miss-rate curves of every partition key observed during a pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissRateCurves {
    /// Per-key curves.
    pub curves: BTreeMap<PartitionKey, MissRateCurve>,
    /// The resolution of the pass.
    pub resolution: CurveResolution,
}

impl MissRateCurves {
    /// Curve of one key, if it generated any traffic.
    pub fn curve(&self, key: PartitionKey) -> Option<&MissRateCurve> {
        self.curves.get(&key)
    }

    /// All keys with a curve, in deterministic order.
    pub fn keys(&self) -> Vec<PartitionKey> {
        self.curves.keys().copied().collect()
    }

    /// Converts the curves into the [`MissProfiles`] of a lattice: for
    /// every key and every candidate unit count, the exact miss count of a
    /// `ways`-way LRU cache of that many sets.
    ///
    /// This is the bridge to the partition-sizing optimiser — and because
    /// the curves are lattice-independent, the same pass serves any number
    /// of lattices.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::CurveOutOfRange`] if a candidate size or the
    /// associativity falls outside the profiled resolution.
    pub fn to_profiles(
        &self,
        lattice: &CacheSizeLattice,
        ways: u32,
    ) -> Result<MissProfiles, CacheError> {
        let mut profiles = BTreeMap::new();
        for (&key, curve) in &self.curves {
            let mut profile = MissProfile {
                accesses: curve.accesses,
                misses_by_units: BTreeMap::new(),
            };
            for &units in &lattice.candidate_units {
                let misses = curve.misses(lattice.sets_of(units), ways)?;
                profile.misses_by_units.insert(units, misses);
            }
            profiles.insert(key, profile);
        }
        Ok(MissProfiles {
            profiles,
            lattice_units: lattice.candidate_units.clone(),
        })
    }
}

/// One per-set stack bank at a fixed set count.
#[derive(Debug, Clone)]
struct LevelBank {
    set_mask: u64,
    /// `sets * ways_cap` slots, each set's stack contiguous, most recent
    /// first, [`EMPTY`] beyond the occupancy.
    stacks: Vec<u64>,
    /// Distance histogram, `ways_cap + 1` buckets (last = saturated).
    histogram: Vec<u64>,
}

impl LevelBank {
    fn new(sets: u32, ways_cap: u32) -> Self {
        LevelBank {
            set_mask: u64::from(sets - 1),
            stacks: vec![EMPTY; sets as usize * ways_cap as usize],
            histogram: vec![0; ways_cap as usize + 1],
        }
    }

    /// Records one (warm) access and performs the LRU update; `push` skips
    /// the histogram for cold accesses, which are counted per key.
    #[inline]
    fn observe(&mut self, line: u64, ways_cap: usize, cold: bool) {
        let set = (line & self.set_mask) as usize;
        let stack = &mut self.stacks[set * ways_cap..(set + 1) * ways_cap];
        // A cold line cannot be resident; skip the scan.
        let position = if cold {
            None
        } else {
            stack.iter().position(|&t| t == line)
        };
        match position {
            Some(distance) => {
                if !cold {
                    self.histogram[distance] += 1;
                }
                stack.copy_within(..distance, 1);
            }
            None => {
                if !cold {
                    *self.histogram.last_mut().expect("ways_cap >= 1") += 1;
                }
                stack.copy_within(..ways_cap - 1, 1);
            }
        }
        stack[0] = line;
    }
}

/// Per-key profiling state.
#[derive(Debug, Clone)]
struct KeyState {
    accesses: u64,
    cold: u64,
    seen: LineSet,
    levels: Vec<LevelBank>,
}

impl KeyState {
    fn new(resolution: &CurveResolution) -> Self {
        let levels = (0..resolution.levels())
            .map(|level| LevelBank::new(resolution.sets_of_level(level), resolution.ways_cap))
            .collect();
        KeyState {
            accesses: 0,
            cold: 0,
            seen: LineSet::default(),
            levels,
        }
    }
}

/// The single-pass profiler: feed it the L2-bound access stream once and
/// extract the exact [`MissRateCurves`] of every partition key.
///
/// Accesses are attributed to partition keys through the region table,
/// exactly as the [`ProfilingCache`](crate::ProfilingCache) attributes its
/// shadow banks, so the two produce identical [`MissProfiles`] — asserted
/// point for point by the cross-validation tests. State is allocated
/// lazily per key on first contact.
#[derive(Debug, Clone)]
pub struct StackDistanceProfiler {
    resolution: CurveResolution,
    /// Partition key of every region (dense by region index).
    region_keys: Vec<PartitionKey>,
    /// State slot of every region ([`UNTOUCHED`] until first contact).
    /// Regions sharing a partition key share a slot, and the per-access
    /// lookup is one array index — no keyed map on the hot path.
    region_slots: Vec<usize>,
    states: Vec<(PartitionKey, KeyState)>,
}

/// Sentinel in [`StackDistanceProfiler::region_slots`] for a region whose
/// key state has not been created yet.
const UNTOUCHED: usize = usize::MAX;

impl StackDistanceProfiler {
    /// Creates a profiler for the given resolution and region table.
    pub fn new(resolution: CurveResolution, regions: &RegionTable) -> Self {
        let region_keys: Vec<PartitionKey> = regions
            .iter()
            .map(|r| PartitionKey::from_region_kind(r.kind))
            .collect();
        StackDistanceProfiler {
            resolution,
            region_slots: vec![UNTOUCHED; region_keys.len()],
            region_keys,
            states: Vec::new(),
        }
    }

    /// The resolution of this profiler.
    pub fn resolution(&self) -> CurveResolution {
        self.resolution
    }

    /// Total accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.states.iter().map(|(_, s)| s.accesses).sum()
    }

    /// Observes one access of the L2-bound stream.
    ///
    /// # Panics
    ///
    /// Panics if the access names a region outside the profiler's region
    /// table — a programming error, not an input condition: accesses
    /// decoded from a trace are validated against its embedded table by
    /// the codec, and live accesses come from the same table the profiler
    /// was built over.
    pub fn observe(&mut self, access: &Access) {
        let region = access.region.index();
        let slot = self
            .region_slots
            .get(region)
            .copied()
            .expect("access names a region outside the profiler's region table");
        let state = if slot == UNTOUCHED {
            // First contact with this region: find or create its key's
            // state (rare; the key may be shared with other regions).
            let key = self.region_keys[region];
            let index = match self.states.iter().position(|(k, _)| *k == key) {
                Some(index) => index,
                None => {
                    self.states.push((key, KeyState::new(&self.resolution)));
                    self.states.len() - 1
                }
            };
            self.region_slots[region] = index;
            &mut self.states[index].1
        } else {
            &mut self.states[slot].1
        };
        state.accesses += 1;
        let line_addr = access.addr.line();
        let cold = state.seen.insert(line_addr);
        if cold {
            state.cold += 1;
        }
        let line = line_addr.value();
        let ways_cap = self.resolution.ways_cap as usize;
        for bank in &mut state.levels {
            bank.observe(line, ways_cap, cold);
        }
    }

    /// Observes a run of accesses in order.
    pub fn observe_all(&mut self, accesses: &[Access]) {
        for access in accesses {
            self.observe(access);
        }
    }

    /// Extracts the measured curves.
    pub fn into_curves(self) -> MissRateCurves {
        let resolution = self.resolution;
        let curves = self
            .states
            .into_iter()
            .map(|(key, state)| {
                (
                    key,
                    MissRateCurve {
                        accesses: state.accesses,
                        cold: state.cold,
                        min_sets: resolution.min_sets,
                        ways_cap: resolution.ways_cap,
                        level_histograms: state
                            .levels
                            .into_iter()
                            .map(|bank| bank.histogram)
                            .collect(),
                    },
                )
            })
            .collect();
        MissRateCurves { curves, resolution }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::model::CacheModel;
    use crate::profile::ProfilingCache;
    use compmem_trace::{Access, RegionId, RegionKind, TaskId};

    fn region_table() -> RegionTable {
        let mut t = RegionTable::new();
        t.insert(
            "t0.data",
            RegionKind::TaskData {
                task: TaskId::new(0),
            },
            512 * 1024,
        )
        .unwrap();
        t.insert(
            "t1.data",
            RegionKind::TaskData {
                task: TaskId::new(1),
            },
            512 * 1024,
        )
        .unwrap();
        t
    }

    /// Deterministic pseudo-random access mix over both regions.
    fn scrambled_accesses(regions: &RegionTable, count: u64) -> Vec<Access> {
        let mut accesses = Vec::new();
        let mut state = 0x9e37_79b9u64;
        for i in 0..count {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let region = (i % 3 == 0) as u32; // 2:1 mix of the two tasks
            let base = regions.region(RegionId::new(region)).base;
            // A mix of tight loops and scattered lines.
            let line = if i % 5 < 3 { state % 96 } else { state % 4096 };
            let a = if i % 7 == 0 {
                Access::store(
                    base.offset(line * 64),
                    4,
                    TaskId::new(region),
                    RegionId::new(region),
                )
            } else {
                Access::load(
                    base.offset(line * 64),
                    4,
                    TaskId::new(region),
                    RegionId::new(region),
                )
            };
            accesses.push(a);
        }
        accesses
    }

    #[test]
    fn resolution_validation() {
        assert!(CurveResolution::new(16, 256, 4).is_ok());
        assert!(CurveResolution::new(0, 256, 4).is_err());
        assert!(CurveResolution::new(16, 24, 4).is_err());
        assert!(CurveResolution::new(256, 16, 4).is_err());
        assert!(CurveResolution::new(16, 256, 0).is_err());
        let r = CurveResolution::new(16, 256, 4).unwrap();
        assert_eq!(r.levels(), 5);
        assert_eq!(r.level_of(16), Some(0));
        assert_eq!(r.level_of(256), Some(4));
        assert_eq!(r.level_of(8), None);
        assert_eq!(r.level_of(48), None);
        let g = CacheGeometry::new(256, 4).unwrap();
        assert_eq!(
            CurveResolution::for_geometry(g, 16).unwrap(),
            CurveResolution::new(16, 256, 4).unwrap()
        );
        assert!(CurveResolution::for_geometry(g, 512).is_err());
    }

    #[test]
    fn single_pass_matches_the_shadow_cache_bank_exactly() {
        // The acceptance property in miniature: the profiler's misses at
        // every lattice point equal the ProfilingCache's shadow-cache
        // simulation, on a scrambled mixed-key stream.
        let regions = region_table();
        let config = CacheConfig::new(256, 4).unwrap();
        let lattice = CacheSizeLattice::new(config.geometry(), 16);
        let accesses = scrambled_accesses(&regions, 20_000);

        let mut shadow = ProfilingCache::new(config, &regions, lattice.clone());
        for a in &accesses {
            shadow.access(a);
        }
        let expected = shadow.into_profiles();

        let resolution = CurveResolution::for_geometry(config.geometry(), 16).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&accesses);
        assert_eq!(profiler.accesses(), accesses.len() as u64);
        let curves = profiler.into_curves();
        let profiles = curves.to_profiles(&lattice, 4).unwrap();
        assert_eq!(profiles, expected);
    }

    #[test]
    fn one_pass_serves_smaller_associativities_too() {
        // The same pass answers for every ways <= ways_cap: check against
        // direct shadow simulation at 1 and 2 ways.
        let regions = region_table();
        let geometry = CacheGeometry::new(256, 4).unwrap();
        let accesses = scrambled_accesses(&regions, 8_000);
        let resolution = CurveResolution::for_geometry(geometry, 16).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&accesses);
        let curves = profiler.into_curves();

        for ways in [1u32, 2, 4] {
            for sets in [16u32, 64, 256] {
                let mut cache =
                    crate::cache::SetAssocCache::new(CacheConfig::new(sets, ways).unwrap());
                for a in accesses.iter().filter(|a| a.region == RegionId::new(0)) {
                    let index = (a.addr.line().value() % u64::from(sets)) as u32;
                    cache.access_at(index, u64::MAX, a);
                }
                let curve = curves.curve(PartitionKey::Task(TaskId::new(0))).unwrap();
                assert_eq!(
                    curve.misses(sets, ways).unwrap(),
                    cache.stats().misses,
                    "sets={sets} ways={ways}"
                );
            }
        }
    }

    #[test]
    fn fully_associative_level_matches_the_reuse_distance_oracle() {
        use compmem_trace::gen::{looping, StreamParams};
        use compmem_trace::stats::ReuseDistanceHistogram;
        let mut regions = RegionTable::new();
        regions
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let params = StreamParams {
            task: TaskId::new(0),
            region: RegionId::new(0),
            base: regions.region(RegionId::new(0)).base,
            access_size: 4,
        };
        let trace = looping(params, 24 * 64, 64, 5);
        let oracle = ReuseDistanceHistogram::from_accesses(&trace);
        // A 1-set level is fully associative up to the cap.
        let resolution = CurveResolution::new(1, 4, 32).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&trace);
        let curves = profiler.into_curves();
        let curve = curves.curve(PartitionKey::Task(TaskId::new(0))).unwrap();
        for capacity in [8u32, 16, 24, 32] {
            assert_eq!(
                curve.misses(1, capacity).unwrap(),
                oracle.lru_misses(u64::from(capacity)),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn out_of_range_shapes_are_rejected() {
        let regions = region_table();
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&scrambled_accesses(&regions, 100));
        let curves = profiler.into_curves();
        let curve = curves.curve(PartitionKey::Task(TaskId::new(0))).unwrap();
        assert!(curve.supports(16, 4));
        assert!(curve.supports(64, 1));
        assert!(!curve.supports(8, 4), "below min_sets");
        assert!(!curve.supports(128, 4), "above max_sets");
        assert!(!curve.supports(32, 5), "above ways_cap");
        assert!(!curve.supports(48, 2), "not a power of two");
        for (sets, ways) in [(8, 4), (128, 4), (32, 5), (32, 0), (48, 2)] {
            assert!(matches!(
                curve.misses(sets, ways),
                Err(CacheError::CurveOutOfRange { .. })
            ));
        }
        // The lattice conversion propagates the error.
        let geometry = CacheGeometry::new(2048, 4).unwrap();
        let wide = CacheSizeLattice::new(geometry, 16);
        assert!(curves.to_profiles(&wide, 4).is_err());
    }

    #[test]
    fn cold_and_access_counters_are_per_key() {
        let regions = region_table();
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        let base = regions.region(RegionId::new(1)).base;
        for round in 0..3u64 {
            for line in 0..10u64 {
                profiler.observe(&Access::load(
                    base.offset(line * 64),
                    4,
                    TaskId::new(1),
                    RegionId::new(1),
                ));
            }
            let _ = round;
        }
        let curves = profiler.into_curves();
        assert!(curves.curve(PartitionKey::Task(TaskId::new(0))).is_none());
        let curve = curves.curve(PartitionKey::Task(TaskId::new(1))).unwrap();
        assert_eq!(curve.accesses, 30);
        assert_eq!(curve.cold, 10, "each line cold exactly once");
        // 10 lines fit in any resolved shape: only the cold misses remain.
        assert_eq!(curve.misses(64, 4).unwrap(), 10);
        assert_eq!(curve.miss_rate(64, 4).unwrap(), 10.0 / 30.0);
        assert_eq!(curves.keys(), vec![PartitionKey::Task(TaskId::new(1))]);
    }
}
