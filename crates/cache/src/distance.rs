//! Single-pass stack-distance profiling: the full miss-rate curve of every
//! partition key from one pass over the access stream.
//!
//! # Why a stack-distance profiler
//!
//! The paper's optimiser needs, for every memory-active entity, the number
//! of L2 misses at *every* candidate partition size (the `m_i(S_k)` inputs
//! of the ILP). The [`ProfilingCache`](crate::ProfilingCache) measures
//! those points by replaying each access into one shadow cache per lattice
//! point — `K` full cache simulations riding along on the profiling run.
//! The [`StackDistanceProfiler`] obtains the same numbers in **one** pass
//! with no shadow cache bank: it exploits Mattson's inclusion property of
//! LRU (an access that hits in a cache of size `S` hits in every larger
//! size) to record a *distance histogram* from which the miss count at any
//! size is a suffix sum. The resulting [`MissRateCurve`] converts into
//! [`MissProfiles`] for **any** [`CacheSizeLattice`] after the fact — pay
//! the pass once, sweep as many lattices as you like.
//!
//! # The algorithm
//!
//! The shadow caches being replaced are set-associative LRU caches with
//! power-of-two set counts, modulo indexing and full-line tags. For such a
//! cache with `S` sets and `W` ways, an access to line `l` misses exactly
//! when fewer than one of the `W` most recently used *distinct* lines of
//! `l`'s set is `l` itself — i.e. when the per-set LRU stack distance of
//! `l` is `>= W` (or `l` was never referenced: a cold miss). The profiler
//! therefore keeps, per partition key and per power-of-two set count
//! ("level") between [`CurveResolution::min_sets`] and
//! [`CurveResolution::max_sets`], a bank of per-set **bounded Mattson
//! stacks**: the `ways_cap` most recently used distinct lines of every
//! set, most recent first. One access then does, per level:
//!
//! 1. index the stack of set `line & (sets - 1)`;
//! 2. scan its `<= ways_cap` entries for the line — the position *is* the
//!    stack distance; record it in the level's distance histogram (the
//!    bucket `ways_cap` means "distance >= ways_cap", see below);
//! 3. rotate the line to the front (LRU update).
//!
//! Because the set counts are nested powers of two, every level sees the
//! same access exactly once, so the whole pass is `O(levels * ways_cap)`
//! per access — independent of the number of lattice points served later.
//!
//! Truncating each stack at `ways_cap` entries loses no information for
//! the question being asked: a line pushed off the end has, by
//! construction, `>= ways_cap` distinct more-recent lines in its set, so
//! any later access to it has distance `>= ways_cap` and misses at every
//! associativity up to `ways_cap` — exactly what the saturated histogram
//! bucket records. Distances below the cap are exact, hence
//! [`MissRateCurve::misses`] is **exact** (not an estimate) for every
//! `ways <= ways_cap` and every power-of-two set count within the
//! resolution, and agrees with the shadow-cache simulation bit for bit.
//! (The shadow banks are always LRU — see
//! [`ProfilingCache`](crate::ProfilingCache) — which is the policy the
//! stack-distance identity holds for.)
//!
//! Cold misses are tracked once per key (first touch of a line misses at
//! every size simultaneously), mirroring the per-shadow cold accounting.
//!
//! # The aggregate curve
//!
//! Besides the per-key curves the profiler maintains one **aggregate**
//! curve over the whole L2-bound stream, with every key folded into one
//! set of stacks. Its [`MissRateCurve::misses`] at shape `(S, W)` is the
//! exact miss count a *shared* `S`-set, `W`-way LRU L2 incurs over the
//! same stream — so one pass also answers the "what if the whole L2 were
//! shape X" question analytically, for every resolved shape at once.
//! That is what `Experiment::sweep_shapes` evaluates (and what the parity
//! test cross-checks against a replay per shape). Because every line
//! belongs to exactly one region (regions are line-aligned) and every
//! region to exactly one key, the aggregate's cold count is the per-key
//! cold count of the access's key — the aggregate rides the same
//! first-touch test.
//!
//! # Windowed profiling
//!
//! Multimedia workloads are phasic: a whole-run curve averages away phase
//! shifts the partition optimizer could exploit. A [`WindowedProfiler`]
//! wraps the profiler and emits a [`MissRateCurves`] snapshot per
//! fixed-size window ([`WindowConfig`]: a number of L2-bound accesses or
//! a number of cycles). Windows are *differences of cumulative
//! snapshots*, so stacks are **not** reset at boundaries — a window's
//! curve counts the misses its accesses contribute given everything
//! already resident — and summing all windows reconstructs the whole-run
//! curve exactly (a property test asserts this). The
//! [`WindowedCurves::phases`] detector then merges consecutive windows
//! whose curve delta (see [`curve_delta`]) stays under a threshold, so
//! `Experiment` can re-run the optimizer per phase.

use std::collections::{BTreeMap, HashSet};
use std::hash::BuildHasherDefault;

use serde::{Deserialize, Serialize};

use compmem_trace::curves::{
    CurveEntry, CurveHeader, EncodedCurves, SidecarKey, SidecarWindow, SidecarWindowKind,
    WindowRecord,
};
use compmem_trace::{Access, CodecError, LineAddr, RegionId, RegionKind, RegionTable, TaskId};

use crate::cache::LineAddrHasher;
use crate::error::CacheError;
use crate::geometry::CacheGeometry;
use crate::partition::PartitionKey;
use crate::profile::{CacheSizeLattice, MissProfile, MissProfiles};

type LineSet = HashSet<LineAddr, BuildHasherDefault<LineAddrHasher>>;

/// Sentinel for an empty stack slot (no real line address reaches it: line
/// addresses are byte addresses shifted right by the line bits).
const EMPTY: u64 = u64::MAX;

/// The range of cache shapes a profiling pass resolves: every power-of-two
/// set count between `min_sets` and `max_sets`, at every associativity up
/// to `ways_cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurveResolution {
    /// Smallest set count resolved (a power of two).
    pub min_sets: u32,
    /// Largest set count resolved (a power of two, `>= min_sets`).
    pub max_sets: u32,
    /// Largest associativity resolved exactly; distances beyond it
    /// saturate.
    pub ways_cap: u32,
}

impl CurveResolution {
    /// Creates a resolution.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] if either set count is zero
    /// or not a power of two, if `min_sets > max_sets`, or if `ways_cap`
    /// is zero.
    pub fn new(min_sets: u32, max_sets: u32, ways_cap: u32) -> Result<Self, CacheError> {
        for (parameter, value) in [("min_sets", min_sets), ("max_sets", max_sets)] {
            if value == 0 || !value.is_power_of_two() {
                return Err(CacheError::InvalidGeometry {
                    parameter,
                    value: u64::from(value),
                });
            }
        }
        if min_sets > max_sets {
            return Err(CacheError::InvalidGeometry {
                parameter: "min_sets",
                value: u64::from(min_sets),
            });
        }
        if ways_cap == 0 {
            return Err(CacheError::InvalidGeometry {
                parameter: "ways_cap",
                value: 0,
            });
        }
        Ok(CurveResolution {
            min_sets,
            max_sets,
            ways_cap,
        })
    }

    /// The resolution covering every lattice of a cache geometry: set
    /// counts from one allocation unit up to the full cache, at the
    /// cache's associativity.
    ///
    /// # Errors
    ///
    /// As for [`CurveResolution::new`] (e.g. `sets_per_unit` not a power
    /// of two or larger than the cache).
    pub fn for_geometry(geometry: CacheGeometry, sets_per_unit: u32) -> Result<Self, CacheError> {
        if sets_per_unit > geometry.sets() {
            return Err(CacheError::InvalidGeometry {
                parameter: "sets_per_unit",
                value: u64::from(sets_per_unit),
            });
        }
        Self::new(sets_per_unit, geometry.sets(), geometry.ways())
    }

    /// Number of set-count levels resolved.
    pub fn levels(&self) -> usize {
        (self.max_sets.ilog2() - self.min_sets.ilog2() + 1) as usize
    }

    /// The level index of a set count, if it is resolved.
    pub fn level_of(&self, sets: u32) -> Option<usize> {
        if sets < self.min_sets || sets > self.max_sets || !sets.is_power_of_two() {
            return None;
        }
        Some((sets.ilog2() - self.min_sets.ilog2()) as usize)
    }

    /// Set count of a level index.
    fn sets_of_level(&self, level: usize) -> u32 {
        self.min_sets << level
    }
}

/// The exact miss-vs-size/associativity surface of one partition key,
/// extracted from a profiling pass.
///
/// `level_histograms[j][d]` counts the non-cold accesses whose per-set LRU
/// stack distance at set count `min_sets << j` was exactly `d`
/// (`d < ways_cap`) or at least `ways_cap` (the last bucket). The miss
/// count of an `S`-set, `W`-way LRU cache over the profiled stream is the
/// cold count plus the suffix sum from bucket `W` — see
/// [`misses`](MissRateCurve::misses).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissRateCurve {
    /// Accesses of the key during the pass.
    pub accesses: u64,
    /// First-touch (cold) accesses: misses at every size.
    pub cold: u64,
    /// Smallest resolved set count.
    pub min_sets: u32,
    /// Associativity cap of the pass.
    pub ways_cap: u32,
    /// Per-level distance histograms, `ways_cap + 1` buckets each.
    pub level_histograms: Vec<Vec<u64>>,
}

impl MissRateCurve {
    /// Returns `true` if the curve resolves an `sets`-set, `ways`-way
    /// cache.
    pub fn supports(&self, sets: u32, ways: u32) -> bool {
        ways >= 1 && ways <= self.ways_cap && self.level_index(sets).is_some()
    }

    fn level_index(&self, sets: u32) -> Option<usize> {
        if sets < self.min_sets || !sets.is_power_of_two() {
            return None;
        }
        let level = (sets.ilog2() - self.min_sets.ilog2()) as usize;
        (level < self.level_histograms.len()).then_some(level)
    }

    /// The exact number of misses an `sets`-set, `ways`-way LRU cache
    /// incurs over the profiled access stream of this key.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::CurveOutOfRange`] if the shape is outside the
    /// profiled resolution.
    pub fn misses(&self, sets: u32, ways: u32) -> Result<u64, CacheError> {
        let out_of_range = || CacheError::CurveOutOfRange {
            sets,
            ways,
            min_sets: self.min_sets,
            max_sets: self.min_sets << (self.level_histograms.len().max(1) - 1),
            ways_cap: self.ways_cap,
        };
        if ways == 0 || ways > self.ways_cap {
            return Err(out_of_range());
        }
        let level = self.level_index(sets).ok_or_else(out_of_range)?;
        let far: u64 = self.level_histograms[level][ways as usize..].iter().sum();
        Ok(self.cold + far)
    }

    /// Miss rate at the given shape.
    ///
    /// # Errors
    ///
    /// As for [`misses`](MissRateCurve::misses).
    pub fn miss_rate(&self, sets: u32, ways: u32) -> Result<f64, CacheError> {
        let misses = self.misses(sets, ways)?;
        if self.accesses == 0 {
            return Ok(0.0);
        }
        Ok(misses as f64 / self.accesses as f64)
    }

    /// An all-zero curve of the given resolution (the identity of
    /// [`absorb`](MissRateCurve::absorb)).
    pub fn zero(resolution: &CurveResolution) -> Self {
        MissRateCurve {
            accesses: 0,
            cold: 0,
            min_sets: resolution.min_sets,
            ways_cap: resolution.ways_cap,
            level_histograms: vec![vec![0; resolution.ways_cap as usize + 1]; resolution.levels()],
        }
    }

    /// The counter-wise difference `self - earlier` of two *cumulative*
    /// snapshots of the same profiling pass (the per-window curve).
    ///
    /// # Panics
    ///
    /// Panics if the curves have different shapes or `earlier` is not a
    /// prefix of `self` — cumulative counters never decrease, so that is
    /// a programming error, not an input condition.
    fn minus(&self, earlier: &MissRateCurve) -> MissRateCurve {
        assert_eq!(self.min_sets, earlier.min_sets);
        assert_eq!(self.ways_cap, earlier.ways_cap);
        assert_eq!(self.level_histograms.len(), earlier.level_histograms.len());
        MissRateCurve {
            accesses: self.accesses - earlier.accesses,
            cold: self.cold - earlier.cold,
            min_sets: self.min_sets,
            ways_cap: self.ways_cap,
            level_histograms: self
                .level_histograms
                .iter()
                .zip(&earlier.level_histograms)
                .map(|(now, then)| now.iter().zip(then).map(|(n, t)| n - t).collect())
                .collect(),
        }
    }

    /// Adds another curve's counters into this one (merging windows into
    /// phases, or reconstructing the whole run from its windows).
    ///
    /// # Panics
    ///
    /// Panics if the curves have different shapes (a programming error:
    /// all curves of one pass share the pass's resolution).
    pub fn absorb(&mut self, other: &MissRateCurve) {
        assert_eq!(self.min_sets, other.min_sets);
        assert_eq!(self.ways_cap, other.ways_cap);
        assert_eq!(self.level_histograms.len(), other.level_histograms.len());
        self.accesses += other.accesses;
        self.cold += other.cold;
        for (mine, theirs) in self
            .level_histograms
            .iter_mut()
            .zip(&other.level_histograms)
        {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }
}

/// The miss-rate curves of every partition key observed during a pass,
/// plus the aggregate curve of the whole stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissRateCurves {
    /// Per-key curves.
    pub curves: BTreeMap<PartitionKey, MissRateCurve>,
    /// The curve of the whole L2-bound stream with every key folded into
    /// one set of stacks: its [`misses`](MissRateCurve::misses) at
    /// `(sets, ways)` is the exact miss count of a **shared** LRU L2 of
    /// that shape over the profiled stream (the analytic shape sweep).
    pub aggregate: MissRateCurve,
    /// The resolution of the pass.
    pub resolution: CurveResolution,
}

impl MissRateCurves {
    /// An empty curve set at the given resolution.
    pub fn empty(resolution: CurveResolution) -> Self {
        MissRateCurves {
            curves: BTreeMap::new(),
            aggregate: MissRateCurve::zero(&resolution),
            resolution,
        }
    }

    /// Curve of one key, if it generated any traffic.
    pub fn curve(&self, key: PartitionKey) -> Option<&MissRateCurve> {
        self.curves.get(&key)
    }

    /// All keys with a curve, in deterministic order.
    pub fn keys(&self) -> Vec<PartitionKey> {
        self.curves.keys().copied().collect()
    }

    /// Total accesses of the profiled stream.
    pub fn accesses(&self) -> u64 {
        self.aggregate.accesses
    }

    /// The exact number of misses a **shared** `sets`-set, `ways`-way LRU
    /// L2 incurs over the profiled stream (the analytic shape sweep; see
    /// [`MissRateCurves::aggregate`]).
    ///
    /// ```
    /// use compmem_cache::{CurveResolution, StackDistanceProfiler};
    /// use compmem_trace::{Access, RegionId, RegionKind, RegionTable, TaskId};
    ///
    /// # fn main() -> Result<(), compmem_cache::CacheError> {
    /// let mut regions = RegionTable::new();
    /// let task = TaskId::new(0);
    /// regions.insert("t0.data", RegionKind::TaskData { task }, 32 * 64).unwrap();
    /// let base = regions.regions()[0].base;
    /// let mut profiler =
    ///     StackDistanceProfiler::new(CurveResolution::new(1, 8, 4)?, &regions);
    /// // Sweep 24 lines twice: the second round only hits where the
    /// // shape is big enough to hold the working set.
    /// for round in 0..2u64 {
    ///     for line in 0..24u64 {
    ///         profiler.observe(&Access::load(
    ///             base.offset(line * 64), 4, task, RegionId::new(0)));
    ///     }
    ///     let _ = round;
    /// }
    /// let curves = profiler.into_curves();
    /// // One pass answers every resolved shape of a *shared* L2. A
    /// // 8-set, 4-way cache holds all 24 lines: only the cold misses.
    /// assert_eq!(curves.shared_misses(8, 4)?, 24);
    /// assert_eq!(curves.shared_misses(8, 4)?, curves.aggregate.misses(8, 4)?);
    /// // A 1-set, 1-way cache thrashes: every access misses.
    /// assert_eq!(curves.shared_misses(1, 1)?, 48);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::CurveOutOfRange`] if the shape is outside
    /// the profiled resolution.
    pub fn shared_misses(&self, sets: u32, ways: u32) -> Result<u64, CacheError> {
        self.aggregate.misses(sets, ways)
    }

    /// Adds another curve set's counters into this one (merging windows
    /// into phases). Keys absent on either side are treated as zero.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ (a programming error: all curves
    /// of one pass share the pass's resolution).
    pub fn absorb(&mut self, other: &MissRateCurves) {
        assert_eq!(self.resolution, other.resolution);
        for (key, curve) in &other.curves {
            self.curves
                .entry(*key)
                .or_insert_with(|| MissRateCurve::zero(&self.resolution))
                .absorb(curve);
        }
        self.aggregate.absorb(&other.aggregate);
    }

    /// The per-window difference of two *cumulative* snapshots of one
    /// pass: per-key `self - earlier` with zero-traffic keys dropped (a
    /// key absent from `earlier` contributes its full curve), and the
    /// aggregate differenced directly. This is the single definition of
    /// "the curves of a window" — the serial [`WindowedProfiler`] and the
    /// sharded [`PlannedWindowedProfiler`] both difference through it, so
    /// their windows are identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different shapes or `earlier` is not
    /// a prefix of `self` (cumulative counters never decrease) — a
    /// programming error, as for [`MissRateCurves::absorb`].
    pub fn delta_since(&self, earlier: &MissRateCurves) -> MissRateCurves {
        let mut curves: BTreeMap<PartitionKey, MissRateCurve> = BTreeMap::new();
        for (key, curve) in &self.curves {
            let delta = match earlier.curves.get(key) {
                Some(before) => curve.minus(before),
                None => curve.clone(),
            };
            if delta.accesses > 0 {
                curves.insert(*key, delta);
            }
        }
        MissRateCurves {
            curves,
            aggregate: self.aggregate.minus(&earlier.aggregate),
            resolution: self.resolution,
        }
    }

    /// Converts the curves into the [`MissProfiles`] of a lattice: for
    /// every key and every candidate unit count, the exact miss count of a
    /// `ways`-way LRU cache of that many sets.
    ///
    /// This is the bridge to the partition-sizing optimiser — and because
    /// the curves are lattice-independent, the same pass serves any number
    /// of lattices.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::CurveOutOfRange`] if a candidate size or the
    /// associativity falls outside the profiled resolution.
    pub fn to_profiles(
        &self,
        lattice: &CacheSizeLattice,
        ways: u32,
    ) -> Result<MissProfiles, CacheError> {
        let mut profiles = BTreeMap::new();
        for (&key, curve) in &self.curves {
            let mut profile = MissProfile {
                accesses: curve.accesses,
                misses_by_units: BTreeMap::new(),
            };
            for &units in &lattice.candidate_units {
                let misses = curve.misses(lattice.sets_of(units), ways)?;
                profile.misses_by_units.insert(units, misses);
            }
            profiles.insert(key, profile);
        }
        Ok(MissProfiles {
            profiles,
            lattice_units: lattice.candidate_units.clone(),
        })
    }
}

/// One per-set stack bank at a fixed set count.
#[derive(Debug, Clone)]
struct LevelBank {
    set_mask: u64,
    /// `sets * ways_cap` slots, each set's stack contiguous, most recent
    /// first, [`EMPTY`] beyond the occupancy.
    stacks: Vec<u64>,
    /// Distance histogram, `ways_cap + 1` buckets (last = saturated).
    histogram: Vec<u64>,
}

impl LevelBank {
    fn new(sets: u32, ways_cap: u32) -> Self {
        LevelBank {
            set_mask: u64::from(sets - 1),
            stacks: vec![EMPTY; sets as usize * ways_cap as usize],
            histogram: vec![0; ways_cap as usize + 1],
        }
    }

    /// Records one (warm) access and performs the LRU update; `push` skips
    /// the histogram for cold accesses, which are counted per key.
    #[inline]
    fn observe(&mut self, line: u64, ways_cap: usize, cold: bool) {
        let set = (line & self.set_mask) as usize;
        let stack = &mut self.stacks[set * ways_cap..(set + 1) * ways_cap];
        // A cold line cannot be resident; skip the scan.
        let position = if cold {
            None
        } else {
            stack.iter().position(|&t| t == line)
        };
        match position {
            Some(distance) => {
                if !cold {
                    self.histogram[distance] += 1;
                }
                stack.copy_within(..distance, 1);
            }
            None => {
                if !cold {
                    *self.histogram.last_mut().expect("ways_cap >= 1") += 1;
                }
                stack.copy_within(..ways_cap - 1, 1);
            }
        }
        stack[0] = line;
    }
}

/// Per-key profiling state.
#[derive(Debug, Clone)]
struct KeyState {
    accesses: u64,
    cold: u64,
    seen: LineSet,
    levels: Vec<LevelBank>,
}

impl KeyState {
    fn new(resolution: &CurveResolution) -> Self {
        let levels = (0..resolution.levels())
            .map(|level| LevelBank::new(resolution.sets_of_level(level), resolution.ways_cap))
            .collect();
        KeyState {
            accesses: 0,
            cold: 0,
            seen: LineSet::default(),
            levels,
        }
    }

    /// A state that tracks accesses, first touches and the `seen` set but
    /// keeps **no** stack banks (`levels` empty, so the per-access bank
    /// loop is a no-op). Shard profilers use it for the streams they
    /// witness but do not measure: an aggregate-only shard still needs
    /// every key's first-touch test (the aggregate's cold count rides it),
    /// and a keys-only shard still counts its aggregate traffic.
    fn counters_only() -> Self {
        KeyState {
            accesses: 0,
            cold: 0,
            seen: LineSet::default(),
            levels: Vec::new(),
        }
    }

    /// Whether this state carries stack banks (i.e. measures a curve).
    fn is_banked(&self) -> bool {
        !self.levels.is_empty()
    }
}

/// Which part of the stream a [`StackDistanceProfiler`] measures.
///
/// Lane-parallel profiling splits one pass into shards: per-key stack
/// banks only ever see their own key's accesses, so a shard that profiles
/// one key over that key's substream produces bit-identical state to the
/// full pass. The aggregate whole-L2 stacks are the documented exception —
/// every key folds into one bank, so the aggregate is **not** decomposable
/// by key and must be measured by a single designated shard that walks the
/// full stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardScope {
    /// Per-key banks and the aggregate bank (the ordinary serial pass).
    Full,
    /// Per-key banks only; the aggregate keeps counters but no banks.
    KeysOnly,
    /// The aggregate bank only; per-key states keep counters and `seen`
    /// sets (the aggregate's cold test needs them) but no banks.
    AggregateOnly,
}

/// The single-pass profiler: feed it the L2-bound access stream once and
/// extract the exact [`MissRateCurves`] of every partition key.
///
/// Accesses are attributed to partition keys through the region table,
/// exactly as the [`ProfilingCache`](crate::ProfilingCache) attributes its
/// shadow banks, so the two produce identical [`MissProfiles`] — asserted
/// point for point by the cross-validation tests. State is allocated
/// lazily per key on first contact.
#[derive(Debug, Clone)]
pub struct StackDistanceProfiler {
    resolution: CurveResolution,
    /// Partition key of every region (dense by region index).
    region_keys: Vec<PartitionKey>,
    /// State slot of every region ([`UNTOUCHED`] until first contact).
    /// Regions sharing a partition key share a slot, and the per-access
    /// lookup is one array index — no keyed map on the hot path.
    region_slots: Vec<usize>,
    states: Vec<(PartitionKey, KeyState)>,
    /// The aggregate stacks with every key folded together (see the
    /// module docs): the shared-L2 shape sweep. Its `seen` set stays
    /// empty — cold misses ride the per-key first-touch test, because a
    /// line belongs to exactly one region and hence exactly one key.
    aggregate: KeyState,
    /// What this profiler instance measures (sharding support).
    scope: ShardScope,
}

/// Sentinel in [`StackDistanceProfiler::region_slots`] for a region whose
/// key state has not been created yet.
const UNTOUCHED: usize = usize::MAX;

impl StackDistanceProfiler {
    /// Creates a profiler for the given resolution and region table.
    pub fn new(resolution: CurveResolution, regions: &RegionTable) -> Self {
        Self::with_scope(resolution, regions, ShardScope::Full)
    }

    /// Creates a **keys-only shard**: per-key stack banks without the
    /// aggregate whole-L2 banks. Feed it the substream of one (or more)
    /// partition keys and [`merge`](StackDistanceProfiler::merge) the
    /// shards back together — per-key banks only ever see their own key's
    /// accesses, so the shard's per-key state is bit-identical to the full
    /// pass's. The aggregate still counts the shard's accesses (so
    /// [`accesses`](StackDistanceProfiler::accesses) works) but measures
    /// no curve; [`into_curves`](StackDistanceProfiler::into_curves) on an
    /// unmerged keys-only shard reports an all-zero aggregate.
    pub fn keys_only(resolution: CurveResolution, regions: &RegionTable) -> Self {
        Self::with_scope(resolution, regions, ShardScope::KeysOnly)
    }

    /// Creates an **aggregate-only shard**: the whole-L2 aggregate banks
    /// without per-key banks. The aggregate folds every key into one set
    /// of stacks, so it is *not* decomposable by key — this shard must
    /// walk the **full** stream, and is the designated carrier of the
    /// aggregate in a lane-parallel pass. Per-key states keep their
    /// counters and first-touch sets (the aggregate's cold test rides
    /// them, and [`merge`](StackDistanceProfiler::merge) cross-checks them
    /// against the per-key shards) but measure no curves.
    pub fn aggregate_only(resolution: CurveResolution, regions: &RegionTable) -> Self {
        Self::with_scope(resolution, regions, ShardScope::AggregateOnly)
    }

    fn with_scope(resolution: CurveResolution, regions: &RegionTable, scope: ShardScope) -> Self {
        let region_keys: Vec<PartitionKey> = regions
            .iter()
            .map(|r| PartitionKey::from_region_kind(r.kind))
            .collect();
        let aggregate = match scope {
            ShardScope::KeysOnly => KeyState::counters_only(),
            ShardScope::Full | ShardScope::AggregateOnly => KeyState::new(&resolution),
        };
        StackDistanceProfiler {
            resolution,
            region_slots: vec![UNTOUCHED; region_keys.len()],
            region_keys,
            states: Vec::new(),
            aggregate,
            scope,
        }
    }

    /// The resolution of this profiler.
    pub fn resolution(&self) -> CurveResolution {
        self.resolution
    }

    /// Total accesses observed so far.
    pub fn accesses(&self) -> u64 {
        // The aggregate sees every access of every key.
        self.aggregate.accesses
    }

    /// Observes one access of the L2-bound stream.
    ///
    /// # Panics
    ///
    /// Panics if the access names a region outside the profiler's region
    /// table — a programming error, not an input condition: accesses
    /// decoded from a trace are validated against its embedded table by
    /// the codec, and live accesses come from the same table the profiler
    /// was built over.
    pub fn observe(&mut self, access: &Access) {
        let region = access.region.index();
        let slot = self
            .region_slots
            .get(region)
            .copied()
            .expect("access names a region outside the profiler's region table");
        let state = if slot == UNTOUCHED {
            // First contact with this region: find or create its key's
            // state (rare; the key may be shared with other regions).
            let key = self.region_keys[region];
            let index = match self.states.iter().position(|(k, _)| *k == key) {
                Some(index) => index,
                None => {
                    let state = match self.scope {
                        ShardScope::AggregateOnly => KeyState::counters_only(),
                        ShardScope::Full | ShardScope::KeysOnly => KeyState::new(&self.resolution),
                    };
                    self.states.push((key, state));
                    self.states.len() - 1
                }
            };
            self.region_slots[region] = index;
            &mut self.states[index].1
        } else {
            &mut self.states[slot].1
        };
        state.accesses += 1;
        let line_addr = access.addr.line();
        let cold = state.seen.insert(line_addr);
        if cold {
            state.cold += 1;
        }
        let line = line_addr.value();
        let ways_cap = self.resolution.ways_cap as usize;
        for bank in &mut state.levels {
            bank.observe(line, ways_cap, cold);
        }
        // The aggregate stacks see every access of every key; a line's
        // first touch under its key is also its first touch overall.
        self.aggregate.accesses += 1;
        if cold {
            self.aggregate.cold += 1;
        }
        for bank in &mut self.aggregate.levels {
            bank.observe(line, ways_cap, cold);
        }
    }

    /// Observes a run of accesses in order.
    pub fn observe_all(&mut self, accesses: &[Access]) {
        for access in accesses {
            self.observe(access);
        }
    }

    /// Extracts the measured curves.
    ///
    /// Shard profilers only emit what they measured: a keys-only shard
    /// reports an all-zero aggregate, an aggregate-only shard reports no
    /// per-key curves. A merged shard set (see
    /// [`merge`](StackDistanceProfiler::merge)) reports both, identically
    /// to a serial pass.
    pub fn into_curves(self) -> MissRateCurves {
        let resolution = self.resolution;
        let curve_of = |state: KeyState| MissRateCurve {
            accesses: state.accesses,
            cold: state.cold,
            min_sets: resolution.min_sets,
            ways_cap: resolution.ways_cap,
            level_histograms: state
                .levels
                .into_iter()
                .map(|bank| bank.histogram)
                .collect(),
        };
        let curves = self
            .states
            .into_iter()
            .filter(|(_, state)| state.is_banked())
            .map(|(key, state)| (key, curve_of(state)))
            .collect();
        let aggregate = if self.aggregate.is_banked() {
            curve_of(self.aggregate)
        } else {
            MissRateCurve::zero(&resolution)
        };
        MissRateCurves {
            curves,
            aggregate,
            resolution,
        }
    }

    /// Clones the curves accumulated so far without consuming the
    /// profiler — the cumulative snapshot the windowed profiler
    /// differences at every window boundary. Shard profilers emit only
    /// what they measure, as for
    /// [`into_curves`](StackDistanceProfiler::into_curves).
    pub fn snapshot_curves(&self) -> MissRateCurves {
        let resolution = self.resolution;
        let curve_of = |state: &KeyState| MissRateCurve {
            accesses: state.accesses,
            cold: state.cold,
            min_sets: resolution.min_sets,
            ways_cap: resolution.ways_cap,
            level_histograms: state
                .levels
                .iter()
                .map(|bank| bank.histogram.clone())
                .collect(),
        };
        let aggregate = if self.aggregate.is_banked() {
            curve_of(&self.aggregate)
        } else {
            MissRateCurve::zero(&resolution)
        };
        MissRateCurves {
            curves: self
                .states
                .iter()
                .filter(|(_, state)| state.is_banked())
                .map(|(key, state)| (*key, curve_of(state)))
                .collect(),
            aggregate,
            resolution,
        }
    }

    /// Merges another shard of the same pass into this profiler,
    /// consuming both (on error the partially merged state is dropped
    /// rather than left observable).
    ///
    /// Exactness contract: per-key stack banks only ever see their own
    /// key's accesses, so a banked per-key state moves across wholesale —
    /// the merged profiler is bit-identical to a serial pass, *provided*
    /// the shards partitioned the stream by key. The aggregate whole-L2
    /// banks are not decomposable (every key folds into one bank), so
    /// exactly one shard may carry a live aggregate and it must have
    /// walked the full stream. Both conditions are checked:
    ///
    /// * a per-key curve or a live aggregate present on both sides is a
    ///   [`CacheError::ShardMerge`] (overlapping shards cannot merge
    ///   exactly);
    /// * where a banked state meets the counters-only ghost an
    ///   aggregate-only shard kept for the same key, their access and
    ///   first-touch counts must agree (they both saw the key's full
    ///   substream), and the merged aggregate's access count must equal
    ///   the sum over all per-key states — catching splits that were not
    ///   an exact partition of the stream the aggregate shard saw.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ShardMerge`] as described above, or when the
    /// shards disagree on resolution or region table.
    pub fn merge(mut self, other: StackDistanceProfiler) -> Result<Self, CacheError> {
        if self.resolution != other.resolution {
            return Err(CacheError::ShardMerge {
                reason: format!(
                    "shards profiled at different resolutions ({:?} vs {:?})",
                    self.resolution, other.resolution
                ),
            });
        }
        if self.region_keys != other.region_keys {
            return Err(CacheError::ShardMerge {
                reason: "shards were built over different region tables".to_string(),
            });
        }
        if self.aggregate.is_banked()
            && other.aggregate.is_banked()
            && self.aggregate.accesses > 0
            && other.aggregate.accesses > 0
        {
            return Err(CacheError::ShardMerge {
                reason: "both shards measured the aggregate whole-L2 stacks; the aggregate \
                         is not decomposable by key and must come from exactly one \
                         full-stream shard"
                    .to_string(),
            });
        }
        // Validate every per-key pairing before mutating anything.
        for (key, theirs) in &other.states {
            let Some((_, mine)) = self.states.iter().find(|(k, _)| k == key) else {
                continue;
            };
            match (mine.is_banked(), theirs.is_banked()) {
                (true, true) if mine.accesses > 0 && theirs.accesses > 0 => {
                    return Err(CacheError::ShardMerge {
                        reason: format!(
                            "both shards measured the per-key curve of {key:?}; shards \
                             must partition the stream by key"
                        ),
                    });
                }
                (true, false) | (false, true)
                    if (mine.accesses, mine.cold) != (theirs.accesses, theirs.cold) =>
                {
                    return Err(CacheError::ShardMerge {
                        reason: format!(
                            "shards disagree on the traffic of {key:?} ({} accesses / {} \
                             first touches vs {} / {}); the per-key shard and the \
                             full-stream aggregate shard must have seen the same substream",
                            mine.accesses, mine.cold, theirs.accesses, theirs.cold
                        ),
                    });
                }
                (false, false) if mine.accesses > 0 && theirs.accesses > 0 => {
                    return Err(CacheError::ShardMerge {
                        reason: format!(
                            "two counters-only records of {key:?} both carry traffic; at \
                             most one aggregate-only shard may walk the stream"
                        ),
                    });
                }
                _ => {}
            }
        }
        // Merge the per-key states: a banked state with traffic always
        // wins over its counters-only ghost (validated equal above).
        for (key, theirs) in other.states {
            match self.states.iter().position(|(k, _)| *k == key) {
                Some(index) => {
                    let mine = &self.states[index].1;
                    let replace = match (mine.is_banked(), theirs.is_banked()) {
                        (false, true) => true,
                        (true, true) => mine.accesses == 0 && theirs.accesses > 0,
                        (true, false) => false,
                        (false, false) => theirs.accesses > mine.accesses,
                    };
                    if replace {
                        self.states[index].1 = theirs;
                    }
                }
                None => self.states.push((key, theirs)),
            }
        }
        // The aggregate: a live banked aggregate moves across wholesale
        // (the full-stream shard's counters already cover every lane);
        // two counters-only aggregates add (lane counts are disjoint).
        if other.aggregate.is_banked() && other.aggregate.accesses > 0 {
            self.aggregate = other.aggregate;
        } else if !self.aggregate.is_banked() && !other.aggregate.is_banked() {
            self.aggregate.accesses += other.aggregate.accesses;
            self.aggregate.cold += other.aggregate.cold;
        }
        // Region slots may point at stale indices after the reshuffle;
        // rebuild them (observe() repopulates lazily via key lookup, so a
        // reset alone would also be correct — rebuilding keeps the merged
        // profiler immediately observable without re-scans).
        for region in 0..self.region_slots.len() {
            let key = self.region_keys[region];
            self.region_slots[region] = self
                .states
                .iter()
                .position(|(k, _)| *k == key)
                .unwrap_or(UNTOUCHED);
        }
        if self.aggregate.is_banked() && self.aggregate.accesses > 0 {
            let keyed: u64 = self.states.iter().map(|(_, state)| state.accesses).sum();
            if keyed != self.aggregate.accesses {
                return Err(CacheError::ShardMerge {
                    reason: format!(
                        "the aggregate shard observed {} accesses but the per-key shards \
                         cover {keyed}; the shards must partition exactly the stream the \
                         aggregate shard walked",
                        self.aggregate.accesses
                    ),
                });
            }
        }
        Ok(self)
    }
}

// ----- windowed profiling -----

/// How a profiling pass slices the access stream into windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowKind {
    /// One window covering the whole run (no slicing).
    WholeRun,
    /// A fixed number of L2-bound accesses per window.
    Accesses,
    /// A fixed number of cycles per window. Boundaries lie on a fixed
    /// grid anchored at the first observed cycle and advance
    /// monotonically with the *observed* cycle sequence; empty grid
    /// cells are skipped. Multiprocessor streams are only approximately
    /// chronological (a processor's chunk can run ahead of a peer's
    /// clock), so an access observed after the grid advanced joins the
    /// current window even if its cycle is slightly earlier — window
    /// cycle ranges report the min/max cycle actually observed and may
    /// overlap across windows by up to that interleaving skew.
    Cycles,
}

/// The window configuration of a profiling pass.
///
/// ```
/// use compmem_cache::{WindowConfig, WindowKind};
/// let w = WindowConfig::accesses(4096)?;
/// assert_eq!((w.kind, w.length), (WindowKind::Accesses, 4096));
/// assert!(WindowConfig::cycles(0).is_err());
/// assert_eq!(WindowConfig::whole_run().kind, WindowKind::WholeRun);
/// # Ok::<(), compmem_cache::CacheError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowConfig {
    /// How windows are delimited.
    pub kind: WindowKind,
    /// Window length in the kind's unit (0 for [`WindowKind::WholeRun`]).
    pub length: u64,
}

impl WindowConfig {
    /// The whole-run (single window) configuration.
    pub fn whole_run() -> Self {
        WindowConfig {
            kind: WindowKind::WholeRun,
            length: 0,
        }
    }

    /// A window of `length` L2-bound accesses.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidWindow`] if `length` is zero.
    pub fn accesses(length: u64) -> Result<Self, CacheError> {
        if length == 0 {
            return Err(CacheError::InvalidWindow { length });
        }
        Ok(WindowConfig {
            kind: WindowKind::Accesses,
            length,
        })
    }

    /// A window of `length` cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidWindow`] if `length` is zero.
    pub fn cycles(length: u64) -> Result<Self, CacheError> {
        if length == 0 {
            return Err(CacheError::InvalidWindow { length });
        }
        Ok(WindowConfig {
            kind: WindowKind::Cycles,
            length,
        })
    }

    /// The sidecar encoding of this configuration.
    pub fn to_sidecar(self) -> SidecarWindow {
        SidecarWindow {
            kind: match self.kind {
                WindowKind::WholeRun => SidecarWindowKind::WholeRun,
                WindowKind::Accesses => SidecarWindowKind::Accesses,
                WindowKind::Cycles => SidecarWindowKind::Cycles,
            },
            length: self.length,
        }
    }

    /// Decodes a sidecar window configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidWindow`] for a zero-length windowed
    /// configuration (the sidecar codec rejects those too).
    pub fn from_sidecar(window: SidecarWindow) -> Result<Self, CacheError> {
        match window.kind {
            SidecarWindowKind::WholeRun => Ok(Self::whole_run()),
            SidecarWindowKind::Accesses => Self::accesses(window.length),
            SidecarWindowKind::Cycles => Self::cycles(window.length),
        }
    }
}

/// One profiling window: the curves its accesses contributed.
///
/// Windows are differences of cumulative profiler snapshots (stacks are
/// not reset at boundaries), so `curves` counts the misses of the
/// window's accesses *given everything already resident* — and summing
/// all windows of a pass reconstructs the whole-run curves exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveWindow {
    /// Zero-based window index.
    pub index: usize,
    /// Cycle (or access ordinal, for feeds without a clock) of the first
    /// access in the window.
    pub start_cycle: u64,
    /// Cycle (or access ordinal) of the last access in the window.
    pub end_cycle: u64,
    /// The curves of every key active in the window (zero-traffic keys
    /// are dropped), plus the window's aggregate.
    pub curves: MissRateCurves,
}

/// A maximal run of consecutive windows whose curves stay within the
/// phase threshold of each other.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// First member window (index into [`WindowedCurves::windows`]).
    pub first_window: usize,
    /// Last member window (inclusive).
    pub last_window: usize,
    /// Start cycle of the first member window.
    pub start_cycle: u64,
    /// End cycle of the last member window.
    pub end_cycle: u64,
    /// The merged curves of the member windows.
    pub curves: MissRateCurves,
}

impl Phase {
    /// Number of member windows.
    pub fn window_count(&self) -> usize {
        self.last_window - self.first_window + 1
    }
}

/// Normalised distance between two windows' curves, in `[0, 2]`.
///
/// The distance is the sum of two `[0, 1]` terms:
///
/// * **mix** — the total-variation distance between the windows' per-key
///   access shares (which keys are generating traffic, and how much);
/// * **behaviour** — the access-share-weighted mean absolute difference
///   of per-key miss rates over every resolved shape (how each key's
///   curve moved).
///
/// A key absent from a window contributes zero share and zero miss rate
/// there, so keys appearing or disappearing register in both terms.
/// Windows with no traffic at all are at distance 0 from each other.
///
/// # Panics
///
/// Panics if the curve sets were profiled at different resolutions — a
/// programming error, as with [`MissRateCurves::absorb`]: all windows of
/// one pass share the pass's resolution, and comparing curves across
/// resolutions has no well-defined shape grid.
pub fn curve_delta(a: &MissRateCurves, b: &MissRateCurves) -> f64 {
    assert_eq!(
        a.resolution, b.resolution,
        "curve_delta compares curves of one profiling resolution"
    );
    let total_a = a.aggregate.accesses as f64;
    let total_b = b.aggregate.accesses as f64;
    if total_a == 0.0 && total_b == 0.0 {
        return 0.0;
    }
    let resolution = a.resolution;
    let shapes: Vec<(u32, u32)> = (0..resolution.levels())
        .flat_map(|level| {
            let sets = resolution.min_sets << level;
            (1..=resolution.ways_cap).map(move |ways| (sets, ways))
        })
        .collect();
    let share = |curve: Option<&MissRateCurve>, total: f64| {
        curve.map_or(0.0, |c| {
            if total == 0.0 {
                0.0
            } else {
                c.accesses as f64 / total
            }
        })
    };
    let rate = |curve: Option<&MissRateCurve>, sets: u32, ways: u32| {
        curve.map_or(0.0, |c| c.miss_rate(sets, ways).unwrap_or(0.0))
    };
    let mut mix = 0.0;
    let mut behaviour = 0.0;
    let combined = total_a + total_b;
    let keys: std::collections::BTreeSet<PartitionKey> =
        a.curves.keys().chain(b.curves.keys()).copied().collect();
    for key in keys {
        let ca = a.curves.get(&key);
        let cb = b.curves.get(&key);
        let sa = share(ca, total_a);
        let sb = share(cb, total_b);
        mix += (sa - sb).abs() / 2.0;
        let weight =
            (ca.map_or(0, |c| c.accesses) + cb.map_or(0, |c| c.accesses)) as f64 / combined;
        let mut diff = 0.0;
        for &(sets, ways) in &shapes {
            diff += (rate(ca, sets, ways) - rate(cb, sets, ways)).abs();
        }
        behaviour += weight * diff / shapes.len() as f64;
    }
    mix + behaviour
}

/// Streaming phase detection: the online (single-pass) variant of the
/// offline curve-delta detector ([`WindowedCurves::phases`]).
///
/// The detector consumes windows **as they close** — e.g. straight from a
/// [`WindowedProfiler`] during a live run — so a repartition schedule can
/// be derived without a second pass over the stream. It keeps only the
/// previous window's curves plus an EWMA of the deltas seen inside the
/// current phase: a window opens a new phase when the smoothed delta
/// crosses the threshold, and the EWMA restarts at each boundary (so one
/// detected jump never lingers into the next phase).
///
/// With `alpha = 1.0` the smoothing is the identity and the decisions are
/// *exactly* the offline detector's; lower `alpha` trades detection lag
/// for robustness against single-window spikes. The default (0.7) keeps
/// the two detectors in agreement whenever consecutive deltas are clearly
/// on one side of the threshold, which the agreement test pins down on
/// the tiny MPEG-2 workload.
#[derive(Debug)]
pub struct OnlinePhaseDetector {
    threshold: f64,
    alpha: f64,
    previous: Option<MissRateCurves>,
    /// EWMA of the deltas inside the current phase (`None` right after a
    /// boundary, so the next delta re-initialises it).
    ewma: Option<f64>,
    /// Index the next observed window will get.
    next_index: usize,
    /// First window of the currently open phase.
    phase_start: usize,
}

impl OnlinePhaseDetector {
    /// The default EWMA smoothing factor.
    pub const DEFAULT_ALPHA: f64 = 0.7;

    /// Creates a detector with the default smoothing.
    pub fn new(threshold: f64) -> Self {
        Self::with_smoothing(threshold, Self::DEFAULT_ALPHA)
    }

    /// Creates a detector with an explicit smoothing factor in `(0, 1]`
    /// (`1.0` reproduces the offline detector's decisions exactly).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_smoothing(threshold: f64, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must be in (0, 1], got {alpha}"
        );
        OnlinePhaseDetector {
            threshold,
            alpha,
            previous: None,
            ewma: None,
            next_index: 0,
            phase_start: 0,
        }
    }

    /// The smoothed delta of the current phase, if any delta was seen.
    pub fn smoothed_delta(&self) -> Option<f64> {
        self.ewma
    }

    /// Observes the next window's curves. When the window opens a new
    /// phase, returns the *completed* phase as its inclusive
    /// `(first_window, last_window)` range.
    ///
    /// # Panics
    ///
    /// As for [`curve_delta`]: all windows of one pass must share one
    /// profiling resolution.
    pub fn observe(&mut self, curves: &MissRateCurves) -> Option<(usize, usize)> {
        let index = self.next_index;
        self.next_index += 1;
        let mut completed = None;
        if let Some(previous) = &self.previous {
            let delta = curve_delta(previous, curves);
            let smoothed = match self.ewma {
                Some(ewma) => self.alpha * delta + (1.0 - self.alpha) * ewma,
                None => delta,
            };
            if smoothed > self.threshold {
                completed = Some((self.phase_start, index - 1));
                self.phase_start = index;
                self.ewma = None;
            } else {
                self.ewma = Some(smoothed);
            }
        }
        self.previous = Some(curves.clone());
        completed
    }

    /// Closes the trailing phase, if any window was observed.
    pub fn finish(self) -> Option<(usize, usize)> {
        (self.next_index > 0).then(|| (self.phase_start, self.next_index - 1))
    }
}

/// A [`StackDistanceProfiler`] that additionally snapshots a
/// [`MissRateCurves`] per fixed-size window.
///
/// Feed it with [`observe_at`](WindowedProfiler::observe_at) when the
/// stream carries cycles (trace records, live taps) or plain
/// [`observe`](WindowedProfiler::observe) otherwise (the access ordinal
/// then stands in for the clock), and extract the result with
/// [`finish`](WindowedProfiler::finish).
///
/// ```
/// use compmem_cache::{CurveResolution, WindowConfig, WindowedProfiler};
/// use compmem_trace::{Access, Addr, RegionId, RegionKind, RegionTable, TaskId};
///
/// # fn main() -> Result<(), compmem_cache::CacheError> {
/// let mut regions = RegionTable::new();
/// let task = TaskId::new(0);
/// regions.insert("t0.data", RegionKind::TaskData { task }, 64 * 64).unwrap();
/// let resolution = CurveResolution::new(4, 16, 2)?;
/// let mut profiler = WindowedProfiler::new(
///     WindowConfig::accesses(50)?, resolution, &regions);
/// let base = regions.regions()[0].base;
/// for i in 0..120u64 {
///     profiler.observe(&Access::load(base.offset(i % 64 * 64), 4, task, RegionId::new(0)));
/// }
/// let windowed = profiler.finish();
/// // 120 accesses in 50-access windows: 50 + 50 + a 20-access tail.
/// assert_eq!(windowed.windows.len(), 3);
/// assert_eq!(windowed.total.accesses(), 120);
/// // Summing the windows reconstructs the whole-run curves exactly.
/// assert_eq!(windowed.reconstruct_total(), windowed.total);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WindowedProfiler {
    profiler: StackDistanceProfiler,
    config: WindowConfig,
    windows: Vec<CurveWindow>,
    /// Cumulative snapshot at the last window boundary.
    previous: MissRateCurves,
    /// Accesses observed in the current window.
    window_accesses: u64,
    /// Cycle grid anchor of the current window ([`WindowKind::Cycles`]).
    grid_start: u64,
    /// First and last cycle observed in the current window.
    first_cycle: u64,
    last_cycle: u64,
    /// Total accesses observed (the pseudo-clock of plain `observe`).
    observed: u64,
}

impl WindowedProfiler {
    /// Creates a windowed profiler.
    pub fn new(config: WindowConfig, resolution: CurveResolution, regions: &RegionTable) -> Self {
        WindowedProfiler {
            profiler: StackDistanceProfiler::new(resolution, regions),
            previous: MissRateCurves::empty(resolution),
            config,
            windows: Vec::new(),
            window_accesses: 0,
            grid_start: 0,
            first_cycle: 0,
            last_cycle: 0,
            observed: 0,
        }
    }

    /// The window configuration.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// The resolution of the pass.
    pub fn resolution(&self) -> CurveResolution {
        self.profiler.resolution()
    }

    /// Total accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.observed
    }

    /// The windows closed so far, in stream order. The currently open
    /// window is not included until it closes — this is what lets an
    /// online controller poll the profiler mid-stream: a growing length
    /// marks a window boundary, and the last element carries the curves
    /// of the window that just completed.
    pub fn windows(&self) -> &[CurveWindow] {
        &self.windows
    }

    /// Observes one access of the L2-bound stream, issued at `cycle`.
    ///
    /// A cycle-windowed pass closes the current window before observing
    /// an access that lies past the window's grid boundary. Cycles are
    /// expected to be (approximately) non-decreasing; an access whose
    /// cycle regresses — multiprocessor interleavings produce bounded
    /// regressions — simply joins the current window and widens its
    /// reported cycle range (see [`WindowKind::Cycles`]).
    ///
    /// # Panics
    ///
    /// As for [`StackDistanceProfiler::observe`] (a region outside the
    /// profiler's table is a programming error).
    pub fn observe_at(&mut self, cycle: u64, access: &Access) {
        if self.config.kind == WindowKind::Cycles {
            if self.window_accesses == 0 {
                // First access of a window anchors (or re-anchors) the
                // grid cell it falls into.
                if self.windows.is_empty() && self.observed == 0 {
                    self.grid_start = cycle;
                } else if cycle >= self.grid_start + self.config.length {
                    let cells = (cycle - self.grid_start) / self.config.length;
                    self.grid_start += cells * self.config.length;
                }
            } else if cycle >= self.grid_start + self.config.length {
                self.close_window();
                let cells = (cycle - self.grid_start) / self.config.length;
                self.grid_start += cells * self.config.length;
            }
        }
        if self.window_accesses == 0 {
            self.first_cycle = cycle;
            self.last_cycle = cycle;
        } else {
            // Multiprocessor feeds may observe slightly out-of-order
            // cycles; report the true min/max of the window.
            self.first_cycle = self.first_cycle.min(cycle);
            self.last_cycle = self.last_cycle.max(cycle);
        }
        self.profiler.observe(access);
        self.observed += 1;
        self.window_accesses += 1;
        if self.config.kind == WindowKind::Accesses && self.window_accesses == self.config.length {
            self.close_window();
        }
    }

    /// Observes one access, using the running access ordinal as the
    /// clock (exact for access-count windows; for cycle windows this
    /// degrades to counting accesses).
    pub fn observe(&mut self, access: &Access) {
        self.observe_at(self.observed, access);
    }

    fn close_window(&mut self) {
        if self.window_accesses == 0 {
            return;
        }
        let cumulative = self.profiler.snapshot_curves();
        let curves = cumulative.delta_since(&self.previous);
        self.windows.push(CurveWindow {
            index: self.windows.len(),
            start_cycle: self.first_cycle,
            end_cycle: self.last_cycle,
            curves,
        });
        self.previous = cumulative;
        self.window_accesses = 0;
    }

    /// Closes the trailing window and extracts the windowed curves.
    pub fn finish(mut self) -> WindowedCurves {
        self.close_window();
        let config = self.config;
        let windows = std::mem::take(&mut self.windows);
        let total = self.profiler.into_curves();
        WindowedCurves {
            config,
            resolution: total.resolution,
            windows,
            total,
        }
    }
}

/// One planned window of a [`WindowPlan`]: its boundaries precomputed
/// from the cycle stream alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedWindow {
    /// Zero-based window index.
    pub index: usize,
    /// Cycle of the first access in the window (min observed).
    pub start_cycle: u64,
    /// Cycle of the last access in the window (max observed).
    pub end_cycle: u64,
    /// Number of stream accesses in the window.
    pub accesses: u64,
    /// Global stream ordinal one past the window's last access.
    pub end_ordinal: u64,
}

/// The window boundaries of a profiling pass, computed up front from the
/// cycle sequence alone.
///
/// Window boundaries depend only on the *global* access/cycle sequence,
/// never on the accesses' contents — so a lane-parallel windowed pass
/// first derives the plan from one cheap walk over the cycles, then every
/// shard closes its windows at the planned global ordinals
/// ([`PlannedWindowedProfiler`]). All shards thus agree on boundaries,
/// indices and cycle ranges with the serial [`WindowedProfiler`] by
/// construction: the plan is computed by driving the *same* grid logic
/// (a `WindowedProfiler` over a dummy single-line stream with the real
/// cycles), not a re-implementation of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPlan {
    /// The window configuration the plan was derived from.
    pub config: WindowConfig,
    /// The non-empty windows of the pass, in stream order.
    pub windows: Vec<PlannedWindow>,
}

impl WindowPlan {
    /// Derives the plan from the cycle of every access of the stream, in
    /// stream order.
    pub fn from_cycles(config: WindowConfig, cycles: impl IntoIterator<Item = u64>) -> Self {
        let mut regions = RegionTable::new();
        regions
            .insert("window-plan", RegionKind::AppData, 64)
            .expect("a one-line region table is always valid");
        let base = regions.regions()[0].base;
        let resolution = CurveResolution::new(1, 1, 1).expect("the minimal resolution is valid");
        let mut profiler = WindowedProfiler::new(config, resolution, &regions);
        let access = Access::load(base, 4, TaskId::new(0), RegionId::new(0));
        for cycle in cycles {
            profiler.observe_at(cycle, &access);
        }
        let windowed = profiler.finish();
        let mut windows = Vec::with_capacity(windowed.windows.len());
        let mut ordinal = 0u64;
        for window in &windowed.windows {
            let accesses = window.curves.aggregate.accesses;
            ordinal += accesses;
            windows.push(PlannedWindow {
                index: window.index,
                start_cycle: window.start_cycle,
                end_cycle: window.end_cycle,
                accesses,
                end_ordinal: ordinal,
            });
        }
        WindowPlan { config, windows }
    }

    /// Total accesses the plan covers.
    pub fn accesses(&self) -> u64 {
        self.windows.last().map_or(0, |window| window.end_ordinal)
    }
}

/// A windowed profiler shard that closes its windows at the global
/// boundaries of a precomputed [`WindowPlan`] instead of deciding them
/// from its own (partial) view of the stream.
///
/// Feed it any [`StackDistanceProfiler`] shard
/// ([`keys_only`](StackDistanceProfiler::keys_only) over one lane's
/// substream, or [`aggregate_only`](StackDistanceProfiler::aggregate_only)
/// over the full stream) and call
/// [`observe`](PlannedWindowedProfiler::observe) with each access's
/// **global** stream ordinal. Every shard emits one [`CurveWindow`] per
/// planned window (empty for windows the shard saw no traffic in), so the
/// shards' [`WindowedCurves`] align window-for-window and merge with
/// [`WindowedCurves::absorb_shard`] into exactly the serial result.
#[derive(Debug)]
pub struct PlannedWindowedProfiler {
    profiler: StackDistanceProfiler,
    plan: WindowPlan,
    next_window: usize,
    /// Cumulative snapshot at the last planned boundary.
    previous: MissRateCurves,
    windows: Vec<CurveWindow>,
}

impl PlannedWindowedProfiler {
    /// Wraps a profiler shard with a window plan.
    pub fn new(profiler: StackDistanceProfiler, plan: WindowPlan) -> Self {
        let previous = MissRateCurves::empty(profiler.resolution());
        PlannedWindowedProfiler {
            profiler,
            plan,
            next_window: 0,
            previous,
            windows: Vec::new(),
        }
    }

    /// Observes one access at its **global** stream ordinal (its 0-based
    /// position in the full stream the plan was computed over; a lane
    /// shard passes the original ordinals of its subsequence). Ordinals
    /// must be observed in increasing order.
    ///
    /// # Panics
    ///
    /// As for [`StackDistanceProfiler::observe`].
    pub fn observe(&mut self, ordinal: u64, access: &Access) {
        while self.next_window < self.plan.windows.len()
            && ordinal >= self.plan.windows[self.next_window].end_ordinal
        {
            self.close_next();
        }
        self.profiler.observe(access);
    }

    fn close_next(&mut self) {
        let planned = self.plan.windows[self.next_window];
        let cumulative = self.profiler.snapshot_curves();
        let curves = cumulative.delta_since(&self.previous);
        self.windows.push(CurveWindow {
            index: planned.index,
            start_cycle: planned.start_cycle,
            end_cycle: planned.end_cycle,
            curves,
        });
        self.previous = cumulative;
        self.next_window += 1;
    }

    /// Closes the remaining planned windows and extracts this shard's
    /// windowed curves (one window per planned window).
    pub fn finish(mut self) -> WindowedCurves {
        while self.next_window < self.plan.windows.len() {
            self.close_next();
        }
        let config = self.plan.config;
        let windows = std::mem::take(&mut self.windows);
        let total = self.profiler.into_curves();
        WindowedCurves {
            config,
            resolution: total.resolution,
            windows,
            total,
        }
    }
}

/// The result of a windowed profiling pass: per-window curves plus the
/// exact whole-run curves.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedCurves {
    /// The window configuration of the pass.
    pub config: WindowConfig,
    /// The resolution of the pass.
    pub resolution: CurveResolution,
    /// The emitted windows, in stream order.
    pub windows: Vec<CurveWindow>,
    /// The whole-run curves (identical to what an unwindowed pass over
    /// the same stream measures).
    pub total: MissRateCurves,
}

impl WindowedCurves {
    /// Sums the windows back into whole-run curves — by construction
    /// equal to [`total`](WindowedCurves::total); exposed so tests (and a
    /// property test) can assert the windowed/whole-run consistency
    /// invariant.
    pub fn reconstruct_total(&self) -> MissRateCurves {
        let mut sum = MissRateCurves::empty(self.resolution);
        for window in &self.windows {
            sum.absorb(&window.curves);
        }
        sum
    }

    /// Merges another shard's windowed curves into this one,
    /// window-for-window (both must come from [`PlannedWindowedProfiler`]
    /// runs over the same [`WindowPlan`], so their windows align by
    /// construction). Per-key curves and the aggregate add via
    /// [`MissRateCurves::absorb`]; since every key's traffic lives in
    /// exactly one keys-only shard and the aggregate in exactly one
    /// full-stream shard, the sums equal the serial pass's windows.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ShardMerge`] if the shards disagree on
    /// window configuration, resolution, or window boundaries.
    pub fn absorb_shard(&mut self, other: &WindowedCurves) -> Result<(), CacheError> {
        if self.config != other.config || self.resolution != other.resolution {
            return Err(CacheError::ShardMerge {
                reason: "windowed shards disagree on window configuration or resolution"
                    .to_string(),
            });
        }
        if self.windows.len() != other.windows.len() {
            return Err(CacheError::ShardMerge {
                reason: format!(
                    "windowed shards emitted different window counts ({} vs {}); both \
                     sides must run the same window plan",
                    self.windows.len(),
                    other.windows.len()
                ),
            });
        }
        for (mine, theirs) in self.windows.iter().zip(&other.windows) {
            if (mine.index, mine.start_cycle, mine.end_cycle)
                != (theirs.index, theirs.start_cycle, theirs.end_cycle)
            {
                return Err(CacheError::ShardMerge {
                    reason: format!(
                        "windowed shards disagree on the boundaries of window {}",
                        mine.index
                    ),
                });
            }
        }
        for (mine, theirs) in self.windows.iter_mut().zip(&other.windows) {
            mine.curves.absorb(&theirs.curves);
        }
        self.total.absorb(&other.total);
        Ok(())
    }

    /// Merges an inclusive window range into one curve set (the curves
    /// of a phase).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn merged(&self, first: usize, last: usize) -> MissRateCurves {
        assert!(first <= last && last < self.windows.len());
        let mut sum = MissRateCurves::empty(self.resolution);
        for window in &self.windows[first..=last] {
            sum.absorb(&window.curves);
        }
        sum
    }

    /// Segments the windows into phases: consecutive windows whose
    /// [`curve_delta`] stays `<= threshold` merge into one phase; a
    /// window farther than that from its predecessor opens a new phase.
    ///
    /// A threshold of `0.10` separates clearly distinct phases while
    /// tolerating sampling noise; the whole-run pass (one window) always
    /// yields exactly one phase.
    pub fn phases(&self, threshold: f64) -> Vec<Phase> {
        let mut phases: Vec<Phase> = Vec::new();
        let mut boundaries: Vec<usize> = vec![0];
        for (i, pair) in self.windows.windows(2).enumerate() {
            if curve_delta(&pair[0].curves, &pair[1].curves) > threshold {
                boundaries.push(i + 1);
            }
        }
        if self.windows.is_empty() {
            return phases;
        }
        boundaries.push(self.windows.len());
        for pair in boundaries.windows(2) {
            let (first, last) = (pair[0], pair[1] - 1);
            phases.push(Phase {
                first_window: first,
                last_window: last,
                start_cycle: self.windows[first].start_cycle,
                end_cycle: self.windows[last].end_cycle,
                curves: self.merged(first, last),
            });
        }
        phases
    }

    /// Segments the windows with the **streaming** detector
    /// ([`OnlinePhaseDetector`] at its default smoothing) instead of the
    /// offline one — the segmentation a live run deriving its schedule
    /// on the fly would produce. With clearly separated deltas the two
    /// detectors agree; see [`OnlinePhaseDetector`] for when they can
    /// differ.
    pub fn phases_online(&self, threshold: f64) -> Vec<Phase> {
        let mut detector = OnlinePhaseDetector::new(threshold);
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for window in &self.windows {
            ranges.extend(detector.observe(&window.curves));
        }
        ranges.extend(detector.finish());
        ranges
            .into_iter()
            .map(|(first, last)| Phase {
                first_window: first,
                last_window: last,
                start_cycle: self.windows[first].start_cycle,
                end_cycle: self.windows[last].end_cycle,
                curves: self.merged(first, last),
            })
            .collect()
    }

    // ----- sidecar bridge -----

    /// Encodes the windowed curves as a sidecar for the trace whose
    /// encoded bytes hash to `trace_hash` (see
    /// [`compmem_trace::curves::trace_content_hash`]).
    ///
    /// `l1_signature` identifies the L1 filter configuration the curves
    /// were measured behind (the L2-bound stream depends on it; pass 0
    /// for streams fed to the profiler directly). The profiling layer
    /// computes it — see `compmem-platform`'s `l1_filter_signature`.
    ///
    /// The encoding is lossless and deterministic:
    /// [`from_sidecar`](WindowedCurves::from_sidecar) restores an equal
    /// value, and equal values produce identical bytes.
    pub fn to_sidecar(&self, trace_hash: u64, l1_signature: u64) -> EncodedCurves {
        let header = CurveHeader {
            trace_hash,
            l1_signature,
            min_sets: self.resolution.min_sets,
            max_sets: self.resolution.max_sets,
            ways_cap: self.resolution.ways_cap,
            window: self.config.to_sidecar(),
        };
        let windows = self
            .windows
            .iter()
            .map(|window| WindowRecord {
                index: window.index as u64,
                start_cycle: window.start_cycle,
                end_cycle: window.end_cycle,
                entries: entries_of(&window.curves),
            })
            .collect();
        EncodedCurves::from_parts(header, windows, entries_of(&self.total))
    }

    /// Decodes a sidecar back into windowed curves.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::Corrupt`] if the sidecar's resolution or
    /// curve shapes are semantically invalid (the byte-level checks
    /// already ran when `encoded` was parsed).
    pub fn from_sidecar(encoded: &EncodedCurves) -> Result<Self, CodecError> {
        let header = encoded.header();
        let resolution = CurveResolution::new(header.min_sets, header.max_sets, header.ways_cap)
            .map_err(|_| CodecError::Corrupt {
                reason: "sidecar resolution is not a valid curve resolution",
            })?;
        let config =
            WindowConfig::from_sidecar(header.window).map_err(|_| CodecError::Corrupt {
                reason: "sidecar window configuration is invalid",
            })?;
        let windows = encoded
            .windows()
            .iter()
            .map(|record| {
                Ok(CurveWindow {
                    index: record.index as usize,
                    start_cycle: record.start_cycle,
                    end_cycle: record.end_cycle,
                    curves: curves_of(&record.entries, resolution)?,
                })
            })
            .collect::<Result<Vec<_>, CodecError>>()?;
        Ok(WindowedCurves {
            config,
            resolution,
            windows,
            total: curves_of(encoded.total(), resolution)?,
        })
    }
}

fn sidecar_key(key: PartitionKey) -> SidecarKey {
    match key {
        PartitionKey::Task(task) => SidecarKey::Task(task),
        PartitionKey::Buffer(buffer) => SidecarKey::Buffer(buffer),
        PartitionKey::AppData => SidecarKey::AppData,
        PartitionKey::AppBss => SidecarKey::AppBss,
        PartitionKey::RtData => SidecarKey::RtData,
        PartitionKey::RtBss => SidecarKey::RtBss,
    }
}

fn entry_of(key: SidecarKey, curve: &MissRateCurve) -> CurveEntry {
    CurveEntry {
        key,
        accesses: curve.accesses,
        cold: curve.cold,
        level_histograms: curve.level_histograms.clone(),
    }
}

/// Flattens a curve set into sorted sidecar entries ([`SidecarKey`]
/// orders the aggregate first, then keys in [`PartitionKey`] order).
fn entries_of(curves: &MissRateCurves) -> Vec<CurveEntry> {
    let mut entries = Vec::with_capacity(curves.curves.len() + 1);
    entries.push(entry_of(SidecarKey::Aggregate, &curves.aggregate));
    for (key, curve) in &curves.curves {
        entries.push(entry_of(sidecar_key(*key), curve));
    }
    entries
}

/// Rebuilds a curve set from sidecar entries.
fn curves_of(
    entries: &[CurveEntry],
    resolution: CurveResolution,
) -> Result<MissRateCurves, CodecError> {
    let mut curves = BTreeMap::new();
    let mut aggregate = None;
    for entry in entries {
        let curve = MissRateCurve {
            accesses: entry.accesses,
            cold: entry.cold,
            min_sets: resolution.min_sets,
            ways_cap: resolution.ways_cap,
            level_histograms: entry.level_histograms.clone(),
        };
        let key = match entry.key {
            SidecarKey::Aggregate => {
                aggregate = Some(curve);
                continue;
            }
            SidecarKey::Task(task) => PartitionKey::Task(task),
            SidecarKey::Buffer(buffer) => PartitionKey::Buffer(buffer),
            SidecarKey::AppData => PartitionKey::AppData,
            SidecarKey::AppBss => PartitionKey::AppBss,
            SidecarKey::RtData => PartitionKey::RtData,
            SidecarKey::RtBss => PartitionKey::RtBss,
        };
        curves.insert(key, curve);
    }
    let aggregate = match aggregate {
        Some(aggregate) => aggregate,
        None if entries.is_empty() => MissRateCurve::zero(&resolution),
        None => {
            return Err(CodecError::Corrupt {
                reason: "sidecar curve set lacks the aggregate curve",
            })
        }
    };
    Ok(MissRateCurves {
        curves,
        aggregate,
        resolution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::model::CacheModel;
    use crate::profile::ProfilingCache;
    use compmem_trace::{Access, RegionId, RegionKind, TaskId};

    fn region_table() -> RegionTable {
        let mut t = RegionTable::new();
        t.insert(
            "t0.data",
            RegionKind::TaskData {
                task: TaskId::new(0),
            },
            512 * 1024,
        )
        .unwrap();
        t.insert(
            "t1.data",
            RegionKind::TaskData {
                task: TaskId::new(1),
            },
            512 * 1024,
        )
        .unwrap();
        t
    }

    /// Deterministic pseudo-random access mix over both regions.
    fn scrambled_accesses(regions: &RegionTable, count: u64) -> Vec<Access> {
        let mut accesses = Vec::new();
        let mut state = 0x9e37_79b9u64;
        for i in 0..count {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let region = (i % 3 == 0) as u32; // 2:1 mix of the two tasks
            let base = regions.region(RegionId::new(region)).base;
            // A mix of tight loops and scattered lines.
            let line = if i % 5 < 3 { state % 96 } else { state % 4096 };
            let a = if i % 7 == 0 {
                Access::store(
                    base.offset(line * 64),
                    4,
                    TaskId::new(region),
                    RegionId::new(region),
                )
            } else {
                Access::load(
                    base.offset(line * 64),
                    4,
                    TaskId::new(region),
                    RegionId::new(region),
                )
            };
            accesses.push(a);
        }
        accesses
    }

    #[test]
    fn resolution_validation() {
        assert!(CurveResolution::new(16, 256, 4).is_ok());
        assert!(CurveResolution::new(0, 256, 4).is_err());
        assert!(CurveResolution::new(16, 24, 4).is_err());
        assert!(CurveResolution::new(256, 16, 4).is_err());
        assert!(CurveResolution::new(16, 256, 0).is_err());
        let r = CurveResolution::new(16, 256, 4).unwrap();
        assert_eq!(r.levels(), 5);
        assert_eq!(r.level_of(16), Some(0));
        assert_eq!(r.level_of(256), Some(4));
        assert_eq!(r.level_of(8), None);
        assert_eq!(r.level_of(48), None);
        let g = CacheGeometry::new(256, 4).unwrap();
        assert_eq!(
            CurveResolution::for_geometry(g, 16).unwrap(),
            CurveResolution::new(16, 256, 4).unwrap()
        );
        assert!(CurveResolution::for_geometry(g, 512).is_err());
    }

    #[test]
    fn single_pass_matches_the_shadow_cache_bank_exactly() {
        // The acceptance property in miniature: the profiler's misses at
        // every lattice point equal the ProfilingCache's shadow-cache
        // simulation, on a scrambled mixed-key stream.
        let regions = region_table();
        let config = CacheConfig::new(256, 4).unwrap();
        let lattice = CacheSizeLattice::new(config.geometry(), 16);
        let accesses = scrambled_accesses(&regions, 20_000);

        let mut shadow = ProfilingCache::new(config, &regions, lattice.clone());
        for a in &accesses {
            shadow.access(a);
        }
        let expected = shadow.into_profiles();

        let resolution = CurveResolution::for_geometry(config.geometry(), 16).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&accesses);
        assert_eq!(profiler.accesses(), accesses.len() as u64);
        let curves = profiler.into_curves();
        let profiles = curves.to_profiles(&lattice, 4).unwrap();
        assert_eq!(profiles, expected);
    }

    #[test]
    fn one_pass_serves_smaller_associativities_too() {
        // The same pass answers for every ways <= ways_cap: check against
        // direct shadow simulation at 1 and 2 ways.
        let regions = region_table();
        let geometry = CacheGeometry::new(256, 4).unwrap();
        let accesses = scrambled_accesses(&regions, 8_000);
        let resolution = CurveResolution::for_geometry(geometry, 16).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&accesses);
        let curves = profiler.into_curves();

        for ways in [1u32, 2, 4] {
            for sets in [16u32, 64, 256] {
                let mut cache =
                    crate::cache::SetAssocCache::new(CacheConfig::new(sets, ways).unwrap());
                for a in accesses.iter().filter(|a| a.region == RegionId::new(0)) {
                    let index = (a.addr.line().value() % u64::from(sets)) as u32;
                    cache.access_at(index, u64::MAX, a);
                }
                let curve = curves.curve(PartitionKey::Task(TaskId::new(0))).unwrap();
                assert_eq!(
                    curve.misses(sets, ways).unwrap(),
                    cache.stats().misses,
                    "sets={sets} ways={ways}"
                );
            }
        }
    }

    #[test]
    fn fully_associative_level_matches_the_reuse_distance_oracle() {
        use compmem_trace::gen::{looping, StreamParams};
        use compmem_trace::stats::ReuseDistanceHistogram;
        let mut regions = RegionTable::new();
        regions
            .insert(
                "t0.data",
                RegionKind::TaskData {
                    task: TaskId::new(0),
                },
                64 * 1024,
            )
            .unwrap();
        let params = StreamParams {
            task: TaskId::new(0),
            region: RegionId::new(0),
            base: regions.region(RegionId::new(0)).base,
            access_size: 4,
        };
        let trace = looping(params, 24 * 64, 64, 5);
        let oracle = ReuseDistanceHistogram::from_accesses(&trace);
        // A 1-set level is fully associative up to the cap.
        let resolution = CurveResolution::new(1, 4, 32).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&trace);
        let curves = profiler.into_curves();
        let curve = curves.curve(PartitionKey::Task(TaskId::new(0))).unwrap();
        for capacity in [8u32, 16, 24, 32] {
            assert_eq!(
                curve.misses(1, capacity).unwrap(),
                oracle.lru_misses(u64::from(capacity)),
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn out_of_range_shapes_are_rejected() {
        let regions = region_table();
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&scrambled_accesses(&regions, 100));
        let curves = profiler.into_curves();
        let curve = curves.curve(PartitionKey::Task(TaskId::new(0))).unwrap();
        assert!(curve.supports(16, 4));
        assert!(curve.supports(64, 1));
        assert!(!curve.supports(8, 4), "below min_sets");
        assert!(!curve.supports(128, 4), "above max_sets");
        assert!(!curve.supports(32, 5), "above ways_cap");
        assert!(!curve.supports(48, 2), "not a power of two");
        for (sets, ways) in [(8, 4), (128, 4), (32, 5), (32, 0), (48, 2)] {
            assert!(matches!(
                curve.misses(sets, ways),
                Err(CacheError::CurveOutOfRange { .. })
            ));
        }
        // The lattice conversion propagates the error.
        let geometry = CacheGeometry::new(2048, 4).unwrap();
        let wide = CacheSizeLattice::new(geometry, 16);
        assert!(curves.to_profiles(&wide, 4).is_err());
    }

    #[test]
    fn aggregate_curve_predicts_the_shared_cache_at_every_shape() {
        // The aggregate curve's misses at (S, W) must equal a shared
        // S-set, W-way LRU cache run over the same mixed-key stream —
        // the exactness claim behind the analytic shape sweep.
        let regions = region_table();
        let accesses = scrambled_accesses(&regions, 12_000);
        let resolution = CurveResolution::new(16, 256, 4).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        profiler.observe_all(&accesses);
        let curves = profiler.into_curves();
        assert_eq!(curves.accesses(), accesses.len() as u64);

        for sets in [16u32, 32, 64, 128, 256] {
            for ways in [1u32, 2, 4] {
                let mut cache =
                    crate::cache::SetAssocCache::new(CacheConfig::new(sets, ways).unwrap());
                for a in &accesses {
                    let index = (a.addr.line().value() % u64::from(sets)) as u32;
                    cache.access_at(index, u64::MAX, a);
                }
                assert_eq!(
                    curves.shared_misses(sets, ways).unwrap(),
                    cache.stats().misses,
                    "sets={sets} ways={ways}"
                );
            }
        }
        // Per-key curves do NOT sum to the aggregate in general: the
        // aggregate carries the inter-key interference a shared cache
        // sees and an exclusive partition does not.
        let summed: u64 = curves
            .curves
            .values()
            .map(|c| c.misses(64, 4).unwrap())
            .sum();
        assert!(summed <= curves.shared_misses(64, 4).unwrap());
    }

    #[test]
    fn windows_partition_the_run_and_sum_back_to_it() {
        let regions = region_table();
        let accesses = scrambled_accesses(&regions, 5_000);
        let resolution = CurveResolution::new(16, 64, 4).unwrap();

        let mut whole = StackDistanceProfiler::new(resolution, &regions);
        whole.observe_all(&accesses);
        let whole = whole.into_curves();

        let mut windowed =
            WindowedProfiler::new(WindowConfig::accesses(700).unwrap(), resolution, &regions);
        for a in &accesses {
            windowed.observe(a);
        }
        let windowed = windowed.finish();

        // 5000 accesses in 700-access windows: 7 full + a 100-access tail.
        assert_eq!(windowed.windows.len(), 8);
        let per_window: Vec<u64> = windowed
            .windows
            .iter()
            .map(|w| w.curves.accesses())
            .collect();
        assert_eq!(per_window[..7], [700; 7]);
        assert_eq!(per_window[7], 100);
        // Consistency invariant: per-window counts sum to the whole run,
        // and the whole-run curves are unchanged by windowing.
        assert_eq!(per_window.iter().sum::<u64>(), accesses.len() as u64);
        assert_eq!(windowed.total, whole);
        assert_eq!(windowed.reconstruct_total(), whole);
        // Window cycle ranges tile the access ordinals.
        assert_eq!(windowed.windows[0].start_cycle, 0);
        assert_eq!(windowed.windows[0].end_cycle, 699);
        assert_eq!(windowed.windows[7].start_cycle, 4900);
    }

    #[test]
    fn cycle_windows_follow_the_grid_and_skip_empty_cells() {
        let regions = region_table();
        let base = regions.region(RegionId::new(0)).base;
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler =
            WindowedProfiler::new(WindowConfig::cycles(100).unwrap(), resolution, &regions);
        let access =
            |line: u64| Access::load(base.offset(line * 64), 4, TaskId::new(0), RegionId::new(0));
        // Two accesses in cell [1000, 1100), a long idle gap, one in
        // [1750, 1850) — the empty cells in between produce no windows.
        profiler.observe_at(1000, &access(0));
        profiler.observe_at(1099, &access(1));
        profiler.observe_at(1750, &access(2));
        let windowed = profiler.finish();
        assert_eq!(windowed.windows.len(), 2);
        assert_eq!(windowed.windows[0].start_cycle, 1000);
        assert_eq!(windowed.windows[0].end_cycle, 1099);
        assert_eq!(windowed.windows[0].curves.accesses(), 2);
        assert_eq!(windowed.windows[1].start_cycle, 1750);
        assert_eq!(windowed.windows[1].curves.accesses(), 1);
        assert_eq!(windowed.total.accesses(), 3);
    }

    #[test]
    fn phase_detector_splits_a_two_phase_stream() {
        // Phase A: task 0 loops over a tiny working set (hits in any
        // shape). Phase B: task 1 strides over a huge set (misses in
        // every shape). The curve delta at the A→B boundary is large.
        let regions = region_table();
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler =
            WindowedProfiler::new(WindowConfig::accesses(500).unwrap(), resolution, &regions);
        let base0 = regions.region(RegionId::new(0)).base;
        let base1 = regions.region(RegionId::new(1)).base;
        for i in 0..2000u64 {
            profiler.observe(&Access::load(
                base0.offset(i % 8 * 64),
                4,
                TaskId::new(0),
                RegionId::new(0),
            ));
        }
        for i in 0..2000u64 {
            profiler.observe(&Access::load(
                base1.offset(i * 64 % (512 * 1024)),
                4,
                TaskId::new(1),
                RegionId::new(1),
            ));
        }
        let windowed = profiler.finish();
        assert_eq!(windowed.windows.len(), 8);
        let phases = windowed.phases(0.1);
        assert_eq!(phases.len(), 2, "one boundary at the workload switch");
        assert_eq!(phases[0].first_window, 0);
        assert_eq!(phases[0].last_window, 3);
        assert_eq!(phases[1].first_window, 4);
        assert_eq!(phases[1].last_window, 7);
        assert_eq!(phases[0].window_count(), 4);
        // Phase curves merge their member windows.
        assert_eq!(phases[0].curves.accesses(), 2000);
        assert_eq!(phases[1].curves.accesses(), 2000);
        assert!(phases[0]
            .curves
            .curve(PartitionKey::Task(TaskId::new(1)))
            .is_none());
        // A sky-high threshold keeps everything in one phase.
        assert_eq!(windowed.phases(10.0).len(), 1);
        // The delta between the two phases' curves is itself large.
        assert!(curve_delta(&phases[0].curves, &phases[1].curves) > 0.5);
    }

    #[test]
    fn online_detector_agrees_with_the_offline_one_on_clear_phases() {
        // The same two-phase stream as `phase_detector_splits_a_two_phase_stream`.
        let regions = region_table();
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler =
            WindowedProfiler::new(WindowConfig::accesses(500).unwrap(), resolution, &regions);
        let base0 = regions.region(RegionId::new(0)).base;
        let base1 = regions.region(RegionId::new(1)).base;
        for i in 0..2000u64 {
            profiler.observe(&Access::load(
                base0.offset(i % 8 * 64),
                4,
                TaskId::new(0),
                RegionId::new(0),
            ));
        }
        for i in 0..2000u64 {
            profiler.observe(&Access::load(
                base1.offset(i * 64 % (512 * 1024)),
                4,
                TaskId::new(1),
                RegionId::new(1),
            ));
        }
        let windowed = profiler.finish();
        for threshold in [0.1, 10.0] {
            let offline = windowed.phases(threshold);
            let online = windowed.phases_online(threshold);
            assert_eq!(
                online, offline,
                "threshold {threshold}: detectors must agree on clear phases"
            );
        }
        // alpha = 1.0 reproduces the offline decisions by construction,
        // at any threshold.
        for threshold in [0.0, 0.05, 0.3, 1.0] {
            let mut exact = OnlinePhaseDetector::with_smoothing(threshold, 1.0);
            let mut ranges = Vec::new();
            for w in &windowed.windows {
                ranges.extend(exact.observe(&w.curves));
            }
            ranges.extend(exact.finish());
            let offline: Vec<(usize, usize)> = windowed
                .phases(threshold)
                .iter()
                .map(|p| (p.first_window, p.last_window))
                .collect();
            assert_eq!(ranges, offline, "alpha=1.0 at threshold {threshold}");
        }
    }

    #[test]
    fn online_detector_is_streaming_and_resets_its_ewma_at_boundaries() {
        let mut detector = OnlinePhaseDetector::new(0.1);
        assert_eq!(detector.smoothed_delta(), None);
        // No windows at all: no trailing phase.
        assert_eq!(OnlinePhaseDetector::new(0.1).finish(), None);
        // One window: a single trailing phase.
        let regions = region_table();
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let base = regions.region(RegionId::new(0)).base;
        let curves_of = |stride: u64| {
            let mut p = StackDistanceProfiler::new(resolution, &regions);
            for i in 0..200u64 {
                p.observe(&Access::load(
                    base.offset(i * stride % (256 * 1024)),
                    4,
                    TaskId::new(0),
                    RegionId::new(0),
                ));
            }
            p.into_curves()
        };
        let quiet = curves_of(0);
        let wild = curves_of(4096);
        assert_eq!(detector.observe(&quiet), None);
        assert_eq!(detector.observe(&quiet), None);
        let smoothed_before = detector.smoothed_delta().unwrap();
        assert!(smoothed_before <= 0.1);
        // A jump closes the phase [0, 1] and resets the EWMA.
        assert_eq!(detector.observe(&wild), Some((0, 1)));
        assert_eq!(detector.smoothed_delta(), None);
        assert_eq!(detector.finish(), Some((2, 2)));

        let result = std::panic::catch_unwind(|| OnlinePhaseDetector::with_smoothing(0.1, 0.0));
        assert!(result.is_err(), "alpha outside (0, 1] must panic");
    }

    #[test]
    fn sidecar_roundtrip_is_lossless_and_deterministic() {
        let regions = region_table();
        let accesses = scrambled_accesses(&regions, 3_000);
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler =
            WindowedProfiler::new(WindowConfig::accesses(800).unwrap(), resolution, &regions);
        for a in &accesses {
            profiler.observe(a);
        }
        let windowed = profiler.finish();

        let encoded = windowed.to_sidecar(0x1234, 0x5678);
        let bytes = encoded.to_bytes().unwrap();
        let back = WindowedCurves::from_sidecar(
            &compmem_trace::EncodedCurves::from_bytes(&bytes).unwrap(),
        )
        .unwrap();
        assert_eq!(back, windowed);
        // Re-encoding the decoded value reproduces the bytes exactly —
        // the "byte-identical curves on reuse" guarantee.
        assert_eq!(back.to_sidecar(0x1234, 0x5678).to_bytes().unwrap(), bytes);
    }

    #[test]
    fn cold_and_access_counters_are_per_key() {
        let regions = region_table();
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut profiler = StackDistanceProfiler::new(resolution, &regions);
        let base = regions.region(RegionId::new(1)).base;
        for round in 0..3u64 {
            for line in 0..10u64 {
                profiler.observe(&Access::load(
                    base.offset(line * 64),
                    4,
                    TaskId::new(1),
                    RegionId::new(1),
                ));
            }
            let _ = round;
        }
        let curves = profiler.into_curves();
        assert!(curves.curve(PartitionKey::Task(TaskId::new(0))).is_none());
        let curve = curves.curve(PartitionKey::Task(TaskId::new(1))).unwrap();
        assert_eq!(curve.accesses, 30);
        assert_eq!(curve.cold, 10, "each line cold exactly once");
        // 10 lines fit in any resolved shape: only the cold misses remain.
        assert_eq!(curve.misses(64, 4).unwrap(), 10);
        assert_eq!(curve.miss_rate(64, 4).unwrap(), 10.0 / 30.0);
        assert_eq!(curves.keys(), vec![PartitionKey::Task(TaskId::new(1))]);
    }

    /// Splits a stream into one keys-only shard per key plus the
    /// full-stream aggregate shard, all fully observed.
    fn shards_of(
        regions: &RegionTable,
        resolution: CurveResolution,
        accesses: &[Access],
    ) -> (StackDistanceProfiler, Vec<StackDistanceProfiler>) {
        let mut aggregate = StackDistanceProfiler::aggregate_only(resolution, regions);
        aggregate.observe_all(accesses);
        let mut lanes: BTreeMap<PartitionKey, Vec<Access>> = BTreeMap::new();
        for access in accesses {
            let key = PartitionKey::from_region_kind(regions.region(access.region).kind);
            lanes.entry(key).or_default().push(*access);
        }
        let keyed = lanes
            .into_values()
            .map(|lane| {
                let mut shard = StackDistanceProfiler::keys_only(resolution, regions);
                shard.observe_all(&lane);
                shard
            })
            .collect();
        (aggregate, keyed)
    }

    #[test]
    fn sharded_profilers_merge_to_the_serial_pass() {
        let regions = region_table();
        let accesses = scrambled_accesses(&regions, 10_000);
        let resolution = CurveResolution::new(16, 64, 4).unwrap();

        let mut serial = StackDistanceProfiler::new(resolution, &regions);
        serial.observe_all(&accesses);
        let serial = serial.into_curves();

        // Aggregate-first merge order.
        let (aggregate, keyed) = shards_of(&regions, resolution, &accesses);
        let mut merged = aggregate;
        for shard in keyed {
            merged = merged.merge(shard).unwrap();
        }
        assert_eq!(merged.accesses(), accesses.len() as u64);
        assert_eq!(merged.into_curves(), serial);

        // Keys-first merge order reaches the same result.
        let (aggregate, mut keyed) = shards_of(&regions, resolution, &accesses);
        let mut merged = keyed.pop().unwrap();
        for shard in keyed {
            merged = merged.merge(shard).unwrap();
        }
        let merged = merged.merge(aggregate).unwrap();
        assert_eq!(merged.into_curves(), serial);

        // A merged profiler stays observable: feeding it more accesses
        // matches a serial pass over the concatenation.
        let more = scrambled_accesses(&regions, 10_500);
        let (aggregate, keyed) = shards_of(&regions, resolution, &accesses);
        let mut resumed = keyed
            .into_iter()
            .try_fold(aggregate, StackDistanceProfiler::merge)
            .unwrap();
        let mut full = StackDistanceProfiler::new(resolution, &regions);
        full.observe_all(&more[..10_000]);
        assert_eq!(resumed.snapshot_curves(), full.snapshot_curves());
        resumed.observe_all(&more[10_000..]);
        full.observe_all(&more[10_000..]);
        assert_eq!(resumed.into_curves(), full.into_curves());
    }

    #[test]
    fn shard_profilers_report_only_what_they_measured() {
        let regions = region_table();
        let accesses = scrambled_accesses(&regions, 2_000);
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let mut keys = StackDistanceProfiler::keys_only(resolution, &regions);
        keys.observe_all(&accesses);
        assert_eq!(keys.accesses(), 2_000);
        let keyed = keys.into_curves();
        assert_eq!(keyed.curves.len(), 2);
        assert_eq!(keyed.aggregate, MissRateCurve::zero(&resolution));

        let mut aggregate = StackDistanceProfiler::aggregate_only(resolution, &regions);
        aggregate.observe_all(&accesses);
        let aggregated = aggregate.into_curves();
        assert!(aggregated.curves.is_empty());
        assert_eq!(aggregated.accesses(), 2_000);
        assert!(aggregated.aggregate.misses(64, 4).unwrap() > 0);
    }

    #[test]
    fn shard_merge_rejects_overlaps_and_uncovered_streams() {
        let regions = region_table();
        let accesses = scrambled_accesses(&regions, 1_000);
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        let observed = |make: fn(CurveResolution, &RegionTable) -> StackDistanceProfiler,
                        slice: &[Access]| {
            let mut p = make(resolution, &regions);
            p.observe_all(slice);
            p
        };

        // Two full profilers with traffic both carry aggregate stacks.
        let a = observed(StackDistanceProfiler::new, &accesses[..500]);
        let b = observed(StackDistanceProfiler::new, &accesses[500..]);
        assert!(matches!(a.merge(b), Err(CacheError::ShardMerge { .. })));

        // Two keys-only shards over overlapping streams share a key.
        let a = observed(StackDistanceProfiler::keys_only, &accesses[..500]);
        let b = observed(StackDistanceProfiler::keys_only, &accesses[..500]);
        assert!(matches!(a.merge(b), Err(CacheError::ShardMerge { .. })));

        // An aggregate shard over half the stream disagrees with a lane
        // shard's counters for the same key.
        let half = observed(StackDistanceProfiler::aggregate_only, &accesses[..500]);
        let lane: Vec<Access> = accesses
            .iter()
            .filter(|a| a.region == RegionId::new(0))
            .copied()
            .collect();
        let lane = observed(StackDistanceProfiler::keys_only, &lane);
        assert!(matches!(
            half.merge(lane),
            Err(CacheError::ShardMerge { .. })
        ));

        // An aggregate shard that never saw a lane's key fails the
        // coverage check (the shards don't partition its stream).
        let key0: Vec<Access> = accesses
            .iter()
            .filter(|a| a.region == RegionId::new(0))
            .copied()
            .collect();
        let key1: Vec<Access> = accesses
            .iter()
            .filter(|a| a.region == RegionId::new(1))
            .copied()
            .collect();
        let narrow = observed(StackDistanceProfiler::aggregate_only, &key0);
        let lane0 = observed(StackDistanceProfiler::keys_only, &key0);
        let lane1 = observed(StackDistanceProfiler::keys_only, &key1);
        let merged = narrow.merge(lane0).unwrap();
        assert!(matches!(
            merged.merge(lane1),
            Err(CacheError::ShardMerge { .. })
        ));

        // Mismatched resolutions never merge.
        let a = observed(StackDistanceProfiler::keys_only, &accesses);
        let b =
            StackDistanceProfiler::keys_only(CurveResolution::new(16, 128, 4).unwrap(), &regions);
        assert!(matches!(a.merge(b), Err(CacheError::ShardMerge { .. })));
    }

    #[test]
    fn planned_windowed_shards_reconstruct_the_serial_windows() {
        let regions = region_table();
        let accesses = scrambled_accesses(&regions, 5_000);
        let resolution = CurveResolution::new(16, 64, 4).unwrap();
        // Pseudo-random non-decreasing cycle stamps with idle gaps, so
        // the cycle grid skips cells.
        let mut cycles = Vec::with_capacity(accesses.len());
        let mut clock = 0u64;
        let mut state = 0xdead_beefu64;
        for _ in &accesses {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            clock += if state.is_multiple_of(97) {
                900
            } else {
                state % 4
            };
            cycles.push(clock);
        }

        for config in [
            WindowConfig::whole_run(),
            WindowConfig::accesses(700).unwrap(),
            WindowConfig::cycles(250).unwrap(),
        ] {
            let mut serial = WindowedProfiler::new(config, resolution, &regions);
            for (cycle, access) in cycles.iter().zip(&accesses) {
                serial.observe_at(*cycle, access);
            }
            let serial = serial.finish();

            let plan = WindowPlan::from_cycles(config, cycles.iter().copied());
            assert_eq!(plan.accesses(), accesses.len() as u64);
            assert_eq!(plan.windows.len(), serial.windows.len());

            // The aggregate shard walks the full stream; one keys-only
            // shard per key walks its lane at the original ordinals.
            let mut aggregate = PlannedWindowedProfiler::new(
                StackDistanceProfiler::aggregate_only(resolution, &regions),
                plan.clone(),
            );
            let mut lanes: BTreeMap<PartitionKey, Vec<(u64, Access)>> = BTreeMap::new();
            for (ordinal, access) in accesses.iter().enumerate() {
                aggregate.observe(ordinal as u64, access);
                let key = PartitionKey::from_region_kind(regions.region(access.region).kind);
                lanes
                    .entry(key)
                    .or_default()
                    .push((ordinal as u64, *access));
            }
            let mut merged = aggregate.finish();
            for lane in lanes.into_values() {
                let mut shard = PlannedWindowedProfiler::new(
                    StackDistanceProfiler::keys_only(resolution, &regions),
                    plan.clone(),
                );
                for (ordinal, access) in &lane {
                    shard.observe(*ordinal, access);
                }
                merged.absorb_shard(&shard.finish()).unwrap();
            }
            assert_eq!(merged, serial, "window config {config:?}");
        }
    }
}
