//! Cache configuration builder.

use serde::{Deserialize, Serialize};

use crate::error::CacheError;
use crate::geometry::CacheGeometry;
use crate::replacement::ReplacementPolicy;

/// Configuration of a set-associative cache: geometry, replacement policy and
/// the seed of the (deterministic) random replacement policy.
///
/// ```
/// use compmem_cache::{CacheConfig, ReplacementPolicy};
/// # fn main() -> Result<(), compmem_cache::CacheError> {
/// let cfg = CacheConfig::with_size_bytes(512 * 1024, 4)?
///     .policy(ReplacementPolicy::Lru);
/// assert_eq!(cfg.geometry().sets(), 2048);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    seed: u64,
}

impl CacheConfig {
    /// Creates a configuration from a set count and associativity, with LRU
    /// replacement.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] for parameters that are zero
    /// or not powers of two.
    pub fn new(sets: u32, ways: u32) -> Result<Self, CacheError> {
        Ok(CacheConfig {
            geometry: CacheGeometry::new(sets, ways)?,
            policy: ReplacementPolicy::Lru,
            seed: 0x5eed_cafe,
        })
    }

    /// Creates a configuration from a total size in bytes and associativity.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidGeometry`] if the implied set count is
    /// not a power of two.
    pub fn with_size_bytes(size_bytes: u64, ways: u32) -> Result<Self, CacheError> {
        Ok(CacheConfig {
            geometry: CacheGeometry::with_size(size_bytes, ways)?,
            policy: ReplacementPolicy::Lru,
            seed: 0x5eed_cafe,
        })
    }

    /// The paper's shared L2: 512 KB, 4-way, 64-byte lines (2048 sets).
    pub fn paper_l2() -> Self {
        Self::with_size_bytes(512 * 1024, 4).expect("paper L2 geometry is valid")
    }

    /// The larger L2 used in the paper's 1 MB shared-cache comparison point.
    pub fn paper_l2_1mb() -> Self {
        Self::with_size_bytes(1024 * 1024, 4).expect("1 MB L2 geometry is valid")
    }

    /// A TriMedia-like private L1: 16 KB, 4-way, 64-byte lines (64 sets).
    pub fn paper_l1() -> Self {
        Self::with_size_bytes(16 * 1024, 4).expect("paper L1 geometry is valid")
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the seed of the deterministic random replacement policy.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns the replacement policy.
    pub fn replacement_policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Returns the random-policy seed.
    pub fn random_seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_expected_geometry() {
        assert_eq!(CacheConfig::paper_l2().geometry().sets(), 2048);
        assert_eq!(CacheConfig::paper_l2().geometry().size_bytes(), 524_288);
        assert_eq!(CacheConfig::paper_l2_1mb().geometry().sets(), 4096);
        assert_eq!(CacheConfig::paper_l1().geometry().sets(), 64);
    }

    #[test]
    fn builder_sets_policy_and_seed() {
        let cfg = CacheConfig::new(64, 2)
            .unwrap()
            .policy(ReplacementPolicy::Fifo)
            .seed(42);
        assert_eq!(cfg.replacement_policy(), ReplacementPolicy::Fifo);
        assert_eq!(cfg.random_seed(), 42);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(CacheConfig::new(100, 4).is_err());
        assert!(CacheConfig::with_size_bytes(100_000, 4).is_err());
    }
}
